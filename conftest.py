"""Ensure the src layout is importable even without an editable install
(the offline evaluation environment lacks network access for pip's build
isolation)."""
import sys
from pathlib import Path

_SRC = str(Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
