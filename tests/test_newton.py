"""Batched Newton-Raphson tests."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimize import BatchedNewton, newton_optimize


def concave_family(maxima, sharpness=2.0):
    """lnL_i(z) = -sharpness * (z - maxima_i)^2 derivative oracle."""

    def fn(z, active):
        return -2 * sharpness * (z - maxima), np.full_like(z, -2 * sharpness)

    return fn


class TestScalar:
    def test_quadratic(self):
        z, iters, conv = newton_optimize(lambda z: (-2 * (z - 0.7), -2.0), 0.1)
        assert conv
        assert z == pytest.approx(0.7, abs=1e-6)
        assert iters <= 3

    def test_clamped_to_bounds(self):
        # maximum at 100, above the ceiling of 50
        z, _, conv = newton_optimize(lambda z: (-2 * (z - 100.0), -2.0), 1.0)
        assert z == pytest.approx(50.0)

    def test_lower_bound(self):
        z, _, _ = newton_optimize(lambda z: (-2 * (z + 5.0), -2.0), 1.0)
        assert z == pytest.approx(1e-8)

    def test_non_concave_fallback(self):
        """Convex region: gradient ascent still moves toward the optimum
        of f(z) = -(z-2)^4 whose d2 is ~0 near the start."""
        fn = lambda z: (-4 * (z - 2.0) ** 3, -12 * (z - 2.0) ** 2)
        z, _, conv = newton_optimize(fn, 1.999999)  # d2 ~ 0 here
        assert abs(z - 2.0) < 0.01


class TestBatched:
    def test_matches_scalar(self):
        maxima = np.array([0.05, 0.3, 1.4, 7.0])
        res = BatchedNewton().run(concave_family(maxima), np.full(4, 1.0))
        np.testing.assert_allclose(res.z, maxima, atol=1e-5)
        assert res.converged.all()
        for lane, m in enumerate(maxima):
            z, _, _ = newton_optimize(
                lambda z, mm=m: (-4.0 * (z - mm), -4.0), 1.0
            )
            assert res.z[lane] == pytest.approx(z, abs=1e-5)

    def test_iteration_counts_vary(self):
        """Mixed curvatures converge in different numbers of steps."""

        def fn(z, active):
            d1 = np.array([-2 * (z[0] - 1.0), -4 * (z[1] - 2.0) ** 3])
            d2 = np.array([-2.0, -12 * (z[1] - 2.0) ** 2])
            return d1, d2

        res = BatchedNewton().run(fn, np.array([0.5, 0.5]))
        assert res.iterations[0] < res.iterations[1]
        assert res.rounds == res.iterations.max()

    def test_mask_excludes_lanes(self):
        maxima = np.array([1.0, 2.0, 3.0])
        mask = np.array([True, False, True])
        res = BatchedNewton().run(concave_family(maxima), np.full(3, 0.5), mask=mask)
        assert res.iterations[1] == 0
        assert res.z[1] == pytest.approx(0.5)  # untouched

    def test_active_set_shrinks(self):
        sizes = []

        def fn(z, active):
            sizes.append(int(active.sum()))
            d1 = np.array([-200 * (z[0] - 1.0), -0.5 * (z[1] - 4.0)])
            d2 = np.array([-200.0, -0.5])
            return d1, d2

        BatchedNewton(ztol=1e-10).run(fn, np.array([0.9, 0.1]))
        assert sizes[0] == 2
        assert sizes[-1] <= 2
        assert len(set(sizes)) >= 1

    def test_inactive_lanes_never_queried(self):
        masks = []

        def fn(z, active):
            masks.append(active.copy())
            return -2 * (z - 1.0), np.full_like(z, -2.0)

        BatchedNewton().run(fn, np.full(3, 0.2), mask=np.array([True, True, False]))
        assert all(not m[2] for m in masks)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            BatchedNewton(lower=2.0, upper=1.0)

    @given(
        st.lists(st.floats(0.01, 20.0), min_size=1, max_size=10),
        st.floats(0.5, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_converges_to_maxima(self, maxima, sharp):
        m = np.array(maxima)
        res = BatchedNewton().run(
            concave_family(m, sharp), np.full(len(m), 0.5)
        )
        np.testing.assert_allclose(res.z, m, atol=1e-4)
        assert res.converged.all()
