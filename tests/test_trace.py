"""Trace-recording tests."""
import numpy as np
import pytest

from repro.core import NullRecorder, Region, Trace, TraceRecorder, WorkItem


class TestWorkItem:
    def test_valid(self):
        it = WorkItem(partition=0, op="newview", patterns=100, count=3)
        assert it.patterns == 100

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel op"):
            WorkItem(partition=0, op="fft", patterns=10)

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            WorkItem(partition=0, op="newview", patterns=10, count=0)


class TestRecorder:
    def test_explicit_region_groups_ops(self):
        rec = TraceRecorder()
        rec.begin_region("phase")
        rec.newview(0, 100, 2)
        rec.derivative(1, 50)
        rec.end_region()
        trace = rec.finalize(np.array([100, 50]), np.array([4, 4]))
        assert trace.n_regions == 1
        region = trace.regions[0]
        assert region.label == "phase"
        assert region.active_partitions() == {0, 1}
        assert region.total_pattern_ops() == 250

    def test_bare_ops_become_single_regions(self):
        """The oldPAR degenerate case: every op is its own barrier."""
        rec = TraceRecorder()
        rec.derivative(0, 100)
        rec.derivative(0, 100)
        rec.evaluate(1, 30)
        trace = rec.finalize(np.array([100, 30]), np.array([4, 4]))
        assert trace.n_regions == 3

    def test_empty_regions_dropped(self):
        rec = TraceRecorder()
        rec.begin_region("empty")
        rec.end_region()
        trace = rec.finalize(np.array([10]), np.array([4]))
        assert trace.n_regions == 0

    def test_nesting_rejected(self):
        rec = TraceRecorder()
        rec.begin_region("a")
        with pytest.raises(RuntimeError, match="already open"):
            rec.begin_region("b")

    def test_end_without_begin_rejected(self):
        with pytest.raises(RuntimeError, match="no region open"):
            TraceRecorder().end_region()

    def test_finalize_with_open_region_rejected(self):
        rec = TraceRecorder()
        rec.begin_region("a")
        rec.newview(0, 1)
        with pytest.raises(RuntimeError, match="still open"):
            rec.finalize(np.array([1]), np.array([4]))

    def test_op_totals(self):
        rec = TraceRecorder()
        rec.begin_region("x")
        rec.newview(0, 100, 5)
        rec.sumtable(0, 100)
        rec.end_region()
        rec.derivative(0, 100)
        trace = rec.finalize(np.array([100]), np.array([4]))
        totals = trace.op_totals()
        assert totals["newview"] == 500
        assert totals["sumtable"] == 100
        assert totals["derivative"] == 100
        assert totals["evaluate"] == 0

    def test_partition_op_totals(self):
        rec = TraceRecorder()
        rec.begin_region("x")
        rec.newview(0, 10)
        rec.newview(1, 20, 2)
        rec.end_region()
        trace = rec.finalize(np.array([10, 20]), np.array([4, 4]))
        per = trace.partition_op_totals()
        assert per[(0, "newview")] == 10
        assert per[(1, "newview")] == 40


class TestNullRecorder:
    def test_accepts_everything(self):
        rec = NullRecorder()
        rec.begin_region("x")
        rec.newview(0, 10)
        rec.evaluate(0, 10)
        rec.sumtable(0, 10)
        rec.derivative(0, 10)
        rec.end_region()  # no state, no errors
