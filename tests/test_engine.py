"""PartitionedEngine tests."""
import numpy as np
import pytest

from repro.core import PartitionedEngine, TraceRecorder
from repro.plk import SubstitutionModel


class TestBasics:
    def test_default_models(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        eng = PartitionedEngine(small_partitioned, tree.copy(), initial_lengths=lengths)
        assert eng.n_partitions == 3
        assert all(p.model.states == 4 for p in eng.parts)

    def test_total_is_sum_of_partitions(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        eng = PartitionedEngine(small_partitioned, tree.copy(), initial_lengths=lengths)
        total = eng.loglikelihood()
        parts = eng.partition_loglikelihoods()
        assert total == pytest.approx(parts.sum())

    def test_bad_branch_mode(self, small_partitioned, small_tree):
        tree, _ = small_tree
        with pytest.raises(ValueError, match="branch_mode"):
            PartitionedEngine(small_partitioned, tree.copy(), branch_mode="magic")

    def test_model_count_mismatch(self, small_partitioned, small_tree):
        tree, _ = small_tree
        with pytest.raises(ValueError, match="one model per"):
            PartitionedEngine(
                small_partitioned, tree.copy(), models=[SubstitutionModel.jc69()]
            )

    def test_pattern_counts_and_states(self, small_partitioned, small_tree):
        tree, _ = small_tree
        eng = PartitionedEngine(small_partitioned, tree.copy())
        np.testing.assert_array_equal(eng.states(), [4, 4, 4])
        assert eng.pattern_counts().sum() == small_partitioned.n_patterns


class TestBranchLengths:
    def test_joint_mode_keeps_lengths_equal(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        eng = PartitionedEngine(
            small_partitioned, tree.copy(), branch_mode="joint", initial_lengths=lengths
        )
        eng.set_branch_length(2, 0.42)
        bl = eng.branch_lengths()
        assert (bl[2] == 0.42).all()

    def test_joint_mode_rejects_per_partition_set(self, small_partitioned, small_tree):
        tree, _ = small_tree
        eng = PartitionedEngine(small_partitioned, tree.copy(), branch_mode="joint")
        with pytest.raises(ValueError, match="joint"):
            eng.set_branch_length(0, 0.1, partition=1)

    def test_per_partition_lengths_independent(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        eng = PartitionedEngine(
            small_partitioned, tree.copy(), branch_mode="per_partition",
            initial_lengths=lengths,
        )
        eng.set_branch_length(1, 0.9, partition=2)
        bl = eng.branch_lengths()
        assert bl[1, 2] == 0.9
        assert bl[1, 0] == pytest.approx(lengths[1])


class TestRegions:
    def test_loglikelihood_is_one_region(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        rec = TraceRecorder()
        eng = PartitionedEngine(
            small_partitioned, tree.copy(), initial_lengths=lengths, recorder=rec
        )
        eng.loglikelihood()
        trace = rec.finalize(eng.pattern_counts(), eng.states())
        assert trace.n_regions == 1
        assert trace.regions[0].active_partitions() == {0, 1, 2}

    def test_prepare_all_vs_one(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        rec = TraceRecorder()
        eng = PartitionedEngine(
            small_partitioned, tree.copy(), initial_lengths=lengths, recorder=rec
        )
        eng.loglikelihood()
        n0 = len(rec.trace.regions)
        eng.prepare_branch_all(0)
        assert len(rec.trace.regions) == n0 + 1  # one region for all parts
        eng.prepare_branch_one(0, 1)
        assert len(rec.trace.regions) == n0 + 2
        assert rec.trace.regions[-1].active_partitions() == {1}

    def test_invalidate_topology_forces_recompute(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        rec = TraceRecorder()
        eng = PartitionedEngine(
            small_partitioned, tree.copy(), initial_lengths=lengths, recorder=rec
        )
        first = eng.loglikelihood()
        eng.invalidate_topology()  # all nodes
        again = eng.loglikelihood()
        assert again == pytest.approx(first)
        trace = rec.finalize(eng.pattern_counts(), eng.states())
        newviews = trace.op_totals()["newview"]
        # both passes did full traversals
        expected_one_pass = sum(
            (tree.n_taxa - 2) * p.n_patterns for p in eng.parts
        )
        assert newviews == 2 * expected_one_pass
