"""The service tier: queue scheduling, warm pool, cache, failure paths.

Correctness contract under test: a warm-pool submission must return the
SAME log-likelihood a one-shot engine computes for the same dataset and
configuration (to 1e-9 — identical team geometry gives an identical
reduction order), including after a parameter-mutating job ran on the
team in between (the snapshot-restore hermeticity guarantee).
"""
import os
import threading
import time

import numpy as np
import pytest

from repro.parallel.engine import ParallelPLK
from repro.serve import (
    Job,
    JobQueue,
    JobState,
    LikelihoodService,
    LocalClient,
    ServeCache,
    ServiceConfig,
    SocketClient,
    fingerprint,
)
from repro.serve.cache import build_context
from repro.serve.daemon import serve_forever
from repro.serve.pool import pack_jobs, price_job
from repro.serve import protocol

#: The shared tiny dataset: every test that asks for this spec hits the
#: same cached context (and, within one service, the same warm team).
DS = {"kind": "simulated", "taxa": 6, "sites": 120, "partitions": 3, "seed": 7}
DS2 = {"kind": "simulated", "taxa": 6, "sites": 80, "partitions": 2, "seed": 11}


def _job(jid, tenant="t", priority=0, cost=1.0, timeout=None, op="loglikelihood"):
    return Job(id=jid, tenant=tenant, spec={"op": op, "dataset": DS},
               priority=priority, cost=cost, timeout=timeout)


# ---------------------------------------------------------------------------
# queue


class TestJobQueue:
    def test_priority_classes_beat_fifo(self):
        q = JobQueue()
        q.submit(_job("low", priority=0))
        q.submit(_job("high", priority=5))
        assert q.claim(0).id == "high"
        assert q.claim(0).id == "low"

    def test_tenant_fairness_within_class(self):
        """After tenant A is charged for a huge job, tenant B's queued
        work goes first even though A submitted earlier."""
        q = JobQueue()
        big = q.submit(_job("a1", tenant="A", cost=100.0))
        q.claim(0)  # A now owes 100 cost units
        q.finish(big, result={})
        q.submit(_job("a2", tenant="A", cost=1.0))
        q.submit(_job("b1", tenant="B", cost=1.0))
        assert q.claim(0).id == "b1"

    def test_cancel_only_pending(self):
        q = JobQueue()
        job = q.submit(_job("j1"))
        assert q.cancel("j1") is True
        assert job.state == JobState.CANCELLED
        assert job.wait(0) is True  # terminal: waiters released
        running = q.submit(_job("j2"))
        q.claim(0)
        assert q.cancel("j2") is False
        assert running.state == JobState.RUNNING
        assert q.cancel("nope") is False

    def test_queue_wait_timeout_expires(self):
        q = JobQueue()
        job = q.submit(_job("j1", timeout=0.01))
        time.sleep(0.05)
        assert q.claim(timeout=0) is None
        assert job.state == JobState.EXPIRED
        assert job.error["type"] == "expired"

    def test_claim_batch_drains_matching(self):
        q = JobQueue()
        for n in range(4):
            q.submit(_job(f"j{n}"))
        q.submit(_job("other", op="optimize_alpha"))
        first = q.claim(0)
        extras = q.claim_batch(
            lambda j: j.spec["op"] == "loglikelihood", limit=2
        )
        assert first.id == "j0"
        assert [j.id for j in extras] == ["j1", "j2"]
        assert all(j.state == JobState.RUNNING for j in extras)
        assert q.depth() == 2  # j3 + the alpha job

    def test_close_releases_blocked_claimers(self):
        q = JobQueue()
        got = []
        t = threading.Thread(target=lambda: got.append(q.claim()))
        t.start()
        q.close()
        t.join(timeout=5)
        assert got == [None]


# ---------------------------------------------------------------------------
# pricing + packing


def test_price_job_scales_with_op_and_edges():
    layout = build_context(DS).layout
    lnl = price_job({"op": "loglikelihood"}, layout)
    opt3 = price_job({"op": "optimize_branches", "edges": [0, 1, 2]}, layout)
    assert lnl > 0
    assert opt3 == pytest.approx(18 * lnl)


def test_pack_jobs_is_balanced_lpt():
    groups = pack_jobs([5.0, 3.0, 3.0, 2.0, 1.0], 2)
    loads = [sum([5.0, 3.0, 3.0, 2.0, 1.0][i] for i in g) for g in groups]
    assert sorted(i for g in groups for i in g) == [0, 1, 2, 3, 4]
    assert max(loads) / (sum(loads) / 2) <= 8.0 / 7.0  # LPT bound here: 8 vs 6


# ---------------------------------------------------------------------------
# cache


class TestServeCache:
    def test_fingerprint_is_key_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_hit_returns_same_context(self):
        cache = ServeCache()
        c1 = cache.get(DS)
        c2 = cache.get(dict(DS))  # equal spec, different dict object
        assert c1 is c2
        assert (cache.hits, cache.misses) == (1, 1)

    def test_memory_pressure_evicts_lru(self):
        small = build_context(DS).nbytes
        cache = ServeCache(max_bytes=small + 1)  # room for ~one context
        c1 = cache.get(DS)
        cache.get(DS2)  # over budget: evicts DS (LRU)
        assert cache.evictions == 1
        assert len(cache) == 1
        assert DS2 in cache and DS not in cache
        c1b = cache.get(DS)  # rebuilt, not the old object
        assert c1b is not c1
        assert np.isfinite(c1b.lengths).all()

    def test_eigensystems_are_shared_by_model_identity(self):
        from repro.plk.eigen import EigenSystem

        ctx = ServeCache().get({**DS, "seed": 99})
        first = [EigenSystem.for_model(m) for m in ctx.models]
        again = [EigenSystem.for_model(m) for m in ctx.models]
        assert all(a is b for a, b in zip(first, again))


# ---------------------------------------------------------------------------
# service integration (threads backend: cheap, deterministic)


@pytest.fixture(scope="module")
def service():
    svc = LikelihoodService(ServiceConfig(
        workers=2, executors=4, pool_capacity=2, backend="threads",
        allow_chaos=True,
    ))
    with svc:
        yield svc


@pytest.fixture(scope="module")
def oneshot_lnl():
    """The one-shot reference: an identically-configured cold engine."""
    ctx = build_context(DS)
    with ParallelPLK(ctx.data, ctx.tree, ctx.models, ctx.alphas,
                     n_workers=2, backend="threads",
                     initial_lengths=ctx.lengths) as eng:
        return eng.loglikelihood(0)


@pytest.mark.timeout(120)
def test_four_concurrent_analyses_match_oneshot(service, oneshot_lnl):
    client = LocalClient(service)
    ids = [
        client.submit({"op": "loglikelihood", "dataset": DS}, tenant=f"t{n}")
        for n in range(4)
    ]
    views = [client.result(j, wait=60) for j in ids]
    assert all(v["state"] == "done" for v in views)
    for v in views:
        assert abs(v["result"]["lnl"] - oneshot_lnl) < 1e-9


@pytest.mark.timeout(120)
def test_warm_team_is_hermetic_after_mutating_job(service, oneshot_lnl):
    """optimize_branches mutates team parameters; the snapshot restore on
    check-in must make the next lnl equal the one-shot value again."""
    client = LocalClient(service)
    before = client.run({"op": "loglikelihood", "dataset": DS}, wait=60)
    opt = client.run(
        {"op": "optimize_branches", "dataset": DS, "edges": [0, 1]}, wait=60
    )
    after = client.run({"op": "loglikelihood", "dataset": DS}, wait=60)
    assert opt["state"] == "done"
    assert opt["result"]["lnl"] != pytest.approx(oneshot_lnl)  # it did move
    assert abs(before["result"]["lnl"] - oneshot_lnl) < 1e-9
    assert abs(after["result"]["lnl"] - oneshot_lnl) < 1e-9


@pytest.mark.timeout(120)
def test_warm_pool_reuses_team(service):
    client = LocalClient(service)
    for _ in range(3):
        assert client.run(
            {"op": "loglikelihood", "dataset": DS}, wait=60
        )["state"] == "done"
    stats = service.pool.stats()
    assert stats["hits"] > 0
    # Every team in the pool belongs to a cached context.
    assert service.cache.hits > 0


@pytest.mark.timeout(120)
def test_batching_fuses_same_dataset_lnl_jobs(oneshot_lnl):
    """With ONE executor, a burst of lnl jobs for one dataset drains into
    a single fused program (batched counter > 0), all results correct."""
    svc = LikelihoodService(ServiceConfig(
        workers=2, executors=1, pool_capacity=1, backend="threads",
        batch_limit=8,
    ))
    client = LocalClient(svc)
    # Enqueue BEFORE starting the executor so the burst is all pending.
    ids = [client.submit({"op": "loglikelihood", "dataset": DS})
           for _ in range(5)]
    with svc:
        views = [client.result(j, wait=60) for j in ids]
    assert all(v["state"] == "done" for v in views)
    for v in views:
        assert abs(v["result"]["lnl"] - oneshot_lnl) < 1e-9
    assert svc.metrics.counter("serve.jobs.batched").value > 0
    assert any(v["result"].get("batched", 0) > 1 for v in views)


@pytest.mark.timeout(120)
def test_worker_exception_fails_job_not_service(service, oneshot_lnl):
    """A worker-side exception (unknown op) FAILS the job with a
    structured error; the team survives and keeps serving."""
    client = LocalClient(service)
    view = client.run({"op": "chaos_raise", "dataset": DS}, wait=60)
    assert view["state"] == "failed"
    assert view["error"]["type"] == "worker_error"
    assert "rank" in view["error"]
    after = client.run({"op": "loglikelihood", "dataset": DS}, wait=60)
    assert after["state"] == "done"
    assert abs(after["result"]["lnl"] - oneshot_lnl) < 1e-9


@pytest.mark.timeout(180)
def test_worker_death_returns_structured_error(tmp_path):
    """A worker process dying mid-job must produce a FAILED job carrying
    a worker_death error + flight-recorder post-mortem — never a hung
    client — and the next job gets a fresh team."""
    svc = LikelihoodService(ServiceConfig(
        workers=2, executors=1, pool_capacity=1, backend="processes",
        allow_chaos=True, postmortem_dir=str(tmp_path),
    ))
    with svc:
        client = LocalClient(svc)
        view = client.run({"op": "chaos_die", "dataset": DS, "rank": 1},
                          wait=120)
        assert view["state"] == "failed"
        assert view["error"]["type"] == "worker_death"
        assert view["error"]["rank"] == 1
        assert os.path.exists(view["error"]["postmortem"])
        assert svc.pool.discards == 1
        # Recovery: a cold replacement team serves the next request.
        after = client.run({"op": "loglikelihood", "dataset": DS}, wait=120)
        assert after["state"] == "done"
        assert svc.pool.misses == 2


@pytest.mark.timeout(120)
def test_service_level_timeout_and_cancellation():
    """With no executors running, pending jobs expire past their queue
    deadline and cancellation removes them."""
    svc = LikelihoodService(ServiceConfig(workers=2, backend="threads"))
    client = LocalClient(svc)  # note: never started — jobs stay pending
    expired_id = client.submit({"op": "loglikelihood", "dataset": DS},
                               timeout=0.01)
    cancelled_id = client.submit({"op": "loglikelihood", "dataset": DS})
    time.sleep(0.05)
    assert client.cancel(cancelled_id) is True
    stats = client.stats()  # stats() reaps expired jobs
    assert client.result(expired_id)["state"] == "expired"
    assert client.result(cancelled_id)["state"] == "cancelled"
    assert stats["queue"]["depth"] == 0
    assert svc.metrics.counter("serve.jobs.expired").value == 1
    assert svc.metrics.counter("serve.jobs.cancelled").value == 1


@pytest.mark.timeout(120)
def test_tenant_fairness_and_obs_plane(service):
    client = LocalClient(service)
    client.run({"op": "loglikelihood", "dataset": DS}, tenant="heavy", wait=60)
    stats = client.stats()
    assert stats["tenant_imbalance"] >= 1.0
    assert "heavy" in stats["queue"]["tenants"]
    text = client.metrics()
    assert "repro_serve_jobs_submitted_total" in text
    assert "repro_serve_queue_depth" in text
    assert "repro_serve_tenant_imbalance" in text
    assert 'mode="serve"' in text


# ---------------------------------------------------------------------------
# socket protocol


def test_protocol_round_trip():
    frame = protocol.encode(protocol.ok_response("ping", version=1))
    assert frame.endswith(b"\n")
    decoded = protocol.decode(frame)
    assert decoded == {"ok": True, "op": "ping", "version": 1}
    with pytest.raises(ValueError):
        protocol.decode(b"[1, 2]\n")


@pytest.mark.timeout(120)
def test_socket_daemon_round_trip(tmp_path, oneshot_lnl):
    path = str(tmp_path / "repro.sock")
    svc = LikelihoodService(ServiceConfig(
        workers=2, executors=2, backend="threads"
    ))
    ready = threading.Event()
    t = threading.Thread(target=serve_forever, args=(svc, path, ready),
                         daemon=True)
    t.start()
    assert ready.wait(30)
    with SocketClient(path) as client:
        assert client.ping()["version"] == protocol.PROTOCOL_VERSION
        view = client.run({"op": "loglikelihood", "dataset": DS}, wait=60)
        assert view["state"] == "done"
        assert abs(view["result"]["lnl"] - oneshot_lnl) < 1e-9
        assert "repro_serve_jobs_completed_total" in client.metrics()
        with pytest.raises(RuntimeError, match="unknown"):
            client._call({"op": "bogus"})
        client.shutdown()
    t.join(timeout=30)
    assert not t.is_alive()
    assert not os.path.exists(path)


@pytest.mark.timeout(120)
def test_chaos_requires_opt_in():
    svc = LikelihoodService(ServiceConfig(workers=2, backend="threads"))
    with pytest.raises(ValueError, match="allow_chaos"):
        svc.submit({"op": "chaos_die", "dataset": DS})
    with pytest.raises(ValueError, match="unknown op"):
        svc.submit({"op": "frobnicate", "dataset": DS})


# ---------------------------------------------------------------------------
# per-job kernel overrides


@pytest.mark.timeout(120)
def test_kernel_override_runs_on_isolated_warm_team(service, oneshot_lnl):
    """spec["kernel"] selects the backend per job: the result matches the
    default-kernel answer, runs on its OWN warm team (kernel-suffixed
    pool key), and is stamped in metrics and the flight recorder."""
    client = LocalClient(service)
    view = client.run(
        {"op": "loglikelihood", "dataset": DS, "kernel": "repeats"}, wait=60
    )
    assert view["state"] == "done"
    assert abs(view["result"]["lnl"] - oneshot_lnl) < 1e-9

    keys = {t["key"] for t in service.pool.stats()["teams"]}
    assert any(k.endswith("+repeats") for k in keys)
    # the default-kernel teams from earlier tests are untouched
    assert any(not k.endswith("+repeats") for k in keys)

    snap = service.metrics.snapshot()
    assert snap["serve.kernel.repeats.jobs"]["value"] >= 1
    stamped = [
        e for e in service.flight.events()
        if e.get("event") == "job_submitted" and e.get("kernel") == "repeats"
    ]
    assert stamped


@pytest.mark.timeout(120)
def test_kernel_override_composite_spelling(service, oneshot_lnl):
    client = LocalClient(service)
    view = client.run(
        {"op": "loglikelihood", "dataset": DS, "kernel": "repeats+blocked"},
        wait=60,
    )
    assert view["state"] == "done"
    assert abs(view["result"]["lnl"] - oneshot_lnl) < 1e-9


@pytest.mark.timeout(120)
def test_unknown_kernel_rejected_at_submit(service):
    client = LocalClient(service)
    with pytest.raises(ValueError, match="unknown kernel backend"):
        client.submit(
            {"op": "loglikelihood", "dataset": DS, "kernel": "quantum"}
        )


@pytest.mark.timeout(120)
def test_default_kernel_spelling_shares_default_team_key(service):
    """An explicit spec kernel equal to the service default must NOT
    fork a separate warm team — the override only isolates when it
    actually changes the backend."""
    client = LocalClient(service)
    view = client.run(
        {"op": "loglikelihood", "dataset": DS, "kernel": "numpy"}, wait=60
    )
    assert view["state"] == "done"
    keys = {t["key"] for t in service.pool.stats()["teams"]}
    assert not any(k.endswith("+numpy") for k in keys)
