"""Hill-climbing search tests: monotonicity, strategy equivalence,
topology recovery."""
import numpy as np
import pytest

from repro.core import PartitionedEngine, TraceRecorder
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.search import nni_round, spr_round, tree_search
from repro.seqgen import random_topology_with_lengths, simulate_alignment


@pytest.fixture(scope="module")
def search_setup():
    """A 8-taxon, 2-partition dataset with a known generating tree and a
    deliberately wrong starting tree (one SPR away)."""
    rng = np.random.default_rng(21)
    tree, lengths = random_topology_with_lengths(8, rng, mean_length=0.08)
    model = SubstitutionModel.random_gtr(2)
    aln = simulate_alignment(tree, lengths, model, 1.0, 1200, rng)
    data = PartitionedAlignment(aln, uniform_scheme(1200, 600))
    return tree, lengths, data


def wrong_start(tree, far=False):
    """Perturb the true topology by one SPR (nearby by default)."""
    from repro.search import spr_move, spr_targets

    start = tree.copy()
    for prune, u, v in start.edges():
        if start.is_leaf(u) and start.is_leaf(v):
            continue
        targets = spr_targets(start, prune, radius=3)
        if targets:
            spr_move(start, prune, targets[-1] if far else targets[0])
            break
    return start


class TestSPRRound:
    def test_likelihood_never_decreases(self, search_setup):
        tree, lengths, data = search_setup
        start = wrong_start(tree)
        engine = PartitionedEngine(data, start, initial_lengths=lengths)
        before = engine.loglikelihood()
        after, accepted, evaluated = spr_round(engine, "new", radius=3)
        assert after >= before - 1e-9
        assert evaluated > 0

    def test_recovers_true_topology(self, search_setup):
        tree, lengths, data = search_setup
        start = wrong_start(tree)
        assert start.robinson_foulds(tree) > 0
        engine = PartitionedEngine(data, start, initial_lengths=lengths)
        spr_round(engine, "new", radius=3)
        assert start.robinson_foulds(tree) == 0

    def test_old_and_new_find_same_moves(self, search_setup):
        tree, lengths, data = search_setup
        results = {}
        for strategy in ("old", "new"):
            start = wrong_start(tree)
            engine = PartitionedEngine(data, start, initial_lengths=lengths)
            lnl, acc, ev = spr_round(engine, strategy, radius=3)
            results[strategy] = (round(lnl, 4), acc, ev, start.splits())
        assert results["old"] == results["new"]

    def test_max_candidates_cap(self, search_setup):
        tree, lengths, data = search_setup
        start = wrong_start(tree)
        engine = PartitionedEngine(data, start, initial_lengths=lengths)
        _, _, evaluated = spr_round(engine, "new", radius=3, max_candidates=5)
        assert evaluated <= 5


class TestNNIRound:
    def test_likelihood_never_decreases(self, search_setup):
        tree, lengths, data = search_setup
        start = wrong_start(tree)
        engine = PartitionedEngine(data, start, initial_lengths=lengths)
        before = engine.loglikelihood()
        after, _, evaluated = nni_round(engine, "new")
        assert after >= before - 1e-9
        assert evaluated > 0


class TestTreeSearch:
    def test_full_search_improves(self, search_setup):
        tree, lengths, data = search_setup
        start = wrong_start(tree)
        engine = PartitionedEngine(data, start, initial_lengths=lengths)
        initial = engine.loglikelihood()
        result = tree_search(engine, "new", radius=3, max_rounds=2)
        assert result.loglikelihood > initial
        assert result.history == sorted(result.history) or all(
            b - a > -1e-6 for a, b in zip(result.history, result.history[1:])
        )

    def test_tree_left_valid(self, search_setup):
        tree, lengths, data = search_setup
        start = wrong_start(tree)
        engine = PartitionedEngine(data, start, initial_lengths=lengths)
        tree_search(engine, "new", radius=2, max_rounds=1, max_candidates=20)
        start.validate()

    def test_bad_moves_arg(self, search_setup):
        tree, lengths, data = search_setup
        engine = PartitionedEngine(data, tree.copy(), initial_lengths=lengths)
        with pytest.raises(ValueError):
            tree_search(engine, moves="tbr")

    def test_trace_capture_during_search(self, search_setup):
        """Searches emit well-formed region traces."""
        tree, lengths, data = search_setup
        rec = TraceRecorder()
        engine = PartitionedEngine(
            data, wrong_start(tree), initial_lengths=lengths, recorder=rec
        )
        tree_search(engine, "new", radius=2, max_rounds=1, max_candidates=10)
        trace = rec.finalize(engine.pattern_counts(), engine.states())
        assert trace.n_regions > 0
        assert all(region.items for region in trace.regions)


class TestBestAcceptance:
    def test_best_mode_improves(self, search_setup):
        tree, lengths, data = search_setup
        start = wrong_start(tree)
        engine = PartitionedEngine(data, start, initial_lengths=lengths)
        before = engine.loglikelihood()
        lnl, accepted, evaluated = spr_round(
            engine, "new", radius=3, accept="best"
        )
        assert lnl >= before - 1e-9
        assert accepted >= 1
        assert lnl == pytest.approx(engine.loglikelihood(), abs=1e-8)

    def test_best_mode_recovers_truth(self, search_setup):
        tree, lengths, data = search_setup
        start = wrong_start(tree)
        engine = PartitionedEngine(data, start, initial_lengths=lengths)
        spr_round(engine, "new", radius=3, accept="best")
        assert start.robinson_foulds(tree) == 0

    def test_best_never_below_first(self, search_setup):
        """Per sweep, evaluating all targets cannot do worse than greedy
        first-improvement."""
        tree, lengths, data = search_setup
        results = {}
        for policy in ("first", "best"):
            start = wrong_start(tree)
            engine = PartitionedEngine(data, start, initial_lengths=lengths)
            lnl, *_ = spr_round(engine, "new", radius=3, accept=policy)
            results[policy] = lnl
        assert results["best"] >= results["first"] - 1e-6

    def test_bad_policy(self, search_setup):
        tree, lengths, data = search_setup
        engine = PartitionedEngine(data, tree.copy(), initial_lengths=lengths)
        with pytest.raises(ValueError, match="accept"):
            spr_round(engine, "new", accept="random")
