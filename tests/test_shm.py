"""Shared-memory comms plane: segment lifecycle (no /dev/shm leaks),
input arena integrity, result-plane round trips, and pipe-vs-shm
equivalence on the real process backend.
"""
import numpy as np
import pytest

from repro.parallel import (
    ParallelPLK,
    SharedInputArena,
    SharedResultPlane,
    live_segments,
    slice_partition_data,
)
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(23)
    tree, lengths = random_topology_with_lengths(6, rng)
    aln = simulate_alignment(
        tree, lengths, SubstitutionModel.random_gtr(3), 1.0, 240, rng
    )
    data = PartitionedAlignment(aln, uniform_scheme(240, 80))
    models = [SubstitutionModel.random_gtr(p) for p in range(3)]
    alphas = [0.9, 1.1, 1.6]
    return data, tree, lengths, models, alphas


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must leave /dev/shm exactly as it found it."""
    before = live_segments()
    yield
    assert live_segments() == before


class TestSharedInputArena:
    def test_slices_round_trip_and_are_read_only(self, setup):
        data, *_ = setup
        worker_slices = [slice_partition_data(data, 2, w) for w in range(2)]
        arena = SharedInputArena(worker_slices)
        try:
            assert arena.name in live_segments()
            for orig_w, shared_w in zip(worker_slices, arena.worker_slices):
                for orig, shared in zip(orig_w, shared_w):
                    assert shared.partition == orig.partition
                    np.testing.assert_array_equal(
                        shared.tip_states, orig.tip_states
                    )
                    np.testing.assert_array_equal(shared.weights, orig.weights)
                    assert not shared.tip_states.flags.writeable
            assert arena.nbytes > 0
        finally:
            arena.close()
        assert arena.name not in live_segments()

    def test_close_is_idempotent(self, setup):
        data, *_ = setup
        arena = SharedInputArena([slice_partition_data(data, 1, 0)])
        arena.close()
        arena.close()


class TestSharedResultPlane:
    def test_rows_are_views_of_one_plane(self):
        plane = SharedResultPlane(n_workers=3, n_partitions=4)
        try:
            assert plane.capacity >= 6 * 4  # headroom for prepare+deriv prog
            plane.row(1)[:3] = [1.0, 2.0, 3.0]
            np.testing.assert_array_equal(plane.slots[1, :3], [1.0, 2.0, 3.0])
            np.testing.assert_array_equal(plane.slots[0], 0.0)
        finally:
            plane.close()

    def test_capacity_floor(self):
        plane = SharedResultPlane(n_workers=1, n_partitions=1)
        try:
            assert plane.capacity >= 32
        finally:
            plane.close()


@pytest.mark.timeout(120)
class TestShmBackend:
    def make_team(self, setup, comms, **kw):
        data, tree, lengths, models, alphas = setup
        return ParallelPLK(
            data, tree, models, alphas, 2, backend="processes", comms=comms,
            initial_lengths=lengths, **kw,
        )

    def test_shm_requires_process_backend(self, setup):
        data, tree, lengths, models, alphas = setup
        with pytest.raises(ValueError, match="processes"):
            ParallelPLK(data, tree, models, alphas, 2, backend="threads",
                        comms="shm")
        with pytest.raises(ValueError, match="comms"):
            ParallelPLK(data, tree, models, alphas, 2, backend="processes",
                        comms="carrier-pigeon")

    def test_shm_matches_pipe_results(self, setup):
        out = {}
        for comms in ("pipe", "shm"):
            with self.make_team(setup, comms) as team:
                assert team.comms == comms
                lnl = team.loglikelihood(0)
                z = team.optimize_branch(0, "new", z0=np.full(3, 0.1))
                parts = team.partition_loglikelihoods(0)
                out[comms] = (lnl, z, parts)
        assert out["shm"][0] == pytest.approx(out["pipe"][0], abs=1e-10)
        np.testing.assert_allclose(out["shm"][1], out["pipe"][1], atol=1e-10)
        np.testing.assert_allclose(out["shm"][2], out["pipe"][2], atol=1e-10)

    def test_shm_moves_results_off_the_pipe(self, setup):
        stats = {}
        for comms in ("pipe", "shm"):
            with self.make_team(setup, comms) as team:
                team.optimize_branch(0, "new", z0=np.full(3, 0.1))
                stats[comms] = team.comms_stats()
        assert stats["pipe"]["shm_rx_bytes"] == 0
        assert stats["shm"]["shm_rx_bytes"] > 0
        # identical command schedule, but the result payloads now travel
        # through shared memory: the pipe carries strictly fewer bytes.
        assert stats["shm"]["pipe_rx_bytes"] < stats["pipe"]["pipe_rx_bytes"]

    def test_segments_exist_while_open_and_vanish_on_close(self, setup):
        team = self.make_team(setup, "shm")
        try:
            segs = live_segments()
            assert len(segs) == 2  # input arena + result plane
            team.loglikelihood(0)
        finally:
            team.close()
        assert live_segments() == []

    def test_threads_backend_reports_local(self, setup):
        data, tree, lengths, models, alphas = setup
        with ParallelPLK(data, tree, models, alphas, 2, backend="threads",
                         initial_lengths=lengths) as team:
            assert team.comms == "local"
            stats = team.comms_stats()
            assert stats["comms"] == "local"
            assert stats["pipe_tx_bytes"] == 0
