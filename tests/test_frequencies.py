"""Base-frequency estimation tests (empirical and ML)."""
import numpy as np
import pytest

from repro.core import PartitionedEngine, optimize_frequencies
from repro.plk import (
    Alignment,
    PartitionedAlignment,
    SubstitutionModel,
    empirical_frequencies,
    frequency_ratios,
    ratios_to_frequencies,
    uniform_scheme,
)
from repro.seqgen import random_topology_with_lengths, simulate_alignment


class TestEmpirical:
    def test_recovers_generating_frequencies(self):
        rng = np.random.default_rng(1)
        tree, lengths = random_topology_with_lengths(8, rng)
        model = SubstitutionModel.gtr(
            np.ones(6), np.array([0.4, 0.3, 0.2, 0.1])
        )
        aln = simulate_alignment(tree, lengths, model, 1.0, 5_000, rng)
        data = PartitionedAlignment(aln, uniform_scheme(5_000, 5_000))
        est = empirical_frequencies(data.data[0])
        np.testing.assert_allclose(est, model.frequencies, atol=0.02)

    def test_sums_to_one(self, small_partitioned):
        for block in small_partitioned.data:
            est = empirical_frequencies(block)
            assert est.sum() == pytest.approx(1.0)
            assert (est > 0).all()

    def test_gaps_do_not_dominate(self):
        """A mostly-gap alignment still yields a valid estimate."""
        aln = Alignment.from_sequences({"x": "AAAA----", "y": "--AA--CC"})
        data = PartitionedAlignment(aln, uniform_scheme(8, 8))
        est = empirical_frequencies(data.data[0])
        assert est.argmax() == 0  # A dominates the observed cells

    def test_weights_respected(self):
        """Duplicate columns count with their multiplicity."""
        aln1 = Alignment.from_sequences({"x": "AC"})
        aln2 = Alignment.from_sequences({"x": "AAAC"})
        e1 = empirical_frequencies(
            PartitionedAlignment(aln1, uniform_scheme(2, 2)).data[0]
        )
        e2 = empirical_frequencies(
            PartitionedAlignment(aln2, uniform_scheme(4, 4)).data[0]
        )
        assert e2[0] > e1[0]


class TestRatioParameterization:
    def test_roundtrip(self):
        f = np.array([0.4, 0.3, 0.2, 0.1])
        np.testing.assert_allclose(
            ratios_to_frequencies(frequency_ratios(f)), f, atol=1e-12
        )

    def test_uniform(self):
        ratios = frequency_ratios(np.full(4, 0.25))
        np.testing.assert_allclose(ratios, 1.0)

    def test_aa_dimensions(self):
        f = np.random.default_rng(0).dirichlet(np.full(20, 5.0))
        assert frequency_ratios(f).shape == (19,)
        np.testing.assert_allclose(
            ratios_to_frequencies(frequency_ratios(f)), f, atol=1e-10
        )


class TestMLOptimization:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(2)
        tree, lengths = random_topology_with_lengths(7, rng)
        model = SubstitutionModel.gtr(np.ones(6), np.array([0.45, 0.25, 0.2, 0.1]))
        aln = simulate_alignment(tree, lengths, model, 1.0, 1_500, rng)
        data = PartitionedAlignment(aln, uniform_scheme(1_500, 750))
        return data, tree, lengths

    def test_improves_likelihood(self, setup):
        data, tree, lengths = setup
        engine = PartitionedEngine(data, tree.copy(), initial_lengths=lengths)
        before = engine.loglikelihood()
        optimize_frequencies(engine, "new")
        assert engine.loglikelihood() > before

    def test_strategies_agree(self, setup):
        data, tree, lengths = setup
        results = {}
        for strategy in ("old", "new"):
            engine = PartitionedEngine(data, tree.copy(), initial_lengths=lengths)
            optimize_frequencies(engine, strategy)
            results[strategy] = [p.model.frequencies for p in engine.parts]
        for old_f, new_f in zip(results["old"], results["new"]):
            np.testing.assert_allclose(old_f, new_f, atol=1e-3)

    def test_moves_toward_truth(self, setup):
        data, tree, lengths = setup
        engine = PartitionedEngine(data, tree.copy(), initial_lengths=lengths)
        optimize_frequencies(engine, "new")
        est = engine.parts[0].model.frequencies
        # A (0.45) must come out the most frequent; T (0.1) the least
        assert est.argmax() == 0
        assert est.argmin() == 3

    def test_aa_partitions_skipped_by_default(self):
        rng = np.random.default_rng(3)
        tree, lengths = random_topology_with_lengths(6, rng)
        aln = simulate_alignment(
            tree, lengths, SubstitutionModel.poisson_aa(), 1.0, 120, rng
        )
        from repro.plk import parse_partition_file

        scheme = parse_partition_file("AA, p = 1-120")
        data = PartitionedAlignment(aln, scheme)
        engine = PartitionedEngine(data, tree.copy(), initial_lengths=lengths)
        before = engine.parts[0].model.frequencies.copy()
        counts = optimize_frequencies(engine, "new", dna_only=True)
        np.testing.assert_array_equal(engine.parts[0].model.frequencies, before)
        assert counts[0] == 0
