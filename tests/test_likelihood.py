"""Likelihood-engine tests, including an independent brute-force oracle.

The oracle enumerates all internal-node state assignments of a quartet
tree and sums their probabilities directly from P(t) matrices — a from-
first-principles implementation sharing no code with the pruning kernel.
"""
import numpy as np
import pytest

from repro.plk import (
    Alignment,
    EigenSystem,
    PartitionLikelihood,
    PartitionedAlignment,
    SubstitutionModel,
    Tree,
    discrete_gamma_rates,
    uniform_scheme,
)
from repro.plk.partition import Partition, PartitionScheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment


def make_engine(alignment, tree, lengths, model=None, alpha=0.9):
    scheme = uniform_scheme(alignment.n_sites, alignment.n_sites, alignment.datatype)
    data = PartitionedAlignment(alignment, scheme)
    engine = PartitionLikelihood(
        data.data[0], tree, model or SubstitutionModel.random_gtr(1), alpha=alpha
    )
    engine.set_branch_lengths(lengths)
    return engine


def brute_force_quartet_loglik(alignment, tree, lengths, model, alpha, categories=4):
    """Enumerate internal states of ((a,b),(c,d)) directly."""
    eig = EigenSystem.from_model(model)
    rates = discrete_gamma_rates(alpha, categories)
    tips = alignment.encode_tips()  # (4, m, states)
    pi = model.frequencies
    s = model.states
    m = alignment.n_sites
    # leaves 0,1 attach to node 4; leaves 2,3 to node 5; edge 4 joins 4-5.
    e = {
        leaf: tree.edge_between(leaf, tree.neighbors(leaf)[0]) for leaf in range(4)
    }
    e45 = tree.edge_between(4, 5)
    total = np.zeros(m)
    for k, r in enumerate(rates):
        p = {key: eig.transition_matrix(lengths[eid], r) for key, eid in e.items()}
        p45 = eig.transition_matrix(lengths[e45], r)
        site = np.zeros(m)
        for s4 in range(s):
            for s5 in range(s):
                term = (
                    pi[s4]
                    * (p[0][s4] @ tips[0].T)
                    * (p[1][s4] @ tips[1].T)
                    * p45[s4, s5]
                    * (p[2][s5] @ tips[2].T)
                    * (p[3][s5] @ tips[3].T)
                )
                site += term
        total += site / categories
    return float(np.log(total).sum())


class TestBruteForceOracle:
    @pytest.mark.parametrize("alpha", [0.5, 1.0, 3.0])
    def test_quartet_gtr_gamma(self, quartet_tree, tiny_alignment, alpha):
        model = SubstitutionModel.random_gtr(9)
        lengths = np.array([0.11, 0.23, 0.05, 0.4, 0.17])
        engine = make_engine(tiny_alignment, quartet_tree, lengths, model, alpha)
        expected = brute_force_quartet_loglik(
            tiny_alignment, quartet_tree, lengths, model, alpha
        )
        assert engine.loglikelihood() == pytest.approx(expected, abs=1e-9)

    def test_quartet_jc(self, quartet_tree, tiny_alignment):
        model = SubstitutionModel.jc69()
        lengths = np.full(5, 0.2)
        engine = make_engine(tiny_alignment, quartet_tree, lengths, model, 1.0)
        expected = brute_force_quartet_loglik(
            tiny_alignment, quartet_tree, lengths, model, 1.0
        )
        assert engine.loglikelihood() == pytest.approx(expected, abs=1e-9)


class TestRootInvariance:
    def test_all_root_placements_agree(self, small_tree, small_alignment):
        tree, lengths = small_tree
        engine = make_engine(small_alignment, tree, lengths)
        values = [engine.loglikelihood(edge) for edge in range(tree.n_edges)]
        np.testing.assert_allclose(values, values[0], atol=1e-8)

    def test_invariance_with_scaling(self):
        """Deep star-ish tree with short branches triggers the scaling
        machinery; invariance must survive it."""
        rng = np.random.default_rng(8)
        tree, lengths = random_topology_with_lengths(40, rng, mean_length=0.02)
        model = SubstitutionModel.random_gtr(2)
        aln = simulate_alignment(tree, lengths, model, 0.1, 50, rng)
        engine = make_engine(aln, tree, lengths, model, alpha=0.1)
        values = [engine.loglikelihood(e) for e in (0, 10, 30, tree.n_edges - 1)]
        np.testing.assert_allclose(values, values[0], atol=1e-7)


class TestPatternCompression:
    def test_compressed_equals_uncompressed(self, small_tree):
        tree, lengths = small_tree
        rng = np.random.default_rng(12)
        model = SubstitutionModel.random_gtr(4)
        aln = simulate_alignment(tree, lengths, model, 1.0, 400, rng)
        # duplicate some columns explicitly
        mat = np.concatenate([aln.matrix, aln.matrix[:, :150]], axis=1)
        dup = Alignment(aln.taxa, mat, aln.datatype)
        engine = make_engine(dup, tree, lengths, model)
        # manual weighting: lnl(dup) should equal lnl over distinct patterns
        # with weights (this is internal to PartitionedAlignment, which
        # compresses), so build an uncompressed reference by hand:
        patterns, weights, _ = dup.compress()
        assert patterns.n_sites < dup.n_sites
        lnl_patterns = make_engine(patterns, tree, lengths, model)
        site_lnl = lnl_patterns.site_loglikelihoods()
        assert engine.loglikelihood() == pytest.approx(
            float(weights @ site_lnl), abs=1e-8
        )


class TestIncrementalUpdates:
    def test_branch_change_matches_fresh_engine(self, small_tree, small_alignment):
        tree, lengths = small_tree
        model = SubstitutionModel.random_gtr(6)
        engine = make_engine(small_alignment, tree, lengths, model)
        engine.loglikelihood()  # populate CLVs
        new_lengths = lengths.copy()
        new_lengths[3] *= 2.5
        engine.set_branch_length(3, new_lengths[3])
        incremental = engine.loglikelihood()
        fresh = make_engine(small_alignment, tree, new_lengths, model)
        assert incremental == pytest.approx(fresh.loglikelihood(), abs=1e-9)

    def test_alpha_change_matches_fresh_engine(self, small_tree, small_alignment):
        tree, lengths = small_tree
        model = SubstitutionModel.random_gtr(6)
        engine = make_engine(small_alignment, tree, lengths, model, alpha=1.0)
        engine.loglikelihood()
        engine.alpha = 0.3
        fresh = make_engine(small_alignment, tree, lengths, model, alpha=0.3)
        assert engine.loglikelihood() == pytest.approx(fresh.loglikelihood(), abs=1e-9)

    def test_model_change_matches_fresh_engine(self, small_tree, small_alignment):
        tree, lengths = small_tree
        engine = make_engine(small_alignment, tree, lengths, SubstitutionModel.jc69())
        engine.loglikelihood()
        new_model = SubstitutionModel.random_gtr(42)
        engine.model = new_model
        fresh = make_engine(small_alignment, tree, lengths, new_model)
        assert engine.loglikelihood() == pytest.approx(fresh.loglikelihood(), abs=1e-9)

    def test_refresh_count_partial(self, small_tree, small_alignment):
        """After one branch change, only the affected path recomputes."""
        tree, lengths = small_tree
        engine = make_engine(small_alignment, tree, lengths)
        engine.loglikelihood(0)
        full = engine.refresh(0)
        assert full == 0  # everything valid
        engine.set_branch_length(2, 0.33)
        partial = engine.refresh(0)
        assert 1 <= partial <= tree.n_taxa - 2

    def test_datatype_mismatch_rejected(self, small_tree, small_alignment):
        tree, lengths = small_tree
        with pytest.raises(ValueError, match="states"):
            make_engine(
                small_alignment, tree, lengths, SubstitutionModel.poisson_aa()
            )


class TestBranchWorkspace:
    def test_workspace_loglik_consistent_across_edges(self, small_tree, small_alignment):
        tree, lengths = small_tree
        engine = make_engine(small_alignment, tree, lengths)
        ref = engine.loglikelihood()
        for edge in range(0, tree.n_edges, 3):
            ws = engine.prepare_branch(edge)
            assert engine.branch_loglikelihood(ws, lengths[edge]) == pytest.approx(
                ref, abs=1e-8
            )

    def test_derivative_zero_at_optimum(self, small_tree, small_alignment):
        """After optimizing a branch, its gradient vanishes."""
        from repro.optimize import newton_optimize

        tree, lengths = small_tree
        engine = make_engine(small_alignment, tree, lengths)
        ws = engine.prepare_branch(1)
        z, iters, conv = newton_optimize(
            lambda z: engine.branch_derivatives(ws, z), lengths[1]
        )
        assert conv
        d1, d2 = engine.branch_derivatives(ws, z)
        assert abs(d1) < 1e-2
        assert d2 < 0  # maximum, not saddle

    def test_gamma_rates_property(self, small_tree, small_alignment):
        tree, lengths = small_tree
        engine = make_engine(small_alignment, tree, lengths, alpha=0.5)
        assert engine.gamma_rates.mean() == pytest.approx(1.0)
        assert engine.n_patterns > 0


class TestWorkspaceStaleness:
    """Regression tests for the stale-workspace bug: a BranchWorkspace
    prepared before a model-parameter change silently mixed the OLD
    sumtable with the NEW rates/eigensystem, producing a wrong-but-
    plausible likelihood.  Pre-fix, the alpha case below returned a
    finite lnl ~7.6 units off instead of raising."""

    def test_alpha_change_invalidates_workspace(self, small_tree, small_alignment):
        tree, lengths = small_tree
        engine = make_engine(small_alignment, tree, lengths, alpha=1.0)
        ws = engine.prepare_branch(2)
        fresh_lnl = engine.branch_loglikelihood(ws, lengths[2])
        assert np.isfinite(fresh_lnl)  # usable while parameters stand still
        engine.alpha = 0.3  # rates change; branch length held fixed
        with pytest.raises(RuntimeError, match="stale"):
            engine.branch_loglikelihood(ws, lengths[2])
        with pytest.raises(RuntimeError, match="stale"):
            engine.branch_derivatives(ws, lengths[2])
        # re-preparing after the change gives the correct value
        ws2 = engine.prepare_branch(2)
        expected = make_engine(
            small_alignment, tree, lengths, alpha=0.3
        ).loglikelihood()
        assert engine.branch_loglikelihood(ws2, lengths[2]) == pytest.approx(
            expected, abs=1e-8
        )

    def test_model_change_invalidates_workspace(self, small_tree, small_alignment):
        tree, lengths = small_tree
        engine = make_engine(small_alignment, tree, lengths,
                             SubstitutionModel.jc69())
        ws = engine.prepare_branch(1)
        engine.model = SubstitutionModel.random_gtr(42)
        with pytest.raises(RuntimeError, match="stale"):
            engine.branch_derivatives(ws, lengths[1])

    def test_branch_length_changes_do_not_invalidate(self, small_tree, small_alignment):
        """The whole point of a sumtable: it is valid for ANY length of
        its own edge, so length updates must not trip the guard."""
        tree, lengths = small_tree
        engine = make_engine(small_alignment, tree, lengths)
        ws = engine.prepare_branch(4)
        engine.set_branch_length(4, 0.42)
        assert np.isfinite(engine.branch_loglikelihood(ws, 0.42))

    def test_p_cache_keyed_on_parameters(self, small_tree, small_alignment):
        """Warm engine after a model change == cold engine: the per-edge
        P(t) cache must never serve matrices from the old eigensystem."""
        tree, lengths = small_tree
        engine = make_engine(small_alignment, tree, lengths,
                             SubstitutionModel.jc69())
        engine.loglikelihood()  # warm every cache
        new_model = SubstitutionModel.random_gtr(123)
        engine.model = new_model
        warm = engine.loglikelihood()
        cold = make_engine(small_alignment, tree, lengths, new_model)
        assert warm == pytest.approx(cold.loglikelihood(), abs=1e-9)
