"""Gappy-alignment / induced-subtree tests.

The headline invariant: the induced-subtree likelihood equals the
full-tree likelihood exactly (absent taxa carry all-ones conditionals;
degree-2 collapse adds branch lengths) — the mathematical basis of the
paper's argument for per-partition branch lengths.
"""
import numpy as np
import pytest

from repro.core import PartitionedEngine
from repro.plk import (
    GappyEngine,
    SubstitutionModel,
    induced_subtree,
    taxon_coverage,
    traversal_cost_ratio,
)
from repro.seqgen import coverage_fraction, gappy_dataset, random_topology_with_lengths


@pytest.fixture(scope="module")
def gappy():
    ds = gappy_dataset(16, 4, 300, coverage=0.5, seed=5)
    return ds, ds.partitioned()


class TestCoverage:
    def test_coverage_matrix(self, gappy):
        ds, pa = gappy
        cov = taxon_coverage(pa)
        assert cov.shape == (4, 16)
        assert cov.sum(axis=1).min() >= 4
        # every taxon covered somewhere
        assert cov.any(axis=0).all()

    def test_coverage_fraction(self, gappy):
        ds, pa = gappy
        assert 0.3 <= coverage_fraction(pa) <= 0.7

    def test_full_data_coverage_is_one(self, small_partitioned):
        assert taxon_coverage(small_partitioned).all()

    def test_generator_validation(self):
        with pytest.raises(ValueError, match="coverage"):
            gappy_dataset(10, 2, 100, coverage=1.5)
        with pytest.raises(ValueError, match="present"):
            gappy_dataset(10, 2, 100, min_present=2)


class TestInducedSubtree:
    def test_keep_all_is_identity(self):
        tree, _ = random_topology_with_lengths(9, np.random.default_rng(1))
        sub = induced_subtree(tree, set(range(9)))
        assert sub.tree.robinson_foulds(tree) == 0
        assert all(len(span) == 1 for span in sub.edge_spans)

    def test_structure(self):
        tree, lengths = random_topology_with_lengths(10, np.random.default_rng(2))
        keep = {0, 2, 5, 7}
        sub = induced_subtree(tree, keep)
        sub.tree.validate()
        assert sub.tree.n_taxa == 4
        assert set(sub.tree.taxa) == {tree.taxa[i] for i in keep}

    def test_spans_partition_path_lengths(self):
        """Induced path lengths between kept leaves equal full-tree path
        lengths."""
        tree, lengths = random_topology_with_lengths(12, np.random.default_rng(3))
        keep = {1, 4, 6, 9, 11}
        sub = induced_subtree(tree, keep)
        ind_lengths = sub.project_lengths(lengths)

        def path_length(t, lens, a, b):
            # BFS path
            prev = {a: None}
            stack = [a]
            while stack:
                cur = stack.pop()
                if cur == b:
                    break
                for nb in t.neighbors(cur):
                    if nb not in prev:
                        prev[nb] = cur
                        stack.append(nb)
            total, cur = 0.0, b
            while prev[cur] is not None:
                total += lens[t.edge_between(cur, prev[cur])]
                cur = prev[cur]
            return total

        for a in (1, 4):
            for b in (9, 11):
                full = path_length(tree, lengths, a, b)
                ia = sub.leaf_map[a]
                ib = sub.leaf_map[b]
                ind = path_length(sub.tree, ind_lengths, ia, ib)
                assert ind == pytest.approx(full, abs=1e-12)

    def test_too_few_taxa_rejected(self):
        tree, _ = random_topology_with_lengths(6, np.random.default_rng(4))
        with pytest.raises(ValueError, match="at least 3"):
            induced_subtree(tree, {0, 1})

    def test_bad_leaf_ids_rejected(self):
        tree, _ = random_topology_with_lengths(6, np.random.default_rng(4))
        with pytest.raises(ValueError, match="leaf ids"):
            induced_subtree(tree, {0, 1, 99})


class TestGappyEngine:
    def test_exactly_matches_full_engine(self, gappy):
        ds, pa = gappy
        models = [SubstitutionModel.random_gtr(p) for p in range(4)]
        alphas = [0.5, 1.0, 1.5, 2.0]
        full = PartitionedEngine(
            pa, ds.tree.copy(), models=models, alphas=alphas,
            initial_lengths=ds.true_lengths,
        )
        gap = GappyEngine(
            pa, ds.tree, models=models, alphas=alphas,
            initial_lengths=ds.true_lengths,
        )
        assert gap.loglikelihood() == pytest.approx(
            full.loglikelihood(), abs=1e-8
        )

    def test_traversal_savings(self, gappy):
        ds, pa = gappy
        ratio = traversal_cost_ratio(pa, ds.tree)
        assert ratio > 1.5  # 50% coverage -> roughly 2x fewer inner nodes
        gap = GappyEngine(pa, ds.tree)
        assert (gap.inner_node_counts() < ds.tree.n_taxa - 2).all()

    def test_savings_grow_with_gappiness(self):
        ratios = []
        for coverage in (0.8, 0.4):
            ds = gappy_dataset(20, 3, 200, coverage=coverage, seed=8)
            ratios.append(traversal_cost_ratio(ds.partitioned(), ds.tree))
        assert ratios[1] > ratios[0]

    def test_full_coverage_ratio_is_one(self, small_partitioned, small_tree):
        tree, _ = small_tree
        assert traversal_cost_ratio(small_partitioned, tree) == pytest.approx(1.0)
