"""Discrete Gamma rate tests (Yang 1994)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import integrate, stats

from repro.plk import discrete_gamma_rates


class TestBasics:
    def test_mean_is_one(self):
        for alpha in (0.05, 0.3, 1.0, 5.0, 50.0):
            rates = discrete_gamma_rates(alpha, 4)
            assert rates.mean() == pytest.approx(1.0)

    def test_ascending(self):
        rates = discrete_gamma_rates(0.5, 4)
        assert (np.diff(rates) > 0).all()

    def test_single_category_is_uniform(self):
        np.testing.assert_array_equal(discrete_gamma_rates(0.7, 1), [1.0])

    def test_category_count(self):
        for k in (2, 4, 8, 16):
            assert discrete_gamma_rates(1.0, k).shape == (k,)

    def test_invalid_category_count(self):
        with pytest.raises(ValueError):
            discrete_gamma_rates(1.0, 0)

    def test_large_alpha_approaches_equal_rates(self):
        """alpha -> infinity: no heterogeneity, all categories ~1."""
        rates = discrete_gamma_rates(900.0, 4)
        np.testing.assert_allclose(rates, 1.0, atol=0.05)

    def test_small_alpha_is_extreme(self):
        """Small alpha: most categories near 0, one large."""
        rates = discrete_gamma_rates(0.05, 4)
        assert rates[0] < 1e-3
        assert rates[-1] > 3.0

    def test_median_rule(self):
        rates = discrete_gamma_rates(0.8, 4, median=True)
        assert rates.mean() == pytest.approx(1.0)
        assert (np.diff(rates) > 0).all()

    def test_alpha_clamped(self):
        # Below the RAxML minimum the result equals the clamped value.
        np.testing.assert_allclose(
            discrete_gamma_rates(0.001, 4), discrete_gamma_rates(0.02, 4)
        )


class TestAgainstNumericalIntegration:
    @pytest.mark.parametrize("alpha", [0.3, 1.0, 2.7])
    def test_category_means_match_quadrature(self, alpha):
        """Each mean-rule category rate equals the conditional mean of
        Gamma(alpha, alpha) over its quantile interval (numerical
        integration oracle)."""
        k = 4
        rates = discrete_gamma_rates(alpha, k)
        dist = stats.gamma(a=alpha, scale=1.0 / alpha)
        cuts = [0.0, *dist.ppf(np.arange(1, k) / k), np.inf]
        for i in range(k):
            val, _ = integrate.quad(
                lambda x: x * dist.pdf(x), cuts[i], min(cuts[i + 1], 200.0)
            )
            expected = val * k  # conditional mean: divide by prob 1/k
            assert rates[i] == pytest.approx(expected, rel=1e-4)


class TestProperties:
    @given(st.floats(0.05, 100.0), st.integers(2, 12))
    @settings(max_examples=60, deadline=None)
    def test_mean_one_everywhere(self, alpha, k):
        rates = discrete_gamma_rates(alpha, k)
        assert rates.mean() == pytest.approx(1.0)
        assert (rates > 0).all()

    @given(st.floats(0.05, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_variance_decreases_with_alpha(self, alpha):
        """More categories spread monotonically with heterogeneity: the
        discrete variance is bounded by the true Gamma variance 1/alpha."""
        rates = discrete_gamma_rates(alpha, 4)
        assert rates.var() <= 1.0 / alpha + 1e-9
