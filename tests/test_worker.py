"""WorkerState command-protocol tests (the unit under both real
backends)."""
import numpy as np
import pytest

from repro.parallel import WorkerState, slice_partition_data
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment


@pytest.fixture(scope="module")
def worker_setup():
    rng = np.random.default_rng(41)
    tree, lengths = random_topology_with_lengths(6, rng)
    model = SubstitutionModel.random_gtr(0)
    aln = simulate_alignment(tree, lengths, model, 1.0, 300, rng)
    data = PartitionedAlignment(aln, uniform_scheme(300, 100))
    models = [SubstitutionModel.random_gtr(p) for p in range(3)]
    alphas = [1.0, 0.6, 2.0]
    return data, tree, lengths, models, alphas


def make_worker(setup, n_workers=1, rank=0):
    data, tree, lengths, models, alphas = setup
    slices = slice_partition_data(data, n_workers, rank, "cyclic")
    return WorkerState(slices, tree.copy(), models, alphas, lengths)


class TestCommands:
    def test_lnl_single_worker_is_total(self, worker_setup):
        data, tree, lengths, models, alphas = worker_setup
        worker = make_worker(worker_setup)
        from repro.core import PartitionedEngine

        ref = PartitionedEngine(
            data, tree.copy(), models=models, alphas=alphas,
            initial_lengths=lengths,
        ).loglikelihood(0)
        assert worker.execute(("lnl", 0)) == pytest.approx(ref, abs=1e-9)

    def test_partial_sums_add_up(self, worker_setup):
        workers = [make_worker(worker_setup, 3, r) for r in range(3)]
        full = make_worker(worker_setup)
        total = sum(w.execute(("lnl", 0)) for w in workers)
        assert total == pytest.approx(full.execute(("lnl", 0)), abs=1e-8)

    def test_lnl_parts_respects_active_set(self, worker_setup):
        worker = make_worker(worker_setup)
        out = worker.execute(("lnl_parts", 0, [1]))
        assert out[0] == 0.0 and out[2] == 0.0
        assert out[1] < 0.0

    def test_prepare_deriv_release_cycle(self, worker_setup):
        worker = make_worker(worker_setup)
        worker.execute(("prepare", 2, 7, [0, 1, 2]))
        d1, d2 = worker.execute(("deriv", 7, np.full(3, 0.1), [0, 2]))
        assert d1[1] == 0.0  # inactive partition untouched
        assert np.isfinite(d1[[0, 2]]).all()
        worker.execute(("release", 7))
        with pytest.raises(KeyError):
            worker.execute(("deriv", 7, np.full(3, 0.1), [0]))

    def test_release_is_idempotent(self, worker_setup):
        worker = make_worker(worker_setup)
        worker.execute(("release", 123))  # never prepared: no error

    def test_branch_lnl_command(self, worker_setup):
        worker = make_worker(worker_setup)
        worker.execute(("prepare", 1, 9, [0]))
        base = worker.execute(("lnl_parts", 1, [0]))[0]
        via_table = worker.execute(
            ("branch_lnl", 9, np.full(3, worker.parts[0].branch_lengths[1]), [0])
        )[0]
        assert via_table == pytest.approx(base, abs=1e-8)

    def test_parameter_mutations(self, worker_setup):
        worker = make_worker(worker_setup)
        before = worker.execute(("lnl", 0))
        worker.execute(("set_alpha", 0, 5.0))
        after_alpha = worker.execute(("lnl", 0))
        assert after_alpha != pytest.approx(before)
        worker.execute(("set_bl", 3, 2.0, None))
        assert worker.execute(("lnl", 0)) != pytest.approx(after_alpha)
        worker.execute(("set_model", 2, SubstitutionModel.jc69()))
        assert np.isfinite(worker.execute(("lnl", 0)))

    def test_eval_alpha_fused_command(self, worker_setup):
        worker = make_worker(worker_setup)
        out = worker.execute(("eval_alpha", np.array([2.0, 1.0, 1.0]), [0], 0))
        assert out[0] > 0  # negative lnl
        assert worker.parts[0].alpha == 2.0

    def test_unknown_command_rejected(self, worker_setup):
        worker = make_worker(worker_setup)
        with pytest.raises(ValueError, match="unknown worker command"):
            worker.execute(("quicksort",))


class TestEmptySlices:
    def test_worker_with_no_patterns(self, worker_setup):
        """More workers than patterns in a partition: rank high enough to
        own nothing still executes every command."""
        data, tree, lengths, models, alphas = worker_setup
        # 100-pattern partitions over 64 workers: every worker owns 1-2
        tiny_rng = np.random.default_rng(0)
        t2, l2 = random_topology_with_lengths(6, tiny_rng)
        aln = simulate_alignment(t2, l2, models[0], 1.0, 6, tiny_rng)
        small = PartitionedAlignment(aln, uniform_scheme(6, 2))
        slices = slice_partition_data(small, 8, 7, "cyclic")
        worker = WorkerState(slices, t2.copy(), models, alphas, l2)
        assert any(sl.n_patterns == 0 for sl in slices)
        lnl = worker.execute(("lnl", 0))
        assert lnl == 0.0 or np.isfinite(lnl)
        worker.execute(("prepare", 0, 1, [0, 1, 2]))
        d1, d2 = worker.execute(("deriv", 1, np.full(3, 0.1), [0, 1, 2]))
        assert np.isfinite(d1).all()
