"""Shared fixtures: small deterministic datasets and trees."""
from __future__ import annotations

import numpy as np
import pytest

from repro.plk import (
    Alignment,
    PartitionedAlignment,
    SubstitutionModel,
    Tree,
    uniform_scheme,
)
from repro.seqgen import random_topology_with_lengths, simulate_alignment


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20090715)  # ICPP 2009


@pytest.fixture(scope="session")
def small_tree():
    """A fixed 6-taxon tree with branch lengths."""
    rng = np.random.default_rng(11)
    tree, lengths = random_topology_with_lengths(6, rng)
    return tree, lengths


@pytest.fixture(scope="session")
def small_alignment(small_tree):
    """600 columns simulated on the 6-taxon tree under GTR+Gamma."""
    tree, lengths = small_tree
    model = SubstitutionModel.random_gtr(3)
    return simulate_alignment(
        tree, lengths, model, alpha=0.8, n_sites=600, rng=np.random.default_rng(7)
    )


@pytest.fixture(scope="session")
def small_partitioned(small_alignment):
    """The 600 columns split into 3 partitions of 200."""
    return PartitionedAlignment(small_alignment, uniform_scheme(600, 200))


@pytest.fixture()
def tiny_alignment():
    """A hand-written 4-taxon alignment (8 columns, with ambiguity)."""
    return Alignment.from_sequences(
        {
            "a": "ACGTACGT",
            "b": "ACGTACGA",
            "c": "ACGTTCGA",
            "d": "ACG-TCGA",
        }
    )


@pytest.fixture()
def quartet_tree():
    """The 4-taxon tree ((a,b),(c,d)) with known structure."""
    tree = Tree(("a", "b", "c", "d"))
    # inner nodes 4 and 5
    tree._link(0, 4, 0)
    tree._link(1, 4, 1)
    tree._link(2, 5, 2)
    tree._link(3, 5, 3)
    tree._link(4, 5, 4)
    tree.validate()
    return tree
