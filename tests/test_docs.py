"""Documentation health: internal links resolve, doctests pass.

Two failure modes this guards against:

* a Markdown document linking to a file that was moved/renamed (the
  docs set cross-references README, DESIGN, EXPERIMENTS and docs/);
* the executable examples in the distribution/balance docstrings
  drifting from the code they document (they double as the worked
  examples referenced by docs/LOAD_BALANCE.md).
"""
import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: Every tracked Markdown document with intra-repo links worth checking.
DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/ARCHITECTURE.md",
    "docs/LOAD_BALANCE.md",
    "docs/OBSERVABILITY.md",
    "docs/SERVICE.md",
]

_LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")


def _internal_targets(markdown: str):
    """Link targets pointing inside the repo (skip web URLs/anchors)."""
    for target in _LINK.findall(markdown):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


@pytest.mark.parametrize("doc", DOCS)
def test_internal_links_resolve(doc):
    path = REPO / doc
    assert path.exists(), f"documentation file {doc} is missing"
    for target in _internal_targets(path.read_text()):
        resolved = (path.parent / target).resolve()
        assert resolved.exists(), f"{doc} links to missing {target!r}"


@pytest.mark.parametrize("doc", DOCS)
def test_referenced_repo_paths_exist(doc):
    """Paths like ``src/repro/parallel/balance.py`` quoted in the docs
    (the pointer tables) must exist — they are how readers navigate."""
    text = (REPO / doc).read_text()
    for quoted in re.findall(r"`((?:src|tests|benchmarks|docs|examples)/[\w./-]+)`", text):
        assert (REPO / quoted).exists(), f"{doc} references missing {quoted!r}"


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.parallel.distribution",
        "repro.parallel.balance",
        "repro.simmachine.costmodel",
        "repro.simmachine.machine",
        "repro.obs.prometheus",
        "repro.serve.pool",
    ],
)
def test_doctests(module_name):
    module = __import__(module_name, fromlist=["_"])
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module_name} lost its doctests"
    assert result.failed == 0


_FENCED_PYTHON = re.compile(r"```python\n(.*?)```", re.S)


@pytest.mark.timeout(300)
def test_service_handbook_examples_run():
    """Execute every ``>>>`` example in docs/SERVICE.md, in order, with
    shared globals: the first block builds the in-process service the
    later blocks drive, and the last block stops it.  This keeps the
    operator's handbook honest the same way module doctests keep the
    balance/distribution docstrings honest."""
    text = (REPO / "docs" / "SERVICE.md").read_text()
    blocks = [b for b in _FENCED_PYTHON.findall(text) if ">>>" in b]
    assert len(blocks) >= 3, "SERVICE.md lost its executable examples"

    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE
    )
    globs: dict = {}
    try:
        for i, block in enumerate(blocks):
            test = doctest.DocTest(
                parser.get_examples(block), globs,
                f"docs/SERVICE.md[{i}]", "docs/SERVICE.md", None, block,
            )
            runner.run(test, clear_globs=False)
            globs.update(test.globs)  # DocTest copies globs; carry state forward
    finally:
        service = globs.get("service")
        if service is not None:
            service.stop()
    assert runner.failures == 0, "docs/SERVICE.md examples drifted from the code"
    assert runner.tries > 0


def test_readme_indexes_every_docs_page():
    """The README docs index must link all four docs/ pages."""
    readme = (REPO / "README.md").read_text()
    for page in sorted(p.name for p in (REPO / "docs").glob("*.md")):
        assert f"docs/{page}" in readme, f"README does not link docs/{page}"
