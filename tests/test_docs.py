"""Documentation health: internal links resolve, doctests pass.

Two failure modes this guards against:

* a Markdown document linking to a file that was moved/renamed (the
  docs set cross-references README, DESIGN, EXPERIMENTS and docs/);
* the executable examples in the distribution/balance docstrings
  drifting from the code they document (they double as the worked
  examples referenced by docs/LOAD_BALANCE.md).
"""
import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

#: Every tracked Markdown document with intra-repo links worth checking.
DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/ARCHITECTURE.md",
    "docs/LOAD_BALANCE.md",
    "docs/OBSERVABILITY.md",
]

_LINK = re.compile(r"\[[^\]]*\]\(([^)]+)\)")


def _internal_targets(markdown: str):
    """Link targets pointing inside the repo (skip web URLs/anchors)."""
    for target in _LINK.findall(markdown):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


@pytest.mark.parametrize("doc", DOCS)
def test_internal_links_resolve(doc):
    path = REPO / doc
    assert path.exists(), f"documentation file {doc} is missing"
    for target in _internal_targets(path.read_text()):
        resolved = (path.parent / target).resolve()
        assert resolved.exists(), f"{doc} links to missing {target!r}"


@pytest.mark.parametrize("doc", DOCS)
def test_referenced_repo_paths_exist(doc):
    """Paths like ``src/repro/parallel/balance.py`` quoted in the docs
    (the pointer tables) must exist — they are how readers navigate."""
    text = (REPO / doc).read_text()
    for quoted in re.findall(r"`((?:src|tests|benchmarks|docs|examples)/[\w./-]+)`", text):
        assert (REPO / quoted).exists(), f"{doc} references missing {quoted!r}"


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.parallel.distribution",
        "repro.parallel.balance",
        "repro.simmachine.costmodel",
        "repro.simmachine.machine",
        "repro.obs.prometheus",
    ],
)
def test_doctests(module_name):
    module = __import__(module_name, fromlist=["_"])
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module_name} lost its doctests"
    assert result.failed == 0
