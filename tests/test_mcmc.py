"""Bayesian-layer tests: proposals, priors, chain semantics, and the
scheduling claim of paper Section IV."""
import numpy as np
import pytest
from scipy import stats

from repro.core import TraceRecorder
from repro.mcmc import (
    BayesianChain,
    MetropolisCoupledSampler,
    MultiplierProposal,
    PriorSet,
    log_exponential,
    log_lognormal,
    reflect,
)
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment


@pytest.fixture(scope="module")
def bayes_data():
    rng = np.random.default_rng(55)
    tree, lengths = random_topology_with_lengths(8, rng)
    blocks = []
    for seed, alpha in ((1, 0.4), (2, 1.6)):
        aln = simulate_alignment(
            tree, lengths, SubstitutionModel.random_gtr(seed), alpha, 800, rng
        )
        blocks.append(aln.matrix)
    from repro.plk import Alignment

    alignment = Alignment(tree.taxa, np.concatenate(blocks, axis=1))
    return PartitionedAlignment(alignment, uniform_scheme(1600, 800)), tree, lengths


class TestProposals:
    def test_multiplier_positive_and_bounded(self):
        prop = MultiplierProposal(tuning=1.0, lower=0.1, upper=10.0)
        rng = np.random.default_rng(0)
        x = np.full(1000, 1.0)
        y, h = prop.propose(x, rng)
        assert (y >= 0.1).all() and (y <= 10.0).all()
        np.testing.assert_allclose(h, np.log(y / x))

    def test_multiplier_is_symmetric_in_log_space(self):
        """E[log factor] == 0: the proposal does not drift."""
        prop = MultiplierProposal(tuning=1.0, lower=1e-9, upper=1e9)
        rng = np.random.default_rng(1)
        x = np.full(200_000, 1.0)
        y, _ = prop.propose(x, rng)
        assert abs(np.log(y).mean()) < 5e-3

    def test_reflect(self):
        out = reflect(np.array([0.05, 0.5, 20.0]), 0.1, 10.0)
        assert (out >= 0.1).all() and (out <= 10.0).all()
        assert out[1] == 0.5  # interior untouched


class TestPriors:
    def test_exponential_matches_scipy(self):
        x = np.array([0.01, 0.5, 2.0])
        ours = log_exponential(x, mean=0.25)
        ref = stats.expon(scale=0.25).logpdf(x)
        np.testing.assert_allclose(ours, ref)

    def test_lognormal_matches_scipy(self):
        x = np.array([0.1, 1.0, 5.0])
        ours = log_lognormal(x, 0.0, 1.0)
        ref = stats.lognorm(s=1.0).logpdf(x)
        np.testing.assert_allclose(ours, ref)

    def test_negative_support(self):
        assert log_exponential(np.array([-1.0]), 1.0)[0] == -np.inf
        assert log_lognormal(np.array([0.0]), 0.0, 1.0)[0] == -np.inf


class TestChain:
    def test_bad_scheduling(self, bayes_data):
        data, tree, lengths = bayes_data
        with pytest.raises(ValueError, match="scheduling"):
            BayesianChain(data, tree.copy(), scheduling="round_robin")

    def test_cached_lnl_stays_consistent(self, bayes_data):
        """After any number of generations the cached per-partition lnl
        must equal a fresh evaluation — accept/reject bookkeeping is
        exact."""
        data, tree, lengths = bayes_data
        chain = BayesianChain(
            data, tree.copy(), seed=3, initial_lengths=lengths
        )
        for _ in range(60):
            chain.step()
        fresh = chain.engine.partition_loglikelihoods()
        np.testing.assert_allclose(chain._lnl, fresh, atol=1e-8)

    def test_acceptance_rate_sane(self, bayes_data):
        data, tree, lengths = bayes_data
        chain = BayesianChain(data, tree.copy(), seed=4, initial_lengths=lengths)
        chain.run(150, sample_every=50)
        assert 0.05 < chain.acceptance_rate() < 0.95

    def test_scheduling_modes_same_region_work_different_counts(self, bayes_data):
        """The paper's point: same proposals-per-partition budget, but
        per-partition scheduling produces ~P times more regions."""
        data, tree, lengths = bayes_data
        traces = {}
        for mode in ("per_partition", "simultaneous"):
            rec = TraceRecorder()
            chain = BayesianChain(
                data, tree.copy(), seed=5, scheduling=mode,
                recorder=rec, initial_lengths=lengths,
            )
            chain.run(100, sample_every=100)
            traces[mode] = rec.finalize(
                chain.engine.pattern_counts(), chain.engine.states()
            )
        ratio = traces["per_partition"].n_regions / traces["simultaneous"].n_regions
        assert ratio > 1.5  # with P=2 partitions, ideally ~2

    def test_posterior_tracks_likelihood_signal(self, bayes_data):
        """With data simulated at alpha=(0.4, 1.6), the cold chain's alpha
        samples for partition 0 should sit below partition 1's."""
        data, tree, lengths = bayes_data
        chain = BayesianChain(data, tree.copy(), seed=6, initial_lengths=lengths)
        samples = chain.run(600, sample_every=10)
        alphas = samples.alpha_matrix()[20:]  # drop burn-in
        assert np.median(alphas[:, 0]) < np.median(alphas[:, 1])

    def test_heated_chain_accepts_more(self, bayes_data):
        data, tree, lengths = bayes_data
        cold = BayesianChain(
            data, tree.copy(), seed=7, temperature=1.0, initial_lengths=lengths
        )
        hot = BayesianChain(
            data, tree.copy(), seed=7, temperature=0.2, initial_lengths=lengths
        )
        cold.run(150, sample_every=150)
        hot.run(150, sample_every=150)
        assert hot.acceptance_rate() >= cold.acceptance_rate()

    def test_log_prior_finite(self, bayes_data):
        data, tree, lengths = bayes_data
        chain = BayesianChain(data, tree.copy(), seed=8, initial_lengths=lengths)
        assert np.isfinite(chain.log_prior())


class TestMC3:
    def test_swaps_happen(self, bayes_data):
        data, tree, lengths = bayes_data
        mc3 = MetropolisCoupledSampler(
            data, tree, n_chains=3, heat=0.3, seed=9, initial_lengths=lengths
        )
        samples = mc3.run(120, sample_every=40)
        assert mc3.swaps_proposed == 120
        assert mc3.swaps_accepted > 0
        assert len(samples.loglikelihood) == 3

    def test_single_chain_degenerates_to_plain_mcmc(self, bayes_data):
        data, tree, lengths = bayes_data
        mc3 = MetropolisCoupledSampler(
            data, tree, n_chains=1, seed=10, initial_lengths=lengths
        )
        mc3.run(30, sample_every=30)
        assert mc3.swaps_proposed == 0

    def test_temperatures_descend(self, bayes_data):
        data, tree, lengths = bayes_data
        mc3 = MetropolisCoupledSampler(
            data, tree, n_chains=4, heat=0.5, seed=11, initial_lengths=lengths
        )
        temps = sorted(c.temperature for c in mc3.chains)
        assert temps[-1] == 1.0
        assert len(set(temps)) == 4

    def test_chain_count_validated(self, bayes_data):
        data, tree, lengths = bayes_data
        with pytest.raises(ValueError):
            MetropolisCoupledSampler(data, tree, n_chains=0)
