"""Cross-backend equivalence: every kernel backend against the numpy
reference.

The seam contract (``repro.plk.kernels``): identical log-likelihoods to
within 1e-9 on every workload — scaling-heavy deep trees, +I mixtures,
zero-width worker slices, single-pattern partitions — because all
backends share the rescale/log-domain semantics and differ only in how
the pattern-axis arithmetic is executed.

The ``numba`` backend is exercised in whatever mode this interpreter
provides: JIT-compiled when numba is importable, numpy-fallback
otherwise (both must satisfy the same contract).
"""
import warnings

import numpy as np
import pytest

from repro.plk import (
    EigenSystem,
    PartitionLikelihood,
    PartitionedAlignment,
    SubstitutionModel,
    discrete_gamma_rates,
    get_kernel,
    kernel,
    uniform_scheme,
)
from repro.plk.kernels import (
    KERNELS,
    BlockedKernel,
    KernelBackend,
    NumbaKernel,
    PreparedP,
    numba_available,
    raw_p,
    transposed_p,
)
from repro.seqgen import random_topology_with_lengths, simulate_alignment

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False


def make_backend(name):
    with warnings.catch_warnings():
        # numba-absent fallback announces itself; that is fine here
        warnings.simplefilter("ignore", RuntimeWarning)
        return get_kernel(name)


@pytest.fixture(params=KERNELS)
def backend(request):
    return make_backend(request.param)


@pytest.fixture(scope="module")
def problem():
    model = SubstitutionModel.random_gtr(17)
    eig = EigenSystem.from_model(model)
    rates = discrete_gamma_rates(0.6, 4)
    return model, eig, rates


def random_clvs(m, states=4, categories=4, seed=3):
    rng = np.random.default_rng(seed)
    a = rng.random((categories, m, states)) + 0.01
    b = rng.random((categories, m, states)) + 0.01
    w = rng.integers(1, 6, size=m).astype(np.int64)
    return a, b, w


class TestSelection:
    def test_get_kernel_by_name(self):
        for name in KERNELS:
            b = make_backend(name)
            assert b.name == name
            assert isinstance(b, KernelBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("simd")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "blocked")
        assert get_kernel(None).name == "blocked"
        monkeypatch.delenv("REPRO_KERNEL")
        assert get_kernel(None).name == "numpy"

    def test_instance_passthrough(self):
        inst = BlockedKernel()
        assert get_kernel(inst) is inst

    def test_fresh_instance_per_call(self):
        assert make_backend("blocked") is not make_backend("blocked")

    def test_numba_mode_matches_availability(self):
        nb = make_backend("numba")
        assert isinstance(nb, NumbaKernel)
        assert nb.jitted == numba_available()

    def test_prepared_p_roundtrip(self, problem):
        _, eig, rates = problem
        p = eig.transition_matrices(0.2, rates)
        prep = PreparedP.from_matrices(p)
        assert raw_p(prep) is p
        np.testing.assert_array_equal(transposed_p(prep),
                                      p.transpose(0, 2, 1))
        assert transposed_p(prep).flags.c_contiguous


class TestPrimitiveEquivalence:
    # 9000 patterns exceeds the blocked backend's full-width threshold
    # (4 blocks of 2048 for DNA x 4 categories), so both its code paths
    # are exercised across the two sizes.
    @pytest.mark.parametrize("m", [37, 9000])
    def test_newview(self, backend, problem, m):
        _, eig, rates = problem
        clv_a, clv_b, _ = random_clvs(m)
        p1 = eig.transition_matrices(0.1, rates)
        p2 = eig.transition_matrices(0.3, rates)
        ref_out, ref_scale = kernel.newview(p1, clv_a, None, p2, clv_b, None)
        out, scale = backend.newview(
            backend.prepare_p(p1), clv_a, None,
            backend.prepare_p(p2), clv_b, None,
        )
        np.testing.assert_allclose(out, ref_out, rtol=1e-12, atol=1e-300)
        np.testing.assert_array_equal(scale, ref_scale)

    def test_newview_tip_children(self, backend, problem):
        _, eig, rates = problem
        m = 200
        rng = np.random.default_rng(9)
        tips = np.eye(4)[rng.integers(0, 4, m)]
        clv_b, _, _ = random_clvs(m, seed=10)
        p1 = eig.transition_matrices(0.05, rates)
        p2 = eig.transition_matrices(0.4, rates)
        ref_out, _ = kernel.newview(p1, tips, None, p2, clv_b, None)
        out, _ = backend.newview(
            backend.prepare_p(p1), tips, None,
            backend.prepare_p(p2), clv_b, None,
        )
        np.testing.assert_allclose(out, ref_out, rtol=1e-12)

    def test_newview_zero_width(self, backend, problem):
        """The idle-worker slice: zero patterns, no crash, no scale."""
        _, eig, rates = problem
        p = eig.transition_matrices(0.1, rates)
        empty = np.zeros((4, 0, 4))
        out, scale = backend.newview(
            backend.prepare_p(p), empty, None, backend.prepare_p(p), empty, None
        )
        assert out.shape == (4, 0, 4)
        assert scale.shape == (0,)

    def test_newview_propagates_scale_counters(self, backend, problem):
        _, eig, rates = problem
        clv_a, clv_b, _ = random_clvs(50)
        p = eig.transition_matrices(0.2, rates)
        s1 = np.full(50, 2, dtype=np.int32)
        s2 = np.full(50, 3, dtype=np.int32)
        _, scale = backend.newview(
            backend.prepare_p(p), clv_a, s1, backend.prepare_p(p), clv_b, s2
        )
        assert (scale >= 5).all()

    def test_dead_pattern_semantics_shared(self, backend, problem):
        model, eig, rates = problem
        clv_a, clv_b, weights = random_clvs(40)
        clv_a[:, 7, :] = 0.0
        p = eig.transition_matrices(0.1, rates)
        pp = backend.prepare_p(p)
        out, scale = backend.newview(pp, clv_a, None, pp, clv_b, None)
        dead = kernel.zero_pattern_mask(scale)
        assert dead is not None and dead[7]
        lnl = backend.evaluate(pp, out, scale, clv_b, None,
                               model.frequencies, weights)
        assert lnl == -np.inf

    def test_propagate(self, backend, problem):
        _, eig, rates = problem
        clv_a, _, _ = random_clvs(123)
        p = eig.transition_matrices(0.25, rates)
        ref = kernel.propagate(p, clv_a)
        np.testing.assert_allclose(
            backend.propagate(backend.prepare_p(p), clv_a), ref, rtol=1e-12
        )

    def test_evaluate(self, backend, problem):
        model, eig, rates = problem
        clv_a, clv_b, weights = random_clvs(321)
        p = eig.transition_matrices(0.15, rates)
        ref = kernel.evaluate(p, clv_a, None, clv_b, None,
                              model.frequencies, weights)
        got = backend.evaluate(backend.prepare_p(p), clv_a, None, clv_b,
                               None, model.frequencies, weights)
        assert got == pytest.approx(ref, abs=1e-9)

    def test_make_sumtable(self, backend, problem):
        model, eig, rates = problem
        clv_a, clv_b, _ = random_clvs(77)
        ref = kernel.make_sumtable(clv_a, clv_b, eig.u, eig.v,
                                   model.frequencies)
        got = backend.make_sumtable(clv_a, clv_b, eig.u, eig.v,
                                    model.frequencies)
        np.testing.assert_allclose(got, ref, rtol=1e-12)

    def test_blocked_eigen_cache_distinguishes_arrays(self, problem):
        """The sumtable eigen-product cache is identity-keyed WITH strong
        refs: distinct same-shaped arrays never alias each other."""
        model, eig, rates = problem
        b = BlockedKernel()
        clv_a, clv_b, _ = random_clvs(30)
        first = b.make_sumtable(clv_a, clv_b, eig.u, eig.v, model.frequencies)
        other = SubstitutionModel.random_gtr(55)
        eig2 = EigenSystem.from_model(other)
        second = b.make_sumtable(clv_a, clv_b, eig2.u, eig2.v,
                                 other.frequencies)
        np.testing.assert_allclose(
            second,
            kernel.make_sumtable(clv_a, clv_b, eig2.u, eig2.v,
                                 other.frequencies),
            rtol=1e-12,
        )
        # and the original is still served correctly after the miss
        np.testing.assert_allclose(
            b.make_sumtable(clv_a, clv_b, eig.u, eig.v, model.frequencies),
            first, rtol=1e-15,
        )


def tree_lnl(aln, tree, lengths, model, alpha, backend_name, pinv=0.0):
    data = PartitionedAlignment(aln, uniform_scheme(aln.n_sites, aln.n_sites))
    engine = PartitionLikelihood(
        data.data[0], tree, model, alpha=alpha,
        kernel_backend=make_backend(backend_name),
    )
    engine.set_branch_lengths(lengths)
    if pinv:
        engine.pinv = pinv
    return engine


class TestEngineEquivalence:
    """Full-path agreement through PartitionLikelihood(kernel_backend=)."""

    @pytest.fixture(scope="class")
    def deep_scaling_workload(self):
        # 48 taxa with short branches and strong rate heterogeneity:
        # plenty of patterns pick up nonzero scale counters.
        rng = np.random.default_rng(14)
        tree, lengths = random_topology_with_lengths(48, rng, mean_length=0.02)
        model = SubstitutionModel.random_gtr(6)
        aln = simulate_alignment(tree, lengths, model, 0.15, 300, rng)
        return aln, tree, lengths, model

    @pytest.mark.parametrize("name", [k for k in KERNELS if k != "numpy"])
    def test_scaling_heavy_deep_tree(self, deep_scaling_workload, name):
        aln, tree, lengths, model = deep_scaling_workload
        ref = tree_lnl(aln, tree, lengths, model, 0.15, "numpy")
        got = tree_lnl(aln, tree, lengths, model, 0.15, name)
        assert got.loglikelihood() == pytest.approx(
            ref.loglikelihood(), abs=1e-9
        )
        np.testing.assert_allclose(
            got.site_loglikelihoods(), ref.site_loglikelihoods(), atol=1e-9
        )

    @pytest.mark.parametrize("name", [k for k in KERNELS if k != "numpy"])
    def test_invariant_mixture(self, deep_scaling_workload, name):
        """+I (pinv mixture) routes through weighted_log_sum identically."""
        aln, tree, lengths, model = deep_scaling_workload
        ref = tree_lnl(aln, tree, lengths, model, 0.5, "numpy", pinv=0.25)
        got = tree_lnl(aln, tree, lengths, model, 0.5, name, pinv=0.25)
        assert got.loglikelihood() == pytest.approx(
            ref.loglikelihood(), abs=1e-9
        )

    @pytest.mark.parametrize("name", [k for k in KERNELS if k != "numpy"])
    def test_single_pattern_partition(self, small_tree, name):
        tree, lengths = small_tree
        model = SubstitutionModel.random_gtr(2)
        aln = simulate_alignment(tree, lengths, model, 1.0, 1,
                                 np.random.default_rng(1))
        ref = tree_lnl(aln, tree, lengths, model, 1.0, "numpy")
        got = tree_lnl(aln, tree, lengths, model, 1.0, name)
        assert got.loglikelihood() == pytest.approx(
            ref.loglikelihood(), abs=1e-9
        )

    @pytest.mark.parametrize("name", [k for k in KERNELS if k != "numpy"])
    def test_branch_machinery(self, deep_scaling_workload, name):
        """prepare_branch/branch_loglikelihood/derivatives through the
        backend's sumtable match the reference to 1e-9."""
        aln, tree, lengths, model = deep_scaling_workload
        ref = tree_lnl(aln, tree, lengths, model, 0.15, "numpy")
        got = tree_lnl(aln, tree, lengths, model, 0.15, name)
        for edge in (0, 5, tree.n_edges - 1):
            ws_r = ref.prepare_branch(edge)
            ws_g = got.prepare_branch(edge)
            for z in (0.02, 0.3):
                assert got.branch_loglikelihood(ws_g, z) == pytest.approx(
                    ref.branch_loglikelihood(ws_r, z), abs=1e-9
                )
                d_ref = ref.branch_derivatives(ws_r, z)
                d_got = got.branch_derivatives(ws_g, z)
                np.testing.assert_allclose(d_got, d_ref, rtol=1e-7)


class TestParallelKernelSelection:
    """kernel= threads end to end through teams, including zero-width
    worker slices (more workers than patterns in a partition)."""

    @pytest.mark.parametrize(
        "name", ["numpy", "blocked", "repeats", "repeats+blocked"]
    )
    def test_threads_team_matches_sequential(self, small_tree, name):
        from repro.core import PartitionedEngine
        from repro.parallel import ParallelPLK

        tree, lengths = small_tree
        model = SubstitutionModel.random_gtr(4)
        aln = simulate_alignment(tree, lengths, model, 1.0, 9,
                                 np.random.default_rng(6))
        tiny = PartitionedAlignment(aln, uniform_scheme(9, 3))
        models = [model] * tiny.n_partitions
        alphas = [1.0] * tiny.n_partitions
        ref = PartitionedEngine(
            tiny, tree.copy(), models=models, alphas=alphas,
            initial_lengths=lengths,
        ).loglikelihood(0)
        with ParallelPLK(
            tiny, tree, models, alphas, 6, backend="threads",
            kernel=name, initial_lengths=lengths,
        ) as team:
            assert team.kernel == name
            assert team.loglikelihood(0) == pytest.approx(ref, abs=1e-9)

    def test_invalid_kernel_rejected(self, small_tree):
        from repro.parallel import ParallelPLK

        tree, lengths = small_tree
        model = SubstitutionModel.random_gtr(4)
        aln = simulate_alignment(tree, lengths, model, 1.0, 12,
                                 np.random.default_rng(6))
        data = PartitionedAlignment(aln, uniform_scheme(12, 6))
        with pytest.raises(ValueError, match="kernel"):
            ParallelPLK(data, tree, [model] * 2, [1.0] * 2, 2,
                        backend="threads", kernel="simd")


if HAVE_HYPOTHESIS:

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=300),
        t1=st.floats(min_value=1e-6, max_value=5.0),
        t2=st.floats(min_value=1e-6, max_value=5.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        scale_shift=st.integers(min_value=0, max_value=300),
        kill=st.booleans(),
    )
    def test_newview_property_equivalence(m, t1, t2, seed, scale_shift, kill):
        """Property: for arbitrary pattern counts, branch lengths, CLV
        magnitudes (down to guaranteed-underflow) and dead patterns, every
        backend reproduces the reference newview bit-for-bit in the scale
        counters and to 1e-12 relative in the CLV."""
        model = SubstitutionModel.random_gtr(17)
        eig = EigenSystem.from_model(model)
        rates = discrete_gamma_rates(0.6, 4)
        rng = np.random.default_rng(seed)
        clv_a = (rng.random((4, m, 4)) + 0.01) * 2.0 ** (
            -rng.integers(0, 2 * scale_shift + 1, size=(1, m, 1))
        )
        clv_b = rng.random((4, m, 4)) + 0.01
        if kill:
            clv_a[:, rng.integers(0, m), :] = 0.0
        p1 = eig.transition_matrices(t1, rates)
        p2 = eig.transition_matrices(t2, rates)
        ref_out, ref_scale = kernel.newview(
            p1, clv_a.copy(), None, p2, clv_b, None
        )
        for name in KERNELS:
            backend = make_backend(name)
            out, scale = backend.newview(
                backend.prepare_p(p1), clv_a.copy(), None,
                backend.prepare_p(p2), clv_b, None,
            )
            np.testing.assert_array_equal(scale, ref_scale, err_msg=name)
            np.testing.assert_allclose(
                out, ref_out, rtol=1e-12, atol=1e-300, err_msg=name
            )
