"""Partition-scheme tests, including RAxML partition-file parsing."""
import numpy as np
import pytest

from repro.plk import (
    AA,
    DNA,
    Alignment,
    Partition,
    PartitionedAlignment,
    PartitionScheme,
    parse_partition_file,
    uniform_scheme,
)


class TestPartition:
    def test_basic(self):
        p = Partition("gene1", DNA, ((0, 100),))
        assert p.n_sites == 100
        assert p.column_indices()[0] == 0
        assert p.column_indices()[-1] == 99

    def test_multi_range(self):
        p = Partition("g", DNA, ((0, 10), (20, 25)))
        assert p.n_sites == 15
        idx = p.column_indices()
        assert 15 == len(idx)
        assert 12 not in idx

    def test_empty_ranges_rejected(self):
        with pytest.raises(ValueError):
            Partition("g", DNA, ())

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            Partition("g", DNA, ((5, 5),))


class TestScheme:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="more than one"):
            PartitionScheme(
                (
                    Partition("a", DNA, ((0, 10),)),
                    Partition("b", DNA, ((5, 15),)),
                )
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            PartitionScheme(
                (
                    Partition("a", DNA, ((0, 10),)),
                    Partition("a", DNA, ((10, 20),)),
                )
            )

    def test_uniform_scheme(self):
        s = uniform_scheme(2500, 1000)
        assert len(s) == 3
        assert [p.n_sites for p in s] == [1000, 1000, 500]

    def test_coverage_validation(self):
        aln = Alignment.from_sequences({"x": "ACGTACGT", "y": "ACGTACGT"})
        good = uniform_scheme(8, 4)
        good.validate_against(aln)
        with pytest.raises(ValueError, match="covers"):
            uniform_scheme(6, 3).validate_against(aln)
        with pytest.raises(ValueError, match="alignment has"):
            uniform_scheme(12, 4).validate_against(aln)


class TestPartitionFile:
    def test_raxml_format(self):
        scheme = parse_partition_file(
            """
            DNA, gene0 = 1-1000
            DNA, gene1 = 1001-2000
            AA, cytb = 2001-2500, 3001-3100
            """
        )
        assert len(scheme) == 3
        assert scheme[0].name == "gene0"
        assert scheme[0].ranges == ((0, 1000),)
        assert scheme[2].datatype is AA
        assert scheme[2].ranges == ((2000, 2500), (3000, 3100))

    def test_comments_and_blanks_skipped(self):
        scheme = parse_partition_file("# comment\n\nDNA, g = 1-10\n")
        assert len(scheme) == 1

    def test_single_column_range(self):
        scheme = parse_partition_file("DNA, g = 1-5\nDNA, h = 6\n")
        assert scheme[1].ranges == ((5, 6),)

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_partition_file("DNA gene = 1-10")

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError, match="bad range"):
            parse_partition_file("DNA, g = 10-5")

    def test_unknown_datatype_rejected(self):
        with pytest.raises(KeyError):
            parse_partition_file("CODON, g = 1-10")


class TestPartitionedAlignment:
    def test_per_partition_compression(self):
        # identical columns in DIFFERENT partitions stay distinct patterns
        aln = Alignment.from_sequences({"x": "AAAA", "y": "CCCC"})
        pa = PartitionedAlignment(aln, uniform_scheme(4, 2))
        assert pa.n_partitions == 2
        np.testing.assert_array_equal(pa.pattern_counts(), [1, 1])
        assert pa.n_patterns == 2
        np.testing.assert_array_equal(pa.data[0].weights, [2])

    def test_tip_states_shape(self, small_partitioned):
        for block in small_partitioned.data:
            n_taxa, m, s = block.tip_states.shape
            assert n_taxa == small_partitioned.n_taxa
            assert m == block.n_patterns
            assert s == 4

    def test_weights_sum_to_partition_sites(self, small_partitioned):
        for block in small_partitioned.data:
            assert block.weights.sum() == block.partition.n_sites

    def test_mixed_datatypes(self):
        aln = Alignment.from_sequences({"x": "ACGTARND", "y": "ACGAARNE"})
        scheme = parse_partition_file("DNA, d = 1-4\nAA, p = 5-8")
        pa = PartitionedAlignment(aln, scheme)
        assert pa.data[0].states == 4
        assert pa.data[1].states == 20
