"""Fitch parsimony tests."""
import numpy as np
import pytest

from repro.plk import Alignment, Tree
from repro.search import (
    directional_masks,
    encode_bitmasks,
    fitch_score,
    stepwise_addition_tree,
)
from repro.seqgen import random_topology_with_lengths, simulate_alignment
from repro.plk import SubstitutionModel


class TestEncoding:
    def test_bitmasks(self):
        aln = Alignment.from_sequences({"x": "ACGTN", "y": "ACGTN", "z": "AAAAA"})
        masks, weights = encode_bitmasks(aln)
        assert masks[0, 0] == 0b0001  # A
        assert masks[0, 1] == 0b0010  # C
        assert masks[0, 2] == 0b0100  # G
        assert masks[0, 3] == 0b1000  # T
        assert masks[0, 4] == 0b1111  # N

    def test_weights_from_compression(self):
        aln = Alignment.from_sequences({"x": "AAC", "y": "GGT"})
        _, weights = encode_bitmasks(aln)
        assert sorted(weights.tolist()) == [1, 2]


class TestFitchScore:
    def test_identical_sequences_zero(self, quartet_tree):
        aln = Alignment.from_sequences({t: "ACGT" for t in "abcd"})
        masks, weights = encode_bitmasks(aln)
        assert fitch_score(quartet_tree, masks, weights) == 0

    def test_known_quartet_score(self, quartet_tree):
        # one column: a=A b=A c=C d=C -> 1 mutation on the central edge
        aln = Alignment.from_sequences({"a": "A", "b": "A", "c": "C", "d": "C"})
        masks, weights = encode_bitmasks(aln)
        assert fitch_score(quartet_tree, masks, weights) == 1

    def test_incongruent_column_costs_two(self, quartet_tree):
        # a=A c=A | b=C d=C on ((a,b),(c,d)): needs 2 mutations
        aln = Alignment.from_sequences({"a": "A", "b": "C", "c": "A", "d": "C"})
        masks, weights = encode_bitmasks(aln)
        assert fitch_score(quartet_tree, masks, weights) == 2

    def test_root_invariance(self):
        rng = np.random.default_rng(3)
        tree, lengths = random_topology_with_lengths(10, rng)
        aln = simulate_alignment(tree, lengths, SubstitutionModel.jc69(), 1.0, 200, rng)
        masks, weights = encode_bitmasks(aln)
        scores = {fitch_score(tree, masks, weights, e) for e in range(tree.n_edges)}
        assert len(scores) == 1

    def test_gaps_never_cost(self, quartet_tree):
        aln = Alignment.from_sequences({"a": "A", "b": "-", "c": "-", "d": "A"})
        masks, weights = encode_bitmasks(aln)
        assert fitch_score(quartet_tree, masks, weights) == 0

    def test_weights_multiply(self, quartet_tree):
        aln = Alignment.from_sequences(
            {"a": "AAA", "b": "AAA", "c": "CCC", "d": "CCC"}
        )
        masks, weights = encode_bitmasks(aln)
        assert fitch_score(quartet_tree, masks, weights) == 3  # weight 3 x 1


class TestDirectionalMasks:
    def test_consistent_with_fitch(self, quartet_tree):
        aln = Alignment.from_sequences({"a": "AC", "b": "AG", "c": "CT", "d": "CT"})
        masks, weights = encode_bitmasks(aln)
        direction = directional_masks(quartet_tree, masks)
        # every directed edge present, both ways
        for eid, u, v in quartet_tree.edges():
            assert (u, v) in direction
            assert (v, u) in direction
        # leaf -> parent mask is the leaf's own mask
        parent = quartet_tree.neighbors(0)[0]
        np.testing.assert_array_equal(direction[(0, parent)], masks[0])


class TestStepwiseAddition:
    def test_recovers_clean_topology(self):
        """Short branches (little homoplasy): stepwise addition recovers
        the generating tree and never scores worse than it."""
        rng = np.random.default_rng(9)
        tree, lengths = random_topology_with_lengths(8, rng, mean_length=0.04)
        aln = simulate_alignment(
            tree, lengths, SubstitutionModel.jc69(), 2.0, 2000, rng
        )
        built = stepwise_addition_tree(aln, np.random.default_rng(1))
        built.validate()
        masks, weights = encode_bitmasks(aln)
        # Stepwise addition is greedy (RAxML refines it with SPR after);
        # it must land within 2% of the generating tree's score and very
        # close in topology.
        assert fitch_score(built, masks, weights) <= 1.02 * fitch_score(
            tree, masks, weights
        )
        assert built.robinson_foulds(tree) <= 4

    def test_score_no_worse_than_random(self):
        rng = np.random.default_rng(10)
        tree, lengths = random_topology_with_lengths(12, rng)
        aln = simulate_alignment(tree, lengths, SubstitutionModel.jc69(), 1.0, 500, rng)
        masks, weights = encode_bitmasks(aln)
        built = stepwise_addition_tree(aln, np.random.default_rng(2))
        random_tree = Tree.random(aln.taxa, np.random.default_rng(3))
        assert fitch_score(built, masks, weights) <= fitch_score(
            random_tree, masks, weights
        )

    def test_requires_three_taxa(self):
        aln = Alignment.from_sequences({"a": "ACGT", "b": "ACGT"})
        with pytest.raises(ValueError):
            stepwise_addition_tree(aln, np.random.default_rng(0))

    def test_deterministic_given_rng(self):
        rng = np.random.default_rng(11)
        tree, lengths = random_topology_with_lengths(9, rng)
        aln = simulate_alignment(tree, lengths, SubstitutionModel.jc69(), 1.0, 300, rng)
        a = stepwise_addition_tree(aln, np.random.default_rng(5))
        b = stepwise_addition_tree(aln, np.random.default_rng(5))
        assert a.robinson_foulds(b) == 0
