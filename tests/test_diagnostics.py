"""Schedule-diagnostics tests."""
import numpy as np
import pytest

from repro.bench import diagnose_trace
from repro.core import Region, Trace, WorkItem


def trace_of(regions, counts):
    return Trace(
        regions=regions,
        pattern_counts=np.asarray(counts, dtype=np.int64),
        states=np.full(len(counts), 4, dtype=np.int64),
    )


class TestDiagnostics:
    def test_single_partition_fraction(self):
        regions = [
            Region(items=[WorkItem(0, "derivative", 100, 1)]),
            Region(items=[WorkItem(0, "derivative", 100, 1), WorkItem(1, "derivative", 50, 1)]),
        ]
        d = diagnose_trace(trace_of(regions, [100, 50]), 4)
        assert d.single_partition_fraction == 0.5
        assert d.n_regions == 2

    def test_ops_quantiles(self):
        regions = [
            Region(items=[WorkItem(0, "newview", 100, 2)]),   # 200 ops
            Region(items=[WorkItem(0, "newview", 100, 10)]),  # 1000 ops
        ]
        d = diagnose_trace(trace_of(regions, [100]), 2)
        lo, med, mean, hi = d.region_ops_quantiles
        assert (lo, hi) == (200, 1000)
        assert mean == 600
        assert d.total_ops == 1200

    def test_balanced_schedule_efficiency(self):
        """A full-width region over T threads: busiest share ~ 1/T."""
        regions = [Region(items=[WorkItem(0, "newview", 1600, 1)])]
        d = diagnose_trace(trace_of(regions, [1600]), 8)
        assert d.mean_busiest_share == pytest.approx(1 / 8, rel=1e-6)
        assert d.balance_efficiency() == pytest.approx(1.0, rel=1e-6)

    def test_tiny_partition_imbalance(self):
        """3 patterns over 16 threads: the busiest thread holds 1/3 of the
        work -> balance efficiency collapses."""
        regions = [Region(items=[WorkItem(0, "derivative", 3, 1)])]
        d = diagnose_trace(trace_of(regions, [3]), 16)
        assert d.mean_busiest_share == pytest.approx(1 / 3)
        assert d.balance_efficiency() < 0.2

    def test_block_distribution_worse(self):
        """A short partition inside a long alignment: block concentrates."""
        regions = [Region(items=[WorkItem(1, "derivative", 100, 1)])]
        trace = trace_of(regions, [2000, 100, 2000])
        cyc = diagnose_trace(trace, 8, "cyclic")
        blk = diagnose_trace(trace, 8, "block")
        assert blk.mean_busiest_share > cyc.mean_busiest_share

    def test_unfinalized_rejected(self):
        with pytest.raises(ValueError):
            diagnose_trace(Trace(), 4)

    def test_summary_renders(self):
        regions = [Region(items=[WorkItem(0, "newview", 10, 1)])]
        text = diagnose_trace(trace_of(regions, [10]), 4).summary()
        assert "regions=1" in text
