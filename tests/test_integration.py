"""End-to-end integration tests spanning the whole stack."""
import numpy as np
import pytest

from repro.core import PartitionedEngine, TraceRecorder
from repro.core.analysis import run_tree_search
from repro.plk import (
    Alignment,
    PartitionedAlignment,
    SubstitutionModel,
    parse_newick,
    parse_partition_file,
    write_newick,
)
from repro.search import stepwise_addition_tree, tree_search
from repro.seqgen import (
    bootstrap_replicate,
    random_topology_with_lengths,
    simulate_alignment,
    split_support,
)
from repro.simmachine import NEHALEM, X4600, simulate_trace


@pytest.fixture(scope="module")
def pipeline_data():
    """A mixed DNA+AA 2-gene dataset with known topology."""
    rng = np.random.default_rng(77)
    tree, lengths = random_topology_with_lengths(9, rng, mean_length=0.08)
    dna = simulate_alignment(
        tree, lengths, SubstitutionModel.random_gtr(1), 0.7, 700, rng
    )
    aa = simulate_alignment(
        tree, lengths, SubstitutionModel.synthetic_aa(2), 1.2, 250, rng
    )
    matrix = np.concatenate([dna.matrix, aa.matrix], axis=1)
    alignment = Alignment(tree.taxa, matrix)
    scheme = parse_partition_file("DNA, nuc = 1-700\nAA, prot = 701-950")
    return tree, lengths, PartitionedAlignment(alignment, scheme)


class TestFullPipeline:
    def test_inference_recovers_topology(self, pipeline_data):
        """sequence data -> parsimony start -> ML search -> true topology."""
        tree, lengths, data = pipeline_data
        start = stepwise_addition_tree(data.alignment, np.random.default_rng(1))
        engine = PartitionedEngine(data, start, branch_mode="per_partition")
        result = tree_search(engine, "new", radius=3, max_rounds=3)
        assert start.robinson_foulds(tree) == 0
        assert np.isfinite(result.loglikelihood)

    def test_mixed_datatype_engine(self, pipeline_data):
        tree, lengths, data = pipeline_data
        engine = PartitionedEngine(data, tree.copy(), initial_lengths=lengths)
        lnl = engine.loglikelihood()
        assert np.isfinite(lnl)
        assert engine.parts[0].data.states == 4
        assert engine.parts[1].data.states == 20

    def test_newick_roundtrip_preserves_likelihood(self, pipeline_data):
        tree, lengths, data = pipeline_data
        engine = PartitionedEngine(data, tree.copy(), initial_lengths=lengths)
        ref = engine.loglikelihood()
        text = write_newick(tree, lengths, precision=12)
        tree2, lengths2 = parse_newick(text)
        engine2 = PartitionedEngine(data2_reorder(data, tree2), tree2, initial_lengths=lengths2)
        assert engine2.loglikelihood() == pytest.approx(ref, abs=1e-6)


def data2_reorder(data, tree2):
    """Rebuild the partitioned alignment with rows matching tree2's taxon
    order (Newick round-trips can permute leaf numbering)."""
    aln = data.alignment
    order = [aln.taxa.index(name) for name in tree2.taxa]
    reordered = Alignment(
        tuple(tree2.taxa), aln.matrix[order], aln.datatype
    )
    return PartitionedAlignment(reordered, data.scheme)


class TestCaptureReplayLoop:
    def test_search_capture_and_replay(self, pipeline_data):
        """The benchmark loop in miniature: capture old/new, replay, and
        verify the improvement direction on a 16-core platform."""
        tree, lengths, data = pipeline_data
        traces = {}
        for strategy in ("old", "new"):
            run = run_tree_search(
                data, tree, strategy=strategy, initial_lengths=lengths,
                radius=1, max_candidates=8,
            )
            traces[strategy] = run.trace
        old16 = simulate_trace(traces["old"], X4600, 16).total_seconds
        new16 = simulate_trace(traces["new"], X4600, 16).total_seconds
        assert new16 < old16
        seq = simulate_trace(traces["new"], NEHALEM, 1).total_seconds
        assert seq > simulate_trace(traces["new"], NEHALEM, 8).total_seconds

    def test_trace_pickles(self, pipeline_data, tmp_path):
        import pickle

        tree, lengths, data = pipeline_data
        run = run_tree_search(
            data, tree, strategy="new", initial_lengths=lengths,
            radius=1, max_candidates=4,
        )
        path = tmp_path / "trace.pkl"
        with path.open("wb") as fh:
            pickle.dump(run.trace, fh)
        with path.open("rb") as fh:
            back = pickle.load(fh)
        assert back.op_totals() == run.trace.op_totals()
        r1 = simulate_trace(run.trace, NEHALEM, 4).total_seconds
        r2 = simulate_trace(back, NEHALEM, 4).total_seconds
        assert r1 == pytest.approx(r2)


class TestBootstrapPipeline:
    def test_support_values_on_clean_data(self, pipeline_data):
        """Strong-signal data: bootstrap supports are high for true
        splits."""
        tree, lengths, data = pipeline_data
        rng = np.random.default_rng(3)
        replicate_trees = []
        for _ in range(4):
            rep = bootstrap_replicate(data, rng)
            start = tree.copy()  # search from the truth; cheap refinement
            engine = PartitionedEngine(rep, start, initial_lengths=lengths)
            tree_search(engine, "new", radius=1, max_rounds=1, max_candidates=6)
            replicate_trees.append(start)
        support = split_support(tree, replicate_trees)
        assert len(support) == tree.n_taxa - 3
        assert np.mean(list(support.values())) > 0.7
