"""Live telemetry plane: worker-stats rows, heartbeats, flight recorder,
stall detection, streaming exporters and the ``repro top`` dashboard.

The lock-free read protocol is tested the only honest way — by racing a
writer thread against a reader and asserting the documented tolerance:
consistent snapshots dominate, and the monotonic counters never travel
backwards or overshoot what was actually written (a torn read may only
UNDER-report).
"""
import json
import threading
import time

import numpy as np
import pytest

from repro.obs.live import (
    FlightRecorder,
    HealthMonitor,
    LiveTelemetry,
    NullFlightRecorder,
    NullHealthMonitor,
    NullLiveTelemetry,
    WorkerSample,
    render_dashboard,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import (
    escape_label_value,
    prometheus_text,
    sanitize_metric_name,
)
from repro.parallel import ParallelPLK, live_segments
from repro.parallel.shm import (
    STAT_BUSY,
    STAT_COMMANDS,
    STAT_HEARTBEAT,
    STAT_PHASE,
    WorkerStatsPlane,
    WorkerStatsWriter,
    op_code,
    op_name,
)
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment

BACKENDS = ["threads", "processes"]


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(45)
    tree, lengths = random_topology_with_lengths(6, rng)
    aln = simulate_alignment(
        tree, lengths, SubstitutionModel.random_gtr(2), 1.0, 300, rng
    )
    data = PartitionedAlignment(aln, uniform_scheme(300, 150))
    models = [SubstitutionModel.random_gtr(p) for p in range(2)]
    alphas = [0.9, 1.2]
    return data, tree, lengths, models, alphas


def make_team(setup, backend, workers=2, **kw):
    data, tree, lengths, models, alphas = setup
    return ParallelPLK(
        data, tree, models, alphas, workers, backend=backend,
        initial_lengths=lengths, **kw,
    )


# -- the shared-memory stats plane ---------------------------------------


class TestWorkerStatsPlane:
    def test_create_and_close_unlinks(self):
        before = live_segments()
        plane = WorkerStatsPlane(3, kernel="numpy")
        assert len(live_segments()) == len(before) + 1
        assert plane.n_workers == 3
        plane.close()
        assert live_segments() == before

    def test_rejects_empty_team(self):
        with pytest.raises(ValueError):
            WorkerStatsPlane(0)

    def test_attach_round_trip(self):
        owner = WorkerStatsPlane(2)
        writer = WorkerStatsWriter(owner.row(1), 1)
        writer.begin("lnl")
        writer.done(0.25, 40)
        try:
            reader = WorkerStatsPlane.attach(owner.name)
            try:
                assert reader.n_workers == 2
                row, consistent = reader.read_row(1)
                assert consistent
                assert row[STAT_COMMANDS] == 1.0
                assert row[STAT_BUSY] == pytest.approx(0.25)
            finally:
                reader.close()
            # the attached close() must NOT have unlinked the segment
            assert owner.name in live_segments()
        finally:
            owner.close()

    def test_attach_missing_segment(self):
        with pytest.raises(FileNotFoundError):
            WorkerStatsPlane.attach("repro_shm_no_such_plane")

    def test_attach_rejects_foreign_segment(self):
        """A segment without the magic header is refused, not misread."""
        owner = WorkerStatsPlane(2)
        try:
            owner.slots[0, 0] = 0.0  # corrupt the magic
            with pytest.raises(ValueError, match="worker-stats plane"):
                WorkerStatsPlane.attach(owner.name)
        finally:
            owner.close()

    def test_op_codes_round_trip(self):
        for op in ("lnl", "prog", "deriv", "stall"):
            assert op_name(op_code(op)) == op
        assert op_code("no_such_op") == 0
        assert op_name(999.0) == "?"


class TestSeqlockTornReads:
    """The documented torn-read tolerance, exercised by an actual race."""

    @pytest.mark.timeout(60)
    def test_reader_races_writer(self):
        plane = WorkerStatsPlane(1)
        writer = WorkerStatsWriter(plane.row(0), 0)
        # the memoryview writer runs ~1µs per cycle: enough writes that
        # the reader thread is guaranteed several GIL quanta of overlap
        n_writes = 300_000
        stop = threading.Event()

        def hammer():
            for _ in range(n_writes):
                writer.begin("lnl")
                writer.done(0.001, 10)
            stop.set()

        thread = threading.Thread(target=hammer)
        reads, consistent_reads = 0, 0
        last_commands = 0.0
        thread.start()
        try:
            while not stop.is_set():
                row, consistent = plane.read_row(0)
                reads += 1
                if consistent:
                    consistent_reads += 1
                    # monotonic counters never travel backwards and
                    # never overshoot the writer's total
                    assert row[STAT_COMMANDS] >= last_commands
                    assert row[STAT_COMMANDS] <= n_writes
                    last_commands = row[STAT_COMMANDS]
        finally:
            thread.join()
            plane_final = plane.read_row(0)[0]
            plane.close()
        assert reads > 0
        # retries make torn results rare even under a hammering writer
        assert consistent_reads / reads > 0.5
        assert plane_final[STAT_COMMANDS] == n_writes

    def test_torn_read_flagged_not_raised(self):
        """A row left mid-write (odd seqlock) yields consistent=False."""
        plane = WorkerStatsPlane(1)
        try:
            plane.row(0)[0] = 1.0  # STAT_SEQ odd: write "in progress"
            row, consistent = plane.read_row(0, retries=2)
            assert not consistent
            assert row is not None  # still a usable field-atomic snapshot
        finally:
            plane.close()


# -- flight recorder ------------------------------------------------------


class TestFlightRecorder:
    def test_ring_keeps_last_capacity_events(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("tick", i=i)
        events = rec.events()
        assert len(rec) == 4
        assert [e["i"] for e in events] == [6, 7, 8, 9]
        assert [e["seq"] for e in events] == [7, 8, 9, 10]

    def test_dump_is_valid_jsonl(self, tmp_path):
        rec = FlightRecorder()
        rec.record("dispatch", op="lnl", n_commands=1)
        rec.record("barrier_exit", op="lnl", wall=0.01)
        path = rec.dump(str(tmp_path / "flight.jsonl"))
        lines = [json.loads(line) for line in open(path)]
        assert [e["event"] for e in lines] == ["dispatch", "barrier_exit"]
        assert all("t" in e and "seq" in e for e in lines)

    def test_clear(self):
        rec = FlightRecorder()
        rec.record("tick")
        rec.clear()
        assert len(rec) == 0 and rec.events() == []

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


# -- health monitoring ----------------------------------------------------


def _make_busy(plane, rank, age):
    """Force a row to look busy with a heartbeat ``age`` seconds old."""
    row = plane.row(rank)
    row[STAT_PHASE] = 1.0
    row[STAT_HEARTBEAT] = time.monotonic() - age


class TestHealthMonitor:
    def test_idle_team_is_healthy_whatever_the_age(self):
        plane = WorkerStatsPlane(2)
        try:
            plane.row(0)[STAT_HEARTBEAT] = time.monotonic() - 100.0
            monitor = HealthMonitor(plane, stall_threshold=0.5)
            report = monitor.check()
            assert report.healthy and report.stalled == ()
        finally:
            plane.close()

    def test_busy_worker_with_stale_heartbeat_stalls(self):
        plane = WorkerStatsPlane(3)
        try:
            _make_busy(plane, 1, age=10.0)
            monitor = HealthMonitor(plane, stall_threshold=0.5)
            report = monitor.check()
            assert report.stalled == (1,)
            assert not report.healthy
        finally:
            plane.close()

    def test_stall_recorded_once_per_episode(self):
        plane = WorkerStatsPlane(2)
        rec = FlightRecorder()
        try:
            _make_busy(plane, 0, age=10.0)
            monitor = HealthMonitor(plane, stall_threshold=0.5, recorder=rec)
            monitor.check()
            monitor.check()  # same episode: no second event
            stalls = [e for e in rec.events() if e["event"] == "stall"]
            assert len(stalls) == 1 and stalls[0]["rank"] == 0
            # recovery then a NEW stall produces a new event
            plane.row(0)[STAT_PHASE] = 0.0
            monitor.check()
            _make_busy(plane, 0, age=10.0)
            monitor.check()
            stalls = [e for e in rec.events() if e["event"] == "stall"]
            assert len(stalls) == 2
        finally:
            plane.close()

    def test_live_imbalance_uses_measured_busy(self):
        plane = WorkerStatsPlane(2)
        try:
            plane.row(0)[STAT_BUSY] = 3.0
            plane.row(1)[STAT_BUSY] = 1.0
            monitor = HealthMonitor(plane, stall_threshold=5.0)
            assert monitor.imbalance() == pytest.approx(1.5)  # max/mean
        finally:
            plane.close()

    def test_gauges_published(self):
        plane = WorkerStatsPlane(2)
        metrics = MetricsRegistry()
        try:
            _make_busy(plane, 1, age=10.0)
            HealthMonitor(plane, stall_threshold=0.5, metrics=metrics).check()
            snap = metrics.snapshot()
            assert snap["live.stalled_workers"]["value"] == 1.0
            assert snap["live.imbalance"]["value"] >= 1.0
        finally:
            plane.close()

    def test_wait_for_stall_times_out(self):
        plane = WorkerStatsPlane(1)
        try:
            monitor = HealthMonitor(plane, stall_threshold=5.0)
            assert monitor.wait_for_stall(timeout=0.1, poll=0.02) is None
        finally:
            plane.close()

    def test_rejects_nonpositive_threshold(self):
        plane = WorkerStatsPlane(1)
        try:
            with pytest.raises(ValueError):
                HealthMonitor(plane, stall_threshold=0.0)
        finally:
            plane.close()


# -- live plane on a real team -------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestLiveTeamIntegration:
    @pytest.mark.timeout(60)
    def test_heartbeats_and_counters_advance(self, setup, backend):
        live = LiveTelemetry()
        before = live_segments()
        with make_team(setup, backend, live=live) as team:
            assert len(live_segments()) == len(before) + 1
            team.loglikelihood(0)
            team.loglikelihood(0)
            samples = live.sample()
            assert len(samples) == 2
            for s in samples:
                assert s.commands >= 2
                assert s.patterns > 0
                assert s.busy_seconds > 0.0
                assert s.heartbeat_age < 30.0
                assert s.kernel != "?"
            events = {e["event"] for e in live.recorder.events()}
            assert {"run_start", "dispatch", "barrier_exit"} <= events
        assert live_segments() == before  # engine unlinked the plane

    @pytest.mark.timeout(60)
    def test_final_samples_survive_close(self, setup, backend):
        live = LiveTelemetry()
        with make_team(setup, backend, live=live) as team:
            team.loglikelihood(0)
        samples = live.sample()  # plane is gone; captured rows remain
        assert len(samples) == 2 and all(s.commands >= 1 for s in samples)
        assert live.imbalance() >= 1.0
        assert "repro live" in live.dashboard()

    @pytest.mark.timeout(60)
    def test_event_stream_jsonl(self, setup, backend, tmp_path):
        events_path = tmp_path / "events.jsonl"
        live = LiveTelemetry(events_path=str(events_path))
        with make_team(setup, backend, live=live) as team:
            team.loglikelihood(0)
        events = [json.loads(line) for line in open(events_path)]
        names = [e["event"] for e in events]
        assert names[0] == "run_start" and names[-1] == "run_end"
        assert "dispatch" in names and "barrier_exit" in names
        start = events[0]
        assert start["backend"] == backend and start["n_workers"] == 2

    @pytest.mark.timeout(60)
    def test_fused_program_steps_count_individually(self, setup, backend):
        live = LiveTelemetry()
        with make_team(setup, backend, live=live) as team:
            base = sum(s.commands for s in live.sample())
            team.run_program((("lnl", 0), ("lnl", 0), ("lnl", 0)))
            after = sum(s.commands for s in live.sample())
        assert after - base >= 3 * 2  # 3 steps x 2 workers


@pytest.mark.timeout(60)
def test_shm_team_has_stats_plane_and_cleans_up(setup):
    live = LiveTelemetry()
    before = live_segments()
    with make_team(setup, "processes", comms="shm", live=live) as team:
        # arena + result plane + stats plane
        assert len(live_segments()) == len(before) + 3
        team.loglikelihood(0)
        samples = live.sample()
        assert all(s.commands >= 1 for s in samples)
    assert live_segments() == before


class TestStallDetection:
    @pytest.mark.timeout(30)
    def test_induced_stall_detected_within_threshold(self, setup):
        """The acceptance drill: wedge one worker inside a command and
        the monitor must flag exactly that rank before the command ends."""
        live = LiveTelemetry(stall_threshold=0.2)
        with make_team(setup, "threads", live=live) as team:
            team.loglikelihood(0)  # all rows warm and idle

            def wedge():
                team._broadcast(("stall", 1, 1.2))

            runner = threading.Thread(target=wedge)
            runner.start()
            try:
                report = live.monitor().wait_for_stall(timeout=5.0)
            finally:
                runner.join()
            assert report is not None, "stall never detected"
            assert report.stalled == (1,)
            stalls = [
                e for e in live.recorder.events() if e["event"] == "stall"
            ]
            assert stalls and stalls[0]["rank"] == 1
            assert stalls[0]["op"] == "stall"


# -- null-object parity ---------------------------------------------------


def _public_api(cls):
    return {n for n in dir(cls) if not n.startswith("_")}


class TestNullParity:
    @pytest.mark.parametrize("real,null", [
        (LiveTelemetry, NullLiveTelemetry),
        (HealthMonitor, NullHealthMonitor),
        (FlightRecorder, NullFlightRecorder),
    ])
    def test_null_mirrors_public_api(self, real, null):
        missing = _public_api(real) - _public_api(null)
        # attributes only set in the real __init__ are instance state the
        # engine never touches when disabled; methods must all exist
        methods = {n for n in missing if callable(getattr(real, n, None))}
        assert not methods, f"{null.__name__} missing {sorted(methods)}"

    def test_enabled_flags(self):
        assert LiveTelemetry.enabled and HealthMonitor.enabled
        assert FlightRecorder.enabled
        assert not NullLiveTelemetry.enabled
        assert not NullHealthMonitor.enabled
        assert not NullFlightRecorder.enabled

    def test_null_telemetry_is_inert(self, tmp_path):
        null = NullLiveTelemetry()
        assert null.bind(None) is null
        assert null.record("dispatch") == {}
        assert null.postmortem("worker_death", rank=0) is None
        assert null.sample() == [] and null.stalled() == []
        assert null.imbalance() == 1.0
        assert null.prometheus() == "" and null.dashboard() == ""
        null.close()  # no-op, no error

    @pytest.mark.timeout(60)
    def test_disabled_team_creates_no_stats_segment(self, setup):
        before = live_segments()
        with make_team(setup, "threads") as team:  # live defaults off
            assert isinstance(team.live, NullLiveTelemetry)
            assert team._stats_plane is None
            team.loglikelihood(0)
            assert live_segments() == before
        assert live_segments() == before

    @pytest.mark.timeout(60)
    def test_live_true_constructs_default_telemetry(self, setup):
        with make_team(setup, "threads", live=True) as team:
            assert isinstance(team.live, LiveTelemetry)
            team.loglikelihood(0)
            assert team.live.sample()


# -- Prometheus exposition ------------------------------------------------


class TestPrometheus:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("broadcasts.likelihood") == \
            "repro_broadcasts_likelihood"
        assert sanitize_metric_name("repro_x") == "repro_x"
        assert sanitize_metric_name("a b-c") == "repro_a_b_c"

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_counter_gets_total_suffix_once(self):
        metrics = MetricsRegistry()
        metrics.counter("commands").inc(3)
        metrics.counter("retries_total").inc(1)
        text = prometheus_text(metrics=metrics)
        assert "repro_commands_total 3" in text
        assert "repro_retries_total 1" in text
        assert "total_total" not in text

    def test_help_and_type_precede_every_family(self):
        metrics = MetricsRegistry()
        metrics.counter("c").inc()
        metrics.gauge("g").set(2.5)
        metrics.histogram("h").observe(0.5)
        lines = prometheus_text(metrics=metrics).splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# TYPE"):
                assert lines[i - 1].startswith("# HELP")

    def test_histogram_buckets_cumulative_ending_inf(self):
        metrics = MetricsRegistry()
        hist = metrics.histogram("wall", bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(v)
        text = prometheus_text(metrics=metrics)
        buckets = [
            line for line in text.splitlines()
            if line.startswith("repro_wall_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert buckets[-1].startswith('repro_wall_bucket{le="+Inf"}')
        assert counts[-1] == 5  # +Inf bucket equals _count
        assert "repro_wall_count 5" in text

    def test_run_info_labels(self):
        text = prometheus_text(run_config={"backend": "threads", "comms": "shm"})
        assert 'repro_run_info{backend="threads",comms="shm"} 1' in text

    def test_live_worker_families(self):
        sample = WorkerSample(
            rank=0, phase="busy", op="lnl", commands=7, busy_seconds=0.5,
            wait_seconds=0.5, patterns=200, kernel="numpy",
            heartbeat_age=0.01, uptime=2.0, consistent=True,
        )
        text = prometheus_text(samples=[sample])
        assert 'repro_live_worker_commands{worker="0"} 7' in text
        assert 'repro_live_worker_busy_fraction{worker="0"} 0.5' in text

    def test_empty_inputs_render_empty(self):
        assert prometheus_text() == ""


# -- dashboard rendering --------------------------------------------------


class TestDashboard:
    def _sample(self, **kw):
        base = dict(
            rank=0, phase="busy", op="lnl", commands=10, busy_seconds=1.0,
            wait_seconds=1.0, patterns=100, kernel="numpy",
            heartbeat_age=0.5, uptime=5.0, consistent=True,
        )
        base.update(kw)
        return WorkerSample(**base)

    def test_renders_lane_per_worker(self):
        text = render_dashboard(
            [self._sample(rank=0), self._sample(rank=1, phase="idle")],
            run_config={"backend": "threads", "comms": "shm"},
            imbalance=1.25,
        )
        assert "backend=threads" in text and "comms=shm" in text
        assert "imbalance 1.250" in text
        assert "w0" in text and "w1" in text and "idle" in text

    def test_inconsistent_sample_flagged(self):
        text = render_dashboard([self._sample(consistent=False)])
        assert "w0   ?" in text

    def test_width_truncation(self):
        text = render_dashboard([self._sample()], width=40)
        assert all(len(line) <= 40 for line in text.splitlines())

    def test_no_workers(self):
        assert "(no workers)" in render_dashboard([])


# -- chrome-trace run-config stamping (satellite: export) -----------------


class TestExportRunConfig:
    def test_metadata_carries_run_config_and_shm_lanes(self):
        from repro.obs.export import _metadata_events

        events = _metadata_events(
            [0, 1, 2], run_config={"comms": "shm", "backend": "processes"}
        )
        by_name = {}
        for e in events:
            by_name.setdefault(e["name"], []).append(e)
        assert by_name["run_config"][0]["args"]["comms"] == "shm"
        labels = by_name["process_labels"][0]["args"]["labels"]
        assert "comms=shm" in labels and "backend=processes" in labels
        lanes = [e["args"]["name"] for e in by_name["thread_name"]]
        assert "worker 0 [shm]" in lanes and "worker 1 [shm]" in lanes

    def test_default_lane_names_without_shm(self):
        from repro.obs.export import _metadata_events

        events = _metadata_events([0, 1], run_config={"comms": "pipe"})
        lanes = [
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        ]
        assert "worker 0" in lanes and "[shm]" not in " ".join(lanes)

    @pytest.mark.timeout(60)
    def test_profile_to_chrome_self_describes(self, setup):
        from repro.obs.export import profile_to_chrome
        from repro.perf import Profiler

        profiler = Profiler()
        live = LiveTelemetry()
        with make_team(
            setup, "threads", profiler=profiler, live=live
        ) as team:
            team.loglikelihood(0)
        events = profile_to_chrome(profiler.profile())
        cfg = [e for e in events if e.get("name") == "run_config"]
        assert cfg and cfg[0]["args"]["backend"] == "threads"
        assert cfg[0]["args"]["live"] is True  # the meta stamp rode along


# -- CLI ------------------------------------------------------------------


class TestTopCLI:
    WORKLOAD = [
        "--taxa", "6", "--sites", "200", "--partitions", "2",
        "--workers", "2", "--backend", "threads", "--edges", "2",
    ]

    def test_run_mode_renders_lanes(self, capsys):
        from repro.cli import main

        rc = main(["top", *self.WORKLOAD, "--frames", "2",
                   "--interval", "0.05"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro live" in out and "w0" in out and "w1" in out
        assert "live plane segment: repro_shm_" in out
        assert "imbalance" in out

    def test_attach_mode_rejects_missing_segment(self, capsys):
        from repro.cli import main

        rc = main(["top", "--plane", "repro_shm_nope", "--frames", "1"])
        assert rc == 2
        assert "cannot attach" in capsys.readouterr().err

    def test_attach_mode_requires_finite_frames(self, capsys):
        from repro.cli import main

        rc = main(["top", "--plane", "repro_shm_nope"])
        assert rc == 2
        assert "--frames" in capsys.readouterr().err


class TestProfileLiveCLI:
    @pytest.mark.timeout(120)
    def test_profile_live_writes_prom_and_events(self, tmp_path, capsys):
        from repro.cli import main

        prom = tmp_path / "metrics.prom"
        events = tmp_path / "events.jsonl"
        rc = main([
            "profile", *TestTopCLI.WORKLOAD, "--live",
            "--prom", str(prom), "--events", str(events),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "live: imbalance" in out
        text = prom.read_text()
        assert "repro_run_info{" in text
        assert 'repro_live_worker_commands{worker="0"}' in text
        lines = [json.loads(line) for line in open(events)]
        names = [e["event"] for e in lines]
        assert "run_start" in names and "run_end" in names

    def test_prom_requires_live(self, capsys):
        from repro.cli import main

        rc = main(["profile", *TestTopCLI.WORKLOAD, "--prom", "x.prom"])
        assert rc == 2
        assert "--live" in capsys.readouterr().err
