"""repro.obs tests: span tracing, thread-safe metrics, convergence
telemetry invariants, Chrome trace-event export, and the perf-regression
baseline checks."""
import json
import threading

import numpy as np
import pytest

from repro.core import PartitionedEngine, optimize_model
from repro.obs import (
    ConvergenceLog,
    ConvergenceTelemetry,
    MASTER_LANE,
    MetricsRegistry,
    NullMetrics,
    NullTelemetry,
    NullTracer,
    Tracer,
    ascii_timeline,
    check_profiles,
    load_baseline,
    profile_ascii_timeline,
    profile_to_chrome,
    simulation_to_chrome,
    summarize_profiles,
    tracer_to_chrome,
    validate_chrome_trace,
    write_baseline,
    write_chrome_trace,
)
from repro.optimize import BatchedBrent, BatchedNewton
from repro.perf import CommandRecord, RunProfile
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment


@pytest.fixture(scope="module")
def small_setup():
    rng = np.random.default_rng(11)
    tree, lengths = random_topology_with_lengths(6, rng)
    aln = simulate_alignment(
        tree, lengths, SubstitutionModel.random_gtr(3), 1.0, 300, rng
    )
    data = PartitionedAlignment(aln, uniform_scheme(300, 100))
    models = [SubstitutionModel.random_gtr(p) for p in range(3)]
    alphas = [0.7, 1.2, 2.0]
    return data, tree, lengths, models, alphas


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


class TestTracer:
    def test_span_context_records_interval(self):
        tracer = Tracer()
        with tracer.span("work", cat="optimizer", round=3):
            pass
        assert tracer.n_spans == 1
        span = tracer.spans[0]
        assert span.name == "work" and span.cat == "optimizer"
        assert span.lane == MASTER_LANE
        assert span.duration >= 0.0
        assert span.args == {"round": 3}
        assert span.end == pytest.approx(span.start + span.duration)

    def test_span_recorded_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.n_spans == 1 and tracer.spans[0].name == "boom"

    def test_add_span_and_lanes(self):
        tracer = Tracer()
        tracer.add_span("deriv", "derivative", 0, 0.0, 0.5)
        tracer.add_span("deriv", "derivative", 2, 0.0, 0.3)
        tracer.instant("converged", lane=1)
        assert tracer.lanes() == [0, 1, 2]

    def test_by_category_master_only(self):
        tracer = Tracer()
        tracer.add_span("a", "derivative", 0, 0.0, 1.0)
        tracer.add_span("a", "derivative", 1, 0.0, 5.0)  # worker lane
        tracer.add_span("b", "evaluate", 0, 1.0, 0.25)
        cats = tracer.by_category()
        assert cats == pytest.approx({"derivative": 1.0, "evaluate": 0.25})

    def test_negative_duration_clamped(self):
        tracer = Tracer()
        tracer.add_span("x", "control", 0, 0.0, -1e-9)
        assert tracer.spans[0].duration == 0.0

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        ctx = tracer.span("anything", cat="x", edge=1)
        with ctx:
            pass
        # the shared no-op context is reused — no allocation per call
        assert tracer.span("other") is ctx
        assert tracer.now() == 0.0


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.counter("n").inc(2.0)
        reg.gauge("g").set(3.0)
        reg.gauge("g").add(-1.0)
        hist = reg.histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            hist.observe(v)
        snap = reg.snapshot()
        assert snap["n"] == {"type": "counter", "value": 3.0}
        assert snap["g"]["value"] == pytest.approx(2.0)
        assert snap["h"]["count"] == 3
        assert snap["h"]["sum"] == pytest.approx(105.5)
        assert snap["h"]["min"] == 0.5 and snap["h"]["max"] == 100.0
        assert snap["h"]["buckets"] == {"1.0": 1, "10.0": 1, "+inf": 1}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1.0)

    def test_name_bound_to_one_kind(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_json(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("b").observe(1e-7)
        back = json.loads(reg.to_json())
        assert set(back) == {"a", "b"}
        assert reg.names() == ["a", "b"]

    def test_concurrent_increments(self):
        """The threads backend publishes from worker threads concurrently
        with the master: no increment may be lost."""
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 2_000

        def work():
            counter = reg.counter("hits")
            hist = reg.histogram("vals", bounds=(0.5,))
            for i in range(per_thread):
                counter.inc()
                hist.observe(i % 2)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert reg.counter("hits").value == total
        snap = reg.snapshot()["vals"]
        assert snap["count"] == total
        assert snap["buckets"] == {"0.5": total // 2, "+inf": total // 2}

    def test_null_metrics_accepts_everything(self):
        null = NullMetrics()
        assert null.enabled is False
        null.counter("x").inc()
        null.gauge("y").set(1.0)
        null.histogram("z").observe(2.0)
        assert null.snapshot() == {}


# ----------------------------------------------------------------------
# Convergence telemetry
# ----------------------------------------------------------------------


class TestConvergenceLog:
    def test_masks_and_views(self):
        log = ConvergenceLog(name="t", n_lanes=3)
        log.iteration(np.zeros(3), np.array([True, True, True]))
        log.iteration(np.zeros(3), np.array([True, False, True]))
        log.iteration(np.zeros(3), np.array([True, False, False]))
        assert log.n_rounds == 3
        np.testing.assert_array_equal(log.iterations_per_lane(), [3, 1, 2])
        np.testing.assert_array_equal(log.active_per_round(), [3, 2, 1])
        assert log.is_monotonic()

    def test_reactivation_detected(self):
        log = ConvergenceLog(name="t", n_lanes=2)
        log.iteration(np.zeros(2), np.array([True, False]))
        log.iteration(np.zeros(2), np.array([True, True]))  # lane 1 returns
        assert not log.is_monotonic()

    def test_lane_count_enforced(self):
        log = ConvergenceLog(name="t", n_lanes=2)
        with pytest.raises(ValueError):
            log.iteration(np.zeros(3), np.ones(3, dtype=bool))

    def test_dict_roundtrip(self):
        log = ConvergenceLog(name="t", n_lanes=2)
        log.iteration(np.zeros(2), np.array([True, True]))
        log.iteration(np.zeros(2), np.array([False, True]))
        back = ConvergenceLog.from_dict(log.to_dict())
        np.testing.assert_array_equal(back.matrix(), log.matrix())

    def test_brent_sums_match_reported_iterations(self):
        """The accounting invariant: each lane's activity flags sum to the
        iteration count BatchedBrent reports for it."""
        log = ConvergenceLog(name="brent", n_lanes=4)
        centers = np.array([0.3, 1.0, 3.0, 7.7])

        def fn(x, active):
            return (x - centers) ** 2

        solver = BatchedBrent(np.full(4, 0.01), np.full(4, 10.0), xtol=1e-6)
        res = solver.run(fn, observer=log)
        np.testing.assert_array_equal(log.iterations_per_lane(), res.iterations)
        assert log.is_monotonic()

    def test_newton_sums_match_reported_iterations(self):
        log = ConvergenceLog(name="newton", n_lanes=3)
        roots = np.array([0.2, 1.5, 4.0])

        def fn(z, active):
            return -(z - roots), -np.ones_like(z)

        solver = BatchedNewton(lower=1e-3, upper=10.0, ztol=1e-8)
        res = solver.run(fn, z0=np.full(3, 2.0), observer=log)
        np.testing.assert_array_equal(log.iterations_per_lane(), res.iterations)
        assert log.is_monotonic()

    def test_masked_lane_never_active(self):
        log = ConvergenceLog(name="brent", n_lanes=3)

        def fn(x, active):
            return (x - 1.0) ** 2

        solver = BatchedBrent(np.full(3, 0.01), np.full(3, 10.0), xtol=1e-4)
        mask = np.array([True, False, True])
        res = solver.run(fn, mask=mask, observer=log)
        assert log.iterations_per_lane()[1] == 0
        assert res.iterations[1] == 0

    def test_telemetry_collector(self):
        tel = ConvergenceTelemetry()
        a = tel.start("nr_branch", 2)
        b = tel.start("nr_branch", 2)
        tel.start("brent_alpha", 2)
        a.iteration(np.zeros(2), np.ones(2, dtype=bool))
        b.iteration(np.zeros(2), np.array([True, False]))
        assert len(tel.by_name("nr_branch")) == 2
        np.testing.assert_array_equal(tel.total_iterations(), [2, 1])
        assert "nr_branch" in tel.summary()
        assert len(json.loads(tel.to_json())["logs"]) == 3

    def test_null_telemetry_returns_no_observer(self):
        assert NullTelemetry().start("x", 5) is None


# ----------------------------------------------------------------------
# Engine integration (sequential)
# ----------------------------------------------------------------------


class TestEngineObservability:
    def test_defaults_are_null(self, small_setup):
        data, tree, lengths, models, alphas = small_setup
        eng = PartitionedEngine(data, tree.copy(), models=models,
                                alphas=alphas, initial_lengths=lengths)
        assert not eng.tracer.enabled
        assert not eng.metrics.enabled
        assert not eng.telemetry.enabled

    def test_model_opt_full_stack(self, small_setup):
        """optimize_model with the full obs stack: optimizer-round and
        region spans, iteration histograms, and telemetry logs whose
        per-lane sums equal the iteration counts the metrics saw."""
        data, tree, lengths, models, alphas = small_setup
        tracer, metrics, tel = Tracer(), MetricsRegistry(), ConvergenceTelemetry()
        eng = PartitionedEngine(
            data, tree.copy(), models=models, alphas=alphas,
            initial_lengths=lengths, tracer=tracer, metrics=metrics,
            telemetry=tel,
        )
        optimize_model(eng, strategy="new", max_rounds=2, include_rates=False)

        cats = tracer.by_category()
        assert "optimizer" in cats and "region" in cats
        names = {s.name for s in tracer.spans}
        assert "opt_round" in names

        snap = metrics.snapshot()
        assert snap["optimizer_calls.brent_alpha"]["value"] >= 1
        alpha_hist = snap["iterations.brent_alpha"]
        assert alpha_hist["count"] > 0

        assert all(log.is_monotonic() for log in tel.logs)
        alpha_logs = tel.by_name("brent_alpha")
        assert alpha_logs
        # telemetry lane sums == iteration counts published to metrics
        tel_total = sum(log.iterations_per_lane().sum() for log in alpha_logs)
        assert tel_total == alpha_hist["sum"]
        assert all(log.n_lanes == eng.n_partitions for log in tel.logs)


# ----------------------------------------------------------------------
# Parallel backend integration
# ----------------------------------------------------------------------


class TestParallelObservability:
    def test_observed_broadcasts_threads(self, small_setup):
        """A traced + profiled newPAR run on the threads backend: master
        lane plus one lane per worker, broadcast counters matching the
        command count, barrier-wait samples, and monotonic per-partition
        convergence masks with one Brent round per eval broadcast."""
        from repro.parallel import ParallelPLK
        from repro.perf import Profiler

        data, tree, lengths, models, alphas = small_setup
        tracer, metrics, tel = Tracer(), MetricsRegistry(), ConvergenceTelemetry()
        profiler = Profiler()
        with ParallelPLK(
            data, tree, models, alphas, 2, backend="threads",
            initial_lengths=lengths, profiler=profiler,
            tracer=tracer, metrics=metrics, telemetry=tel,
        ) as team:
            team.optimize_branch(0, "new", z0=np.full(3, lengths[0]))
            team.optimize_alpha("new")
            issued = team.commands_issued

        assert tracer.lanes() == [0, 1, 2]
        snap = metrics.snapshot()
        assert snap["broadcasts.total"]["value"] == issued
        kind_total = sum(
            inst["value"] for name, inst in snap.items()
            if name.startswith("broadcasts.") and name != "broadcasts.total"
        )
        assert kind_total == issued
        assert snap["barrier_wait_seconds"]["count"] == issued * 2
        assert snap["region_wall_seconds"]["count"] == issued

        names = {s.name for s in tracer.spans if s.lane == MASTER_LANE}
        assert {"optimize_branch", "optimize_alpha"} <= names

        assert all(log.is_monotonic() for log in tel.logs)
        (alpha_log,) = tel.by_name("brent_alpha")
        assert alpha_log.n_lanes == team.n_partitions
        # one recorded Brent round per eval_alpha broadcast
        evals = sum(1 for r in profiler.records if r.op == "eval_alpha")
        assert alpha_log.n_rounds == evals
        events = validate_chrome_trace(tracer_to_chrome(tracer))
        assert {ev["tid"] for ev in events if ev["ph"] == "X"} == {0, 1, 2}

    def test_unobserved_run_identical_path(self, small_setup):
        """Without tracer/metrics the broadcast path must not record
        anything (the `enabled` guard keeps nulls off the hot path)."""
        from repro.parallel import ParallelPLK

        data, tree, lengths, models, alphas = small_setup
        with ParallelPLK(
            data, tree, models, alphas, 2, backend="threads",
            initial_lengths=lengths,
        ) as team:
            team.loglikelihood(0)
            assert not team.tracer.enabled
            assert not team.metrics.enabled
            assert not team.telemetry.enabled


# ----------------------------------------------------------------------
# Chrome trace-event / ASCII export
# ----------------------------------------------------------------------


def _sample_profile():
    records = [
        CommandRecord("prepare", "sumtable", 0.4, (0.2, 0.3)),
        CommandRecord("deriv", "derivative", 0.5, (0.4, 0.1)),
        CommandRecord("set_bl", "control", 0.1, (0.0, 0.0)),
        CommandRecord("lnl", "evaluate", 0.3, (0.25, 0.25)),
    ]
    return RunProfile(backend="threads", n_workers=2, records=records)


class TestChromeExport:
    def test_tracer_export_schema(self, tmp_path):
        tracer = Tracer()
        with tracer.span("opt_round", cat="optimizer", round=1):
            pass
        tracer.add_span("deriv", "derivative", 1, 0.0, 0.01)
        tracer.instant("converged", lane=0, partition=2)
        events = tracer_to_chrome(tracer)
        validate_chrome_trace(events)
        path = write_chrome_trace(tmp_path / "t.json", events)
        back = json.loads(path.read_text())
        assert back["displayTimeUnit"] == "ms"
        validated = validate_chrome_trace(back)
        assert validated == back["traceEvents"]
        phases = {ev["ph"] for ev in validated}
        assert {"M", "X", "i"} <= phases

    def test_profile_export_lanes_and_reconstruction(self):
        profile = _sample_profile()
        events = validate_chrome_trace(profile_to_chrome(profile))
        lanes = {ev["tid"] for ev in events if ev["ph"] == "X"}
        assert lanes == {MASTER_LANE, 1, 2}
        master = [ev for ev in events
                  if ev["ph"] == "X" and ev["tid"] == MASTER_LANE]
        # back-to-back reconstruction: each command starts where the
        # previous one's wall ended
        cursor = 0.0
        for ev, rec in zip(master, profile.records):
            assert ev["ts"] == pytest.approx(cursor * 1e6)
            assert ev["dur"] == pytest.approx(rec.wall * 1e6)
            cursor += rec.wall
        # worker busy spans never outlive their command
        for ev in events:
            if ev["ph"] == "X" and ev["tid"] != MASTER_LANE:
                assert ev["dur"] <= max(m["dur"] for m in master) + 1e-9

    def test_lane_metadata_names(self):
        events = profile_to_chrome(_sample_profile())
        names = {
            ev["tid"]: ev["args"]["name"]
            for ev in events if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert names[MASTER_LANE] == "master"
        assert names[1] == "worker 0" and names[2] == "worker 1"

    def test_simulation_export(self, small_setup):
        from repro.core import TraceRecorder, optimize_branch
        from repro.simmachine import NEHALEM, simulate_trace

        data, tree, lengths, models, alphas = small_setup
        rec = TraceRecorder()
        eng = PartitionedEngine(data, tree.copy(), models=models,
                                alphas=alphas, initial_lengths=lengths,
                                recorder=rec)
        optimize_branch(eng, 0, strategy="new")
        trace = rec.finalize(eng.pattern_counts(), eng.states())
        result = simulate_trace(trace, NEHALEM, 2)
        events = validate_chrome_trace(simulation_to_chrome(result))
        lanes = {ev["tid"] for ev in events if ev["ph"] == "X"}
        assert lanes == {MASTER_LANE, 1, 2}

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(ValueError):
            validate_chrome_trace([{"ph": "X", "name": "a", "ts": 0.0}])
        with pytest.raises(ValueError):
            validate_chrome_trace(
                [{"ph": "X", "name": "a", "ts": 0.0, "dur": -1.0}]
            )


class TestAsciiTimeline:
    def test_profile_rendering(self):
        art = profile_ascii_timeline(_sample_profile(), width=40)
        lines = art.splitlines()
        assert lines[0].lstrip().startswith("master")
        assert "worker 0" in art and "worker 1" in art
        # kind letters appear on the master row
        assert any(ch in lines[0] for ch in "SDEc")

    def test_tracer_rendering(self):
        tracer = Tracer()
        tracer.add_span("deriv", "derivative", 0, 0.0, 1.0)
        tracer.add_span("deriv", "derivative", 1, 0.0, 0.6)
        art = ascii_timeline(tracer, width=20)
        assert "master" in art and "worker 0" in art
        assert "D" in art.splitlines()[0]

    def test_empty_trace(self):
        assert ascii_timeline(Tracer()) == "(no spans recorded)"


# ----------------------------------------------------------------------
# Regression baseline
# ----------------------------------------------------------------------


def _strategy_profiles():
    old = RunProfile(backend="threads", n_workers=2, records=[
        CommandRecord("prepare", "sumtable", 0.2, (0.08, 0.09))
        for _ in range(12)
    ] + [CommandRecord("deriv", "derivative", 0.2, (0.09, 0.09))
         for _ in range(12)])
    new = RunProfile(backend="threads", n_workers=2, records=[
        CommandRecord("prepare", "sumtable", 0.2, (0.095, 0.095))
        for _ in range(4)
    ] + [CommandRecord("deriv", "derivative", 0.2, (0.095, 0.09))
         for _ in range(4)])
    return {"old": old, "new": new}


class TestRegression:
    def test_summary_derived_ratios(self):
        summary = summarize_profiles(_strategy_profiles())
        assert summary["derived"]["command_ratio"] == pytest.approx(3.0)
        assert summary["derived"]["wall_ratio"] == pytest.approx(8 / 24)
        assert summary["strategies"]["old"]["kind_counts"] == {
            "derivative": 12, "sumtable": 12,
        }

    def test_self_check_passes(self, tmp_path):
        profiles = _strategy_profiles()
        write_baseline(tmp_path / "base.json", profiles, workload={"taxa": 6})
        baseline = load_baseline(tmp_path / "base.json")
        assert baseline["workload"] == {"taxa": 6}
        report = check_profiles(profiles, baseline)
        assert report.ok, report.failures
        assert "PASS" in report.summary()

    def test_region_explosion_fails(self, tmp_path):
        profiles = _strategy_profiles()
        write_baseline(tmp_path / "base.json", profiles, workload={})
        baseline = load_baseline(tmp_path / "base.json")
        bloated = dict(profiles)
        bloated["new"] = RunProfile(
            backend="threads", n_workers=2,
            records=profiles["new"].records * 4,
        )
        report = check_profiles(bloated, baseline)
        assert not report.ok
        assert any("new.n_regions" in f for f in report.failures)
        assert any("command_ratio" in f for f in report.failures)

    def test_efficiency_regression_fails(self, tmp_path):
        profiles = _strategy_profiles()
        write_baseline(tmp_path / "base.json", profiles, workload={})
        baseline = load_baseline(tmp_path / "base.json")
        slow = dict(profiles)
        # newPAR workers now mostly idle: efficiency collapses
        slow["new"] = RunProfile(backend="threads", n_workers=2, records=[
            CommandRecord(r.op, r.kind, r.wall, (0.02, 0.05))
            for r in profiles["new"].records
        ])
        report = check_profiles(slow, baseline)
        assert any("derived.efficiency" in f for f in report.failures)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError):
            load_baseline(path)
