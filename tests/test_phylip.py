"""PHYLIP / FASTA I/O tests."""
import pytest

from repro.plk import AA, parse_fasta, parse_phylip, write_fasta, write_phylip


class TestPhylip:
    def test_sequential(self):
        aln = parse_phylip("2 4\ntaxA ACGT\ntaxB TGCA\n")
        assert aln.n_taxa == 2
        assert aln.sequence("taxA") == "ACGT"

    def test_interleaved(self):
        text = "2 8\na ACGT\nb TGCA\nACGT\nTGCA\n"
        aln = parse_phylip(text)
        assert aln.sequence("a") == "ACGTACGT"
        assert aln.sequence("b") == "TGCATGCA"

    def test_spaces_in_sequence_stripped(self):
        aln = parse_phylip("1 8\nx ACGT ACGT\n")
        assert aln.sequence("x") == "ACGTACGT"

    def test_roundtrip(self, small_alignment):
        back = parse_phylip(write_phylip(small_alignment))
        assert back.taxa == small_alignment.taxa
        assert (back.matrix == small_alignment.matrix).all()

    def test_header_mismatch_rejected(self):
        with pytest.raises(ValueError, match="header says"):
            parse_phylip("1 10\nx ACGT\n")

    def test_missing_taxa_rejected(self):
        with pytest.raises(ValueError, match="promises"):
            parse_phylip("3 4\nx ACGT\n")

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            parse_phylip("hello world extra\nx ACGT")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_phylip("  \n ")


class TestFasta:
    def test_basic(self):
        aln = parse_fasta(">a desc ignored\nACGT\n>b\nTG\nCA\n")
        assert aln.sequence("a") == "ACGT"
        assert aln.sequence("b") == "TGCA"

    def test_roundtrip(self, small_alignment):
        back = parse_fasta(write_fasta(small_alignment, width=37))
        assert back.taxa == small_alignment.taxa
        assert (back.matrix == small_alignment.matrix).all()

    def test_duplicate_record_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_fasta(">a\nAC\n>a\nGT\n")

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError, match="before first"):
            parse_fasta("ACGT\n>a\nACGT\n")

    def test_aa_datatype(self):
        aln = parse_fasta(">x\nARND\n", AA)
        assert aln.datatype is AA
