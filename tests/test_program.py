"""Fused command programs: the result layout, worker-side execution
order, solver first-evaluation hand-off, and — the point of the whole
exercise — engine-level equivalence with a measured drop in barriers.
"""
import numpy as np
import pytest

from repro.core import PartitionedEngine, TraceRecorder
from repro.core.strategies import optimize_branch_lengths
from repro.core.trace import COMMAND_KINDS, describe_command
from repro.obs import MetricsRegistry
from repro.optimize import BatchedBrent, BatchedNewton
from repro.parallel import ParallelPLK, Program, slice_partition_data
from repro.parallel.program import (
    RESULT_SHAPES,
    decode_results,
    encode_results,
    program_steps,
    result_shapes,
    result_width,
)
from repro.parallel.worker import WorkerState
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(7)
    tree, lengths = random_topology_with_lengths(6, rng)
    aln = simulate_alignment(
        tree, lengths, SubstitutionModel.random_gtr(1), 1.0, 300, rng
    )
    data = PartitionedAlignment(aln, uniform_scheme(300, 100))
    models = [SubstitutionModel.random_gtr(p) for p in range(3)]
    alphas = [0.7, 1.0, 1.4]
    return data, tree, lengths, models, alphas


def make_team(setup, **kw):
    data, tree, lengths, models, alphas = setup
    kw.setdefault("backend", "threads")
    return ParallelPLK(
        data, tree, models, alphas, 2, initial_lengths=lengths, **kw
    )


class TestDescribeCommand:
    def test_plain_command(self):
        assert describe_command(("deriv", 0, None, [0])) == (
            "deriv", "derivative", 1,
        )

    def test_program_classified_by_first_noncontrol_step(self):
        cmd = ("prog", (("prepare", 0, 1, [0]), ("deriv", 1, None, [0])))
        label, kind, n = describe_command(cmd)
        assert label == "prog(prepare+deriv)"
        assert kind == "sumtable"
        assert n == 2

    def test_all_control_program(self):
        cmd = ("prog", (("release", 1), ("set_bl", 0, 0.1, None)))
        assert describe_command(cmd)[1] == "control"

    def test_layout_vocabulary_is_classified(self):
        # Every op the shm layout knows must also have a region kind.
        assert set(RESULT_SHAPES) <= set(COMMAND_KINDS)


class TestProgramDataclass:
    def test_wire_format_and_label(self):
        prog = Program(steps=(("lnl", 0), ("release", 3)))
        assert prog.command == ("prog", prog.steps)
        assert prog.label == "prog(lnl+release)"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Program(steps=())

    def test_rejects_nesting_and_stop(self):
        with pytest.raises(ValueError):
            Program(steps=(("prog", (("lnl", 0),)),))
        with pytest.raises(ValueError):
            Program(steps=(("stop",),))


class TestResultLayout:
    def test_program_steps(self):
        assert program_steps(("lnl", 0)) == (("lnl", 0),)
        steps = (("lnl", 0), ("release", 1))
        assert program_steps(("prog", steps)) == steps

    def test_shapes_and_width(self):
        cmd = ("prog", (("prepare", 0, 1, [0]), ("deriv", 1, None, [0]),
                        ("branch_lnl", 1, None, [0]), ("lnl", 0)))
        shapes = result_shapes(cmd)
        assert shapes == ["none", "pair", "vec", "scalar"]
        assert result_width(shapes, 3) == 0 + 6 + 3 + 1

    def test_unknown_op_falls_back_to_pipe(self):
        assert result_shapes(("mystery", 1)) is None
        assert result_shapes(("prog", (("lnl", 0), ("mystery", 1)))) is None

    def test_encode_decode_round_trip_program(self):
        n = 3
        cmd = ("prog", (("prepare", 0, 1, [0]), ("deriv", 1, None, [0]),
                        ("branch_lnl", 1, None, [0]), ("lnl", 0)))
        shapes = result_shapes(cmd)
        value = [
            None,
            (np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0, 6.0])),
            np.array([-7.0, -8.0, -9.0]),
            -42.5,
        ]
        row = np.zeros(result_width(shapes, n))
        encode_results(row, cmd, value, shapes, n)
        out = decode_results(row, cmd, shapes, n)
        assert out[0] is None
        np.testing.assert_array_equal(out[1][0], value[1][0])
        np.testing.assert_array_equal(out[1][1], value[1][1])
        np.testing.assert_array_equal(out[2], value[2])
        assert out[3] == -42.5

    def test_encode_decode_plain_command(self):
        cmd = ("lnl", 0)
        shapes = result_shapes(cmd)
        row = np.zeros(result_width(shapes, 3))
        encode_results(row, cmd, -3.25, shapes, 3)
        assert decode_results(row, cmd, shapes, 3) == -3.25


class TestWorkerProgram:
    def test_steps_run_in_order_and_match_separate_execution(self, setup):
        data, tree, lengths, models, alphas = setup
        mk = lambda: WorkerState(  # noqa: E731
            slice_partition_data(data, 1, 0), tree.copy(), models, alphas,
            lengths,
        )
        fused, plain = mk(), mk()
        steps = (
            ("prepare", 0, 9, [0, 1, 2]),
            ("deriv", 9, np.full(3, 0.05), [0, 1, 2]),
            ("set_bl_vec", 0, np.full(3, 0.2)),
            ("lnl", 0),
            ("release", 9),
        )
        out = fused.execute(("prog", steps))
        ref = [plain.execute(s) for s in steps]
        assert len(out) == len(steps)
        np.testing.assert_allclose(out[1][0], ref[1][0])
        np.testing.assert_allclose(out[1][1], ref[1][1])
        # the lnl step sees the set_bl_vec that preceded it in the program
        assert out[3] == pytest.approx(ref[3], abs=1e-10)
        before = plain.execute(("lnl", 0))
        assert out[3] == pytest.approx(before, abs=1e-10)


class TestEngineRunProgram:
    def test_fused_exchange_equals_separate_broadcasts(self, setup):
        with make_team(setup) as team:
            handle = team.prepare_branch(0, [0, 1, 2])
            z = np.full(3, 0.1)
            d1_ref, d2_ref = team.branch_derivatives(handle, z, [0, 1, 2])
            team.release(handle)

            token = 7_000
            prog = Program(steps=(
                ("prepare", 0, token, [0, 1, 2]),
                ("deriv", token, z, [0, 1, 2]),
                ("release", token),
            ))
            _, deriv_parts, _ = team.run_program(prog)
            d1 = np.sum([p[0] for p in deriv_parts], axis=0)
            d2 = np.sum([p[1] for p in deriv_parts], axis=0)
        np.testing.assert_allclose(d1, d1_ref, atol=1e-12)
        np.testing.assert_allclose(d2, d2_ref, atol=1e-12)

    def test_one_barrier_per_program(self, setup):
        metrics = MetricsRegistry()
        with make_team(setup, metrics=metrics) as team:
            team.run_program((("lnl", 0), ("lnl", 0), ("lnl", 0)))
        snap = metrics.snapshot()
        assert snap["broadcasts.total"]["value"] == 1
        assert snap["commands.total"]["value"] == 3


class TestSolverFirstEval:
    def test_newton_initial_point_clips(self):
        solver = BatchedNewton(1e-3, 10.0, 1e-6)
        z = solver.initial_point(np.array([0.0, 0.5, 99.0]))
        np.testing.assert_allclose(z, [1e-3, 0.5, 10.0])

    def test_newton_first_eval_skips_one_call_same_result(self):
        def make_fn(calls):
            def fn(z, active):
                calls.append(z.copy())
                return -2.0 * (z - 1.5), np.full_like(z, -2.0)
            return fn

        solver = BatchedNewton(1e-3, 10.0, 1e-8)
        z0 = np.array([0.1, 3.0])
        plain_calls, fused_calls = [], []
        ref = solver.run(make_fn(plain_calls), z0)
        z_first = solver.initial_point(z0)
        first = make_fn([])(z_first, None)
        res = solver.run(make_fn(fused_calls), z0, first_eval=first)
        np.testing.assert_allclose(res.z, ref.z)
        np.testing.assert_array_equal(res.iterations, ref.iterations)
        assert len(fused_calls) == len(plain_calls) - 1
        np.testing.assert_allclose(plain_calls[0], z_first)

    def test_brent_first_fx_skips_one_call_same_result(self):
        def make_fn(calls):
            def fn(x, active):
                calls.append(x.copy())
                return (x - 0.8) ** 2
            return fn

        solver = BatchedBrent(np.full(2, 0.02), np.full(2, 5.0), 1e-5)
        guess = np.array([1.0, 0.3])
        plain_calls, fused_calls = [], []
        ref = solver.run(make_fn(plain_calls), guess=guess)
        x_first = solver.initial_point(guess)
        first = make_fn([])(x_first, None)
        res = solver.run(make_fn(fused_calls), guess=guess, first_fx=first)
        np.testing.assert_allclose(res.x, ref.x)
        assert len(fused_calls) == len(plain_calls) - 1
        np.testing.assert_allclose(plain_calls[0], x_first)


class TestFusedOptimizerEquivalence:
    @pytest.mark.timeout(60)
    def test_optimize_branch_fused_matches_unfused(self, setup):
        out, lnl, metrics = {}, {}, {}
        for fuse in (True, False):
            m = MetricsRegistry()
            with make_team(setup, fuse_programs=fuse, metrics=m) as team:
                out[fuse] = team.optimize_branch(0, "new", z0=np.full(3, 0.1))
                lnl[fuse] = team.loglikelihood(0)
            metrics[fuse] = m.snapshot()
        np.testing.assert_allclose(out[True], out[False], atol=1e-9)
        assert lnl[True] == pytest.approx(lnl[False], abs=1e-9)
        fused_b = metrics[True]["broadcasts.total"]["value"]
        plain_b = metrics[False]["broadcasts.total"]["value"]
        # R solver rounds + 2 barriers fused vs R + 4 + P unfused: the
        # acceptance criterion's measurable barrier reduction.
        assert fused_b <= plain_b - 4
        cpb = metrics[True]["commands_per_barrier"]
        assert cpb["mean"] > 1.0

    @pytest.mark.timeout(60)
    def test_optimize_alpha_fused_matches_unfused(self, setup):
        out, metrics = {}, {}
        for fuse in (True, False):
            m = MetricsRegistry()
            with make_team(setup, fuse_programs=fuse, metrics=m) as team:
                out[fuse] = team.optimize_alpha("new")
            metrics[fuse] = m.snapshot()
        np.testing.assert_allclose(out[True], out[False], atol=1e-9)
        # P set_alpha broadcasts collapse into one set_alpha_vec.
        assert (metrics[True]["broadcasts.total"]["value"]
                == metrics[False]["broadcasts.total"]["value"] - 2)

    @pytest.mark.timeout(60)
    def test_fused_matches_sequential_engine(self, setup):
        data, tree, lengths, models, alphas = setup
        seq = PartitionedEngine(
            data, tree.copy(), models=list(models), alphas=list(alphas),
            initial_lengths=lengths,
        )
        with make_team(setup) as team:
            assert team.loglikelihood(0) == pytest.approx(
                seq.loglikelihood(0), abs=1e-8
            )


class TestSequentialStrategyFusion:
    def test_new_strategy_fuses_prepare_with_first_derivative(self, setup):
        """The sequential newPAR driver now opens ONE region holding the
        sumtable setup and the first derivative pass — the region the
        simulator charges a single sync for, mirroring the parallel
        backends' fused prepare+deriv program."""
        data, tree, lengths, models, alphas = setup
        recorder = TraceRecorder()
        engine = PartitionedEngine(
            data, tree.copy(), models=list(models), alphas=list(alphas),
            initial_lengths=lengths, recorder=recorder,
        )
        optimize_branch_lengths(engine, "new", passes=1, edges=[0])
        trace = recorder.finalize(engine.pattern_counts(), engine.states())
        fused = [
            r for r in trace.regions
            if {"sumtable", "derivative"} <= {it.op for it in r.items}
        ]
        assert fused, "no region fuses sumtable setup with a derivative pass"


class TestZeroWidthFastPath:
    def test_empty_slices_short_circuit(self, setup):
        _, tree, lengths, models, alphas = setup
        rng = np.random.default_rng(11)
        tiny_aln = simulate_alignment(tree, lengths, models[0], 1.0, 6, rng)
        tiny = PartitionedAlignment(tiny_aln, uniform_scheme(6, 3))
        # With far more workers than patterns, the last worker owns zero
        # patterns of every partition.
        state = WorkerState(
            slice_partition_data(tiny, 6, 5), tree.copy(), models[:2],
            alphas[:2], lengths,
        )
        assert all(state._empty)
        assert state.execute(("lnl", 0)) == 0.0
        np.testing.assert_array_equal(
            state.execute(("lnl_parts", 0, [0, 1])), np.zeros(2)
        )
        out = state.execute(("prog", (("prepare", 0, 1, [0, 1]),
                                      ("deriv", 1, np.full(2, 0.1), [0, 1]),
                                      ("release", 1))))
        np.testing.assert_array_equal(out[1][0], np.zeros(2))


class TestTeamPlanCache:
    def test_policy_name_builds_one_plan_per_team(self, setup, monkeypatch):
        import repro.parallel.worker as worker_mod

        data, *_ = setup
        calls = []
        real = worker_mod.build_plan

        def counting(layout, n_workers, policy):
            calls.append(policy)
            return real(layout, n_workers, policy)

        monkeypatch.setattr(worker_mod, "build_plan", counting)
        slices = [slice_partition_data(data, 3, w, "block") for w in range(3)]
        assert len(calls) == 1
        # and every worker was sliced from that same plan: the slices tile
        # each partition exactly.
        for p, n_pat in enumerate(data.pattern_counts()):
            assert sum(sl[p].n_patterns for sl in slices) == n_pat
