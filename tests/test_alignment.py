"""Unit + property tests for alignments and pattern compression."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plk import AA, DNA, Alignment, compress_columns


def _aln(seqs):
    return Alignment.from_sequences(seqs)


class TestConstruction:
    def test_basic(self):
        a = _aln({"x": "ACGT", "y": "AC-T"})
        assert a.n_taxa == 2
        assert a.n_sites == 4
        assert a.taxa == ("x", "y")

    def test_sequences_uppercased(self):
        a = _aln({"x": "acgt"})
        assert a.sequence("x") == "ACGT"

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError, match="unequal"):
            _aln({"x": "ACGT", "y": "ACG"})

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Alignment.from_sequences({})

    def test_duplicate_taxa_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Alignment(("x", "x"), np.full((2, 3), 65, dtype=np.uint8))

    def test_matrix_is_readonly(self):
        a = _aln({"x": "ACGT"})
        with pytest.raises(ValueError):
            a.matrix[0, 0] = 1

    def test_column_slice(self):
        a = _aln({"x": "ACGT", "y": "TGCA"})
        sub = a.columns(1, 3)
        assert sub.sequence("x") == "CG"
        assert sub.sequence("y") == "GC"

    def test_bad_column_range(self):
        a = _aln({"x": "ACGT"})
        with pytest.raises(IndexError):
            a.columns(2, 9)


class TestCompression:
    def test_all_unique(self):
        a = _aln({"x": "ACGT", "y": "AAAA"})
        patterns, weights, site_map = a.compress()
        assert patterns.n_sites == 4
        np.testing.assert_array_equal(weights, [1, 1, 1, 1])

    def test_duplicates_merged(self):
        a = _aln({"x": "AACA", "y": "GGTG"})
        patterns, weights, site_map = a.compress()
        assert patterns.n_sites == 2
        assert weights.sum() == 4
        # first-appearance order: column (A,G) then (C,T)
        assert patterns.sequence("x") == "AC"
        np.testing.assert_array_equal(weights, [3, 1])
        np.testing.assert_array_equal(site_map, [0, 0, 1, 0])

    def test_site_map_reconstructs_original(self):
        a = _aln({"x": "ACGTACGA", "y": "ACGGACGA"})
        patterns, weights, site_map = a.compress()
        rebuilt = patterns.matrix[:, site_map]
        np.testing.assert_array_equal(rebuilt, a.matrix)

    def test_weights_count_multiplicity(self):
        a = _aln({"x": "AAAA"})
        _, weights, _ = a.compress()
        np.testing.assert_array_equal(weights, [4])

    def test_compress_columns_rejects_1d(self):
        with pytest.raises(ValueError):
            compress_columns(np.zeros(5, dtype=np.uint8))


class TestEncodeTips:
    def test_shape(self):
        a = _aln({"x": "ACGT", "y": "NNNN"})
        enc = a.encode_tips()
        assert enc.shape == (2, 4, 4)
        np.testing.assert_array_equal(enc[0], np.eye(4))
        np.testing.assert_array_equal(enc[1], np.ones((4, 4)))

    def test_aa_shape(self):
        a = Alignment.from_sequences({"x": "ARND"}, AA)
        assert a.encode_tips().shape == (1, 4, 20)


@st.composite
def dna_alignments(draw):
    n_taxa = draw(st.integers(2, 6))
    n_sites = draw(st.integers(1, 40))
    chars = st.sampled_from("ACGT-N")
    seqs = {
        f"t{i}": "".join(draw(st.lists(chars, min_size=n_sites, max_size=n_sites)))
        for i in range(n_taxa)
    }
    return Alignment.from_sequences(seqs)


class TestCompressionProperties:
    @given(dna_alignments())
    @settings(max_examples=60, deadline=None)
    def test_weights_sum_to_site_count(self, aln):
        _, weights, _ = aln.compress()
        assert weights.sum() == aln.n_sites

    @given(dna_alignments())
    @settings(max_examples=60, deadline=None)
    def test_patterns_are_distinct(self, aln):
        patterns, _, _ = aln.compress()
        cols = {patterns.matrix[:, j].tobytes() for j in range(patterns.n_sites)}
        assert len(cols) == patterns.n_sites

    @given(dna_alignments())
    @settings(max_examples=60, deadline=None)
    def test_site_map_is_exact(self, aln):
        patterns, _, site_map = aln.compress()
        np.testing.assert_array_equal(patterns.matrix[:, site_map], aln.matrix)

    @given(dna_alignments())
    @settings(max_examples=60, deadline=None)
    def test_compression_idempotent(self, aln):
        patterns, _, _ = aln.compress()
        again, weights, _ = patterns.compress()
        assert again.n_sites == patterns.n_sites
        assert (weights == 1).all()
