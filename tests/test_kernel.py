"""Kernel-primitive tests: newview/evaluate/sumtable/derivatives.

The derivative machinery is validated against finite differences; the
sumtable log-likelihood against the direct evaluate() path.
"""
import warnings

import numpy as np
import pytest

from repro.plk import EigenSystem, SubstitutionModel, discrete_gamma_rates, kernel


@pytest.fixture(scope="module")
def setup():
    model = SubstitutionModel.random_gtr(23)
    eig = EigenSystem.from_model(model)
    rates = discrete_gamma_rates(0.7, 4)
    rng = np.random.default_rng(5)
    m = 37
    clv_a = rng.random((4, m, 4)) + 0.01
    clv_b = rng.random((4, m, 4)) + 0.01
    weights = rng.integers(1, 5, size=m).astype(np.int64)
    return model, eig, rates, clv_a, clv_b, weights


class TestPropagate:
    def test_full_clv_shape(self, setup):
        model, eig, rates, clv_a, _, _ = setup
        p = eig.transition_matrices(0.1, rates)
        out = kernel.propagate(p, clv_a)
        assert out.shape == clv_a.shape

    def test_tip_broadcast(self, setup):
        model, eig, rates, *_ = setup
        p = eig.transition_matrices(0.1, rates)
        tip = np.eye(4)[[0, 1, 2, 3, 0]]
        out = kernel.propagate(p, tip)
        assert out.shape == (4, 5, 4)
        # tip one-hot state s: out[k, i] == P[k, :, s]
        np.testing.assert_allclose(out[2, 1], p[2, :, 1], atol=1e-14)

    def test_identity_propagation(self, setup):
        """P = I leaves the CLV unchanged."""
        _, _, _, clv_a, _, _ = setup
        eye = np.broadcast_to(np.eye(4), (4, 4, 4)).copy()
        np.testing.assert_allclose(kernel.propagate(eye, clv_a), clv_a)


class TestNewview:
    def test_is_product_of_propagations(self, setup):
        model, eig, rates, clv_a, clv_b, _ = setup
        p1 = eig.transition_matrices(0.1, rates)
        p2 = eig.transition_matrices(0.3, rates)
        out, scale = kernel.newview(p1, clv_a, None, p2, clv_b, None)
        expected = kernel.propagate(p1, clv_a) * kernel.propagate(p2, clv_b)
        np.testing.assert_allclose(out, expected, atol=1e-14)
        assert (scale == 0).all()

    def test_scaling_triggered_and_tracked(self, setup):
        model, eig, rates, clv_a, clv_b, _ = setup
        p1 = eig.transition_matrices(0.1, rates)
        p2 = eig.transition_matrices(0.1, rates)
        tiny_a = clv_a * kernel.SCALE_THRESHOLD
        out, scale = kernel.newview(p1, tiny_a, None, p2, clv_b, None)
        assert (scale >= 1).all()
        # scaled values are back in healthy range
        assert out.max() > kernel.SCALE_THRESHOLD

    def test_scale_counters_accumulate(self, setup):
        model, eig, rates, clv_a, clv_b, _ = setup
        p = eig.transition_matrices(0.2, rates)
        m = clv_a.shape[1]
        s1 = np.full(m, 2, dtype=np.int32)
        s2 = np.full(m, 3, dtype=np.int32)
        _, scale = kernel.newview(p, clv_a, s1, p, clv_b, s2)
        assert (scale >= 5).all()

    def test_zero_width_slice(self, setup):
        """A worker owning zero patterns must not crash (the paper's idle
        thread case)."""
        model, eig, rates, *_ = setup
        p = eig.transition_matrices(0.1, rates)
        empty = np.zeros((4, 0, 4))
        out, scale = kernel.newview(p, empty, None, p, empty, None)
        assert out.shape == (4, 0, 4)
        assert scale.shape == (0,)


class TestEvaluate:
    def test_zero_weights_zero_loglik(self, setup):
        model, eig, rates, clv_a, clv_b, weights = setup
        p = eig.transition_matrices(0.2, rates)
        lnl = kernel.evaluate(p, clv_a, None, clv_b, None, model.frequencies, weights * 0)
        assert lnl == 0.0

    def test_weights_scale_linearly(self, setup):
        model, eig, rates, clv_a, clv_b, weights = setup
        p = eig.transition_matrices(0.2, rates)
        one = kernel.evaluate(p, clv_a, None, clv_b, None, model.frequencies, weights)
        two = kernel.evaluate(p, clv_a, None, clv_b, None, model.frequencies, weights * 2)
        assert two == pytest.approx(2 * one)

    def test_scalers_shift_loglik(self, setup):
        model, eig, rates, clv_a, clv_b, weights = setup
        p = eig.transition_matrices(0.2, rates)
        m = clv_a.shape[1]
        base = kernel.evaluate(p, clv_a, None, clv_b, None, model.frequencies, weights)
        ones = np.ones(m, dtype=np.int32)
        shifted = kernel.evaluate(p, clv_a, ones, clv_b, None, model.frequencies, weights)
        expected = base - weights.sum() * kernel.LOG_SCALE_FACTOR
        assert shifted == pytest.approx(expected)

    def test_scaled_clv_equals_unscaled(self, setup):
        """Multiplying a CLV by 2^256 with counter 1 gives the same lnl."""
        model, eig, rates, clv_a, clv_b, weights = setup
        p = eig.transition_matrices(0.2, rates)
        m = clv_a.shape[1]
        base = kernel.evaluate(p, clv_a, None, clv_b, None, model.frequencies, weights)
        scaled = kernel.evaluate(
            p,
            clv_a * kernel.SCALE_FACTOR,
            np.ones(m, dtype=np.int32),
            clv_b,
            None,
            model.frequencies,
            weights,
        )
        assert scaled == pytest.approx(base)


class TestSumtable:
    def test_loglik_matches_evaluate(self, setup):
        """sumtable path == direct evaluate path, for several lengths."""
        model, eig, rates, clv_a, clv_b, weights = setup
        table = kernel.make_sumtable(clv_a, clv_b, eig.u, eig.v, model.frequencies)
        for z in (0.01, 0.1, 0.7, 3.0):
            p = eig.transition_matrices(z, rates)
            direct = kernel.evaluate(p, clv_a, None, clv_b, None, model.frequencies, weights)
            via_table = kernel.sumtable_loglikelihood(
                table, eig.eigenvalues, rates, z, weights, None
            )
            assert via_table == pytest.approx(direct, abs=1e-9)

    def test_derivatives_match_finite_differences(self, setup):
        model, eig, rates, clv_a, clv_b, weights = setup
        table = kernel.make_sumtable(clv_a, clv_b, eig.u, eig.v, model.frequencies)
        z = 0.4

        def lnl(zz):
            return kernel.sumtable_loglikelihood(
                table, eig.eigenvalues, rates, zz, weights, None
            )

        d1, d2 = kernel.branch_derivatives(table, eig.eigenvalues, rates, z, weights)
        h1 = 1e-6
        fd1 = (lnl(z + h1) - lnl(z - h1)) / (2 * h1)
        # second differences need a larger step to avoid catastrophic
        # cancellation in float64
        h2 = 1e-4
        fd2 = (lnl(z + h2) - 2 * lnl(z) + lnl(z - h2)) / h2**2
        assert d1 == pytest.approx(fd1, rel=1e-5)
        assert d2 == pytest.approx(fd2, rel=1e-4)

    def test_tip_inputs_accepted(self, setup):
        model, eig, rates, _, clv_b, weights = setup
        m = clv_b.shape[1]
        tips = np.eye(4)[np.random.default_rng(0).integers(0, 4, m)]
        table = kernel.make_sumtable(tips, clv_b, eig.u, eig.v, model.frequencies)
        assert table.shape == (4, m, 4)


class TestDeadPatterns:
    """Regression tests for the zero-max-pattern scaling bug: a pattern
    whose CLV underflows to exactly zero must surface as lnl = -inf, not
    pick up scale counters and masquerade as a finite (astronomically
    negative) likelihood."""

    def _with_dead_pattern(self, setup):
        model, eig, rates, clv_a, clv_b, weights = setup
        clv_a = clv_a.copy()
        clv_a[:, 3, :] = 0.0  # pattern 3 is impossible on this subtree
        return model, eig, rates, clv_a, clv_b, weights

    def test_newview_flags_zero_max_pattern(self, setup):
        model, eig, rates, clv_a, clv_b, _ = self._with_dead_pattern(setup)
        p = eig.transition_matrices(0.1, rates)
        out, scale = kernel.newview(p, clv_a, None, p, clv_b, None)
        dead = kernel.zero_pattern_mask(scale)
        assert dead is not None and dead[3] and dead.sum() == 1
        # the dead pattern's CLV is flushed to a harmless 1.0 plane,
        # NOT endlessly multiplied by 2^256
        np.testing.assert_array_equal(out[:, 3, :], 1.0)

    def test_zero_pattern_does_not_defeat_fast_path(self, setup):
        """One dead pattern must not drag healthy neighbors into the
        slow rescale path (pre-fix: result.min()==0 forced a full pass
        and pattern 3 got a bogus counter)."""
        model, eig, rates, clv_a, clv_b, _ = self._with_dead_pattern(setup)
        p = eig.transition_matrices(0.1, rates)
        out, scale = kernel.newview(p, clv_a, None, p, clv_b, None)
        healthy = np.ones(out.shape[1], dtype=bool)
        healthy[3] = False
        assert (scale[healthy] == 0).all()
        expected = kernel.propagate(p, clv_a) * kernel.propagate(p, clv_b)
        np.testing.assert_allclose(out[:, healthy], expected[:, healthy],
                                   atol=1e-14)

    def test_dead_pattern_with_weight_gives_neg_inf(self, setup):
        """Pre-fix this produced a finite -weight*256*ln2-ish number."""
        model, eig, rates, clv_a, clv_b, weights = self._with_dead_pattern(setup)
        p = eig.transition_matrices(0.1, rates)
        left, s_left = kernel.newview(p, clv_a, None, p, clv_b, None)
        lnl = kernel.evaluate(p, left, s_left, clv_b, None,
                              model.frequencies, weights)
        assert lnl == -np.inf

    def test_dead_pattern_with_zero_weight_is_dropped(self, setup):
        model, eig, rates, clv_a, clv_b, weights = self._with_dead_pattern(setup)
        p = eig.transition_matrices(0.1, rates)
        left, s_left = kernel.newview(p, clv_a, None, p, clv_b, None)
        w = weights.copy()
        w[3] = 0
        lnl = kernel.evaluate(p, left, s_left, clv_b, None,
                              model.frequencies, w)
        assert np.isfinite(lnl)

    def test_sentinel_survives_inheritance(self, setup):
        """A dead child stays dead through further pruning steps."""
        model, eig, rates, clv_a, clv_b, _ = self._with_dead_pattern(setup)
        p = eig.transition_matrices(0.1, rates)
        out1, s1 = kernel.newview(p, clv_a, None, p, clv_b, None)
        out2, s2 = kernel.newview(p, out1, s1, p, clv_b, None)
        dead = kernel.zero_pattern_mask(s2)
        assert dead is not None and dead[3]
        # counters never overflow int32 however deep the tree goes
        out3, s3 = kernel.newview(p, out2, s2, p, out2, s2)
        assert kernel.zero_pattern_mask(s3)[3]
        assert s3.dtype == np.int32 and (s3 <= kernel.ZERO_SCALE).all()

    def test_derivatives_ignore_dead_patterns(self, setup):
        """A dead pattern's -inf lnl is flat in branch length: its ratio
        terms are 0/0 and must contribute exactly zero, not NaN."""
        model, eig, rates, clv_a, clv_b, weights = self._with_dead_pattern(setup)
        p = eig.transition_matrices(0.1, rates)
        left, s_left = kernel.newview(p, clv_a, None, p, clv_b, None)
        table = kernel.make_sumtable(left, clv_b, eig.u, eig.v,
                                     model.frequencies)
        table[:, 3, :] = 0.0  # what a dead pattern's sumtable looks like
        d1, d2 = kernel.branch_derivatives(
            table, eig.eigenvalues, rates, 0.4, weights, scale=s_left
        )
        assert np.isfinite(d1) and np.isfinite(d2)


class TestLogDomainGuards:
    """Regression tests for the unguarded np.log(site) call sites: a zero
    site likelihood must yield -inf silently, never a RuntimeWarning."""

    def test_scaled_log_likelihoods_on_zero_site(self):
        site = np.array([0.5, 0.0, 2.0])
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # pre-fix: divide-by-zero warns
            logs = kernel.scaled_log_likelihoods(site, None)
        assert logs[0] == pytest.approx(np.log(0.5))
        assert logs[1] == -np.inf
        assert logs[2] == pytest.approx(np.log(2.0))

    def test_scaled_log_likelihoods_applies_counters(self):
        site = np.array([1.0, 1.0])
        scale = np.array([0, 3], dtype=np.int32)
        logs = kernel.scaled_log_likelihoods(site, scale)
        assert logs[0] == 0.0
        assert logs[1] == pytest.approx(-3 * kernel.LOG_SCALE_FACTOR)

    def test_evaluate_zero_site_no_warning(self, setup):
        model, eig, rates, clv_a, clv_b, weights = setup
        clv_a = clv_a.copy()
        clv_a[:, 5, :] = 0.0  # site likelihood is exactly 0 at the root
        p = eig.transition_matrices(0.2, rates)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            lnl = kernel.evaluate(p, clv_a, None, clv_b, None,
                                  model.frequencies, weights)
        assert lnl == -np.inf

    def test_sumtable_loglikelihood_zero_site_no_warning(self, setup):
        model, eig, rates, clv_a, clv_b, weights = setup
        clv_a = clv_a.copy()
        clv_a[:, 5, :] = 0.0
        table = kernel.make_sumtable(clv_a, clv_b, eig.u, eig.v,
                                     model.frequencies)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            lnl = kernel.sumtable_loglikelihood(
                table, eig.eigenvalues, rates, 0.3, weights, None
            )
        assert lnl == -np.inf

    def test_weighted_log_sum_semantics(self):
        w = np.array([2, 0, 1], dtype=np.int64)
        logs = np.array([-1.0, -np.inf, -2.0])
        # zero-weight -inf entries are excluded sites: dropped, not fatal
        assert kernel.weighted_log_sum(w, logs) == pytest.approx(-4.0)
        # positively weighted -inf makes the whole partition impossible
        logs[2] = -np.inf
        assert kernel.weighted_log_sum(w, logs) == -np.inf
