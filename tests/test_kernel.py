"""Kernel-primitive tests: newview/evaluate/sumtable/derivatives.

The derivative machinery is validated against finite differences; the
sumtable log-likelihood against the direct evaluate() path.
"""
import numpy as np
import pytest

from repro.plk import EigenSystem, SubstitutionModel, discrete_gamma_rates, kernel


@pytest.fixture(scope="module")
def setup():
    model = SubstitutionModel.random_gtr(23)
    eig = EigenSystem.from_model(model)
    rates = discrete_gamma_rates(0.7, 4)
    rng = np.random.default_rng(5)
    m = 37
    clv_a = rng.random((4, m, 4)) + 0.01
    clv_b = rng.random((4, m, 4)) + 0.01
    weights = rng.integers(1, 5, size=m).astype(np.int64)
    return model, eig, rates, clv_a, clv_b, weights


class TestPropagate:
    def test_full_clv_shape(self, setup):
        model, eig, rates, clv_a, _, _ = setup
        p = eig.transition_matrices(0.1, rates)
        out = kernel.propagate(p, clv_a)
        assert out.shape == clv_a.shape

    def test_tip_broadcast(self, setup):
        model, eig, rates, *_ = setup
        p = eig.transition_matrices(0.1, rates)
        tip = np.eye(4)[[0, 1, 2, 3, 0]]
        out = kernel.propagate(p, tip)
        assert out.shape == (4, 5, 4)
        # tip one-hot state s: out[k, i] == P[k, :, s]
        np.testing.assert_allclose(out[2, 1], p[2, :, 1], atol=1e-14)

    def test_identity_propagation(self, setup):
        """P = I leaves the CLV unchanged."""
        _, _, _, clv_a, _, _ = setup
        eye = np.broadcast_to(np.eye(4), (4, 4, 4)).copy()
        np.testing.assert_allclose(kernel.propagate(eye, clv_a), clv_a)


class TestNewview:
    def test_is_product_of_propagations(self, setup):
        model, eig, rates, clv_a, clv_b, _ = setup
        p1 = eig.transition_matrices(0.1, rates)
        p2 = eig.transition_matrices(0.3, rates)
        out, scale = kernel.newview(p1, clv_a, None, p2, clv_b, None)
        expected = kernel.propagate(p1, clv_a) * kernel.propagate(p2, clv_b)
        np.testing.assert_allclose(out, expected, atol=1e-14)
        assert (scale == 0).all()

    def test_scaling_triggered_and_tracked(self, setup):
        model, eig, rates, clv_a, clv_b, _ = setup
        p1 = eig.transition_matrices(0.1, rates)
        p2 = eig.transition_matrices(0.1, rates)
        tiny_a = clv_a * kernel.SCALE_THRESHOLD
        out, scale = kernel.newview(p1, tiny_a, None, p2, clv_b, None)
        assert (scale >= 1).all()
        # scaled values are back in healthy range
        assert out.max() > kernel.SCALE_THRESHOLD

    def test_scale_counters_accumulate(self, setup):
        model, eig, rates, clv_a, clv_b, _ = setup
        p = eig.transition_matrices(0.2, rates)
        m = clv_a.shape[1]
        s1 = np.full(m, 2, dtype=np.int32)
        s2 = np.full(m, 3, dtype=np.int32)
        _, scale = kernel.newview(p, clv_a, s1, p, clv_b, s2)
        assert (scale >= 5).all()

    def test_zero_width_slice(self, setup):
        """A worker owning zero patterns must not crash (the paper's idle
        thread case)."""
        model, eig, rates, *_ = setup
        p = eig.transition_matrices(0.1, rates)
        empty = np.zeros((4, 0, 4))
        out, scale = kernel.newview(p, empty, None, p, empty, None)
        assert out.shape == (4, 0, 4)
        assert scale.shape == (0,)


class TestEvaluate:
    def test_zero_weights_zero_loglik(self, setup):
        model, eig, rates, clv_a, clv_b, weights = setup
        p = eig.transition_matrices(0.2, rates)
        lnl = kernel.evaluate(p, clv_a, None, clv_b, None, model.frequencies, weights * 0)
        assert lnl == 0.0

    def test_weights_scale_linearly(self, setup):
        model, eig, rates, clv_a, clv_b, weights = setup
        p = eig.transition_matrices(0.2, rates)
        one = kernel.evaluate(p, clv_a, None, clv_b, None, model.frequencies, weights)
        two = kernel.evaluate(p, clv_a, None, clv_b, None, model.frequencies, weights * 2)
        assert two == pytest.approx(2 * one)

    def test_scalers_shift_loglik(self, setup):
        model, eig, rates, clv_a, clv_b, weights = setup
        p = eig.transition_matrices(0.2, rates)
        m = clv_a.shape[1]
        base = kernel.evaluate(p, clv_a, None, clv_b, None, model.frequencies, weights)
        ones = np.ones(m, dtype=np.int32)
        shifted = kernel.evaluate(p, clv_a, ones, clv_b, None, model.frequencies, weights)
        expected = base - weights.sum() * kernel.LOG_SCALE_FACTOR
        assert shifted == pytest.approx(expected)

    def test_scaled_clv_equals_unscaled(self, setup):
        """Multiplying a CLV by 2^256 with counter 1 gives the same lnl."""
        model, eig, rates, clv_a, clv_b, weights = setup
        p = eig.transition_matrices(0.2, rates)
        m = clv_a.shape[1]
        base = kernel.evaluate(p, clv_a, None, clv_b, None, model.frequencies, weights)
        scaled = kernel.evaluate(
            p,
            clv_a * kernel.SCALE_FACTOR,
            np.ones(m, dtype=np.int32),
            clv_b,
            None,
            model.frequencies,
            weights,
        )
        assert scaled == pytest.approx(base)


class TestSumtable:
    def test_loglik_matches_evaluate(self, setup):
        """sumtable path == direct evaluate path, for several lengths."""
        model, eig, rates, clv_a, clv_b, weights = setup
        table = kernel.make_sumtable(clv_a, clv_b, eig.u, eig.v, model.frequencies)
        for z in (0.01, 0.1, 0.7, 3.0):
            p = eig.transition_matrices(z, rates)
            direct = kernel.evaluate(p, clv_a, None, clv_b, None, model.frequencies, weights)
            via_table = kernel.sumtable_loglikelihood(
                table, eig.eigenvalues, rates, z, weights, None
            )
            assert via_table == pytest.approx(direct, abs=1e-9)

    def test_derivatives_match_finite_differences(self, setup):
        model, eig, rates, clv_a, clv_b, weights = setup
        table = kernel.make_sumtable(clv_a, clv_b, eig.u, eig.v, model.frequencies)
        z = 0.4

        def lnl(zz):
            return kernel.sumtable_loglikelihood(
                table, eig.eigenvalues, rates, zz, weights, None
            )

        d1, d2 = kernel.branch_derivatives(table, eig.eigenvalues, rates, z, weights)
        h1 = 1e-6
        fd1 = (lnl(z + h1) - lnl(z - h1)) / (2 * h1)
        # second differences need a larger step to avoid catastrophic
        # cancellation in float64
        h2 = 1e-4
        fd2 = (lnl(z + h2) - 2 * lnl(z) + lnl(z - h2)) / h2**2
        assert d1 == pytest.approx(fd1, rel=1e-5)
        assert d2 == pytest.approx(fd2, rel=1e-4)

    def test_tip_inputs_accepted(self, setup):
        model, eig, rates, _, clv_b, weights = setup
        m = clv_b.shape[1]
        tips = np.eye(4)[np.random.default_rng(0).integers(0, 4, m)]
        table = kernel.make_sumtable(tips, clv_b, eig.u, eig.v, model.frequencies)
        assert table.shape == (4, m, 4)
