"""oldPAR vs newPAR strategy tests — the paper's core claims:

1. Both strategies produce the same numerical results (same optima).
2. Both perform the same total kernel work per partition.
3. newPAR packs that work into far fewer parallel regions (barriers).
4. Joint-branch-length mode makes branch optimization strategy-neutral.
"""
import numpy as np
import pytest

from repro.core import (
    PartitionedEngine,
    TraceRecorder,
    optimize_alpha,
    optimize_branch,
    optimize_branch_lengths,
    optimize_model,
    optimize_rates,
    smoothing_edge_order,
)


def engine_pair(data, tree, lengths, branch_mode="per_partition"):
    out = {}
    for strategy in ("old", "new"):
        rec = TraceRecorder()
        eng = PartitionedEngine(
            data, tree.copy(), branch_mode=branch_mode,
            initial_lengths=lengths, recorder=rec,
        )
        out[strategy] = (eng, rec)
    return out


class TestEquivalence:
    def test_branch_optimum_identical(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        pair = engine_pair(small_partitioned, tree, lengths)
        for strategy, (eng, _) in pair.items():
            optimize_branch(eng, 0, strategy)
        old_bl = pair["old"][0].branch_lengths()[0]
        new_bl = pair["new"][0].branch_lengths()[0]
        np.testing.assert_allclose(old_bl, new_bl, atol=1e-4)

    def test_alpha_optimum_identical(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        pair = engine_pair(small_partitioned, tree, lengths)
        for strategy, (eng, _) in pair.items():
            optimize_alpha(eng, strategy)
        old_a = [p.alpha for p in pair["old"][0].parts]
        new_a = [p.alpha for p in pair["new"][0].parts]
        np.testing.assert_allclose(old_a, new_a, rtol=1e-2)

    def test_full_model_opt_same_loglik(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        pair = engine_pair(small_partitioned, tree, lengths)
        finals = {
            s: optimize_model(eng, s, max_rounds=2)
            for s, (eng, _) in pair.items()
        }
        assert finals["old"] == pytest.approx(finals["new"], abs=0.5)

    def test_same_total_work_fewer_regions(self, small_partitioned, small_tree):
        """The headline schedule property."""
        tree, lengths = small_tree
        pair = engine_pair(small_partitioned, tree, lengths)
        traces = {}
        for strategy, (eng, rec) in pair.items():
            optimize_model(eng, strategy, max_rounds=1)
            traces[strategy] = rec.finalize(eng.pattern_counts(), eng.states())
        old, new = traces["old"], traces["new"]
        # total work agrees closely (convergence paths may differ slightly)
        to, tn = old.op_totals(), new.op_totals()
        for op in to:
            assert to[op] == pytest.approx(tn[op], rel=0.15)
        # regions: newPAR uses several times fewer barriers
        assert old.n_regions > 2 * new.n_regions


class TestJointMode:
    def test_branch_opt_strategy_neutral(self, small_partitioned, small_tree):
        """Joint branch lengths: old and new produce the SAME schedule for
        branch optimization (paper: 'insignificant' differences)."""
        tree, lengths = small_tree
        pair = engine_pair(small_partitioned, tree, lengths, branch_mode="joint")
        traces = {}
        for strategy, (eng, rec) in pair.items():
            optimize_branch_lengths(eng, strategy, passes=1)
            traces[strategy] = rec.finalize(eng.pattern_counts(), eng.states())
        assert traces["old"].n_regions == traces["new"].n_regions
        bl_old = pair["old"][0].branch_lengths()
        bl_new = pair["new"][0].branch_lengths()
        np.testing.assert_allclose(bl_old, bl_new, atol=1e-8)

    def test_joint_lengths_stay_tied(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        pair = engine_pair(small_partitioned, tree, lengths, branch_mode="joint")
        eng, _ = pair["new"]
        optimize_branch_lengths(eng, "new", passes=1)
        bl = eng.branch_lengths()
        for edge in range(bl.shape[0]):
            assert len(set(np.round(bl[edge], 12))) == 1


class TestMonotonicity:
    def test_branch_smoothing_never_decreases(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        eng = PartitionedEngine(
            small_partitioned, tree.copy(), initial_lengths=lengths
        )
        before = eng.loglikelihood()
        for _ in range(3):
            optimize_branch_lengths(eng, "new", passes=1)
            after = eng.loglikelihood()
            assert after >= before - 1e-6
            before = after

    def test_alpha_opt_never_decreases(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        eng = PartitionedEngine(
            small_partitioned, tree.copy(), initial_lengths=lengths
        )
        before = eng.loglikelihood()
        optimize_alpha(eng, "new")
        assert eng.loglikelihood() >= before - 1e-6

    def test_rates_opt_never_decreases(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        eng = PartitionedEngine(
            small_partitioned, tree.copy(), initial_lengths=lengths
        )
        before = eng.loglikelihood()
        optimize_rates(eng, "new")
        assert eng.loglikelihood() >= before - 1e-6


class TestMisc:
    def test_invalid_strategy(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        eng = PartitionedEngine(small_partitioned, tree.copy())
        with pytest.raises(ValueError, match="strategy"):
            optimize_branch(eng, 0, "fastest")

    def test_smoothing_order_covers_all_edges(self, small_tree):
        tree, _ = small_tree
        order = smoothing_edge_order(tree)
        assert sorted(order) == list(range(tree.n_edges))

    def test_smoothing_order_is_local(self, small_tree):
        """Consecutive edges in the order share a node (cheap re-rooting)."""
        tree, _ = small_tree
        order = smoothing_edge_order(tree)
        adjacent_pairs = 0
        for e1, e2 in zip(order, order[1:]):
            n1 = set(tree.edge_nodes(e1))
            n2 = set(tree.edge_nodes(e2))
            if n1 & n2:
                adjacent_pairs += 1
        assert adjacent_pairs >= len(order) // 2

    def test_rates_skip_protein_partitions(self):
        """AA partitions keep their empirical rates fixed."""
        import numpy as np
        from repro.plk import Alignment, PartitionedAlignment, parse_partition_file
        from repro.plk import SubstitutionModel

        aln = Alignment.from_sequences(
            {"x": "ACGTARNDCQ", "y": "ACCTARNECQ", "z": "ACGAARNDCW"}
        )
        scheme = parse_partition_file("DNA, d = 1-4\nAA, p = 5-10")
        data = PartitionedAlignment(aln, scheme)
        tree = __import__("repro.plk", fromlist=["Tree"]).Tree.random(
            ("x", "y", "z"), np.random.default_rng(0)
        )
        eng = PartitionedEngine(data, tree)
        aa_rates_before = eng.parts[1].model.rates.copy()
        counts = optimize_rates(eng, "new")
        np.testing.assert_array_equal(eng.parts[1].model.rates, aa_rates_before)
        assert counts[1] == 0
        assert counts[0] > 0
