"""Proportion-of-invariable-sites (+I) model tests."""
import numpy as np
import pytest

from repro.core import PartitionedEngine, optimize_pinv
from repro.plk import (
    Alignment,
    PartitionedAlignment,
    PartitionLikelihood,
    SubstitutionModel,
    uniform_scheme,
)
from repro.seqgen import random_topology_with_lengths, simulate_alignment


@pytest.fixture(scope="module")
def mixed_data():
    """70% Gamma-variable sites + 30% strictly invariant sites."""
    rng = np.random.default_rng(7)
    tree, lengths = random_topology_with_lengths(8, rng)
    model = SubstitutionModel.random_gtr(5)
    variable = simulate_alignment(tree, lengths, model, 1.0, 1_400, rng)
    frozen = simulate_alignment(
        tree, np.full(tree.n_edges, 1e-8), model, 1.0, 600, rng
    )
    aln = Alignment(
        tree.taxa, np.concatenate([variable.matrix, frozen.matrix], axis=1)
    )
    data = PartitionedAlignment(aln, uniform_scheme(2_000, 2_000))
    return data, tree, lengths, model


def make_engine(data, tree, lengths, model, pinv=0.0):
    part = PartitionLikelihood(data.data[0], tree, model, alpha=1.0)
    part.set_branch_lengths(lengths)
    part.pinv = pinv
    return part


class TestModel:
    def test_pinv_zero_is_plain_gamma(self, mixed_data):
        data, tree, lengths, model = mixed_data
        engine = make_engine(data, tree, lengths, model)
        base = engine.loglikelihood(0)
        engine.pinv = 0.0
        assert engine.loglikelihood(0) == base

    def test_pinv_bounds(self, mixed_data):
        data, tree, lengths, model = mixed_data
        engine = make_engine(data, tree, lengths, model)
        with pytest.raises(ValueError):
            engine.pinv = 1.0
        with pytest.raises(ValueError):
            engine.pinv = -0.1

    def test_invariant_probabilities(self, mixed_data):
        data, tree, lengths, model = mixed_data
        engine = make_engine(data, tree, lengths, model)
        inv = engine.invariant_probabilities()
        assert inv.shape == (engine.n_patterns,)
        assert (inv >= 0).all() and (inv <= 1.0 + 1e-12).all()
        # variable patterns have zero invariant mass; some patterns must
        # be invariant in this dataset
        assert (inv == 0).any() and (inv > 0).any()

    def test_pinv_improves_fit_on_mixture_data(self, mixed_data):
        data, tree, lengths, model = mixed_data
        plain = make_engine(data, tree, lengths, model, pinv=0.0)
        mixed = make_engine(data, tree, lengths, model, pinv=0.3)
        assert mixed.loglikelihood(0) > plain.loglikelihood(0)

    def test_root_invariance_with_pinv(self, mixed_data):
        data, tree, lengths, model = mixed_data
        engine = make_engine(data, tree, lengths, model, pinv=0.25)
        values = [engine.loglikelihood(e) for e in (0, 3, tree.n_edges - 1)]
        np.testing.assert_allclose(values, values[0], atol=1e-8)

    def test_pinv_does_not_invalidate_clvs(self, mixed_data):
        data, tree, lengths, model = mixed_data
        engine = make_engine(data, tree, lengths, model)
        engine.loglikelihood(0)
        engine.pinv = 0.2
        assert engine.refresh(0) == 0  # nothing recomputed


class TestBranchMachinery:
    def test_workspace_lnl_matches_full(self, mixed_data):
        data, tree, lengths, model = mixed_data
        engine = make_engine(data, tree, lengths, model, pinv=0.3)
        ref = engine.loglikelihood(2)
        ws = engine.prepare_branch(2)
        assert engine.branch_loglikelihood(ws, lengths[2]) == pytest.approx(
            ref, abs=1e-8
        )

    def test_derivatives_match_finite_differences(self, mixed_data):
        data, tree, lengths, model = mixed_data
        engine = make_engine(data, tree, lengths, model, pinv=0.3)
        ws = engine.prepare_branch(4)
        z = 0.17
        d1, d2 = engine.branch_derivatives(ws, z)
        f = lambda zz: engine.branch_loglikelihood(ws, zz)
        h = 1e-6
        assert d1 == pytest.approx((f(z + h) - f(z - h)) / (2 * h), rel=1e-4)
        h = 1e-4
        assert d2 == pytest.approx(
            (f(z + h) - 2 * f(z) + f(z - h)) / h**2, rel=1e-3
        )


class TestOptimization:
    def test_recovers_invariant_fraction(self, mixed_data):
        data, tree, lengths, model = mixed_data
        for strategy in ("old", "new"):
            engine = PartitionedEngine(
                data, tree.copy(), models=[model], initial_lengths=lengths
            )
            optimize_pinv(engine, strategy)
            assert engine.parts[0].pinv == pytest.approx(0.3, abs=0.07)

    def test_improves_likelihood(self, mixed_data):
        data, tree, lengths, model = mixed_data
        engine = PartitionedEngine(
            data, tree.copy(), models=[model], initial_lengths=lengths
        )
        before = engine.loglikelihood()
        optimize_pinv(engine, "new")
        assert engine.loglikelihood() > before

    def test_near_zero_on_saturated_data(self):
        """All-variable data (long branches): pinv optimizes to ~0."""
        rng = np.random.default_rng(9)
        tree, lengths = random_topology_with_lengths(6, rng)
        model = SubstitutionModel.random_gtr(1)
        aln = simulate_alignment(tree, lengths * 5.0, model, 5.0, 800, rng)
        data = PartitionedAlignment(aln, uniform_scheme(800, 800))
        engine = PartitionedEngine(
            data, tree.copy(), models=[model], initial_lengths=lengths * 5.0
        )
        optimize_pinv(engine, "new")
        assert engine.parts[0].pinv < 0.05
