"""Proportional branch-length mode tests (shared lengths x per-partition
multipliers)."""
import numpy as np
import pytest

from repro.core import (
    PartitionedEngine,
    optimize_branch,
    optimize_branch_lengths,
    optimize_model,
    optimize_scalers,
)
from repro.plk import Alignment, PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment


@pytest.fixture(scope="module")
def proportional_data():
    """Two genes generated at exactly 1x and 2.5x the same tree."""
    rng = np.random.default_rng(23)
    tree, lengths = random_topology_with_lengths(8, rng)
    blocks = []
    for mult in (1.0, 2.5):
        aln = simulate_alignment(
            tree, lengths * mult, SubstitutionModel.random_gtr(4), 1.0, 900, rng
        )
        blocks.append(aln.matrix)
    alignment = Alignment(tree.taxa, np.concatenate(blocks, axis=1))
    return PartitionedAlignment(alignment, uniform_scheme(1_800, 900)), tree, lengths


class TestMode:
    def test_scalers_default_to_one(self, proportional_data):
        data, tree, lengths = proportional_data
        eng = PartitionedEngine(
            data, tree.copy(), branch_mode="proportional", initial_lengths=lengths
        )
        np.testing.assert_array_equal(eng.scalers, [1.0, 1.0])

    def test_set_scaler_rescales_partition(self, proportional_data):
        data, tree, lengths = proportional_data
        eng = PartitionedEngine(
            data, tree.copy(), branch_mode="proportional", initial_lengths=lengths
        )
        eng.set_scaler(1, 2.0)
        bl = eng.branch_lengths()
        np.testing.assert_allclose(bl[:, 1], 2.0 * bl[:, 0])

    def test_set_scaler_requires_mode(self, proportional_data):
        data, tree, lengths = proportional_data
        eng = PartitionedEngine(data, tree.copy(), branch_mode="joint")
        with pytest.raises(ValueError, match="proportional"):
            eng.set_scaler(0, 2.0)

    def test_positive_scalers_only(self, proportional_data):
        data, tree, lengths = proportional_data
        eng = PartitionedEngine(
            data, tree.copy(), branch_mode="proportional", initial_lengths=lengths
        )
        with pytest.raises(ValueError, match="positive"):
            eng.set_scaler(0, -1.0)

    def test_per_partition_set_rejected(self, proportional_data):
        data, tree, lengths = proportional_data
        eng = PartitionedEngine(
            data, tree.copy(), branch_mode="proportional", initial_lengths=lengths
        )
        with pytest.raises(ValueError, match="per-partition"):
            eng.set_branch_length(0, 0.1, partition=1)

    def test_global_length_scales_through(self, proportional_data):
        data, tree, lengths = proportional_data
        eng = PartitionedEngine(
            data, tree.copy(), branch_mode="proportional", initial_lengths=lengths
        )
        eng.set_scaler(1, 3.0)
        eng.set_branch_length(2, 0.5)
        bl = eng.branch_lengths()
        assert bl[2, 0] == pytest.approx(0.5)
        assert bl[2, 1] == pytest.approx(1.5)


class TestOptimization:
    def test_scaler_recovery(self, proportional_data):
        data, tree, lengths = proportional_data
        eng = PartitionedEngine(
            data, tree.copy(), branch_mode="proportional", initial_lengths=lengths
        )
        optimize_scalers(eng, "new")
        ratio = eng.scalers[1] / eng.scalers[0]
        assert ratio == pytest.approx(2.5, rel=0.15)

    def test_strategies_agree(self, proportional_data):
        data, tree, lengths = proportional_data
        out = {}
        for strategy in ("old", "new"):
            eng = PartitionedEngine(
                data, tree.copy(), branch_mode="proportional", initial_lengths=lengths
            )
            optimize_scalers(eng, strategy)
            out[strategy] = eng.scalers
        np.testing.assert_allclose(out["old"], out["new"], rtol=1e-2)

    def test_branch_opt_keeps_proportionality(self, proportional_data):
        data, tree, lengths = proportional_data
        eng = PartitionedEngine(
            data, tree.copy(), branch_mode="proportional", initial_lengths=lengths
        )
        eng.set_scaler(1, 2.0)
        optimize_branch_lengths(eng, "new", passes=1)
        bl = eng.branch_lengths()
        np.testing.assert_allclose(bl[:, 1], 2.0 * bl[:, 0], rtol=1e-9)

    def test_full_model_opt_monotone(self, proportional_data):
        data, tree, lengths = proportional_data
        eng = PartitionedEngine(
            data, tree.copy(), branch_mode="proportional", initial_lengths=lengths
        )
        before = eng.loglikelihood()
        lnl = optimize_model(eng, "new", max_rounds=2)
        assert lnl > before

    def test_proportional_beats_joint(self, proportional_data):
        """With genuinely 2.5x-faster gene 1, the proportional model must
        fit better than joint (and both optimized equally hard)."""
        data, tree, lengths = proportional_data
        fits = {}
        for mode in ("joint", "proportional"):
            eng = PartitionedEngine(
                data, tree.copy(), branch_mode=mode, initial_lengths=lengths
            )
            fits[mode] = optimize_model(eng, "new", max_rounds=3)
        assert fits["proportional"] > fits["joint"] + 10

    def test_scalers_require_mode(self, proportional_data):
        data, tree, lengths = proportional_data
        eng = PartitionedEngine(data, tree.copy(), branch_mode="joint")
        with pytest.raises(ValueError, match="proportional"):
            optimize_scalers(eng, "new")
