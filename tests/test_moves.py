"""NNI / SPR topology-move tests."""
import numpy as np
import pytest

from repro.plk import Tree
from repro.search import nni_swap, spr_move, spr_targets
from repro.seqgen import default_taxa


def random_tree(n, seed=0):
    return Tree.random(default_taxa(n), np.random.default_rng(seed))


class TestNNI:
    def test_changes_topology(self):
        t = random_tree(8, 1)
        internal = next(
            eid for eid, u, v in t.edges() if not t.is_leaf(u) and not t.is_leaf(v)
        )
        before = t.splits()
        mv = nni_swap(t, internal, 0)
        t.validate()
        assert t.splits() != before

    def test_undo_restores(self):
        t = random_tree(8, 2)
        reference = t.copy()
        internal = next(
            eid for eid, u, v in t.edges() if not t.is_leaf(u) and not t.is_leaf(v)
        )
        for variant in (0, 1):
            mv = nni_swap(t, internal, variant)
            mv.undo()
            assert t.robinson_foulds(reference) == 0
            t.validate()

    def test_variants_differ(self):
        t0 = random_tree(8, 3)
        t1 = t0.copy()
        internal = next(
            eid for eid, u, v in t0.edges() if not t0.is_leaf(u) and not t0.is_leaf(v)
        )
        nni_swap(t0, internal, 0)
        nni_swap(t1, internal, 1)
        assert t0.robinson_foulds(t1) > 0

    def test_leaf_edge_rejected(self):
        t = random_tree(6, 4)
        leaf_edge = next(eid for eid, u, v in t.edges() if t.is_leaf(u) or t.is_leaf(v))
        with pytest.raises(ValueError, match="not internal"):
            nni_swap(t, leaf_edge)

    def test_bad_variant_rejected(self):
        t = random_tree(6, 4)
        with pytest.raises(ValueError):
            nni_swap(t, 0, variant=2)

    def test_preserves_leaf_set(self):
        t = random_tree(10, 5)
        internal = next(
            eid for eid, u, v in t.edges() if not t.is_leaf(u) and not t.is_leaf(v)
        )
        nni_swap(t, internal, 1)
        t.validate()
        assert set(t.taxa) == set(default_taxa(10))


class TestSPRTargets:
    def test_radius_limits(self):
        t = random_tree(20, 6)
        prune = next(
            eid for eid, u, v in t.edges() if not t.is_leaf(u) or not t.is_leaf(v)
        )
        near = spr_targets(t, prune, radius=1)
        far = spr_targets(t, prune, radius=10)
        assert set(near) <= set(far)
        assert len(far) > len(near)

    def test_excludes_pruned_subtree_and_junction(self):
        t = random_tree(12, 7)
        for prune, u, v in t.edges():
            if t.is_leaf(u) and t.is_leaf(v):
                continue
            for target in spr_targets(t, prune, radius=4):
                mv = spr_move(t, prune, target)  # must not raise
                mv.undo()
            break


class TestSPRMove:
    def _internalish_edge(self, t):
        for eid, u, v in t.edges():
            if not (t.is_leaf(u) and t.is_leaf(v)):
                return eid
        raise AssertionError

    def test_valid_after_move(self):
        t = random_tree(15, 8)
        prune = self._internalish_edge(t)
        targets = spr_targets(t, prune, radius=5)
        mv = spr_move(t, prune, targets[-1])
        t.validate()
        assert set(t.taxa) == set(default_taxa(15))

    def test_undo_restores_topology(self):
        t = random_tree(15, 9)
        reference = t.copy()
        prune = self._internalish_edge(t)
        for target in spr_targets(t, prune, radius=4):
            mv = spr_move(t, prune, target)
            t.validate()
            mv.undo()
            t.validate()
            assert t.robinson_foulds(reference) == 0

    def test_edge_ids_reused(self):
        """Edge-id set is stable across a move (length arrays stay valid)."""
        t = random_tree(10, 10)
        ids_before = {eid for eid, _, _ in t.edges()}
        prune = self._internalish_edge(t)
        target = spr_targets(t, prune, radius=3)[0]
        spr_move(t, prune, target)
        assert {eid for eid, _, _ in t.edges()} == ids_before

    def test_move_changes_topology(self):
        t = random_tree(12, 11)
        reference = t.copy()
        prune = self._internalish_edge(t)
        targets = spr_targets(t, prune, radius=4)
        mv = spr_move(t, prune, targets[-1])
        assert t.robinson_foulds(reference) > 0

    def test_adjacent_target_rejected(self):
        t = random_tree(10, 12)
        prune = self._internalish_edge(t)
        s, a = t.edge_nodes(prune)
        if t.is_leaf(a):
            s, a = a, s
        neighbor_edge = next(
            t.edge_between(a, nb) for nb in t.neighbors(a) if nb != s
        )
        with pytest.raises(ValueError, match="adjacent"):
            spr_move(t, prune, neighbor_edge)

    def test_target_inside_subtree_rejected(self):
        t = random_tree(14, 13)
        # choose a prune edge whose subtree side is big
        for prune, u, v in t.edges():
            s, a = t.edge_nodes(prune)
            if t.is_leaf(a):
                s, a = a, s
            if t.is_leaf(a) or t.is_leaf(s):
                continue
            # an edge strictly inside the pruned subtree
            inner = [nb for nb in t.neighbors(s) if nb != a][0]
            inside_edge = t.edge_between(s, inner)
            with pytest.raises(ValueError, match="inside|adjacent"):
                spr_move(t, prune, inside_edge)
            return
        pytest.skip("no suitable edge in this random tree")

    def test_invalidate_lists_inner_nodes_only(self):
        t = random_tree(12, 14)
        prune = self._internalish_edge(t)
        target = spr_targets(t, prune, radius=3)[0]
        mv = spr_move(t, prune, target)
        assert all(not t.is_leaf(n) for n in mv.invalidate)
        assert len(mv.changed_edges) == 3
