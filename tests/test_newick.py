"""Newick parser/writer tests."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plk import Tree, parse_newick, write_newick
from repro.seqgen import default_taxa, random_topology_with_lengths


class TestParse:
    def test_trifurcating(self):
        tree, lengths = parse_newick("(a:0.1,b:0.2,(c:0.3,d:0.4):0.5);")
        assert tree.n_taxa == 4
        tree.validate()
        assert set(tree.taxa) == {"a", "b", "c", "d"}

    def test_branch_lengths_attach_to_edges(self):
        tree, lengths = parse_newick("(a:0.1,b:0.2,c:0.3);")
        by_leaf = {
            tree.taxa[leaf]: lengths[tree.edge_between(leaf, tree.neighbors(leaf)[0])]
            for leaf in range(3)
        }
        assert by_leaf == {"a": pytest.approx(0.1), "b": pytest.approx(0.2), "c": pytest.approx(0.3)}

    def test_rooted_input_unrooted(self):
        """A bifurcating top level is fused; lengths are summed."""
        tree, lengths = parse_newick("((a:0.1,b:0.2):0.3,(c:0.4,d:0.5):0.6);")
        tree.validate()
        assert tree.n_taxa == 4
        # the fused central edge carries 0.3 + 0.6
        inner = [n for n in range(tree.n_nodes) if not tree.is_leaf(n)]
        central = tree.edge_between(inner[0], inner[1])
        assert lengths[central] == pytest.approx(0.9)

    def test_missing_lengths_defaulted(self):
        tree, lengths = parse_newick("(a,b,(c,d));")
        assert (lengths == 0.1).all()

    def test_quoted_names(self):
        tree, _ = parse_newick("('taxon one':1,'it''s':2,c:3);")
        assert "taxon one" in tree.taxa
        assert "it's" in tree.taxa

    def test_scientific_notation_lengths(self):
        _, lengths = parse_newick("(a:1e-3,b:2E-2,c:1.5e1);")
        assert sorted(np.round(lengths, 6)) == [0.001, 0.02, 15.0]

    def test_internal_polytomy_rejected(self):
        with pytest.raises(ValueError, match="binary|trifurcating"):
            parse_newick("(a,b,c,(d,e,f,g));")

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_newick("(a,b,,c);")

    def test_two_taxa_rejected(self):
        with pytest.raises(ValueError):
            parse_newick("(a:1,b:2);")


class TestRoundTrip:
    def test_topology_preserved(self):
        rng = np.random.default_rng(4)
        tree, lengths = random_topology_with_lengths(12, rng)
        text = write_newick(tree, lengths)
        back, back_lengths = parse_newick(text)
        assert tree.robinson_foulds(back) == 0

    def test_lengths_preserved(self):
        rng = np.random.default_rng(4)
        tree, lengths = random_topology_with_lengths(8, rng)
        back, back_lengths = parse_newick(write_newick(tree, lengths, precision=10))
        # compare leaf-edge lengths by taxon name (edge ids may permute)
        for tname in tree.taxa:
            leaf_a = tree.taxa.index(tname)
            leaf_b = back.taxa.index(tname)
            ea = tree.edge_between(leaf_a, tree.neighbors(leaf_a)[0])
            eb = back.edge_between(leaf_b, back.neighbors(leaf_b)[0])
            assert lengths[ea] == pytest.approx(back_lengths[eb], rel=1e-8)

    @given(st.integers(3, 25), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, n, seed):
        rng = np.random.default_rng(seed)
        tree = Tree.random(default_taxa(n), rng)
        back, _ = parse_newick(write_newick(tree))
        assert tree.robinson_foulds(back) == 0

    def test_writer_quotes_special_names(self):
        tree = Tree.random(("a b", "c(d)", "e:f"), np.random.default_rng(0))
        back, _ = parse_newick(write_newick(tree))
        assert set(back.taxa) == {"a b", "c(d)", "e:f"}
