"""Pattern-distribution policy tests."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    block_indices,
    block_partition_counts,
    cyclic_indices,
    cyclic_partition_counts,
    partition_thread_counts,
)


class TestCyclic:
    def test_counts_balanced(self):
        counts = cyclic_partition_counts(0, 100, 8)
        assert counts.sum() == 100
        assert counts.max() - counts.min() <= 1

    def test_offset_rotation(self):
        """Offsets rotate which threads get the extra pattern but keep
        balance."""
        counts = cyclic_partition_counts(3, 10, 4)
        assert counts.sum() == 10
        assert counts.max() - counts.min() <= 1

    def test_fewer_patterns_than_threads(self):
        """The paper's SGI Altix worst case: some threads own nothing."""
        counts = cyclic_partition_counts(0, 3, 16)
        assert counts.sum() == 3
        assert (counts == 0).sum() == 13

    def test_indices_match_counts(self):
        for offset in (0, 5, 11):
            for t in range(4):
                idx = cyclic_indices(offset, 50, 4, t)
                counts = cyclic_partition_counts(offset, 50, 4)
                assert len(idx) == counts[t]

    def test_indices_partition_the_range(self):
        all_idx = np.concatenate(
            [cyclic_indices(7, 33, 5, t) for t in range(5)]
        )
        assert sorted(all_idx.tolist()) == list(range(33))

    def test_global_cyclic_semantics(self):
        """Pattern at global index g goes to thread g % T."""
        offset, length, T = 13, 29, 4
        for t in range(T):
            for local in cyclic_indices(offset, length, T, t):
                assert (offset + local) % T == t


class TestBlock:
    def test_counts_cover_total(self):
        # partitions [0,40) [40,100) over total 100, 8 threads
        c1 = block_partition_counts(0, 40, 100, 8)
        c2 = block_partition_counts(40, 60, 100, 8)
        assert (c1 + c2).sum() == 100
        np.testing.assert_array_equal(c1 + c2, np.full(8, 13)[:8] * 0 + (c1 + c2))

    def test_short_partition_concentrated(self):
        """Block policy can put an entire short partition on ONE thread —
        the pathology cyclic distribution avoids."""
        counts = block_partition_counts(0, 10, 1000, 8)
        assert (counts > 0).sum() == 1

    def test_indices_match_counts(self):
        for t in range(6):
            idx = block_indices(30, 50, 200, 6, t)
            counts = block_partition_counts(30, 50, 200, 6)
            assert len(idx) == counts[t]

    def test_indices_partition_the_range(self):
        all_idx = np.concatenate([block_indices(10, 45, 120, 7, t) for t in range(7)])
        assert sorted(all_idx.tolist()) == list(range(45))


class TestDispatch:
    def test_policy_names(self):
        a = partition_thread_counts("cyclic", 0, 10, 100, 4)
        b = partition_thread_counts("block", 0, 10, 100, 4)
        assert a.sum() == b.sum() == 10
        with pytest.raises(ValueError, match="unknown distribution"):
            partition_thread_counts("random", 0, 10, 100, 4)

    def test_thread_validation(self):
        with pytest.raises(ValueError):
            cyclic_partition_counts(0, 10, 0)
        with pytest.raises(ValueError):
            cyclic_indices(0, 10, 4, 9)


class TestEdgeCases:
    """Regression tests for degenerate geometries: zero-length partitions,
    empty alignments, and more threads than patterns must be well-defined
    (empty slices / zero counts), never errors."""

    def test_zero_length_partition(self):
        for policy in ("cyclic", "block"):
            counts = partition_thread_counts(policy, 5, 0, 10, 4)
            assert counts.tolist() == [0, 0, 0, 0]
        assert cyclic_indices(5, 0, 4, 2).size == 0
        assert block_indices(5, 0, 10, 4, 1).size == 0

    def test_empty_alignment(self):
        assert block_partition_counts(0, 0, 0, 8).tolist() == [0] * 8
        assert block_indices(0, 0, 0, 8, 3).size == 0
        assert cyclic_partition_counts(0, 0, 8).tolist() == [0] * 8

    def test_more_threads_than_total(self):
        for policy in ("cyclic", "block"):
            counts = partition_thread_counts(policy, 0, 3, 3, 16)
            assert counts.sum() == 3
            assert counts.min() >= 0
            merged = np.concatenate([
                cyclic_indices(0, 3, 16, t) if policy == "cyclic"
                else block_indices(0, 3, 3, 16, t)
                for t in range(16)
            ])
            assert sorted(merged.tolist()) == [0, 1, 2]

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            cyclic_partition_counts(-1, 5, 4)
        with pytest.raises(ValueError):
            cyclic_partition_counts(0, -1, 4)
        with pytest.raises(ValueError, match="exceeds total"):
            block_partition_counts(8, 5, 10, 4)
        with pytest.raises(ValueError):
            block_partition_counts(0, 5, -1, 4)
        with pytest.raises(ValueError):
            block_indices(0, 5, 10, 4, -1)

    def test_cost_aware_policies_need_a_plan(self):
        for policy in ("weighted", "lpt"):
            with pytest.raises(ValueError, match="build_plan"):
                partition_thread_counts(policy, 0, 10, 100, 4)


class TestProperties:
    @given(
        st.integers(0, 500), st.integers(0, 300), st.integers(1, 32)
    )
    @settings(max_examples=80, deadline=None)
    def test_cyclic_exact_cover(self, offset, length, threads):
        counts = cyclic_partition_counts(offset, length, threads)
        assert counts.sum() == length
        assert counts.max() - counts.min() <= 1 if length else True

    @given(st.integers(1, 300), st.integers(1, 32), st.data())
    @settings(max_examples=80, deadline=None)
    def test_block_exact_cover(self, total, threads, data):
        offset = data.draw(st.integers(0, total - 1))
        length = data.draw(st.integers(1, total - offset))
        counts = block_partition_counts(offset, length, total, threads)
        assert counts.sum() == length
