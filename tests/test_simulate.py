"""Sequence-simulation (SeqGen substitute) tests."""
import numpy as np
import pytest

from repro.plk import AA, DNA, EigenSystem, SubstitutionModel
from repro.seqgen import (
    default_taxa,
    random_topology_with_lengths,
    simulate_alignment,
    simulate_states,
    variable_lengths,
    scheme_from_lengths,
    yule_tree,
)


class TestRandomTrees:
    def test_topology_with_lengths(self):
        tree, lengths = random_topology_with_lengths(15, np.random.default_rng(1))
        tree.validate()
        assert lengths.shape == (tree.n_edges,)
        assert (lengths > 0).all()

    def test_yule_valid(self):
        for n in (3, 4, 10, 30):
            tree, lengths = yule_tree(n, np.random.default_rng(n))
            tree.validate()
            assert (lengths > 0).all()

    def test_yule_scale(self):
        tree, lengths = yule_tree(20, np.random.default_rng(2), scale=0.4)
        from repro.seqgen.randomtree import _mean_tip_depth

        assert _mean_tip_depth(tree, lengths) == pytest.approx(0.4, rel=0.01)

    def test_default_taxa_unique_sorted(self):
        taxa = default_taxa(12)
        assert len(set(taxa)) == 12
        assert list(taxa) == sorted(taxa)


class TestSimulateStates:
    def test_shape_and_range(self, small_tree):
        tree, lengths = small_tree
        states = simulate_states(
            tree, lengths, SubstitutionModel.jc69(), 1.0, 100, np.random.default_rng(3)
        )
        assert states.shape == (tree.n_taxa, 100)
        assert states.min() >= 0 and states.max() <= 3

    def test_zero_length_branches_copy_parent(self):
        """With epsilon branch lengths everywhere, all leaves identical."""
        rng = np.random.default_rng(4)
        tree, _ = random_topology_with_lengths(6, rng)
        lengths = np.full(tree.n_edges, 1e-8)
        states = simulate_states(tree, lengths, SubstitutionModel.jc69(), 1.0, 50, rng)
        assert (states == states[0]).all()

    def test_long_branches_decorrelate(self):
        """Huge branch lengths: leaf states approach independence; observed
        pairwise identity ~ sum pi^2 = 0.25 for JC."""
        rng = np.random.default_rng(5)
        tree, _ = random_topology_with_lengths(4, rng)
        lengths = np.full(tree.n_edges, 50.0)
        states = simulate_states(tree, lengths, SubstitutionModel.jc69(), 1.0, 8000, rng)
        identity = (states[0] == states[1]).mean()
        assert identity == pytest.approx(0.25, abs=0.03)

    def test_stationary_frequencies_preserved(self):
        """Leaf state frequencies match the model's pi."""
        model = SubstitutionModel.gtr(
            np.array([1, 2, 1, 1, 2, 1.0]), np.array([0.4, 0.3, 0.2, 0.1])
        )
        rng = np.random.default_rng(6)
        tree, lengths = random_topology_with_lengths(5, rng)
        states = simulate_states(tree, lengths, model, 1.0, 20000, rng)
        freqs = np.bincount(states.ravel(), minlength=4) / states.size
        np.testing.assert_allclose(freqs, model.frequencies, atol=0.01)

    def test_deterministic_with_seed(self, small_tree):
        tree, lengths = small_tree
        a = simulate_states(tree, lengths, SubstitutionModel.jc69(), 1.0, 60, np.random.default_rng(7))
        b = simulate_states(tree, lengths, SubstitutionModel.jc69(), 1.0, 60, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestSimulateAlignment:
    def test_characters_valid(self, small_tree):
        tree, lengths = small_tree
        aln = simulate_alignment(
            tree, lengths, SubstitutionModel.jc69(), 1.0, 80, np.random.default_rng(8)
        )
        assert set(aln.sequence(aln.taxa[0])) <= set("ACGT")
        assert aln.datatype is DNA

    def test_aa_simulation(self, small_tree):
        tree, lengths = small_tree
        aln = simulate_alignment(
            tree, lengths, SubstitutionModel.poisson_aa(), 1.0, 40, np.random.default_rng(9)
        )
        assert aln.datatype is AA
        assert set(aln.sequence(aln.taxa[0])) <= set(AA.symbols)

    def test_unique_columns_enforced(self):
        """The paper's m == m' requirement."""
        rng = np.random.default_rng(10)
        tree, lengths = random_topology_with_lengths(10, rng)
        aln = simulate_alignment(
            tree,
            lengths,
            SubstitutionModel.jc69(),
            1.0,
            500,
            rng,
            unique_columns=True,
        )
        patterns, weights, _ = aln.compress()
        assert patterns.n_sites == 500
        assert (weights == 1).all()

    def test_unique_columns_impossible_raises(self, quartet_tree):
        """4 taxa with near-zero branches cannot yield many unique columns."""
        lengths = np.full(5, 1e-8)
        with pytest.raises(RuntimeError, match="unique"):
            simulate_alignment(
                quartet_tree,
                lengths,
                SubstitutionModel.jc69(),
                1.0,
                400,
                np.random.default_rng(11),
                unique_columns=True,
                max_attempts=3,
            )


class TestVariableLengths:
    def test_exact_total_and_bounds(self):
        rng = np.random.default_rng(12)
        lengths = variable_lengths(19_839, 34, 148, 2_705, rng)
        assert lengths.sum() == 19_839
        assert lengths.min() == 148
        assert lengths.max() == 2_705
        assert len(lengths) == 34

    def test_infeasible_rejected(self):
        with pytest.raises(ValueError, match="infeasible"):
            variable_lengths(100, 3, 50, 60, np.random.default_rng(0))

    def test_scheme_from_lengths(self):
        scheme = scheme_from_lengths(np.array([10, 20, 5]), "DNA")
        assert len(scheme) == 3
        assert scheme.n_sites == 35
        assert scheme[1].ranges == ((10, 30),)
