"""Bootstrap-replicate tests."""
import numpy as np
import pytest

from repro.core import PartitionedEngine
from repro.plk import SubstitutionModel
from repro.seqgen.bootstrap import (
    bootstrap_replicate,
    bootstrap_weights,
    split_support,
)
from repro.seqgen import random_topology_with_lengths
from repro.search import tree_search, stepwise_addition_tree


class TestWeights:
    def test_totals_preserved(self, small_partitioned):
        rng = np.random.default_rng(1)
        weights = bootstrap_weights(small_partitioned, rng)
        for block, w in zip(small_partitioned.data, weights):
            assert w.sum() == block.weights.sum()
            assert (w >= 0).all()

    def test_expectation_matches_original(self, small_partitioned):
        """Mean over many replicates converges to the original weights."""
        rng = np.random.default_rng(2)
        acc = np.zeros_like(small_partitioned.data[0].weights, dtype=float)
        n = 300
        for _ in range(n):
            acc += bootstrap_weights(small_partitioned, rng)[0]
        original = small_partitioned.data[0].weights
        # multinomial std of the mean is ~sqrt(w / n); allow 5 sigma
        tol = 5 * np.sqrt(np.maximum(original, 1) / n)
        assert (np.abs(acc / n - original) <= tol).all()


class TestReplicate:
    def test_shares_tip_arrays(self, small_partitioned):
        rng = np.random.default_rng(3)
        rep = bootstrap_replicate(small_partitioned, rng)
        for orig, new in zip(small_partitioned.data, rep.data):
            assert new.tip_states is orig.tip_states

    def test_engine_accepts_replicate(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        rng = np.random.default_rng(4)
        rep = bootstrap_replicate(small_partitioned, rng)
        engine = PartitionedEngine(rep, tree.copy(), initial_lengths=lengths)
        original = PartitionedEngine(
            small_partitioned, tree.copy(), initial_lengths=lengths
        )
        lnl_rep = engine.loglikelihood()
        lnl_orig = original.loglikelihood()
        assert np.isfinite(lnl_rep)
        assert lnl_rep != pytest.approx(lnl_orig)  # different weighting

    def test_replicates_differ(self, small_partitioned):
        rng = np.random.default_rng(5)
        a = bootstrap_replicate(small_partitioned, rng)
        b = bootstrap_replicate(small_partitioned, rng)
        assert not np.array_equal(a.data[0].weights, b.data[0].weights)


class TestSplitSupport:
    def test_identical_trees_full_support(self):
        rng = np.random.default_rng(6)
        tree, _ = random_topology_with_lengths(8, rng)
        support = split_support(tree, [tree.copy() for _ in range(5)])
        assert all(v == 1.0 for v in support.values())
        assert len(support) == 8 - 3

    def test_unrelated_trees_low_support(self):
        rng = np.random.default_rng(7)
        ref, _ = random_topology_with_lengths(10, rng)
        others = [
            random_topology_with_lengths(10, np.random.default_rng(100 + i))[0]
            for i in range(6)
        ]
        support = split_support(ref, others)
        assert np.mean(list(support.values())) < 0.5

    def test_empty_replicates_rejected(self):
        rng = np.random.default_rng(8)
        tree, _ = random_topology_with_lengths(6, rng)
        with pytest.raises(ValueError):
            split_support(tree, [])
