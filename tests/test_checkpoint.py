"""Checkpoint save/restore tests."""
import json

import numpy as np
import pytest

from repro.core import PartitionedEngine, optimize_model
from repro.core.checkpoint import (
    engine_from_checkpoint,
    engine_to_checkpoint,
    load_checkpoint,
    save_checkpoint,
)


@pytest.fixture(scope="module")
def optimized_engine(small_partitioned, small_tree):
    tree, lengths = small_tree
    engine = PartitionedEngine(
        small_partitioned, tree.copy(), branch_mode="per_partition",
        initial_lengths=lengths,
    )
    optimize_model(engine, "new", max_rounds=1)
    engine.parts[1].pinv = 0.12
    return engine


class TestRoundTrip:
    def test_likelihood_preserved(self, optimized_engine, small_partitioned):
        ref = optimized_engine.loglikelihood()
        state = engine_to_checkpoint(optimized_engine)
        rebuilt = engine_from_checkpoint(small_partitioned, state)
        assert rebuilt.loglikelihood() == pytest.approx(ref, abs=1e-8)

    def test_parameters_preserved(self, optimized_engine, small_partitioned):
        state = engine_to_checkpoint(optimized_engine)
        rebuilt = engine_from_checkpoint(small_partitioned, state)
        for a, b in zip(optimized_engine.parts, rebuilt.parts):
            assert b.alpha == pytest.approx(a.alpha)
            assert b.pinv == pytest.approx(a.pinv)
            np.testing.assert_allclose(b.model.rates, a.model.rates)
            np.testing.assert_allclose(
                b.branch_lengths, a.branch_lengths, atol=1e-10
            )

    def test_file_roundtrip(self, optimized_engine, small_partitioned, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(optimized_engine, path)
        rebuilt = load_checkpoint(small_partitioned, path)
        assert rebuilt.loglikelihood() == pytest.approx(
            optimized_engine.loglikelihood(), abs=1e-8
        )
        # the file really is JSON
        json.loads(path.read_text())

    def test_proportional_mode_roundtrip(self, small_partitioned, small_tree):
        tree, lengths = small_tree
        engine = PartitionedEngine(
            small_partitioned, tree.copy(), branch_mode="proportional",
            initial_lengths=lengths,
        )
        engine.set_scaler(2, 1.7)
        ref = engine.loglikelihood()
        rebuilt = engine_from_checkpoint(
            small_partitioned, engine_to_checkpoint(engine)
        )
        assert rebuilt.branch_mode == "proportional"
        np.testing.assert_allclose(rebuilt.scalers, engine.scalers)
        assert rebuilt.loglikelihood() == pytest.approx(ref, abs=1e-8)


class TestValidation:
    def test_version_checked(self, optimized_engine, small_partitioned):
        state = engine_to_checkpoint(optimized_engine)
        state["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            engine_from_checkpoint(small_partitioned, state)

    def test_partition_count_checked(self, optimized_engine, small_partitioned):
        state = engine_to_checkpoint(optimized_engine)
        state["partitions"] = state["partitions"][:1]
        with pytest.raises(ValueError, match="partitions"):
            engine_from_checkpoint(small_partitioned, state)

    def test_partition_names_checked(self, optimized_engine, small_partitioned):
        state = engine_to_checkpoint(optimized_engine)
        state["partitions"][0]["name"] = "not_a_gene"
        with pytest.raises(ValueError, match="name mismatch"):
            engine_from_checkpoint(small_partitioned, state)
