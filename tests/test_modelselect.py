"""Model-selection tests (parameter counting, information criteria, LRT)."""
import numpy as np
import pytest

from repro.core import PartitionedEngine, optimize_model
from repro.core.modelselect import (
    ModelScore,
    free_parameter_count,
    likelihood_ratio_test,
    score_engine,
)
from repro.plk import Alignment, PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment


@pytest.fixture(scope="module")
def fitted():
    """Two genes with genuinely different rates, fitted under all three
    branch modes."""
    rng = np.random.default_rng(61)
    tree, lengths = random_topology_with_lengths(8, rng)
    blocks = []
    for mult in (1.0, 2.5):
        aln = simulate_alignment(
            tree, lengths * mult, SubstitutionModel.random_gtr(3), 1.0, 800, rng
        )
        blocks.append(aln.matrix)
    alignment = Alignment(tree.taxa, np.concatenate(blocks, axis=1))
    data = PartitionedAlignment(alignment, uniform_scheme(1_600, 800))
    out = {}
    for mode in ("joint", "proportional", "per_partition"):
        engine = PartitionedEngine(
            data, tree.copy(), branch_mode=mode, initial_lengths=lengths
        )
        lnl = optimize_model(engine, "new", max_rounds=3)
        out[mode] = (engine, lnl)
    return out


class TestParameterCounting:
    def test_branch_mode_ordering(self, fitted):
        counts = {
            mode: free_parameter_count(engine)
            for mode, (engine, _) in fitted.items()
        }
        assert counts["joint"] < counts["proportional"] < counts["per_partition"]

    def test_exact_counts(self, fitted):
        engine, _ = fitted["joint"]
        n_edges = engine.n_edges
        # per partition: alpha 1 + GTR 5 + freqs 3 = 9; two partitions
        assert free_parameter_count(engine) == n_edges + 18
        engine_prop, _ = fitted["proportional"]
        assert free_parameter_count(engine_prop) == n_edges + 1 + 18
        engine_pp, _ = fitted["per_partition"]
        assert free_parameter_count(engine_pp) == 2 * n_edges + 18

    def test_pinv_counts_when_enabled(self, fitted):
        engine, _ = fitted["joint"]
        base = free_parameter_count(engine)
        engine.parts[0].pinv = 0.1
        assert free_parameter_count(engine) == base + 1
        engine.parts[0].pinv = 0.0


class TestScores:
    def test_nested_likelihood_ordering(self, fitted):
        """More parameters can only fit better (optimizers converged)."""
        lnls = {mode: lnl for mode, (_, lnl) in fitted.items()}
        assert lnls["proportional"] >= lnls["joint"] - 0.5
        assert lnls["per_partition"] >= lnls["proportional"] - 0.5

    def test_criteria_formulas(self, fitted):
        engine, lnl = fitted["joint"]
        score = score_engine(engine, lnl)
        assert score.sample_size == 1_600
        assert score.aic == pytest.approx(2 * score.parameters - 2 * lnl)
        assert score.bic == pytest.approx(
            score.parameters * np.log(1_600) - 2 * lnl
        )
        assert score.aicc > score.aic

    def test_proportional_selected_on_proportional_data(self, fitted):
        """Data generated under the proportional model: BIC should prefer
        proportional over joint (true extra signal) AND over per-partition
        (penalized for 2n-3 superfluous parameters)."""
        scores = {
            mode: score_engine(engine, lnl) for mode, (engine, lnl) in fitted.items()
        }
        assert scores["proportional"].bic < scores["joint"].bic
        assert scores["proportional"].bic < scores["per_partition"].bic

    def test_summary_renders(self, fitted):
        engine, lnl = fitted["joint"]
        assert "AIC=" in score_engine(engine, lnl).summary()


class TestLRT:
    def test_significant_for_real_signal(self, fitted):
        _, joint_lnl = fitted["joint"]
        _, prop_lnl = fitted["proportional"]
        stat, p = likelihood_ratio_test(joint_lnl, prop_lnl, df=1)
        assert stat > 0
        assert p < 0.001  # the 2.5x rate difference is very real

    def test_null_difference_not_significant(self):
        stat, p = likelihood_ratio_test(-1000.0, -999.9, df=5)
        assert p > 0.5

    def test_clamps_negative(self):
        stat, p = likelihood_ratio_test(-1000.0, -1000.5, df=1)
        assert stat == 0.0
        assert p == pytest.approx(1.0)

    def test_df_validated(self):
        with pytest.raises(ValueError):
            likelihood_ratio_test(-10, -9, df=0)
