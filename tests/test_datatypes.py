"""Unit tests for state spaces and ambiguity encoding."""
import numpy as np
import pytest

from repro.plk import AA, DNA, get_datatype
from repro.plk.datatypes import DataType


class TestDNA:
    def test_states(self):
        assert DNA.states == 4
        assert DNA.symbols == "ACGT"

    def test_canonical_encoding_is_one_hot(self):
        enc = DNA.encode("ACGT")
        assert enc.shape == (4, 4)
        np.testing.assert_array_equal(enc, np.eye(4))

    def test_lowercase_equals_uppercase(self):
        np.testing.assert_array_equal(DNA.encode("acgt"), DNA.encode("ACGT"))

    def test_gap_is_fully_ambiguous(self):
        for sym in "-?NX":
            np.testing.assert_array_equal(DNA.encode(sym), np.ones((1, 4)))

    def test_purine_pyrimidine_codes(self):
        np.testing.assert_array_equal(DNA.encode("R")[0], [1, 0, 1, 0])  # A/G
        np.testing.assert_array_equal(DNA.encode("Y")[0], [0, 1, 0, 1])  # C/T

    def test_two_state_codes(self):
        np.testing.assert_array_equal(DNA.encode("S")[0], [0, 1, 1, 0])  # C/G
        np.testing.assert_array_equal(DNA.encode("W")[0], [1, 0, 0, 1])  # A/T
        np.testing.assert_array_equal(DNA.encode("K")[0], [0, 0, 1, 1])  # G/T
        np.testing.assert_array_equal(DNA.encode("M")[0], [1, 1, 0, 0])  # A/C

    def test_three_state_codes(self):
        assert DNA.encode("B")[0].sum() == 3 and DNA.encode("B")[0][0] == 0
        assert DNA.encode("D")[0].sum() == 3 and DNA.encode("D")[0][1] == 0
        assert DNA.encode("H")[0].sum() == 3 and DNA.encode("H")[0][2] == 0
        assert DNA.encode("V")[0].sum() == 3 and DNA.encode("V")[0][3] == 0

    def test_rna_uracil_maps_to_t(self):
        np.testing.assert_array_equal(DNA.encode("U")[0], [0, 0, 0, 1])

    def test_decode_roundtrip(self):
        assert DNA.decode_states([0, 1, 2, 3]) == "ACGT"


class TestAA:
    def test_states(self):
        assert AA.states == 20
        assert len(set(AA.symbols)) == 20

    def test_canonical_encoding_is_one_hot(self):
        enc = AA.encode(AA.symbols)
        np.testing.assert_array_equal(enc, np.eye(20))

    def test_b_is_asn_or_asp(self):
        row = AA.encode("B")[0]
        assert row.sum() == 2
        assert row[AA.symbols.index("N")] == 1
        assert row[AA.symbols.index("D")] == 1

    def test_z_is_gln_or_glu(self):
        row = AA.encode("Z")[0]
        assert row[AA.symbols.index("Q")] == 1
        assert row[AA.symbols.index("E")] == 1

    def test_gap_fully_ambiguous(self):
        np.testing.assert_array_equal(AA.encode("-")[0], np.ones(20))


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_datatype("dna") is DNA
        assert get_datatype("DNA") is DNA
        assert get_datatype("aa") is AA
        assert get_datatype("protein") is AA

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown datatype"):
            get_datatype("codon")

    def test_symbol_count_validated(self):
        with pytest.raises(ValueError):
            DataType(name="bad", states=3, symbols="AC")

    def test_encoding_table_shape(self):
        assert DNA.encoding_table().shape == (256, 4)
        assert AA.encoding_table().shape == (256, 20)
