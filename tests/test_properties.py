"""Cross-module property-based tests (hypothesis) for the invariants
listed in DESIGN.md §5."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PartitionedEngine
from repro.optimize import BatchedNewton, newton_optimize
from repro.plk import (
    PartitionedAlignment,
    PartitionLikelihood,
    SubstitutionModel,
    induced_subtree,
    uniform_scheme,
)
from repro.seqgen import random_topology_with_lengths, simulate_alignment


def make_case(seed: int, n_taxa: int, n_sites: int = 120):
    rng = np.random.default_rng(seed)
    tree, lengths = random_topology_with_lengths(n_taxa, rng)
    model = SubstitutionModel.random_gtr(seed)
    alpha = float(np.exp(rng.normal(0, 0.4)))
    aln = simulate_alignment(tree, lengths, model, alpha, n_sites, rng)
    data = PartitionedAlignment(aln, uniform_scheme(n_sites, n_sites))
    engine = PartitionLikelihood(data.data[0], tree, model, alpha=alpha)
    engine.set_branch_lengths(lengths)
    return tree, lengths, model, alpha, aln, engine


class TestRootInvariance:
    @given(st.integers(0, 2_000), st.integers(4, 14))
    @settings(max_examples=25, deadline=None)
    def test_any_root_edge(self, seed, n_taxa):
        tree, lengths, model, alpha, aln, engine = make_case(seed, n_taxa)
        rng = np.random.default_rng(seed + 1)
        edges = rng.choice(tree.n_edges, size=3, replace=False)
        values = [engine.loglikelihood(int(e)) for e in edges]
        np.testing.assert_allclose(values, values[0], atol=1e-8)

    @given(st.integers(0, 2_000))
    @settings(max_examples=15, deadline=None)
    def test_taxon_relabeling_invariance(self, seed):
        """Permuting taxon labels (and sequences with them) preserves the
        likelihood."""
        tree, lengths, model, alpha, aln, engine = make_case(seed, 7)
        base = engine.loglikelihood(0)

        # same alignment content under permuted leaf assignment: swap two
        # taxa in both the tree and the data
        from repro.plk import Alignment

        perm = np.arange(aln.n_taxa)
        perm[0], perm[1] = perm[1], perm[0]
        taxa2 = tuple(aln.taxa[i] for i in perm)
        aln2 = Alignment(taxa2, aln.matrix[perm], aln.datatype)
        # build a tree with the same shape but relabeled leaves 0<->1
        data2 = PartitionedAlignment(aln2, uniform_scheme(aln.n_sites, aln.n_sites))
        # leaf ids in the tree still refer to rows of data2 in taxa order;
        # swapping both leaves and rows is a no-op overall:
        engine2 = PartitionLikelihood(data2.data[0], tree, model, alpha=alpha)
        engine2.set_branch_lengths(lengths)
        # row i of data2 is old taxon perm[i]; tree leaf i expects taxon
        # aln.taxa[i] -> so this equals swapping leaves 0/1 AND their data:
        # the likelihood changes only if the swap matters; verify by
        # swapping back explicitly
        mat_back = aln2.matrix[perm]
        assert (mat_back == aln.matrix).all()

    @given(st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_duplicate_columns_weighting(self, seed):
        """lnl(alignment + duplicated block) == lnl + lnl(block part)."""
        tree, lengths, model, alpha, aln, engine = make_case(seed, 6, 80)
        from repro.plk import Alignment

        doubled = Alignment(
            aln.taxa, np.concatenate([aln.matrix, aln.matrix], axis=1), aln.datatype
        )
        d2 = PartitionedAlignment(doubled, uniform_scheme(160, 160))
        e2 = PartitionLikelihood(d2.data[0], tree, model, alpha=alpha)
        e2.set_branch_lengths(lengths)
        assert e2.loglikelihood(0) == pytest.approx(
            2 * engine.loglikelihood(0), rel=1e-10
        )


class TestOptimizerEquivalence:
    @given(st.integers(0, 1_000))
    @settings(max_examples=10, deadline=None)
    def test_batched_newton_equals_scalar_on_real_curves(self, seed):
        """The newPAR core claim on real likelihood surfaces: lock-step NR
        across partitions lands exactly where per-partition scalar NR
        lands."""
        rng = np.random.default_rng(seed)
        tree, lengths = random_topology_with_lengths(6, rng)
        model = SubstitutionModel.random_gtr(seed)
        aln = simulate_alignment(tree, lengths, model, 1.0, 240, rng)
        data = PartitionedAlignment(aln, uniform_scheme(240, 80))
        engine = PartitionedEngine(data, tree, initial_lengths=lengths)
        edge = int(rng.integers(0, tree.n_edges))
        workspaces = [p.prepare_branch(edge) for p in engine.parts]

        def batched(z, active):
            d1 = np.zeros(3)
            d2 = np.zeros(3)
            for p in np.flatnonzero(active):
                d1[p], d2[p] = engine.parts[p].branch_derivatives(
                    workspaces[p], float(z[p])
                )
            return d1, d2

        z0 = np.full(3, float(lengths[edge]))
        batch = BatchedNewton().run(batched, z0)
        for p in range(3):
            z, _, _ = newton_optimize(
                lambda zz, _p=p: engine.parts[_p].branch_derivatives(
                    workspaces[_p], zz
                ),
                float(lengths[edge]),
            )
            assert batch.z[p] == pytest.approx(z, abs=1e-8)


class TestInducedSubtrees:
    @given(st.integers(0, 800), st.integers(8, 16))
    @settings(max_examples=15, deadline=None)
    def test_induced_likelihood_exact(self, seed, n_taxa):
        """Random coverage subsets: induced == full likelihood."""
        rng = np.random.default_rng(seed)
        tree, lengths = random_topology_with_lengths(n_taxa, rng)
        model = SubstitutionModel.random_gtr(seed)
        aln = simulate_alignment(tree, lengths, model, 1.0, 60, rng)
        keep = set(
            rng.choice(n_taxa, size=int(rng.integers(3, n_taxa)), replace=False).tolist()
        )
        # blank absent taxa
        mat = aln.matrix.copy()
        absent = [t for t in range(n_taxa) if t not in keep]
        mat[absent] = ord("-")
        from repro.plk import Alignment, GappyEngine

        gappy_aln = Alignment(aln.taxa, mat, aln.datatype)
        data = PartitionedAlignment(gappy_aln, uniform_scheme(60, 60))
        full = PartitionLikelihood(data.data[0], tree, model, alpha=1.0)
        full.set_branch_lengths(lengths)
        gap = GappyEngine(
            data, tree, models=[model], alphas=[1.0], initial_lengths=lengths
        )
        assert gap.loglikelihood() == pytest.approx(
            full.loglikelihood(0), abs=1e-7
        )

    @given(st.integers(0, 500), st.integers(6, 14))
    @settings(max_examples=20, deadline=None)
    def test_induced_subtree_structure(self, seed, n_taxa):
        rng = np.random.default_rng(seed)
        tree, lengths = random_topology_with_lengths(n_taxa, rng)
        k = int(rng.integers(3, n_taxa))
        keep = set(rng.choice(n_taxa, size=k, replace=False).tolist())
        sub = induced_subtree(tree, keep)
        sub.tree.validate()
        assert sub.tree.n_taxa == k
        # spans cover each original edge at most once
        used = [e for span in sub.edge_spans for e in span]
        assert len(used) == len(set(used))


class TestJointModeConsistency:
    @given(st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_joint_equals_per_partition_at_equal_lengths(self, seed):
        rng = np.random.default_rng(seed)
        tree, lengths = random_topology_with_lengths(6, rng)
        model = SubstitutionModel.random_gtr(seed)
        aln = simulate_alignment(tree, lengths, model, 1.0, 200, rng)
        data = PartitionedAlignment(aln, uniform_scheme(200, 100))
        joint = PartitionedEngine(
            data, tree.copy(), branch_mode="joint", initial_lengths=lengths
        )
        per = PartitionedEngine(
            data, tree.copy(), branch_mode="per_partition", initial_lengths=lengths
        )
        assert joint.loglikelihood() == pytest.approx(per.loglikelihood(), abs=1e-9)
