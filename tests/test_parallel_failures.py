"""Barrier-protocol robustness: failing workers must never deadlock a
team, dead processes must not leak, and close() must be idempotent.

These are regression tests for real deadlocks: before the fix, a worker
exception between the start- and done-barriers left the master blocked on
the barrier forever (threads), and a dead child left ``conn.recv()``
raising bare ``EOFError`` with the remaining processes leaked.
"""
import json

import numpy as np
import pytest

from repro.core import PartitionedEngine
from repro.parallel import ParallelPLK, WorkerError
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment

BACKENDS = ["threads", "processes"]


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(41)
    tree, lengths = random_topology_with_lengths(6, rng)
    aln = simulate_alignment(
        tree, lengths, SubstitutionModel.random_gtr(2), 1.0, 400, rng
    )
    data = PartitionedAlignment(aln, uniform_scheme(400, 200))
    models = [SubstitutionModel.random_gtr(p) for p in range(2)]
    alphas = [0.8, 1.3]
    return data, tree, lengths, models, alphas


def make_team(setup, backend, workers=3, **kw):
    data, tree, lengths, models, alphas = setup
    return ParallelPLK(
        data, tree, models, alphas, workers, backend=backend,
        initial_lengths=lengths, **kw,
    )


@pytest.mark.parametrize("backend", BACKENDS)
class TestFailingWorker:
    @pytest.mark.timeout(30)
    def test_worker_exception_surfaces_not_deadlocks(self, setup, backend):
        """An unknown command makes every WorkerState.execute raise; the
        first failure must come back as WorkerError within one broadcast."""
        with make_team(setup, backend) as team:
            with pytest.raises(WorkerError) as exc_info:
                team._broadcast(("explode",))
            assert exc_info.value.rank == 0
            assert isinstance(exc_info.value.original, ValueError)

    @pytest.mark.timeout(30)
    def test_team_survives_worker_exception(self, setup, backend):
        """The barrier protocol completes, so the team stays usable."""
        with make_team(setup, backend) as team:
            before = team.loglikelihood(0)
            with pytest.raises(WorkerError):
                team._broadcast(("deriv", 12345, np.zeros(2), [0]))  # bad token
            assert team.loglikelihood(0) == pytest.approx(before, abs=1e-10)

    @pytest.mark.timeout(30)
    def test_close_after_worker_exception(self, setup, backend):
        team = make_team(setup, backend)
        with pytest.raises(WorkerError):
            team._broadcast(("explode",))
        team.close()  # must return promptly, not hang on a barrier


@pytest.mark.parametrize("backend", BACKENDS)
class TestFailingWorkerMidProgram:
    @pytest.mark.timeout(30)
    def test_exception_mid_fused_program_surfaces(self, setup, backend):
        """A failing step inside a fused program must surface exactly like
        a failing plain broadcast: one WorkerError, no barrier deadlock."""
        with make_team(setup, backend) as team:
            with pytest.raises(WorkerError) as exc_info:
                team.run_program((
                    ("lnl", 0),
                    ("deriv", 99999, np.zeros(2), [0]),  # bad token
                ))
            assert exc_info.value.rank == 0
            # the team protocol completed, so it stays usable
            team.loglikelihood(0)

    @pytest.mark.timeout(30)
    def test_close_after_mid_program_exception(self, setup, backend):
        team = make_team(setup, backend)
        with pytest.raises(WorkerError):
            team.run_program((("lnl", 0), ("explode",)))
        team.close()


class TestDeadProcessWorker:
    @pytest.mark.timeout(30)
    def test_dead_worker_raises_and_terminates_team(self, setup):
        with make_team(setup, "processes") as team:
            victim = team._team.procs[1]
            victim.terminate()
            victim.join(timeout=10)
            with pytest.raises(WorkerError, match="worker"):
                team.loglikelihood(0)
            # no leaked children: every process is down after the failure
            for proc in team._team.procs:
                proc.join(timeout=10)
                assert not proc.is_alive()
            with pytest.raises(RuntimeError, match="closed"):
                team.loglikelihood(0)

    @pytest.mark.timeout(60)
    def test_dead_worker_mid_program_cleans_up_shm(self, setup):
        """A worker dying inside a fused program on the shm plane must
        surface as WorkerError AND leave no stale /dev/shm segment — the
        teardown path unlinks the arena and result plane."""
        from repro.parallel import live_segments

        before = live_segments()
        with make_team(setup, "processes", comms="shm") as team:
            assert len(live_segments()) == len(before) + 2
            victim = team._team.procs[1]
            victim.terminate()
            victim.join(timeout=10)
            with pytest.raises(WorkerError, match="worker"):
                team.run_program((("lnl", 0), ("lnl", 0)))
            for proc in team._team.procs:
                proc.join(timeout=10)
                assert not proc.is_alive()
        assert live_segments() == before

    @pytest.mark.timeout(60)
    def test_worker_exception_on_shm_plane_keeps_team_usable(self, setup):
        """A worker-side exception under comms=shm still travels over the
        pipe (the error path never touches the result plane) and the team
        remains usable afterwards."""
        with make_team(setup, "processes", comms="shm") as team:
            before = team.loglikelihood(0)
            with pytest.raises(WorkerError):
                team.run_program((("lnl", 0), ("deriv", 4242, np.zeros(2), [0])))
            assert team.loglikelihood(0) == pytest.approx(before, abs=1e-10)


class TestPostmortemFlightDump:
    """With the live plane on, a worker death must leave a JSONL
    flight-recorder dump behind — the black box for the crash."""

    @staticmethod
    def _load_dump(path):
        """Every line must parse as JSON on its own (the JSONL contract)."""
        with open(path) as fh:
            return [json.loads(line) for line in fh]

    @pytest.mark.timeout(60)
    def test_dead_worker_produces_postmortem_jsonl(self, setup, tmp_path):
        from repro.obs.live import LiveTelemetry

        live = LiveTelemetry(postmortem_dir=str(tmp_path))
        with make_team(setup, "processes", live=live) as team:
            team.loglikelihood(0)  # some healthy traffic first
            victim = team._team.procs[1]
            victim.terminate()
            victim.join(timeout=10)
            with pytest.raises(WorkerError, match="worker"):
                team.loglikelihood(0)
        path = live.last_postmortem
        assert path is not None and path.startswith(str(tmp_path))
        events = self._load_dump(path)
        assert events, "post-mortem dump is empty"
        deaths = [e for e in events if e["event"] == "worker_death"]
        assert deaths, "dump missing the worker_death event"
        assert deaths[-1]["rank"] == 1  # the offending worker
        # the run's story leads up to the death: dispatches were buffered
        assert any(e["event"] == "dispatch" for e in events)
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)

    @pytest.mark.timeout(60)
    def test_dead_worker_mid_program_dumps_and_cleans_shm(self, setup, tmp_path):
        """The shm variant of the mid-program death: the dump is written
        AND the teardown still unlinks every segment (arena, result
        plane, stats plane)."""
        from repro.obs.live import LiveTelemetry
        from repro.parallel import live_segments

        live = LiveTelemetry(postmortem_dir=str(tmp_path))
        before = live_segments()
        with make_team(setup, "processes", comms="shm", live=live) as team:
            # arena + result plane + worker-stats plane
            assert len(live_segments()) == len(before) + 3
            victim = team._team.procs[1]
            victim.terminate()
            victim.join(timeout=10)
            with pytest.raises(WorkerError, match="worker"):
                team.run_program((("lnl", 0), ("lnl", 0)))
        assert live_segments() == before
        events = self._load_dump(live.last_postmortem)
        deaths = [e for e in events if e["event"] == "worker_death"]
        assert deaths and deaths[-1]["rank"] == 1
        # it died inside the fused program ("prog(lnl+lnl)")
        assert deaths[-1]["op"].startswith("prog")

    @pytest.mark.timeout(30)
    def test_worker_error_without_death_also_dumps(self, setup, tmp_path):
        """A worker-side exception (not a death) is recorded as a
        worker_error event and still triggers the dump."""
        from repro.obs.live import LiveTelemetry

        live = LiveTelemetry(postmortem_dir=str(tmp_path))
        with make_team(setup, "threads", live=live) as team:
            with pytest.raises(WorkerError):
                team._broadcast(("explode",))
        events = self._load_dump(live.last_postmortem)
        errors = [e for e in events if e["event"] == "worker_error"]
        assert errors and errors[-1]["rank"] == 0
        assert not any(e["event"] == "worker_death" for e in events)


@pytest.mark.parametrize("backend", BACKENDS)
class TestIdempotentClose:
    @pytest.mark.timeout(30)
    def test_double_close(self, setup, backend):
        team = make_team(setup, backend)
        team.loglikelihood(0)
        team.close()
        team.close()  # second close must be a no-op, not a barrier wait

    @pytest.mark.timeout(30)
    def test_context_manager_plus_explicit_close(self, setup, backend):
        with make_team(setup, backend) as team:
            team.loglikelihood(0)
            team.close()
        # __exit__ called close() again — reaching here means no deadlock

    @pytest.mark.timeout(30)
    def test_broadcast_after_close_raises(self, setup, backend):
        team = make_team(setup, backend)
        team.close()
        with pytest.raises(RuntimeError, match="closed"):
            team.loglikelihood(0)


@pytest.mark.parametrize("backend", BACKENDS)
class TestIdleWorkersEndToEnd:
    @pytest.mark.timeout(60)
    def test_partition_shorter_than_team(self, setup, backend):
        """The paper's m'_p < T case on both real backends: a partition
        with fewer patterns than workers leaves workers idle but the full
        old/new optimization pipeline stays correct."""
        _, tree, lengths, models, alphas = setup
        rng = np.random.default_rng(43)
        tiny_aln = simulate_alignment(
            tree, lengths, models[0], 1.0, 8, rng
        )
        tiny = PartitionedAlignment(tiny_aln, uniform_scheme(8, 4))
        assert max(tiny.pattern_counts()) < 6  # fewer patterns than workers
        seq = PartitionedEngine(
            tiny, tree.copy(), models=models, alphas=alphas,
            initial_lengths=lengths,
        )
        ref = seq.loglikelihood(0)
        out = {}
        for strategy in ("old", "new"):
            with ParallelPLK(
                tiny, tree, models, alphas, 6, backend=backend,
                initial_lengths=lengths,
            ) as team:
                assert team.loglikelihood(0) == pytest.approx(ref, abs=1e-8)
                out[strategy] = team.optimize_branch(
                    0, strategy, z0=np.full(2, lengths[0])
                )
        np.testing.assert_allclose(out["old"], out["new"], atol=1e-4)

    @pytest.mark.timeout(60)
    def test_idle_workers_show_zero_busy_in_profile(self, setup, backend):
        """Workers owning zero patterns appear as (near-)idle lanes in the
        measured profile — the instrument sees what the paper describes."""
        from repro.perf import Profiler

        _, tree, lengths, models, alphas = setup
        rng = np.random.default_rng(44)
        tiny_aln = simulate_alignment(tree, lengths, models[0], 1.0, 6, rng)
        tiny = PartitionedAlignment(tiny_aln, uniform_scheme(6, 3))
        profiler = Profiler()
        with ParallelPLK(
            tiny, tree, models, alphas, 6, backend=backend,
            initial_lengths=lengths, profiler=profiler,
        ) as team:
            team.loglikelihood(0)
        profile = profiler.profile()
        busy = profile.busy_seconds
        # the busiest lane works strictly more than the idlest
        assert busy.max() > busy.min()
        assert profile.load_balance < 1.0
