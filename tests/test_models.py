"""Unit + property tests for substitution models (Q matrices)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plk import AA, DNA, SubstitutionModel, n_exchange_rates


class TestConstruction:
    def test_jc69(self):
        m = SubstitutionModel.jc69()
        np.testing.assert_allclose(m.frequencies, 0.25)
        q = m.q_matrix()
        # JC69: all off-diagonals equal, normalized to rate 1.
        off = q[~np.eye(4, dtype=bool)]
        np.testing.assert_allclose(off, off[0])
        np.testing.assert_allclose(np.diag(q), -1.0)

    def test_k80_transition_bias(self):
        m = SubstitutionModel.k80(kappa=4.0)
        q = m.q_matrix()
        # A->G (transition) is kappa times A->C (transversion)
        np.testing.assert_allclose(q[0, 2] / q[0, 1], 4.0)
        np.testing.assert_allclose(q[1, 3] / q[1, 0], 4.0)

    def test_rate_count_validation(self):
        with pytest.raises(ValueError, match="rates"):
            SubstitutionModel(DNA, np.ones(5), np.full(4, 0.25))

    def test_frequency_count_validation(self):
        with pytest.raises(ValueError, match="frequencies"):
            SubstitutionModel(DNA, np.ones(6), np.full(5, 0.2))

    def test_negative_rate_rejected(self):
        rates = np.ones(6)
        rates[2] = -1
        with pytest.raises(ValueError, match="positive"):
            SubstitutionModel(DNA, rates, np.full(4, 0.25))

    def test_frequencies_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum"):
            SubstitutionModel(DNA, np.ones(6), np.full(4, 0.3))

    def test_n_exchange_rates(self):
        assert n_exchange_rates(4) == 6
        assert n_exchange_rates(20) == 190

    def test_aa_models(self):
        assert SubstitutionModel.poisson_aa().states == 20
        m = SubstitutionModel.synthetic_aa(seed=1)
        assert m.rates.shape == (190,)
        # heterogeneous: rates spread over orders of magnitude
        assert m.rates.max() / m.rates.min() > 10

    def test_synthetic_aa_deterministic(self):
        a = SubstitutionModel.synthetic_aa(seed=5)
        b = SubstitutionModel.synthetic_aa(seed=5)
        np.testing.assert_array_equal(a.rates, b.rates)

    def test_with_rate(self):
        m = SubstitutionModel.jc69().with_rate(2, 3.5)
        assert m.rates[2] == 3.5
        assert m.rates[0] == 1.0

    def test_normalized_reference_rate(self):
        m = SubstitutionModel.gtr(np.array([2, 4, 1, 1, 4, 2.0]), np.full(4, 0.25))
        assert m.normalized().rates[-1] == 1.0


@st.composite
def gtr_models(draw):
    rates = np.array([draw(st.floats(0.05, 20.0)) for _ in range(6)])
    raw = np.array([draw(st.floats(0.05, 1.0)) for _ in range(4)])
    return SubstitutionModel.gtr(rates, raw / raw.sum())


class TestQMatrixProperties:
    @given(gtr_models())
    @settings(max_examples=60, deadline=None)
    def test_rows_sum_to_zero(self, m):
        np.testing.assert_allclose(m.q_matrix().sum(axis=1), 0.0, atol=1e-12)

    @given(gtr_models())
    @settings(max_examples=60, deadline=None)
    def test_normalized_to_unit_rate(self, m):
        q = m.q_matrix()
        np.testing.assert_allclose(-np.dot(m.frequencies, np.diag(q)), 1.0)

    @given(gtr_models())
    @settings(max_examples=60, deadline=None)
    def test_detailed_balance(self, m):
        """Time-reversibility: pi_i * Q_ij == pi_j * Q_ji."""
        q = m.q_matrix()
        flux = m.frequencies[:, None] * q
        np.testing.assert_allclose(flux, flux.T, atol=1e-12)

    @given(gtr_models())
    @settings(max_examples=60, deadline=None)
    def test_stationary_distribution(self, m):
        """pi Q == 0: the frequencies are the stationary distribution."""
        np.testing.assert_allclose(m.frequencies @ m.q_matrix(), 0.0, atol=1e-12)

    @given(gtr_models())
    @settings(max_examples=60, deadline=None)
    def test_offdiagonals_nonnegative(self, m):
        q = m.q_matrix()
        off = q[~np.eye(4, dtype=bool)]
        assert (off >= 0).all()
