"""Paper-dataset generator tests (small instances)."""
import numpy as np
import pytest

from repro.seqgen import (
    PAPER_REALWORLD,
    PAPER_SIMULATED,
    paper_dataset,
    simulated_dataset,
)


class TestSimulatedMatrix:
    def test_paper_matrix_spec(self):
        assert len(PAPER_SIMULATED) == 12
        assert (10, 5_000) in PAPER_SIMULATED
        assert (100, 50_000) in PAPER_SIMULATED

    def test_small_instance(self):
        ds = simulated_dataset(10, 5_000, 1_000, seed=1)
        assert ds.n_taxa == 10
        assert ds.n_partitions == 5
        assert ds.alignment.n_sites == 5_000
        pa = ds.partitioned()
        # m == m': all columns unique within partitions
        np.testing.assert_array_equal(pa.pattern_counts(), [1_000] * 5)

    def test_heterogeneous_generating_params(self):
        ds = simulated_dataset(10, 5_000, 1_000, seed=1)
        assert len(set(np.round(ds.alphas, 6))) > 1

    def test_cache_returns_same_object(self):
        a = simulated_dataset(10, 5_000, 1_000, seed=1)
        b = simulated_dataset(10, 5_000, 1_000, seed=1)
        assert a is b

    def test_indivisible_scheme_rejected(self):
        with pytest.raises(ValueError, match="divide"):
            simulated_dataset(10, 5_000, 10_000)


class TestPaperDatasetIds:
    def test_simulated_id(self):
        ds = paper_dataset("d10_5000_p1000", seed=1)
        assert ds.name == "d10_5000_p1000"

    def test_bad_id(self):
        with pytest.raises(ValueError, match="look like"):
            paper_dataset("d10")

    def test_unknown_realworld(self):
        with pytest.raises(KeyError, match="unknown real-world"):
            from repro.seqgen import realworld_standin

            realworld_standin("r999_1")

    def test_realworld_specs_match_paper(self):
        taxa, parts, total, lo, hi, dtype = PAPER_REALWORLD["r125_19839"]
        assert (taxa, parts, total, lo, hi, dtype) == (125, 34, 19_839, 148, 2_705, "DNA")
        assert PAPER_REALWORLD["r26_21451"][5] == "AA"
        assert PAPER_REALWORLD["r24_16916"][:3] == (24, 20, 16_916)
