"""Command-line interface tests (in-process main() invocations)."""
from pathlib import Path

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def dataset_files(tmp_path):
    rc = main(
        [
            "simulate",
            "--taxa", "8",
            "--sites", "900",
            "--partition-length", "300",
            "--seed", "5",
            "--out", str(tmp_path / "demo"),
        ]
    )
    assert rc == 0
    return tmp_path / "demo"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--taxa", "10", "--sites", "100", "--out", "x"]
        )
        assert args.command == "simulate"
        assert args.partition_length == 1_000

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze", "--alignment", "a.phy"])
        assert args.strategy == "new"
        assert args.branch_mode == "per_partition"
        assert not args.search


class TestSimulate(object):
    def test_writes_three_files(self, dataset_files):
        for suffix in (".phy", ".part", ".nwk"):
            assert dataset_files.with_suffix(suffix).exists()

    def test_outputs_parse_back(self, dataset_files):
        from repro.plk import parse_newick, parse_partition_file, parse_phylip

        aln = parse_phylip(dataset_files.with_suffix(".phy").read_text())
        assert aln.n_taxa == 8 and aln.n_sites == 900
        scheme = parse_partition_file(dataset_files.with_suffix(".part").read_text())
        assert len(scheme) == 3
        tree, lengths = parse_newick(dataset_files.with_suffix(".nwk").read_text())
        assert set(tree.taxa) == set(aln.taxa)


class TestAnalyze:
    def test_model_optimization(self, dataset_files, capsys, tmp_path):
        rc = main(
            [
                "analyze",
                "--alignment", str(dataset_files.with_suffix(".phy")),
                "--partitions", str(dataset_files.with_suffix(".part")),
                "--tree", str(dataset_files.with_suffix(".nwk")),
                "--rounds", "1",
                "--trace-summary",
                "--out-tree", str(tmp_path / "out.nwk"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "final log-likelihood" in out
        assert "schedule:" in out
        assert (tmp_path / "out.nwk").exists()

    def test_search_with_parsimony_start(self, dataset_files, capsys):
        rc = main(
            [
                "analyze",
                "--alignment", str(dataset_files.with_suffix(".phy")),
                "--partitions", str(dataset_files.with_suffix(".part")),
                "--search",
                "--radius", "2",
                "--rounds", "1",
                "--strategy", "old",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "parsimony" in out
        assert "search:" in out

    def test_single_partition_default(self, dataset_files, capsys):
        rc = main(
            [
                "analyze",
                "--alignment", str(dataset_files.with_suffix(".phy")),
                "--tree", str(dataset_files.with_suffix(".nwk")),
                "--rounds", "1",
            ]
        )
        assert rc == 0
        assert "partitions: 1," in capsys.readouterr().out

    def test_taxa_mismatch_fails(self, dataset_files, tmp_path, capsys):
        (tmp_path / "bad.nwk").write_text("(x:1,y:1,z:1);\n")
        rc = main(
            [
                "analyze",
                "--alignment", str(dataset_files.with_suffix(".phy")),
                "--tree", str(tmp_path / "bad.nwk"),
            ]
        )
        assert rc == 2


class TestReplay:
    def test_replay_small(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
        rc = main(
            [
                "replay",
                "--dataset", "d10_5000_p1000",
                "--analysis", "modelopt",
                "--threads", "1", "8",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Nehalem" in out and "x4600" in out
        # improvement column present and >= 1 for 8 threads
        lines = [l for l in out.splitlines() if l.startswith("Nehalem") and " 8 " in l]
        assert lines


class TestProfile:
    def test_profile_writes_json_report(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "profile.json"
        rc = main(
            [
                "profile",
                "--taxa", "8",
                "--sites", "600",
                "--partitions", "6",
                "--workers", "2",
                "--backend", "threads",
                "--edges", "2",
                "--seed", "3",
                "--out", str(out_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "oldPAR" in out and "newPAR" in out
        assert "efficiency" in out
        payload = json.loads(out_path.read_text())
        assert set(payload) == {"old", "new"}
        for strategy, blob in payload.items():
            from repro.perf import RunProfile

            profile = RunProfile.from_dict(blob)
            assert profile.n_workers == 2
            assert profile.n_regions > 0
            assert profile.meta["strategy"] == strategy
        # oldPAR issues more region broadcasts than newPAR
        assert (len(payload["old"]["records"])
                > len(payload["new"]["records"]))

    def test_warmup_flag(self, capsys):
        rc = main(
            [
                "profile",
                "--taxa", "6", "--sites", "300", "--partitions", "3",
                "--workers", "2", "--backend", "threads",
                "--edges", "2", "--warmup",
            ]
        )
        assert rc == 0
        assert "warmup pass" in capsys.readouterr().out

    def test_edges_exceeding_tree_rejected(self, capsys):
        # an 8-taxon unrooted tree has 13 branches; asking for more must
        # be a clean error, not a traceback
        rc = main(["profile", "--taxa", "8", "--edges", "99"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "13 branches" in err

    def test_tiny_taxa_rejected(self, capsys):
        rc = main(["profile", "--taxa", "3"])
        assert rc == 2
        assert "taxa" in capsys.readouterr().err


_TINY_WORKLOAD = [
    "--taxa", "6", "--sites", "300", "--partitions", "3",
    "--workers", "2", "--backend", "threads", "--edges", "2",
]


class TestTimeline:
    def test_fresh_run_writes_valid_trace(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        rc = main(["timeline", *_TINY_WORKLOAD, "--out", str(out_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "master" in out and "worker 0" in out and "worker 1" in out
        assert "broadcasts:" in out
        assert "convergence telemetry" in out
        events = validate_chrome_trace(json.loads(out_path.read_text()))
        lanes = {ev["tid"] for ev in events if ev["ph"] == "X"}
        assert lanes == {0, 1, 2}  # master + one lane per worker

    def test_render_saved_profile(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        profile_path = tmp_path / "profile.json"
        rc = main(["profile", *_TINY_WORKLOAD, "--out", str(profile_path)])
        assert rc == 0
        capsys.readouterr()
        out_path = tmp_path / "trace.json"
        rc = main(
            [
                "timeline",
                "--profile", str(profile_path),
                "--strategy", "old",
                "--out", str(out_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[old]" in out and "worker 1" in out
        validate_chrome_trace(json.loads(out_path.read_text()))


class TestPerfcheck:
    def test_missing_baseline_errors(self, capsys, tmp_path):
        rc = main(["perfcheck", "--baseline", str(tmp_path / "none.json")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_update_then_check(self, capsys, tmp_path):
        import json

        baseline = tmp_path / "base.json"
        rc = main(
            ["perfcheck", "--update", "--baseline", str(baseline),
             *_TINY_WORKLOAD]
        )
        assert rc == 0
        assert baseline.exists()
        capsys.readouterr()
        # the tiny test workload is timing-jittery; relax the wall-clock
        # checks through the baseline's own tolerances override
        doc = json.loads(baseline.read_text())
        doc["tolerances"] = {"wall_ratio_slack": 2.0, "efficiency_drop": 0.3}
        baseline.write_text(json.dumps(doc))
        trace_path = tmp_path / "smoke_trace.json"
        rc = main(
            ["perfcheck", "--baseline", str(baseline),
             "--out-trace", str(trace_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "PASS" in out
        assert trace_path.exists()

    def test_committed_baseline_loads(self):
        from repro.obs import load_baseline

        baseline = load_baseline(
            Path(__file__).resolve().parents[1]
            / "benchmarks" / "baselines" / "perf_smoke.json"
        )
        assert {"taxa", "workers", "backend", "edges"} <= set(
            baseline["workload"]
        )
        assert "old" in baseline["strategies"]
        assert "new" in baseline["strategies"]


class TestCheckpointFlow:
    def test_checkpoint_and_resume(self, dataset_files, tmp_path, capsys):
        ckpt = tmp_path / "run.ckpt"
        rc = main(
            [
                "analyze",
                "--alignment", str(dataset_files.with_suffix(".phy")),
                "--partitions", str(dataset_files.with_suffix(".part")),
                "--tree", str(dataset_files.with_suffix(".nwk")),
                "--rounds", "1",
                "--checkpoint", str(ckpt),
            ]
        )
        assert rc == 0
        first = capsys.readouterr().out
        lnl_first = float(
            next(l for l in first.splitlines() if "final log-likelihood" in l)
            .split(":")[1].split()[0]
        )
        rc = main(
            [
                "analyze",
                "--alignment", str(dataset_files.with_suffix(".phy")),
                "--partitions", str(dataset_files.with_suffix(".part")),
                "--resume", str(ckpt),
                "--rounds", "1",
            ]
        )
        assert rc == 0
        second = capsys.readouterr().out
        assert "resumed from checkpoint" in second
        lnl_second = float(
            next(l for l in second.splitlines() if "final log-likelihood" in l)
            .split(":")[1].split()[0]
        )
        # resuming from an optimized state cannot be worse
        assert lnl_second >= lnl_first - 0.5
