"""Unit + property tests for the unrooted-tree structure."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plk import Tree
from repro.seqgen import default_taxa


def random_tree(n, seed=0):
    return Tree.random(default_taxa(n), np.random.default_rng(seed))


class TestConstruction:
    def test_counts(self):
        t = random_tree(7)
        assert t.n_taxa == 7
        assert t.n_nodes == 12
        assert t.n_edges == 11
        t.validate()

    def test_minimum_three_taxa(self):
        with pytest.raises(ValueError):
            Tree(("a", "b"))

    def test_duplicate_taxa_rejected(self):
        with pytest.raises(ValueError):
            Tree(("a", "a", "b"))

    def test_degrees(self):
        t = random_tree(10)
        for node in range(t.n_nodes):
            assert t.degree(node) == (1 if t.is_leaf(node) else 3)

    def test_copy_independent(self):
        t = random_tree(6)
        dup = t.copy()
        u, v = dup.edge_nodes(0)
        dup._unlink(u, v)
        t.validate()  # original untouched
        with pytest.raises(AssertionError):
            dup.validate()

    def test_edge_lookup(self):
        t = random_tree(5)
        for eid, u, v in t.edges():
            assert t.edge_between(u, v) == eid
            assert t.edge_between(v, u) == eid
            got = t.edge_nodes(eid)
            assert {u, v} == set(got)


class TestTraversal:
    def test_postorder_covers_all_inner_nodes(self):
        t = random_tree(9)
        for edge in range(t.n_edges):
            steps = t.postorder(edge)
            assert {s.node for s in steps} == set(range(t.n_taxa, t.n_nodes))

    def test_children_before_parents(self):
        t = random_tree(12)
        steps = t.postorder(0)
        seen = set(range(t.n_taxa))  # leaves are always ready
        for s in steps:
            assert s.c1 in seen and s.c2 in seen
            seen.add(s.node)

    def test_orientation_root_endpoints(self):
        t = random_tree(6)
        a, b = t.edge_nodes(3)
        parent = t.orientation(3)
        assert parent[a] == -1 and parent[b] == -1
        # every other node has a real parent
        others = [n for n in range(t.n_nodes) if n not in (a, b)]
        assert (parent[others] >= 0).all()

    def test_orientation_cache_invalidated_by_mutation(self):
        t = random_tree(6)
        before = t.postorder(0)
        # do a trivial unlink/relink of the same edge
        u, v = t.edge_nodes(2)
        t._unlink(u, v)
        t._link(u, v, 2)
        after = t.postorder(0)
        # same logical traversal (children sets per node); adjacency-dict
        # order may legitimately permute the two children
        unordered = lambda steps: {
            (s.node, frozenset([(s.c1, s.e1), (s.c2, s.e2)])) for s in steps
        }
        assert unordered(before) == unordered(after)

    def test_leaves_under(self):
        t = Tree(("a", "b", "c", "d"))
        t._link(0, 4, 0)
        t._link(1, 4, 1)
        t._link(2, 5, 2)
        t._link(3, 5, 3)
        t._link(4, 5, 4)
        assert t.leaves_under(4, 5) == {0, 1}
        assert t.leaves_under(5, 4) == {2, 3}


class TestSplits:
    def test_quartet_has_one_split(self, quartet_tree):
        splits = quartet_tree.splits()
        assert len(splits) == 1
        # the split not containing leaf 0 is {c, d} = {2, 3}
        assert splits == {frozenset({2, 3})}

    def test_rf_zero_to_self(self):
        t = random_tree(10, 3)
        assert t.robinson_foulds(t.copy()) == 0

    def test_rf_symmetric(self):
        a = random_tree(10, 1)
        b = random_tree(10, 2)
        assert a.robinson_foulds(b) == b.robinson_foulds(a)

    def test_rf_rejects_different_taxa(self):
        a = random_tree(5)
        b = Tree.random(default_taxa(5, "x"), np.random.default_rng(0))
        with pytest.raises(ValueError):
            a.robinson_foulds(b)

    def test_rf_invariant_to_leaf_numbering(self):
        """Same topology expressed over permuted taxon ids -> RF 0."""
        a = random_tree(8, 5)
        from repro.plk import parse_newick, write_newick

        b, _ = parse_newick(write_newick(a))
        assert a.robinson_foulds(b) == 0


class TestRandomProperties:
    @given(st.integers(3, 40), st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_random_trees_valid(self, n, seed):
        t = random_tree(n, seed)
        t.validate()
        assert len(t.edges()) == 2 * n - 3

    @given(st.integers(4, 20), st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_splits_count(self, n, seed):
        """A binary unrooted tree has exactly n-3 internal edges/splits."""
        t = random_tree(n, seed)
        assert len(t.splits()) == n - 3

    @given(st.integers(4, 16), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_postorder_length(self, n, seed):
        t = random_tree(n, seed)
        for edge in (0, t.n_edges - 1):
            assert len(t.postorder(edge)) == n - 2


class TestBranchScoreDistance:
    def test_zero_to_self(self):
        t = random_tree(9, 4)
        lengths = np.random.default_rng(0).uniform(0.01, 0.5, t.n_edges)
        assert t.branch_score_distance(lengths, t.copy(), lengths) == 0.0

    def test_pure_length_difference(self):
        """Same topology, one branch differs by d -> distance d."""
        t = random_tree(7, 5)
        rng = np.random.default_rng(1)
        lengths = rng.uniform(0.05, 0.3, t.n_edges)
        other = lengths.copy()
        other[3] += 0.42
        assert t.branch_score_distance(lengths, t.copy(), other) == pytest.approx(0.42)

    def test_symmetric(self):
        a = random_tree(8, 6)
        b = random_tree(8, 7)
        rng = np.random.default_rng(2)
        la = rng.uniform(0.01, 0.4, a.n_edges)
        lb = rng.uniform(0.01, 0.4, b.n_edges)
        assert a.branch_score_distance(la, b, lb) == pytest.approx(
            b.branch_score_distance(lb, a, la)
        )

    def test_taxon_set_mismatch(self):
        a = random_tree(5)
        b = Tree.random(default_taxa(5, "q"), np.random.default_rng(0))
        with pytest.raises(ValueError):
            a.branch_score_distance(np.ones(7), b, np.ones(7))

    def test_robust_to_leaf_numbering(self):
        """Round-tripping through Newick permutes leaf ids; the distance
        must still be ~0 when lengths agree."""
        from repro.plk import parse_newick, write_newick

        t = random_tree(9, 8)
        lengths = np.random.default_rng(3).uniform(0.05, 0.4, t.n_edges)
        back, back_lengths = parse_newick(write_newick(t, lengths, precision=12))
        assert t.branch_score_distance(lengths, back, back_lengths) < 1e-9
