"""Repeat-compression correctness: the repeat-aware engine against dense.

The contract (ISSUE 10): under ``kernel=repeats`` the engine computes the
SAME values as the dense reference — sites of one repeat class share
bit-identical CLVs and scale counters by construction, so expansion by
gather reproduces the dense arrays exactly.  The suite pins that to
1e-12 (in practice bit-equal for the numpy inner backend) across random
trees/alignments, +I mixtures, ZERO_SCALE dead patterns, ambiguity
codes, topology moves and zero-width slices, plus the pure index
arithmetic of :mod:`repro.plk.repeats`.
"""
import warnings

import numpy as np
import pytest

from repro.plk import (
    Alignment,
    NodeRepeats,
    PartitionData,
    PartitionLikelihood,
    PartitionedAlignment,
    SubstitutionModel,
    effective_pattern_weights,
    get_kernel,
    repeat_profile,
    tip_state_codes,
    uniform_scheme,
)
from repro.plk.kernel import ZERO_SCALE
from repro.plk.repeats import DENSE_FALLBACK_RATIO
from repro.seqgen import random_topology_with_lengths, simulate_alignment

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the image
    HAVE_HYPOTHESIS = False

AMBIG = "RYSWKMBDHVN-"


def random_alignment(tree, n_sites, rng, ambiguity=0.0, diversity=1.0):
    """A random (not model-simulated) alignment on ``tree``'s taxa.

    ``diversity`` < 1 draws columns from a small pool (repeat-heavy);
    ``ambiguity`` injects IUPAC codes and gaps at that per-cell rate.
    """
    n_taxa = len(tree.taxa)
    pool = max(2, int(40 * diversity))
    cols = rng.integers(0, 4, size=(pool, n_taxa))
    draw = cols[rng.integers(0, pool, size=n_sites)]  # (sites, taxa)
    chars = np.array(list("ACGT"))[draw]
    if ambiguity > 0:
        mask = rng.random((n_sites, n_taxa)) < ambiguity
        codes = rng.integers(0, len(AMBIG), size=(n_sites, n_taxa))
        chars = np.where(mask, np.array(list(AMBIG))[codes], chars)
    seqs = {tree.taxa[i]: "".join(chars[:, i]) for i in range(n_taxa)}
    return Alignment.from_sequences(seqs)


def engines_for(data, tree, model, alpha=0.9, kernels=("numpy", "repeats")):
    return [
        PartitionLikelihood(data, tree, model, alpha=alpha, kernel_backend=k)
        for k in kernels
    ]


class TestIndexArithmetic:
    def test_tip_codes_distinguish_ambiguity(self):
        aln = Alignment.from_sequences(
            {"a": "AARN-", "b": "AAAAA", "c": "CCCCC", "d": "GGGGG"}
        )
        block = PartitionedAlignment(aln, uniform_scheme(5, 5)).data[0]
        codes = tip_state_codes(block.tip_states)
        # pattern compression may reorder columns; assert on the code
        # values: A -> 0b0001, R(=A|G) -> 0b0101, N and - -> 0b1111
        assert set(codes[0].tolist()) == {1, 5, 15}
        assert (codes[1] == 1).all()  # taxon b: all A
        assert (codes[2] == 2).all()  # taxon c: all C
        assert (codes[3] == 4).all()  # taxon d: all G

    def test_combine_refines_and_saturates(self):
        left = NodeRepeats.from_keys(np.array([0, 0, 1, 1]))
        right = NodeRepeats.from_keys(np.array([5, 7, 5, 5]))
        parent = NodeRepeats.combine(left, right)
        assert parent.n_classes == 3
        assert parent.classes[2] == parent.classes[3]
        assert parent.classes[0] != parent.classes[1]
        # representatives map back onto their own class
        for j, r in enumerate(parent.representatives):
            assert parent.classes[r] == j
        saturated = NodeRepeats.from_keys(np.arange(4))
        top = NodeRepeats.combine(parent, saturated)
        assert top.saturated and not top.compressed
        assert top.classes.tolist() == [0, 1, 2, 3]

    def test_empty_and_dense_fallback(self):
        empty = NodeRepeats.from_keys(np.array([], dtype=np.int64))
        assert empty.m == 0 and not empty.compressed
        assert empty.unique_ratio == 1.0
        nearly_unique = NodeRepeats.from_keys(np.array([0, 1, 2, 3, 4, 5]))
        assert not nearly_unique.compressed  # ratio 1.0 > fallback
        heavy = NodeRepeats.from_keys(np.zeros(10, dtype=np.int64))
        assert heavy.compressed and heavy.n_classes == 1
        assert DENSE_FALLBACK_RATIO < 1.0

    def test_profile_and_weights_agree(self, small_tree):
        tree, lengths = small_tree
        rng = np.random.default_rng(5)
        aln = random_alignment(tree, 200, rng, diversity=0.2)
        block = PartitionedAlignment(aln, uniform_scheme(200, 200)).data[0]
        prof = repeat_profile(block.tip_states, tree)
        w = effective_pattern_weights(block.tip_states, tree, 4)
        # mean effective weight over base == mean unique ratio over nodes
        assert w.mean() / 64.0 == pytest.approx(prof["mean_unique_ratio"])
        assert prof["min_unique_ratio"] <= prof["mean_unique_ratio"] <= 1.0
        assert (w > 0).all()


class TestEngineEquivalence:
    def test_repeat_heavy_alignment_exact(self, small_tree):
        tree, lengths = small_tree
        rng = np.random.default_rng(11)
        aln = random_alignment(tree, 300, rng, ambiguity=0.05, diversity=0.15)
        data = PartitionedAlignment(aln, uniform_scheme(300, 300)).data[0]
        model = SubstitutionModel.random_gtr(2)
        dense, reps = engines_for(data, tree, model)
        for eng in (dense, reps):
            eng.set_branch_lengths(np.abs(lengths) + 0.02)
        for edge in (0, 2, 5):
            assert reps.loglikelihood(edge) == pytest.approx(
                dense.loglikelihood(edge), rel=1e-12, abs=1e-12
            )
        np.testing.assert_allclose(
            reps.site_loglikelihoods(1), dense.site_loglikelihoods(1),
            rtol=1e-12,
        )
        # branch machinery goes through the expansion boundary
        wd, wr = dense.prepare_branch(3), reps.prepare_branch(3)
        for z in (0.01, 0.2, 1.5):
            assert reps.branch_loglikelihood(wr, z) == pytest.approx(
                dense.branch_loglikelihood(wd, z), rel=1e-12
            )
            dd, dr = dense.branch_derivatives(wd, z), reps.branch_derivatives(wr, z)
            assert dr[0] == pytest.approx(dd[0], rel=1e-9, abs=1e-9)
            assert dr[1] == pytest.approx(dd[1], rel=1e-9, abs=1e-9)

    def test_pinv_mixture(self, small_tree):
        tree, lengths = small_tree
        rng = np.random.default_rng(23)
        aln = random_alignment(tree, 150, rng, diversity=0.2)
        data = PartitionedAlignment(aln, uniform_scheme(150, 150)).data[0]
        model = SubstitutionModel.random_gtr(4)
        dense, reps = engines_for(data, tree, model)
        for eng in (dense, reps):
            eng.set_branch_lengths(np.abs(lengths) + 0.05)
            eng.pinv = 0.35
        assert reps.loglikelihood(0) == pytest.approx(
            dense.loglikelihood(0), rel=1e-12
        )

    def test_scaling_heavy_deep_tree(self):
        """Long chains of short CLV magnitudes force rescale(); the scale
        counters must ride the compressed columns identically."""
        rng = np.random.default_rng(7)
        tree, lengths = random_topology_with_lengths(40, rng)
        aln = random_alignment(tree, 120, rng, diversity=0.1)
        data = PartitionedAlignment(aln, uniform_scheme(120, 120)).data[0]
        model = SubstitutionModel.random_gtr(8)
        dense, reps = engines_for(data, tree, model, alpha=0.3)
        tiny = np.full(tree.n_edges, 1e-6)  # extreme: heavy underflow
        for eng in (dense, reps):
            eng.set_branch_lengths(tiny)
        assert reps.loglikelihood(0) == pytest.approx(
            dense.loglikelihood(0), rel=1e-12
        )
        np.testing.assert_allclose(
            reps.site_loglikelihoods(0), dense.site_loglikelihoods(0),
            rtol=1e-12,
        )

    def test_zero_scale_dead_patterns(self, small_tree):
        """All-zero tip rows (impossible states) drive whole repeat
        classes to the ZERO_SCALE sentinel; compressed and dense paths
        must flush and report identically (-inf site lnl)."""
        tree, lengths = small_tree
        rng = np.random.default_rng(3)
        aln = random_alignment(tree, 60, rng, diversity=0.2)
        block = PartitionedAlignment(aln, uniform_scheme(60, 60)).data[0]
        tips = block.tip_states.copy()
        dead = [2, tips.shape[1] - 1]
        # kill a taxon NOT on the root edge, so newview (not the root
        # reduction) is what first sees the all-zero columns and must
        # mark them with the sentinel
        tips[3, dead, :] = 0.0
        data = PartitionData(
            partition=block.partition, tip_states=tips, weights=block.weights
        )
        model = SubstitutionModel.random_gtr(6)
        dense, reps = engines_for(data, tree, model)
        for eng in (dense, reps):
            eng.set_branch_lengths(np.abs(lengths) + 0.02)
        sd = dense.site_loglikelihoods(0)
        sr = reps.site_loglikelihoods(0)
        assert np.isneginf(sd[dead]).all()
        np.testing.assert_array_equal(np.isneginf(sd), np.isneginf(sr))
        finite = np.isfinite(sd)
        np.testing.assert_allclose(sr[finite], sd[finite], rtol=1e-12)
        # the sentinel itself must be present in the repeat engine's
        # stored counters (compressed storage, same sentinel arithmetic)
        assert any(
            (scale >= ZERO_SCALE).any() for scale in reps._scale.values()
        )

    def test_zero_width_partition(self, small_tree):
        tree, lengths = small_tree
        rng = np.random.default_rng(1)
        aln = random_alignment(tree, 30, rng)
        block = PartitionedAlignment(aln, uniform_scheme(30, 30)).data[0]
        empty = PartitionData(
            partition=block.partition,
            tip_states=block.tip_states[:, :0, :],
            weights=block.weights[:0],
        )
        model = SubstitutionModel.random_gtr(9)
        dense, reps = engines_for(empty, tree, model)
        assert reps.loglikelihood(0) == dense.loglikelihood(0) == 0.0

    def test_topology_move_invalidates_index(self, small_tree):
        """An NNI changes subtree composition; the repeat index must be
        rebuilt (child-pair signatures) and results stay equal to dense
        before, after, and after undo."""
        from repro.search import nni_swap

        base_tree, lengths = small_tree
        rng = np.random.default_rng(31)
        aln = random_alignment(base_tree, 200, rng, diversity=0.15)
        data = PartitionedAlignment(aln, uniform_scheme(200, 200)).data[0]
        model = SubstitutionModel.random_gtr(12)
        t_dense, t_reps = base_tree.copy(), base_tree.copy()
        dense = PartitionLikelihood(data, t_dense, model, kernel_backend="numpy")
        reps = PartitionLikelihood(data, t_reps, model, kernel_backend="repeats")
        for eng in (dense, reps):
            eng.set_branch_lengths(np.abs(lengths) + 0.02)
        assert reps.loglikelihood(0) == pytest.approx(
            dense.loglikelihood(0), rel=1e-12
        )
        inner = next(
            e for e, (u, v) in enumerate(
                (t_dense.edge_nodes(e) for e in range(t_dense.n_edges))
            )
            if not (t_dense.is_leaf(u) or t_dense.is_leaf(v))
        )
        moves = []
        for tree, eng in ((t_dense, dense), (t_reps, reps)):
            move = nni_swap(tree, inner, variant=0)
            for node in move.invalidate:
                eng.invalidate_node(node)
            moves.append(move)
        lnl_d, lnl_r = dense.loglikelihood(0), reps.loglikelihood(0)
        assert lnl_r == pytest.approx(lnl_d, rel=1e-12)
        for (tree, eng), move in zip(((t_dense, dense), (t_reps, reps)), moves):
            move.undo()
            for node in move.invalidate:
                eng.invalidate_node(node)
        assert reps.loglikelihood(0) == pytest.approx(
            dense.loglikelihood(0), rel=1e-12
        )

    def test_index_survives_branch_changes(self, small_tree):
        """Branch-length moves must NOT rebuild the repeat index — that
        reuse is the whole Newton-round payoff."""
        tree, lengths = small_tree
        rng = np.random.default_rng(13)
        aln = random_alignment(tree, 100, rng, diversity=0.2)
        data = PartitionedAlignment(aln, uniform_scheme(100, 100)).data[0]
        model = SubstitutionModel.random_gtr(3)
        reps = PartitionLikelihood(data, tree, model, kernel_backend="repeats")
        reps.loglikelihood(0)
        before = {n: id(r) for n, r in reps._node_rep.items()}
        reps.set_branch_length(0, 0.42)
        reps.loglikelihood(0)
        reps.alpha = 0.5  # parameter change: CLVs invalid, index not
        reps.loglikelihood(0)
        after = {n: id(r) for n, r in reps._node_rep.items()}
        assert before == after

    def test_composite_backends_match_reference(self, small_tree):
        tree, lengths = small_tree
        rng = np.random.default_rng(17)
        aln = random_alignment(tree, 250, rng, ambiguity=0.03, diversity=0.2)
        data = PartitionedAlignment(aln, uniform_scheme(250, 250)).data[0]
        model = SubstitutionModel.random_gtr(21)
        ref = PartitionLikelihood(data, tree, model, kernel_backend="numpy")
        ref.set_branch_lengths(np.abs(lengths) + 0.02)
        target = ref.loglikelihood(0)
        for name in ("repeats", "repeats+blocked", "repeats+numba"):
            with warnings.catch_warnings():
                # numba falls back to numpy with a RuntimeWarning when
                # it is not installed; the equivalence claim still holds
                warnings.simplefilter("ignore", RuntimeWarning)
                kernel = get_kernel(name)
            eng = PartitionLikelihood(data, tree, model, kernel_backend=kernel)
            eng.set_branch_lengths(np.abs(lengths) + 0.02)
            assert eng.loglikelihood(0) == pytest.approx(
                target, abs=1e-9
            ), name


if HAVE_HYPOTHESIS:

    @settings(max_examples=30, deadline=None)
    @given(
        n_taxa=st.integers(min_value=4, max_value=14),
        n_sites=st.integers(min_value=1, max_value=120),
        diversity=st.floats(min_value=0.02, max_value=1.0),
        ambiguity=st.floats(min_value=0.0, max_value=0.25),
        pinv=st.floats(min_value=0.0, max_value=0.6),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_repeats_equals_dense(
        n_taxa, n_sites, diversity, ambiguity, pinv, seed
    ):
        """Property: for arbitrary random trees, alignments (down to one
        site, up to heavy ambiguity and repeat density) and +I weights,
        the repeat-aware engine reproduces the dense log-likelihood to
        1e-12."""
        rng = np.random.default_rng(seed)
        tree, lengths = random_topology_with_lengths(n_taxa, rng)
        aln = random_alignment(
            tree, n_sites, rng, ambiguity=ambiguity, diversity=diversity
        )
        data = PartitionedAlignment(
            aln, uniform_scheme(n_sites, n_sites)
        ).data[0]
        model = SubstitutionModel.random_gtr(seed % 1000)
        dense, reps = engines_for(data, tree, model, alpha=0.7)
        for eng in (dense, reps):
            eng.set_branch_lengths(np.abs(lengths) + 0.01)
            eng.pinv = pinv
        ref = dense.loglikelihood(0)
        assert reps.loglikelihood(0) == pytest.approx(ref, rel=1e-12, abs=1e-12)
        np.testing.assert_allclose(
            reps.site_loglikelihoods(0), dense.site_loglikelihoods(0),
            rtol=1e-12, atol=1e-12,
        )

    @settings(max_examples=15, deadline=None)
    @given(
        n_sites=st.integers(min_value=0, max_value=20),
        workers=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_property_zero_width_slices(n_sites, workers, seed):
        """Property: worker teams under kernel=repeats match the dense
        sequential engine even when slices are thinner than the team
        (zero-width slices included)."""
        from repro.core import PartitionedEngine
        from repro.parallel import ParallelPLK

        rng = np.random.default_rng(seed)
        tree, lengths = random_topology_with_lengths(6, rng)
        sites = max(n_sites, 1)
        aln = random_alignment(tree, sites, rng, diversity=0.3)
        data = PartitionedAlignment(aln, uniform_scheme(sites, sites))
        model = SubstitutionModel.random_gtr(seed % 997)
        models, alphas = [model], [0.8]
        ref = PartitionedEngine(
            data, tree.copy(), models=models, alphas=alphas,
            initial_lengths=lengths, kernel="repeats",
        ).loglikelihood(0)
        with ParallelPLK(
            data, tree, models, alphas, workers, backend="threads",
            kernel="repeats", initial_lengths=lengths,
        ) as team:
            assert team.loglikelihood(0) == pytest.approx(ref, abs=1e-9)
