"""Batched-Brent tests: correctness vs scipy, lock-step masking semantics.

The central newPAR correctness claim: the batched solver reaches the same
optima as independent scalar runs — simultaneity changes the schedule, not
the result.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import minimize_scalar

from repro.optimize import BatchedBrent, brent_minimize


class TestScalar:
    def test_quadratic(self):
        x, fx, n = brent_minimize(lambda v: (v - 2.0) ** 2, 0.0, 5.0)
        assert x == pytest.approx(2.0, abs=1e-3)
        assert n < 30

    def test_matches_scipy(self):
        fn = lambda v: np.cos(v) + 0.1 * v
        ours, _, _ = brent_minimize(fn, 0.5, 6.0, xtol=1e-6)
        ref = minimize_scalar(fn, bounds=(0.5, 6.0), method="bounded").x
        assert ours == pytest.approx(ref, abs=1e-4)

    def test_minimum_at_boundary(self):
        x, _, _ = brent_minimize(lambda v: v, 1.0, 3.0)
        assert x == pytest.approx(1.0, abs=1e-3)

    def test_guess_respected(self):
        calls = []

        def fn(v):
            calls.append(v)
            return (v - 1.5) ** 2

        brent_minimize(fn, 0.0, 10.0, guess=1.5)
        assert calls[0] == pytest.approx(1.5, abs=1e-3)

    def test_narrow_bracket_guess_stays_inside(self):
        """Bracket narrower than 2*(xtol + eps*|g|): the clipped initial
        point must stay inside [a, b] (previously np.clip with crossed
        bounds pushed it to b - pad < a)."""
        lo, hi = 1.0, 1.0 + 1e-5
        evaluated = []

        def fn(v):
            evaluated.append(v)
            assert lo <= v <= hi
            return (v - 1.5) ** 2

        x, _, _ = brent_minimize(fn, lo, hi, guess=5.0, xtol=1e-3)
        assert lo <= x <= hi
        assert all(lo <= v <= hi for v in evaluated)

    def test_narrow_bracket_batched_lanes(self):
        """Same guard lane-wise: only the narrow lane gets the capped pad."""
        solver = BatchedBrent(
            np.array([0.0, 2.0]), np.array([1e-6, 3.0]), xtol=1e-3
        )
        seen = []

        def fn(x, active):
            seen.append((x.copy(), active.copy()))
            return (x - 2.5) ** 2

        res = solver.run(fn, guess=np.array([0.5, 2.5]))
        lo = np.array([0.0, 2.0])
        hi = np.array([1e-6, 3.0])
        for x, active in seen:  # inactive lanes are computed but never read
            assert np.all(x[active] >= lo[active])
            assert np.all(x[active] <= hi[active])
        assert res.x[1] == pytest.approx(2.5, abs=1e-2)


class TestBatched:
    def test_independent_lanes_match_scalar(self):
        """The newPAR invariant: batch == per-lane scalar runs."""
        targets = np.array([0.3, 1.7, 4.2, 0.9])
        fn = lambda x, active: (x - targets) ** 4 + 3.0
        solver = BatchedBrent(np.full(4, 0.01), np.full(4, 10.0), xtol=1e-6)
        batch = solver.run(fn, guess=np.full(4, 2.0))
        for lane in range(4):
            x, fx, _ = brent_minimize(
                lambda v, t=targets[lane]: (v - t) ** 4 + 3.0,
                0.01,
                10.0,
                guess=2.0,
                xtol=1e-6,
            )
            assert batch.x[lane] == pytest.approx(x, abs=1e-5)
        assert batch.converged.all()

    def test_iteration_counts_differ_per_lane(self):
        """Different curvature -> different convergence speed; this
        variance IS the paper's load-imbalance source."""
        fn = lambda x, active: np.where(
            np.arange(4) % 2 == 0, (x - 1.0) ** 2, np.abs(x - 3.0) ** 1.2
        )
        solver = BatchedBrent(np.full(4, 0.01), np.full(4, 10.0))
        res = solver.run(fn)
        assert len(set(res.iterations.tolist())) > 1
        assert res.rounds == res.iterations.max()

    def test_inactive_lanes_never_evaluated(self):
        seen = []

        def fn(x, active):
            seen.append(active.copy())
            return (x - 1.0) ** 2

        solver = BatchedBrent(np.full(3, 0.01), np.full(3, 5.0))
        mask = np.array([True, False, True])
        res = solver.run(fn, mask=mask)
        for act in seen:
            assert not act[1]
        assert res.iterations[1] == 0
        assert not res.converged[1]

    def test_convergence_mask_shrinks(self):
        """Once a lane converges it stops being evaluated (the paper's
        boolean convergence vector)."""
        active_history = []

        def fn(x, active):
            active_history.append(active.sum())
            # lane 0: sharp quadratic (fast); lane 1: quartic plateau (slow)
            return np.array([(x[0] - 1.0) ** 2 * 100, (x[1] - 3.0) ** 4 * 1e-3])

        solver = BatchedBrent(np.full(2, 0.01), np.full(2, 6.0), xtol=1e-8)
        solver.run(fn)
        assert active_history[0] == 2
        assert active_history[-1] == 1  # one lane retired early

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            BatchedBrent(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            BatchedBrent(np.array([1.0, 2.0]), np.array([3.0]))

    @given(
        st.lists(st.floats(0.1, 9.9), min_size=1, max_size=8),
        st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_finds_quadratic_minima(self, targets, seed):
        t = np.array(targets)
        k = len(t)
        fn = lambda x, active: (x - t) ** 2
        solver = BatchedBrent(np.full(k, 0.0), np.full(k, 10.0), xtol=1e-6)
        guess = np.random.default_rng(seed).uniform(0.5, 9.5, k)
        res = solver.run(fn, guess=guess)
        np.testing.assert_allclose(res.x, t, atol=1e-3)
