"""Eigendecomposition tests, cross-checked against scipy.linalg.expm."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import expm

from repro.plk import EigenSystem, SubstitutionModel


@pytest.fixture(scope="module")
def gtr():
    return SubstitutionModel.random_gtr(17)


@pytest.fixture(scope="module")
def eig(gtr):
    return EigenSystem.from_model(gtr)


class TestDecomposition:
    def test_reconstructs_q(self, gtr, eig):
        q = gtr.q_matrix()
        rebuilt = eig.u @ np.diag(eig.eigenvalues) @ eig.v
        np.testing.assert_allclose(rebuilt, q, atol=1e-12)

    def test_u_v_inverse(self, eig):
        np.testing.assert_allclose(eig.u @ eig.v, np.eye(4), atol=1e-12)

    def test_eigenvalues_nonpositive_with_one_zero(self, eig):
        lam = np.sort(eig.eigenvalues)
        assert lam[-1] == pytest.approx(0.0, abs=1e-12)
        assert (lam[:-1] < 0).all()

    def test_aa_model_decomposes(self):
        m = SubstitutionModel.synthetic_aa(2)
        e = EigenSystem.from_model(m)
        np.testing.assert_allclose(
            e.u @ np.diag(e.eigenvalues) @ e.v, m.q_matrix(), atol=1e-10
        )


class TestTransitionMatrices:
    def test_matches_expm(self, gtr, eig):
        q = gtr.q_matrix()
        for t in (0.01, 0.1, 0.5, 2.0, 10.0):
            np.testing.assert_allclose(
                eig.transition_matrix(t), expm(q * t), atol=1e-10
            )

    def test_identity_at_zero(self, eig):
        np.testing.assert_allclose(eig.transition_matrix(0.0), np.eye(4), atol=1e-12)

    def test_rows_sum_to_one(self, eig):
        p = eig.transition_matrix(0.37)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-12)

    def test_converges_to_stationary(self, gtr, eig):
        p = eig.transition_matrix(500.0)
        for row in p:
            np.testing.assert_allclose(row, gtr.frequencies, atol=1e-8)

    def test_chapman_kolmogorov(self, eig):
        """P(s) P(t) == P(s + t)."""
        np.testing.assert_allclose(
            eig.transition_matrix(0.2) @ eig.transition_matrix(0.3),
            eig.transition_matrix(0.5),
            atol=1e-12,
        )

    def test_categories_stack(self, eig):
        rates = np.array([0.2, 0.7, 1.3, 1.8])
        ps = eig.transition_matrices(0.4, rates)
        assert ps.shape == (4, 4, 4)
        for k, r in enumerate(rates):
            np.testing.assert_allclose(ps[k], eig.transition_matrix(0.4, r), atol=1e-12)


class TestDerivatives:
    def test_against_finite_differences(self, eig):
        rates = np.array([0.5, 1.0, 1.5])
        t, h = 0.3, 1e-6
        p, dp, d2p = eig.transition_derivatives(t, rates)
        p_plus = eig.transition_matrices(t + h, rates)
        p_minus = eig.transition_matrices(t - h, rates)
        np.testing.assert_allclose(dp, (p_plus - p_minus) / (2 * h), atol=1e-6)
        np.testing.assert_allclose(d2p, (p_plus - 2 * p + p_minus) / h**2, atol=1e-3)

    def test_p_component_matches(self, eig):
        rates = np.ones(2)
        p, _, _ = eig.transition_derivatives(0.25, rates)
        np.testing.assert_allclose(p[0], eig.transition_matrix(0.25), atol=1e-12)


class TestPropertyRandomModels:
    @given(st.integers(0, 10_000), st.floats(0.01, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_probabilities_valid(self, seed, t):
        m = SubstitutionModel.random_gtr(seed)
        p = EigenSystem.from_model(m).transition_matrix(t)
        assert (p > -1e-12).all()
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-10)

    @given(st.integers(0, 10_000), st.floats(0.01, 5.0))
    @settings(max_examples=20, deadline=None)
    def test_reversibility_of_p(self, seed, t):
        """pi_i P_ij(t) == pi_j P_ji(t) for reversible chains."""
        m = SubstitutionModel.random_gtr(seed)
        p = EigenSystem.from_model(m).transition_matrix(t)
        flux = m.frequencies[:, None] * p
        np.testing.assert_allclose(flux, flux.T, atol=1e-10)
