"""Real parallel-backend tests (threads and processes).

The headline invariant: parallel log-likelihoods and optimization results
are bitwise-independent of the worker count and distribution policy, and
match the sequential engine.
"""
import numpy as np
import pytest

from repro.core import PartitionedEngine
from repro.parallel import ParallelPLK, slice_partition_data
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(31)
    tree, lengths = random_topology_with_lengths(7, rng)
    model = SubstitutionModel.random_gtr(1)
    aln = simulate_alignment(tree, lengths, model, 0.9, 900, rng)
    data = PartitionedAlignment(aln, uniform_scheme(900, 300))
    models = [SubstitutionModel.random_gtr(p) for p in range(3)]
    alphas = [0.6, 1.1, 2.0]
    seq = PartitionedEngine(
        data, tree.copy(), models=models, alphas=alphas, initial_lengths=lengths
    )
    return data, tree, lengths, models, alphas, seq


class TestSlicing:
    def test_slices_partition_patterns(self, setup):
        data, *_ = setup
        for policy in ("cyclic", "block"):
            total = np.zeros(3, dtype=int)
            weight_total = np.zeros(3)
            for w in range(4):
                slices = slice_partition_data(data, 4, w, policy)
                for p, sl in enumerate(slices):
                    total[p] += sl.n_patterns
                    weight_total[p] += sl.weights.sum()
            np.testing.assert_array_equal(total, data.pattern_counts())
            np.testing.assert_array_equal(
                weight_total, [d.weights.sum() for d in data.data]
            )

    def test_bad_policy(self, setup):
        data, *_ = setup
        with pytest.raises(ValueError):
            slice_partition_data(data, 2, 0, "striped")


class TestThreadsBackend:
    def test_matches_sequential(self, setup):
        data, tree, lengths, models, alphas, seq = setup
        ref = seq.loglikelihood(0)
        for workers in (1, 2, 5):
            with ParallelPLK(
                data, tree, models, alphas, workers,
                backend="threads", initial_lengths=lengths,
            ) as par:
                assert par.loglikelihood(0) == pytest.approx(ref, abs=1e-8)

    def test_block_distribution_same_result(self, setup):
        data, tree, lengths, models, alphas, seq = setup
        ref = seq.loglikelihood(0)
        with ParallelPLK(
            data, tree, models, alphas, 3, backend="threads",
            distribution="block", initial_lengths=lengths,
        ) as par:
            assert par.loglikelihood(0) == pytest.approx(ref, abs=1e-8)

    def test_more_workers_than_patterns_of_partition(self, setup):
        """Workers with empty slices idle but stay correct."""
        data, tree, lengths, models, alphas, seq = setup
        rng = np.random.default_rng(32)
        tiny_aln = simulate_alignment(
            tree, lengths, models[0], 1.0, 9, rng
        )
        tiny = PartitionedAlignment(tiny_aln, uniform_scheme(9, 3))
        seq2 = PartitionedEngine(
            tiny, tree.copy(), models=models, alphas=alphas, initial_lengths=lengths
        )
        ref = seq2.loglikelihood(0)
        with ParallelPLK(
            tiny, tree, models, alphas, 6, backend="threads",
            initial_lengths=lengths,
        ) as par:
            assert par.loglikelihood(0) == pytest.approx(ref, abs=1e-8)

    def test_per_partition_lnls(self, setup):
        data, tree, lengths, models, alphas, seq = setup
        ref = seq.partition_loglikelihoods(0)
        with ParallelPLK(
            data, tree, models, alphas, 3, backend="threads",
            initial_lengths=lengths,
        ) as par:
            np.testing.assert_allclose(par.partition_loglikelihoods(0), ref, atol=1e-8)

    def test_branch_opt_old_equals_new(self, setup):
        data, tree, lengths, models, alphas, _ = setup
        z = {}
        for strategy in ("old", "new"):
            with ParallelPLK(
                data, tree, models, alphas, 3, backend="threads",
                initial_lengths=lengths,
            ) as par:
                z[strategy] = par.optimize_branch(
                    1, strategy, z0=np.full(3, lengths[1])
                )
        np.testing.assert_allclose(z["old"], z["new"], atol=1e-4)

    def test_command_count_reflects_strategy(self, setup):
        """oldPAR issues far more commands (the real-backend analogue of
        the barrier count)."""
        data, tree, lengths, models, alphas, _ = setup
        issued = {}
        for strategy in ("old", "new"):
            with ParallelPLK(
                data, tree, models, alphas, 2, backend="threads",
                initial_lengths=lengths,
            ) as par:
                base = par.commands_issued
                par.optimize_branch(0, strategy, z0=np.full(3, lengths[0]))
                issued[strategy] = par.commands_issued - base
        assert issued["old"] > 1.5 * issued["new"]

    def test_alpha_opt_matches_sequential(self, setup):
        from repro.core import optimize_alpha

        data, tree, lengths, models, alphas, _ = setup
        seq_eng = PartitionedEngine(
            data, tree.copy(), models=models, alphas=alphas, initial_lengths=lengths
        )
        optimize_alpha(seq_eng, "new")
        ref = np.array([p.alpha for p in seq_eng.parts])
        with ParallelPLK(
            data, tree, models, alphas, 3, backend="threads",
            initial_lengths=lengths,
        ) as par:
            got = par.optimize_alpha("new", guess=np.array(alphas))
        np.testing.assert_allclose(got, ref, rtol=0.05)


class TestProcessesBackend:
    def test_matches_sequential(self, setup):
        data, tree, lengths, models, alphas, seq = setup
        ref = seq.loglikelihood(0)
        with ParallelPLK(
            data, tree, models, alphas, 3, backend="processes",
            initial_lengths=lengths,
        ) as par:
            assert par.loglikelihood(0) == pytest.approx(ref, abs=1e-8)

    def test_state_mutations_propagate(self, setup):
        data, tree, lengths, models, alphas, _ = setup
        with ParallelPLK(
            data, tree, models, alphas, 2, backend="processes",
            initial_lengths=lengths,
        ) as par:
            before = par.loglikelihood(0)
            par.set_branch_length(2, 1.7)
            mid = par.loglikelihood(0)
            assert mid != pytest.approx(before)
            par.set_branch_length(2, float(lengths[2]))
            assert par.loglikelihood(0) == pytest.approx(before, abs=1e-8)

    def test_set_alpha_and_model(self, setup):
        data, tree, lengths, models, alphas, _ = setup
        with ParallelPLK(
            data, tree, models, alphas, 2, backend="processes",
            initial_lengths=lengths,
        ) as par:
            before = par.loglikelihood(0)
            par.set_alpha(0, 5.0)
            assert par.loglikelihood(0) != pytest.approx(before)
            par.set_model(1, SubstitutionModel.jc69())
            # still finite and evaluable
            assert np.isfinite(par.loglikelihood(0))


class TestValidation:
    def test_bad_backend(self, setup):
        data, tree, lengths, models, alphas, _ = setup
        with pytest.raises(ValueError, match="backend"):
            ParallelPLK(data, tree, models, alphas, 2, backend="mpi")

    def test_bad_worker_count(self, setup):
        data, tree, lengths, models, alphas, _ = setup
        with pytest.raises(ValueError, match="worker"):
            ParallelPLK(data, tree, models, alphas, 0)
