"""Analysis entry-point and report tests (small instances)."""
import numpy as np
import pytest

from repro.bench import (
    format_runtime_figure,
    format_speedup_figure,
    improvement_factors,
    runtime_figure,
    speedup_figure,
)
from repro.core.analysis import (
    run_model_optimization,
    run_tree_search,
    unpartitioned_view,
)
from repro.plk import Alignment, PartitionedAlignment, parse_partition_file, uniform_scheme
from repro.simmachine import NEHALEM, X4600


@pytest.fixture(scope="module")
def tiny_dataset():
    from repro.seqgen import simulated_dataset

    return simulated_dataset(8, 1_200, 400, seed=3)


class TestRuns:
    def test_model_optimization_produces_trace(self, tiny_dataset):
        ds = tiny_dataset
        run = run_model_optimization(
            ds.partitioned(), ds.tree, strategy="new",
            initial_lengths=ds.true_lengths, max_rounds=1,
        )
        assert np.isfinite(run.loglikelihood)
        assert run.trace.n_regions > 0
        assert run.trace.pattern_counts is not None

    def test_search_produces_trace(self, tiny_dataset):
        ds = tiny_dataset
        run = run_tree_search(
            ds.partitioned(), ds.tree, strategy="old",
            initial_lengths=ds.true_lengths, radius=1, max_candidates=5,
        )
        assert run.trace.n_regions > 0
        assert "old" in run.description

    def test_old_new_same_work(self, tiny_dataset):
        ds = tiny_dataset
        runs = {
            s: run_model_optimization(
                ds.partitioned(), ds.tree, strategy=s,
                initial_lengths=ds.true_lengths, max_rounds=1,
            )
            for s in ("old", "new")
        }
        assert runs["old"].loglikelihood == pytest.approx(
            runs["new"].loglikelihood, abs=0.5
        )
        assert runs["old"].trace.n_regions > runs["new"].trace.n_regions

    def test_original_tree_not_mutated(self, tiny_dataset):
        ds = tiny_dataset
        before = ds.tree.splits()
        run_tree_search(
            ds.partitioned(), ds.tree, radius=1, max_candidates=4,
            initial_lengths=ds.true_lengths,
        )
        assert ds.tree.splits() == before


class TestUnpartitionedView:
    def test_collapses_to_one_partition(self, tiny_dataset):
        pa = tiny_dataset.partitioned()
        flat = unpartitioned_view(pa)
        assert flat.n_partitions == 1
        # columns unique within partitions may coincide across partitions,
        # so global compression can only merge
        assert flat.n_patterns <= pa.n_patterns
        assert flat.data[0].weights.sum() == pa.alignment.n_sites

    def test_mixed_datatypes_rejected(self):
        aln = Alignment.from_sequences({"x": "ACGTARND", "y": "ACCTARNE", "z": "AGGTARWD"})
        scheme = parse_partition_file("DNA, d = 1-4\nAA, p = 5-8")
        pa = PartitionedAlignment(aln, scheme)
        with pytest.raises(ValueError, match="mixed"):
            unpartitioned_view(pa)


class TestReports:
    @pytest.fixture(scope="class")
    def traces(self, tiny_dataset):
        ds = tiny_dataset
        return {
            s: run_model_optimization(
                ds.partitioned(), ds.tree, strategy=s,
                initial_lengths=ds.true_lengths, max_rounds=1,
            ).trace
            for s in ("old", "new")
        }

    def test_runtime_figure_rows(self, traces):
        rows = runtime_figure(traces["old"], traces["new"])
        assert [r.platform for r in rows] == [
            "Nehalem", "Clovertown", "Barcelona", "x4600",
        ]
        for row in rows:
            assert row.sequential > row.new8
            assert row.improvement(8) >= 1.0
        # 16-thread columns only on the 16-core machines
        assert rows[0].old16 is None
        assert rows[2].old16 is not None

    def test_formatting(self, traces):
        rows = runtime_figure(traces["old"], traces["new"])
        text = format_runtime_figure(rows, "TITLE")
        assert "TITLE" in text and "Nehalem" in text and "imp@8" in text

    def test_improvement_factors(self, traces):
        rows = runtime_figure(traces["old"], traces["new"])
        fac = improvement_factors(rows)
        assert set(fac) == {"Nehalem", "Clovertown", "Barcelona", "x4600"}
        assert 16 in fac["x4600"] and 16 not in fac["Nehalem"]

    def test_speedup_figure(self, traces):
        series = speedup_figure(
            {"Old": traces["old"], "New": traces["new"]}, NEHALEM, (2, 4, 8)
        )
        text = format_speedup_figure(series, "FIG6")
        assert "FIG6" in text
        by_label = {s.label: s.speedups for s in series}
        assert by_label["New"][8] >= by_label["Old"][8]
