"""repro.perf profiler tests: record arithmetic, backend instrumentation,
JSON round-trips, and predicted-vs-measured comparison plumbing."""
import json

import numpy as np
import pytest

from repro.core.trace import COMMAND_KINDS, command_kind
from repro.parallel import ParallelPLK
from repro.perf import (
    CommandRecord,
    NullProfiler,
    Profiler,
    RunProfile,
    compare_decompositions,
    compare_strategies,
)
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(77)
    tree, lengths = random_topology_with_lengths(7, rng)
    aln = simulate_alignment(
        tree, lengths, SubstitutionModel.random_gtr(1), 0.9, 800, rng
    )
    data = PartitionedAlignment(aln, uniform_scheme(800, 200))
    models = [SubstitutionModel.random_gtr(p) for p in range(4)]
    alphas = [0.6, 1.1, 2.0, 0.9]
    return data, tree, lengths, models, alphas


class TestCommandRecord:
    def test_decomposition_identity(self):
        """Per worker, busy + idle + sync == wall exactly."""
        rec = CommandRecord(op="deriv", kind="derivative", wall=1.0,
                            busy=(0.2, 0.7, 0.5))
        assert rec.span == pytest.approx(0.7)
        assert rec.sync == pytest.approx(0.3)
        for w in range(3):
            assert rec.busy[w] + rec.idle[w] + rec.sync == pytest.approx(rec.wall)

    def test_idle_is_wait_for_slowest(self):
        rec = CommandRecord(op="lnl", kind="evaluate", wall=0.5,
                            busy=(0.4, 0.1))
        assert rec.idle == pytest.approx((0.0, 0.3))

    def test_sync_floored_at_zero(self):
        # clock granularity can make wall ~ span; sync must never go negative
        rec = CommandRecord(op="lnl", kind="evaluate", wall=0.1,
                            busy=(0.100000001,))
        assert rec.sync == 0.0


class TestRunProfileAggregation:
    def _profile(self):
        records = [
            CommandRecord("prepare", "sumtable", 1.0, (0.4, 0.8)),
            CommandRecord("deriv", "derivative", 0.5, (0.3, 0.1)),
            CommandRecord("set_bl", "control", 0.1, (0.0, 0.0)),
        ]
        return RunProfile(backend="threads", n_workers=2, records=records)

    def test_totals(self):
        p = self._profile()
        assert p.total_seconds == pytest.approx(1.6)
        np.testing.assert_allclose(p.busy_seconds, [0.7, 0.9])
        np.testing.assert_allclose(p.idle_seconds, [0.4 + 0.0, 0.0 + 0.2])
        assert p.sync_seconds == pytest.approx(0.2 + 0.2 + 0.1)

    def test_efficiency_and_balance(self):
        p = self._profile()
        assert p.efficiency == pytest.approx(1.6 / (1.6 * 2))
        assert p.load_balance == pytest.approx(0.8 / 0.9)

    def test_busy_plus_idle_plus_sync_is_wall(self):
        p = self._profile()
        for w in range(2):
            total = p.busy_seconds[w] + p.idle_seconds[w] + p.sync_seconds
            assert total == pytest.approx(p.total_seconds)

    def test_kind_seconds(self):
        kinds = self._profile().kind_seconds()
        assert kinds == pytest.approx(
            {"sumtable": 1.0, "derivative": 0.5, "control": 0.1}
        )

    def test_json_roundtrip(self, tmp_path):
        p = self._profile()
        p.meta["strategy"] = "new"
        path = tmp_path / "prof.json"
        p.save(path)
        back = RunProfile.load(path)
        assert back.backend == "threads" and back.n_workers == 2
        assert back.meta == {"strategy": "new"}
        assert back.n_regions == 3
        assert back.total_seconds == pytest.approx(p.total_seconds)
        np.testing.assert_allclose(back.busy_seconds, p.busy_seconds)
        # the file embeds the summary decomposition for external readers
        raw = json.loads(path.read_text())
        assert raw["summary"]["efficiency"] == pytest.approx(p.efficiency)


class TestVocabulary:
    def test_every_worker_command_classified(self):
        from repro.parallel.worker import WorkerState

        cmd_ops = {
            name[len("_cmd_"):]
            for name in vars(WorkerState)
            if name.startswith("_cmd_")
        }
        assert cmd_ops <= set(COMMAND_KINDS)

    def test_unknown_command_is_control(self):
        assert command_kind("stop") == "control"


@pytest.mark.parametrize("backend", ["threads", "processes"])
class TestLiveProfiling:
    def test_records_match_commands_and_decompose(self, setup, backend):
        data, tree, lengths, models, alphas = setup
        profiler = Profiler()
        with ParallelPLK(
            data, tree, models, alphas, 3, backend=backend,
            initial_lengths=lengths, profiler=profiler,
        ) as team:
            team.loglikelihood(0)
            team.optimize_branch(0, "new", z0=np.full(4, lengths[0]))
            issued = team.commands_issued
        profile = profiler.profile()
        assert profile.backend == backend
        assert profile.n_workers == 3
        assert profile.n_regions == issued
        assert profile.total_seconds > 0
        assert profile.busy_seconds.sum() > 0
        assert 0 < profile.efficiency <= 1.0
        # per worker and per region: busy + wait == region wall
        for rec in profile.records:
            assert len(rec.busy) == 3
            for w in range(3):
                wait = rec.idle[w] + rec.sync
                assert rec.busy[w] + wait == pytest.approx(rec.wall, abs=1e-9)

    def test_null_profiler_records_nothing(self, setup, backend):
        data, tree, lengths, models, alphas = setup
        with ParallelPLK(
            data, tree, models, alphas, 2, backend=backend,
            initial_lengths=lengths,
        ) as team:
            team.loglikelihood(0)
            assert isinstance(team.profiler, NullProfiler)
            assert not team.profiler.enabled


class TestStrategyComparison:
    def test_new_beats_old_efficiency(self, setup):
        """The acceptance criterion: measured newPAR parallel efficiency
        strictly exceeds oldPAR's at 4 workers."""
        data, tree, lengths, models, alphas = setup
        profiles = {}
        for strategy in ("old", "new"):
            profiler = Profiler()
            with ParallelPLK(
                data, tree, models, alphas, 4, backend="processes",
                initial_lengths=lengths, profiler=profiler,
            ) as team:
                team.optimize_branches([0, 1, 2], strategy)
            profiles[strategy] = profiler.profile()
        assert profiles["new"].efficiency > profiles["old"].efficiency
        cmp = compare_strategies(profiles["old"], profiles["new"])
        assert cmp.efficiency_ratio > 1.0
        assert "old" in cmp.summary() and "new" in cmp.summary()

    def test_compare_against_simulator_prediction(self, setup):
        """A measured RunProfile and a simulated SimulationResult share the
        decomposition() vocabulary, so they compare in one call."""
        from repro.core import PartitionedEngine, TraceRecorder, optimize_branch
        from repro.simmachine import NEHALEM, simulate_trace

        data, tree, lengths, models, alphas = setup
        rec = TraceRecorder()
        eng = PartitionedEngine(
            data, tree.copy(), models=models, alphas=alphas,
            initial_lengths=lengths, recorder=rec,
        )
        optimize_branch(eng, 0, strategy="new")
        trace = rec.finalize(eng.pattern_counts(), eng.states())
        predicted = simulate_trace(trace, NEHALEM, 3)

        profiler = Profiler()
        with ParallelPLK(
            data, tree, models, alphas, 3, backend="threads",
            initial_lengths=lengths, profiler=profiler,
        ) as team:
            team.optimize_branch(0, "new", z0=np.full(4, 0.1))
        measured = profiler.profile()

        cmp = compare_decompositions(
            measured, predicted, labels=("measured", "predicted")
        )
        assert set(cmp.a) == set(cmp.b)
        assert cmp.a["n_workers"] == cmp.b["n_workers"] == 3
        assert np.isfinite(cmp.speedup) and np.isfinite(cmp.efficiency_ratio)
        assert "predicted" in cmp.summary()

    def test_profiler_reset(self, setup):
        data, tree, lengths, models, alphas = setup
        profiler = Profiler()
        with ParallelPLK(
            data, tree, models, alphas, 2, backend="threads",
            initial_lengths=lengths, profiler=profiler,
        ) as team:
            team.loglikelihood(0)
            profiler.reset()
            team.loglikelihood(0)
        assert profiler.profile().n_regions == 1
