"""Cost-aware load balancing: cost model, distribution plans, rebalancer.

Covers the plan invariants every policy must satisfy (each partition's
patterns are assigned exactly once), the analytic and calibrated cost
models, the cost-aware policies beating cyclic on adversarial mixed-data
layouts, the measured-feedback Rebalancer loop, and the integration with
the real parallel backends and the simulator.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PartitionedEngine, TraceRecorder
from repro.parallel import (
    DISTRIBUTIONS,
    CostModel,
    DistributionPlan,
    ParallelPLK,
    PartitionLayout,
    Rebalancer,
    build_plan,
    imbalance_ratio,
    partition_thread_counts,
    pattern_weight,
    slice_partition_data,
)
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment

#: An adversarial mixed-data geometry for the static policies: every AA
#: partition has length 1 and starts at a global index divisible by 4, so
#: cyclic distribution with T=4 stacks ALL the expensive patterns on
#: thread 0 while the cost-aware policies spread them.
ADVERSARIAL = PartitionLayout(
    lengths=(1, 3, 1, 3, 1, 3, 1, 3),
    states=(20, 4, 20, 4, 20, 4, 20, 4),
)


class TestPatternWeight:
    def test_aa_is_25x_dna(self):
        assert pattern_weight(20) / pattern_weight(4) == 25.0

    def test_scales_with_categories(self):
        assert pattern_weight(4, 8) == 2 * pattern_weight(4, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            pattern_weight(1)
        with pytest.raises(ValueError):
            pattern_weight(4, 0)


class TestImbalanceRatio:
    def test_perfect(self):
        assert imbalance_ratio([3.0, 3.0, 3.0]) == 1.0

    def test_concentrated(self):
        assert imbalance_ratio([4.0, 0.0, 0.0, 0.0]) == 4.0

    def test_all_idle_counts_as_balanced(self):
        assert imbalance_ratio([0.0, 0.0]) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            imbalance_ratio([])


class TestPartitionLayout:
    def test_offsets_and_total(self):
        lay = PartitionLayout((30, 0, 10), (4, 4, 20))
        assert lay.total == 40
        assert lay.offsets().tolist() == [0, 30, 30]

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionLayout((), ())
        with pytest.raises(ValueError):
            PartitionLayout((10,), (4, 20))
        with pytest.raises(ValueError):
            PartitionLayout((-1,), (4,))
        with pytest.raises(ValueError):
            PartitionLayout((10,), (1,))

    def test_from_trace_requires_finalized(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError, match="not finalized"):
            PartitionLayout.from_trace(rec.trace)
        trace = rec.finalize(np.array([5, 7]), np.array([4, 20]), categories=2)
        lay = PartitionLayout.from_trace(trace)
        assert lay.lengths == (5, 7)
        assert lay.states == (4, 20)
        assert lay.categories == 2


class TestCostModel:
    def test_analytic(self):
        lay = PartitionLayout((10, 10), (4, 20))
        model = CostModel.analytic(lay)
        assert model.unit == "relative"
        assert model.per_pattern.tolist() == [64.0, 1600.0]
        assert model.partition_costs(lay).tolist() == [640.0, 16000.0]

    def test_calibrated_recovers_planted_costs(self):
        """With enough informative workers, least squares recovers the
        true per-class seconds exactly.  The warmup plan is block: its
        thread shares differ strongly between datatype classes, so the
        fit is full-rank (cyclic on T-divisible lengths gives every
        thread identical class counts and would be degenerate)."""
        lay = PartitionLayout((40, 24, 16), (4, 20, 4))
        plan = build_plan(lay, 4, "block")
        true = np.where(np.asarray(lay.states) == 4, 2e-6, 9e-5)
        busy = plan.counts.T @ true
        model = CostModel.calibrated(lay, plan, busy)
        assert model.unit == "seconds"
        np.testing.assert_allclose(model.per_pattern, true, rtol=1e-9)

    def test_calibrated_fallback_rescales_analytic(self):
        """One worker cannot separate two datatype classes: the fallback
        keeps the analytic 25x ratio but matches the measured total."""
        lay = PartitionLayout((40, 24), (4, 20))
        plan = build_plan(lay, 1, "cyclic")
        model = CostModel.calibrated(lay, plan, np.array([0.5]))
        ratio = model.per_pattern[1] / model.per_pattern[0]
        assert ratio == pytest.approx(25.0)
        predicted_total = float((plan.counts.T @ model.per_pattern).sum())
        assert predicted_total == pytest.approx(0.5)

    def test_calibrated_shape_check(self):
        lay = PartitionLayout((10,), (4,))
        plan = build_plan(lay, 2, "cyclic")
        with pytest.raises(ValueError, match="busy_seconds"):
            CostModel.calibrated(lay, plan, np.zeros(3))

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(np.array([1.0, -2.0]))
        with pytest.raises(ValueError):
            CostModel(np.zeros((2, 2)))


def _assert_plan_invariants(plan: DistributionPlan):
    lay = plan.layout
    for p, length in enumerate(lay.lengths):
        merged = np.concatenate(
            [plan.thread_indices(p, t) for t in range(plan.n_threads)]
        )
        assert sorted(merged.tolist()) == list(range(length))
        assert plan.counts[p].sum() == length
        np.testing.assert_array_equal(
            plan.partition_thread_counts(p), plan.counts[p]
        )
    assert plan.thread_patterns().sum() == lay.total


class TestBuildPlan:
    @pytest.mark.parametrize("policy", DISTRIBUTIONS)
    def test_invariants_mixed_layout(self, policy):
        plan = build_plan(ADVERSARIAL, 4, policy)
        assert plan.policy == policy
        _assert_plan_invariants(plan)

    @pytest.mark.parametrize("policy", DISTRIBUTIONS)
    def test_zero_length_partitions(self, policy):
        lay = PartitionLayout((0, 12, 0, 5), (20, 4, 4, 20))
        plan = build_plan(lay, 3, policy)
        _assert_plan_invariants(plan)
        assert plan.counts[0].sum() == 0
        assert plan.counts[2].sum() == 0

    @pytest.mark.parametrize("policy", DISTRIBUTIONS)
    def test_more_threads_than_patterns(self, policy):
        lay = PartitionLayout((2, 1), (4, 20))
        plan = build_plan(lay, 16, policy)
        _assert_plan_invariants(plan)

    def test_static_counts_match_partition_helpers(self):
        offsets = ADVERSARIAL.offsets()
        total = ADVERSARIAL.total
        for policy in ("cyclic", "block"):
            plan = build_plan(ADVERSARIAL, 4, policy)
            for p, length in enumerate(ADVERSARIAL.lengths):
                np.testing.assert_array_equal(
                    plan.partition_thread_counts(p),
                    partition_thread_counts(
                        policy, int(offsets[p]), length, total, 4
                    ),
                )

    def test_cost_aware_beats_cyclic_on_adversarial_layout(self):
        cyclic = build_plan(ADVERSARIAL, 4, "cyclic")
        weighted = build_plan(ADVERSARIAL, 4, "weighted")
        lpt = build_plan(ADVERSARIAL, 4, "lpt")
        # Cyclic stacks all four AA patterns on thread 0.
        assert cyclic.imbalance() > 1.5
        assert weighted.imbalance() < cyclic.imbalance()
        assert lpt.imbalance() < cyclic.imbalance()

    def test_weighted_reduces_to_round_robin_on_uniform_data(self):
        lay = PartitionLayout((10,), (4,))
        weighted = build_plan(lay, 4, "weighted")
        cyclic = build_plan(lay, 4, "cyclic")
        np.testing.assert_array_equal(weighted.counts, cyclic.counts)

    def test_custom_cost_model_drives_assignment(self):
        lay = PartitionLayout((4, 4), (4, 4))
        skew = CostModel(np.array([100.0, 1.0]))
        plan = build_plan(lay, 2, "lpt", cost_model=skew)
        loads = plan.thread_costs()
        assert imbalance_ratio(loads) < 2.0  # not all expensive work on one thread

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            build_plan(ADVERSARIAL, 4, "striped")
        with pytest.raises(ValueError):
            build_plan(ADVERSARIAL, 0, "cyclic")
        with pytest.raises(ValueError, match="partition count"):
            build_plan(ADVERSARIAL, 4, "lpt", cost_model=CostModel(np.ones(2)))

    def test_summary_mentions_policy(self):
        plan = build_plan(ADVERSARIAL, 4, "lpt")
        assert "lpt" in plan.summary()
        assert "imbalance" in plan.summary()


class TestPlanProperties:
    @given(
        lengths=st.lists(st.integers(0, 30), min_size=1, max_size=6),
        threads=st.integers(1, 8),
        policy=st.sampled_from(DISTRIBUTIONS),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_every_policy_partitions_every_partition(
        self, lengths, threads, policy, data
    ):
        states = data.draw(
            st.lists(
                st.sampled_from([4, 20]),
                min_size=len(lengths),
                max_size=len(lengths),
            )
        )
        lay = PartitionLayout(tuple(lengths), tuple(states))
        plan = build_plan(lay, threads, policy)
        _assert_plan_invariants(plan)


class TestRebalancer:
    def test_rebalance_improves_under_true_costs(self):
        """The closed loop: measure under cyclic, calibrate, LPT-replan.
        The replanned assignment is better balanced under the TRUE cost
        model that generated the measurement."""
        lay = ADVERSARIAL
        start = build_plan(lay, 4, "cyclic")
        true = np.where(np.asarray(lay.states) == 4, 3e-6, 1.1e-4)
        busy = start.counts.T @ true
        replanned = Rebalancer(lay, 4).rebalance(start, busy)
        assert replanned.policy == "lpt"
        assert replanned.cost.unit == "seconds"
        before = imbalance_ratio(start.counts.T @ true)
        after = imbalance_ratio(replanned.counts.T @ true)
        assert after < before

    def test_accepts_runprofile_like_measurement(self):
        class FakeProfile:
            busy_seconds = np.array([1.0, 2.0, 1.5, 1.2])

        start = build_plan(ADVERSARIAL, 4, "cyclic")
        replanned = Rebalancer(ADVERSARIAL, 4).rebalance(start, FakeProfile())
        _assert_plan_invariants(replanned)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown distribution"):
            Rebalancer(ADVERSARIAL, 4, policy="striped")


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(77)
    tree, lengths = random_topology_with_lengths(6, rng)
    model = SubstitutionModel.random_gtr(3)
    aln = simulate_alignment(tree, lengths, model, 1.0, 300, rng)
    data = PartitionedAlignment(aln, uniform_scheme(300, 100))
    models = [SubstitutionModel.random_gtr(p) for p in range(3)]
    alphas = [0.8, 1.0, 1.5]
    seq = PartitionedEngine(
        data, tree.copy(), models=models, alphas=alphas, initial_lengths=lengths
    )
    return data, tree, lengths, models, alphas, seq


class TestBackendIntegration:
    @pytest.mark.parametrize("policy", ("weighted", "lpt"))
    def test_cost_aware_policies_match_sequential(self, workload, policy):
        data, tree, lengths, models, alphas, seq = workload
        ref = seq.loglikelihood(0)
        with ParallelPLK(
            data, tree, models, alphas, 3, backend="threads",
            distribution=policy, initial_lengths=lengths,
        ) as par:
            assert par.distribution == policy
            assert par.loglikelihood(0) == pytest.approx(ref, abs=1e-8)

    def test_prebuilt_plan_accepted(self, workload):
        data, tree, lengths, models, alphas, seq = workload
        plan = build_plan(PartitionLayout.from_alignment(data), 2, "lpt")
        ref = seq.loglikelihood(0)
        with ParallelPLK(
            data, tree, models, alphas, 2, backend="threads",
            distribution=plan, initial_lengths=lengths,
        ) as par:
            assert par.loglikelihood(0) == pytest.approx(ref, abs=1e-8)

    def test_plan_thread_count_mismatch_raises(self, workload):
        data, tree, lengths, models, alphas, _ = workload
        plan = build_plan(PartitionLayout.from_alignment(data), 3, "lpt")
        with pytest.raises(ValueError, match="threads"):
            ParallelPLK(
                data, tree, models, alphas, 2, backend="threads",
                distribution=plan, initial_lengths=lengths,
            )

    def test_slice_partition_data_with_plan(self, workload):
        data, *_ = workload
        plan = build_plan(PartitionLayout.from_alignment(data), 4, "weighted")
        total = np.zeros(data.n_partitions, dtype=int)
        for w in range(4):
            for p, sl in enumerate(slice_partition_data(data, 4, w, plan)):
                total[p] += sl.n_patterns
        np.testing.assert_array_equal(total, data.pattern_counts())

    def test_slice_plan_worker_mismatch_raises(self, workload):
        data, *_ = workload
        plan = build_plan(PartitionLayout.from_alignment(data), 4, "weighted")
        with pytest.raises(ValueError):
            slice_partition_data(data, 3, 0, plan)


class TestSimulatorIntegration:
    def _trace(self):
        rec = TraceRecorder()
        rec.begin_region("lnl")
        for p, patterns in enumerate(ADVERSARIAL.lengths):
            if patterns:
                rec.newview(p, patterns, count=3)
                rec.evaluate(p, patterns)
        rec.end_region()
        return rec.finalize(
            np.array(ADVERSARIAL.lengths), np.array(ADVERSARIAL.states)
        )

    def test_all_policies_simulate(self):
        from repro.simmachine import NEHALEM, simulate_trace

        trace = self._trace()
        results = {
            policy: simulate_trace(trace, NEHALEM, 4, policy)
            for policy in DISTRIBUTIONS
        }
        for policy, res in results.items():
            assert res.distribution == policy
            assert res.imbalance >= 1.0
            # Total productive work is policy-independent.
            assert res.busy_seconds.sum() == pytest.approx(
                results["cyclic"].busy_seconds.sum(), rel=0.3
            )
        assert results["lpt"].imbalance < results["cyclic"].imbalance

    def test_default_policy_comes_from_trace(self):
        from repro.simmachine import NEHALEM, simulate_trace

        rec = TraceRecorder()
        rec.newview(0, 8)
        trace = rec.finalize(
            np.array(ADVERSARIAL.lengths),
            np.array(ADVERSARIAL.states),
            distribution="lpt",
        )
        res = simulate_trace(trace, NEHALEM, 2)
        assert res.distribution == "lpt"

    def test_prebuilt_plan_accepted(self):
        from repro.simmachine import NEHALEM, simulate_trace

        trace = self._trace()
        plan = build_plan(ADVERSARIAL, 4, "weighted")
        res = simulate_trace(trace, NEHALEM, 4, plan)
        assert res.distribution == "weighted"
        with pytest.raises(ValueError, match="threads"):
            simulate_trace(trace, NEHALEM, 2, plan)


class TestEngineThreading:
    def test_engine_stamps_trace(self, workload):
        data, tree, lengths, models, alphas, _ = workload
        rec = TraceRecorder()
        engine = PartitionedEngine(
            data, tree.copy(), models=models, alphas=alphas,
            initial_lengths=lengths, recorder=rec, distribution="weighted",
        )
        engine.loglikelihood()
        trace = rec.finalize(
            engine.pattern_counts(), engine.states(),
            distribution=engine.distribution,
        )
        assert trace.distribution == "weighted"

    def test_engine_rejects_unknown_policy(self, workload):
        data, tree, lengths, models, alphas, _ = workload
        with pytest.raises(ValueError, match="distribution"):
            PartitionedEngine(
                data, tree.copy(), models=models, alphas=alphas,
                initial_lengths=lengths, distribution="striped",
            )

    def test_optimize_model_accepts_policy(self, workload):
        from repro.core import optimize_model

        data, tree, lengths, models, alphas, _ = workload
        for strategy in ("old", "new"):
            engine = PartitionedEngine(
                data, tree.copy(), models=models, alphas=alphas,
                initial_lengths=lengths,
            )
            optimize_model(
                engine, strategy=strategy, max_rounds=1,
                include_rates=False, include_branches=False,
                distribution="lpt",
            )
            assert engine.distribution == "lpt"


def _skewed_repeat_workload():
    """Two partitions with very different repeat structure: partition A
    is dominated by near-constant columns (only taxa 0-4 vary), so its
    post-compression cost per pattern is far below partition B's fully
    random columns.  A repeat-blind planner splits patterns by count and
    overloads whichever threads draw partition B's work."""
    from repro.plk import Alignment

    rng = np.random.default_rng(42)
    tree, lengths = random_topology_with_lengths(24, rng)
    n = len(tree.taxa)
    base = np.array(list("ACGT"))
    cols = []
    for _ in range(300):  # partition A: repeat-heavy
        col = np.full(n, base[rng.integers(0, 4)])
        col[:5] = base[rng.integers(0, 4, size=5)]
        cols.append(col)
    for _ in range(100):  # partition A: a random tail
        cols.append(base[rng.integers(0, 4, size=n)])
    for _ in range(400):  # partition B: fully random
        cols.append(base[rng.integers(0, 4, size=n)])
    chars = np.stack(cols)
    aln = Alignment.from_sequences(
        {tree.taxa[i]: "".join(chars[:, i]) for i in range(n)}
    )
    data = PartitionedAlignment(aln, uniform_scheme(800, 400))
    return data, tree


class TestRepeatAwareCostModel:
    def test_pattern_costs_validation(self):
        with pytest.raises(ValueError, match="one pattern-cost vector"):
            CostModel(
                per_pattern=np.array([1.0, 2.0]),
                pattern_costs=(np.ones(3),),  # wrong vector count
            )
        with pytest.raises(ValueError, match="1-D"):
            CostModel(
                per_pattern=np.array([1.0]),
                pattern_costs=(np.ones((2, 2)),),
            )
        with pytest.raises(ValueError, match="negative"):
            CostModel(
                per_pattern=np.array([1.0]),
                pattern_costs=(np.array([1.0, -0.5]),),
            )

    def test_repeat_aware_construction(self):
        data, tree = _skewed_repeat_workload()
        model = CostModel.repeat_aware(data, tree)
        assert model.unit == "relative"
        assert len(model.pattern_costs) == data.n_partitions
        for p, block in enumerate(data.data):
            vec = model.pattern_costs[p]
            assert vec.shape == (block.tip_states.shape[1],)
            assert model.per_pattern[p] == pytest.approx(vec.mean())
        # the repeat-heavy partition prices cheaper per pattern
        assert model.per_pattern[0] < 0.7 * model.per_pattern[1]

    @pytest.mark.parametrize("policy", ("weighted", "lpt"))
    def test_repeat_aware_plans_keep_invariants(self, policy):
        data, tree = _skewed_repeat_workload()
        layout = PartitionLayout.from_alignment(data)
        model = CostModel.repeat_aware(data, tree)
        plan = build_plan(layout, 4, policy, cost_model=model)
        _assert_plan_invariants(plan)
        assert plan.cost.pattern_costs is not None

    def test_with_pattern_costs_preserves_calibrated_scale(self):
        vec = (np.array([1.0, 3.0]), np.array([2.0, 2.0]))
        calibrated = CostModel(
            per_pattern=np.array([5.0, 8.0]), unit="seconds"
        )
        shaped = calibrated.with_pattern_costs(vec)
        assert shaped.unit == "seconds"
        np.testing.assert_allclose(shaped.per_pattern, calibrated.per_pattern)
        for p, v in enumerate(shaped.pattern_costs):
            # shape survives, scale comes from the calibrated model
            assert v.mean() == pytest.approx(calibrated.per_pattern[p])
            np.testing.assert_allclose(
                v / v.mean(), vec[p] / vec[p].mean()
            )

    def test_rebalancer_threads_pattern_costs(self):
        data, tree = _skewed_repeat_workload()
        layout = PartitionLayout.from_alignment(data)
        aware = CostModel.repeat_aware(data, tree)
        start = build_plan(layout, 4, "cyclic")
        busy = np.array([1.0, 1.4, 0.9, 1.2])
        replanned = Rebalancer(
            layout, 4, pattern_costs=aware.pattern_costs
        ).rebalance(start, busy)
        _assert_plan_invariants(replanned)
        assert replanned.cost.pattern_costs is not None
        assert replanned.cost.unit == "seconds"

    def test_acceptance_aware_beats_blind_on_skewed_repeats(self):
        """ISSUE 10 acceptance: on a skewed-repeat two-partition
        workload the repeat-aware plan's measured imbalance beats the
        repeat-blind plan's.  'Measured' cost of a thread is the sum of
        true effective per-pattern weights over its assigned columns —
        exactly the work a repeat-aware engine performs."""
        from repro.plk import effective_pattern_weights

        data, tree = _skewed_repeat_workload()
        layout = PartitionLayout.from_alignment(data)
        true = [
            effective_pattern_weights(b.tip_states, tree, b.states)
            for b in data.data
        ]

        def measured(plan):
            busy = np.zeros(plan.n_threads)
            for p in range(data.n_partitions):
                for t in range(plan.n_threads):
                    busy[t] += true[p][plan.thread_indices(p, t)].sum()
            return imbalance_ratio(busy)

        blind = build_plan(layout, 4, "lpt")
        aware = build_plan(
            layout, 4, "lpt", cost_model=CostModel.repeat_aware(data, tree)
        )
        _assert_plan_invariants(aware)
        blind_ratio, aware_ratio = measured(blind), measured(aware)
        # recorded in EXPERIMENTS.md: blind ~1.16, aware ~1.003
        assert aware_ratio < blind_ratio
        assert aware_ratio < 1.05
        assert blind_ratio > 1.10
