"""Machine model, cost model, and simulator tests."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Region, Trace, WorkItem
from repro.simmachine import (
    BARCELONA,
    CLOVERTOWN,
    NEHALEM,
    PLATFORMS,
    X4600,
    MachineSpec,
    bytes_per_pattern,
    flops_per_pattern,
    get_platform,
    seconds_per_pattern,
    simulate_trace,
    speedup_curve,
)


def make_trace(regions, pattern_counts, states=None):
    return Trace(
        regions=regions,
        pattern_counts=np.asarray(pattern_counts, dtype=np.int64),
        states=np.asarray(
            states if states is not None else [4] * len(pattern_counts),
            dtype=np.int64,
        ),
        categories=4,
    )


class TestMachineSpec:
    def test_paper_platforms_registered(self):
        assert set(PLATFORMS) == {"nehalem", "clovertown", "barcelona", "x4600"}
        assert get_platform("Nehalem") is NEHALEM
        with pytest.raises(KeyError):
            get_platform("epyc")

    def test_core_counts_match_paper(self):
        assert NEHALEM.cores == 8
        assert CLOVERTOWN.cores == 8
        assert BARCELONA.cores == 16
        assert X4600.cores == 16

    def test_numa_bandwidth_scales_with_sockets(self):
        """Barcelona (NUMA): aggregate bandwidth grows up to 4 sockets."""
        bw1 = BARCELONA.bandwidth_per_thread(1) * 1
        bw4 = BARCELONA.bandwidth_per_thread(4) * 4
        assert bw4 > bw1 * 2

    def test_fsb_bandwidth_is_shared(self):
        """Clovertown: total pool fixed, per-thread share shrinks."""
        total8 = CLOVERTOWN.bandwidth_per_thread(8) * 8
        total2 = CLOVERTOWN.bandwidth_per_thread(2) * 2
        assert total8 <= total2 * 1.01

    def test_barrier_grows_with_threads(self):
        assert X4600.barrier_seconds(16) > X4600.barrier_seconds(8)
        assert X4600.barrier_seconds(1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec("bad", 0, 4, 2.0, 4.0, 0.5, 10.0, 5.0)
        with pytest.raises(ValueError):
            MachineSpec("bad", 2, 4, 2.0, 4.0, 1.5, 10.0, 5.0)


class TestCostModel:
    def test_protein_25x_dna(self):
        """The paper's 20^2/4^2 = 25x cost ratio for the s^2-scaling ops."""
        for op in ("newview", "sumtable"):
            ratio = flops_per_pattern(op, 20, 4) / flops_per_pattern(op, 4, 4)
            assert ratio == pytest.approx(25.0, rel=0.2)

    def test_derivative_linear_in_states(self):
        ratio = flops_per_pattern("derivative", 20, 4) / flops_per_pattern(
            "derivative", 4, 4
        )
        assert ratio == pytest.approx(5.0)

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            flops_per_pattern("gemm", 4, 4)
        with pytest.raises(ValueError):
            bytes_per_pattern("gemm", 4, 4)

    def test_roofline_max(self):
        t = seconds_per_pattern("newview", 4, 4, NEHALEM, 1)
        flop_t = flops_per_pattern("newview", 4, 4) / NEHALEM.flops_per_second()
        mem_t = bytes_per_pattern("newview", 4, 4) / NEHALEM.bandwidth_per_thread(1)
        assert t == pytest.approx(max(flop_t, mem_t))

    def test_contention_slows_fsb(self):
        t1 = seconds_per_pattern("newview", 4, 4, CLOVERTOWN, 1)
        t8 = seconds_per_pattern("newview", 4, 4, CLOVERTOWN, 8)
        assert t8 >= t1


class TestSimulator:
    def test_one_thread_equals_serial_work(self):
        trace = make_trace(
            [Region(items=[WorkItem(0, "newview", 1000, 10)])], [1000]
        )
        res = simulate_trace(trace, NEHALEM, 1)
        expected = 10_000 * seconds_per_pattern("newview", 4, 4, NEHALEM, 1)
        assert res.total_seconds == pytest.approx(expected)
        assert res.sync_seconds == 0.0
        assert res.efficiency == pytest.approx(1.0)

    def test_speedup_bounded_by_threads(self):
        trace = make_trace(
            [Region(items=[WorkItem(0, "newview", 10_000, 5)])] * 20, [10_000]
        )
        curve = speedup_curve(trace, NEHALEM, [2, 4, 8])
        for t, s in curve.items():
            assert s <= t + 1e-9
        assert curve[8] > curve[2]

    def test_busy_idle_accounting(self):
        # one partition of 17 patterns over 4 threads: imbalance
        trace = make_trace([Region(items=[WorkItem(0, "newview", 17, 1)])], [17])
        res = simulate_trace(trace, NEHALEM, 4)
        # span = max per-thread busy; idle fills the rest
        spans = res.busy_seconds + res.idle_seconds
        np.testing.assert_allclose(spans, spans[0], atol=1e-15)

    def test_idle_threads_when_partition_short(self):
        """m'_p < T: idle workers (the paper's worst case)."""
        trace = make_trace([Region(items=[WorkItem(0, "derivative", 3, 1)])], [3])
        res = simulate_trace(trace, BARCELONA, 16)
        assert (res.busy_seconds == 0).sum() == 13

    def test_cyclic_beats_block_for_multi_partition_regions(self):
        """A region touching one short partition out of many: block
        concentrates it on one thread."""
        regions = [
            Region(items=[WorkItem(1, "newview", 100, 50)]),
        ]
        trace = make_trace(regions, [5000, 100, 5000])
        cyc = simulate_trace(trace, NEHALEM, 8, "cyclic")
        blk = simulate_trace(trace, NEHALEM, 8, "block")
        assert blk.total_seconds > cyc.total_seconds * 2

    def test_thread_count_validation(self):
        trace = make_trace([Region(items=[WorkItem(0, "newview", 10, 1)])], [10])
        with pytest.raises(ValueError, match="cores"):
            simulate_trace(trace, NEHALEM, 16)
        with pytest.raises(ValueError):
            simulate_trace(trace, NEHALEM, 0)

    def test_unfinalized_trace_rejected(self):
        with pytest.raises(ValueError, match="finalized"):
            simulate_trace(Trace(), NEHALEM, 2)

    def test_label_breakdown_sums_to_total(self):
        regions = [
            Region(items=[WorkItem(0, "newview", 100, 1)], label="a"),
            Region(items=[WorkItem(0, "derivative", 100, 1)], label="b"),
        ]
        trace = make_trace(regions, [100])
        res = simulate_trace(trace, NEHALEM, 4)
        assert sum(res.label_seconds.values()) == pytest.approx(res.total_seconds)

    def test_more_regions_more_sync(self):
        """Same work split across more barriers -> more total time (the
        oldPAR pathology in miniature)."""
        one = make_trace([Region(items=[WorkItem(0, "derivative", 1000, 100)])], [1000])
        many = make_trace(
            [Region(items=[WorkItem(0, "derivative", 1000, 1)]) for _ in range(100)],
            [1000],
        )
        fast = simulate_trace(one, X4600, 16)
        slow = simulate_trace(many, X4600, 16)
        assert slow.total_seconds > fast.total_seconds
        assert slow.sync_seconds > fast.sync_seconds

    @given(st.integers(1, 8), st.integers(1, 1000))
    @settings(max_examples=40, deadline=None)
    def test_makespan_consistency(self, threads, patterns):
        trace = make_trace(
            [Region(items=[WorkItem(0, "newview", patterns, 3)])], [patterns]
        )
        res = simulate_trace(trace, NEHALEM, threads)
        # total == span + sync; busy <= threads * span
        assert res.total_seconds >= res.sync_seconds
        work_time = res.total_seconds - res.sync_seconds
        assert res.busy_seconds.max() == pytest.approx(work_time)
