"""REAL1 — Real wall-clock master/worker execution on this host.

Everything else in the benchmark suite replays schedules on the simulated
testbed; this file runs the actual process-based parallel PLK and measures
oldPAR vs newPAR for branch-length optimization on a partitioned dataset.
The absolute numbers depend on this machine; the *structure* — oldPAR
issues many more commands (each a pipe round-trip, the IPC analogue of a
barrier) and is slower end-to-end — is the paper's phenomenon made
physical."""
import json

import numpy as np
import pytest

from conftest import write_result
from repro.obs import summarize_profiles
from repro.parallel import ParallelPLK
from repro.perf import Profiler, compare_strategies
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment

WORKERS = 4
N_PARTITIONS = 10


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(99)
    tree, lengths = random_topology_with_lengths(12, rng)
    model = SubstitutionModel.random_gtr(0)
    aln = simulate_alignment(tree, lengths, model, 1.0, 2_000, rng)
    data = PartitionedAlignment(aln, uniform_scheme(2_000, 200))
    models = [SubstitutionModel.random_gtr(p) for p in range(N_PARTITIONS)]
    alphas = [1.0] * N_PARTITIONS
    return data, tree, lengths, models, alphas


@pytest.mark.parametrize("strategy", ["old", "new"])
def test_real1_branch_opt_wallclock(benchmark, setup, strategy, results_dir):
    data, tree, lengths, models, alphas = setup
    edges = list(range(6))

    with ParallelPLK(
        data, tree, models, alphas, WORKERS,
        backend="processes", initial_lengths=lengths,
    ) as team:
        start_cmds = team.commands_issued

        def run():
            team.optimize_branches(
                edges, strategy, lengths0=np.tile(lengths[edges, None], N_PARTITIONS)
            )

        benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
        commands = (team.commands_issued - start_cmds) / 4  # per round

    write_result(
        results_dir,
        f"real1_processes_{strategy}",
        f"REAL1 ({strategy}): {WORKERS} worker processes, "
        f"{N_PARTITIONS} partitions, {len(edges)} branches\n"
        f"mean wall time: {benchmark.stats['mean']*1e3:.1f} ms, "
        f"~{commands:.0f} commands/round",
    )


def test_real1_new_issues_fewer_commands(setup, results_dir):
    data, tree, lengths, models, alphas = setup
    counts = {}
    times = {}
    import time

    for strategy in ("old", "new"):
        with ParallelPLK(
            data, tree, models, alphas, WORKERS,
            backend="processes", initial_lengths=lengths,
        ) as team:
            t0 = time.perf_counter()
            team.optimize_branches(list(range(8)), strategy)
            times[strategy] = time.perf_counter() - t0
            counts[strategy] = team.commands_issued

    write_result(
        results_dir,
        "real1_summary",
        "REAL1 summary: old commands="
        f"{counts['old']} time={times['old']*1e3:.0f}ms | "
        f"new commands={counts['new']} time={times['new']*1e3:.0f}ms | "
        f"command ratio={counts['old']/counts['new']:.1f}x",
    )
    assert counts["old"] > 2 * counts["new"]
    # wall-clock: newPAR should win on this host too (IPC dominates)
    assert times["new"] < times["old"]


def test_real1_measured_profile(setup, results_dir):
    """The paper's busy/idle decomposition measured on real processes:
    per-worker busy and barrier-wait totals for both strategies, written
    as a RunProfile JSON so the bench trajectory accumulates real
    numbers.  newPAR must show strictly higher parallel efficiency."""
    data, tree, lengths, models, alphas = setup
    profiles = {}
    for strategy in ("old", "new"):
        profiler = Profiler(meta={
            "benchmark": "real1", "strategy": strategy,
            "workers": WORKERS, "partitions": N_PARTITIONS,
        })
        with ParallelPLK(
            data, tree, models, alphas, WORKERS,
            backend="processes", initial_lengths=lengths, profiler=profiler,
        ) as team:
            team.optimize_branches(list(range(6)), strategy)
        profiles[strategy] = profiler.profile()

    # Raw per-record dump: local inspection / `repro timeline --profile`
    # only (gitignored).  The compact summary is what gets committed.
    (results_dir / "real1_profile.json").write_text(json.dumps(
        {s: p.to_dict() for s, p in profiles.items()}, indent=2
    ) + "\n")
    (results_dir / "real1_profile_summary.json").write_text(json.dumps(
        summarize_profiles(profiles), indent=2, sort_keys=True
    ) + "\n")
    comparison = compare_strategies(profiles["old"], profiles["new"])
    write_result(
        results_dir,
        "real1_profile",
        "REAL1 measured profile (processes backend):\n"
        f"oldPAR\n{profiles['old'].summary()}\n"
        f"newPAR\n{profiles['new'].summary()}\n"
        f"{comparison.summary()}",
    )
    assert profiles["new"].efficiency > profiles["old"].efficiency
    # every region decomposes exactly: busy + idle + sync == wall
    for profile in profiles.values():
        for rec in profile.records:
            for w in range(WORKERS):
                assert rec.busy[w] + rec.idle[w] + rec.sync == pytest.approx(
                    rec.wall, abs=1e-9
                )
