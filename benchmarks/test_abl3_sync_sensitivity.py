"""ABL3 — Ablation: sensitivity to the synchronization-cost constants.

The simulator's barrier/dispatch constants are calibrated against the
paper's Figure 6 anchors (DESIGN.md).  This ablation sweeps the barrier
cost and shows (a) oldPAR's runtime is roughly linear in it while
newPAR's is nearly flat, and (b) the qualitative conclusions — newPAR
wins, the gap widens with sync cost — hold across the entire plausible
range, i.e. the reproduction does not hinge on the calibrated values."""
import dataclasses

import pytest

from conftest import write_result
from repro.simmachine import X4600, simulate_trace

DATASET = "d50_50000_p1000"
SCALES = (0.25, 0.5, 1.0, 2.0, 4.0)


@pytest.fixture(scope="module")
def traces(get_trace):
    return {
        s: get_trace(DATASET, "search", s, max_candidates=300)
        for s in ("old", "new")
    }


def scaled_machine(scale: float):
    return dataclasses.replace(
        X4600,
        barrier_base_ns=X4600.barrier_base_ns * scale,
        barrier_per_thread_ns=X4600.barrier_per_thread_ns * scale,
        dispatch_ns=X4600.dispatch_ns * scale,
    )


def test_abl3_sync_sweep(benchmark, traces, results_dir):
    def sweep():
        rows = []
        for scale in SCALES:
            machine = scaled_machine(scale)
            old = simulate_trace(traces["old"], machine, 16).total_seconds
            new = simulate_trace(traces["new"], machine, 16).total_seconds
            rows.append((scale, old, new, old / new))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "ABL3: barrier-cost sensitivity, d50_50000 p1000, x4600 @ 16",
        f"{'sync scale':>10} {'old':>9} {'new':>9} {'old/new':>8}",
        "-" * 40,
    ]
    for scale, old, new, ratio in rows:
        lines.append(f"{scale:>10.2f} {old:9.1f} {new:9.1f} {ratio:8.2f}")
    write_result(results_dir, "abl3_sync_sensitivity", "\n".join(lines))

    ratios = [r[3] for r in rows]
    olds = [r[1] for r in rows]
    news = [r[2] for r in rows]
    # newPAR always wins, gap monotone in sync cost
    assert all(r > 1.0 for r in ratios)
    assert ratios == sorted(ratios)
    # oldPAR time grows steeply with sync cost; newPAR barely moves
    assert olds[-1] / olds[0] > 3.0
    assert news[-1] / news[0] < 1.3
