"""TXT2 — Paper Section V text: "the optimization of ML model parameters
on a fixed tree ..., even with a per-partition branch length estimate,
exhibits more computations per synchronization event ...  Therefore, the
average execution time improvements range between 5% and 10% for model
parameter optimization on a fixed tree."

Changing Q or alpha forces a full tree traversal per objective evaluation,
so even oldPAR's regions carry substantial work; the improvement is real
but much smaller than for tree search."""
import pytest

from conftest import write_result
from repro.simmachine import PLATFORMS, simulate_trace

DATASET = "d50_50000_p1000"


@pytest.fixture(scope="module")
def traces(get_trace):
    return {s: get_trace(DATASET, "modelopt", s) for s in ("old", "new")}


@pytest.fixture(scope="module")
def search_traces(get_trace):
    return {
        s: get_trace(DATASET, "search", s, max_candidates=300)
        for s in ("old", "new")
    }


def test_txt2_model_opt_improvement_moderate(benchmark, traces, results_dir):
    def improvements():
        rows = []
        for machine in PLATFORMS.values():
            for t in (8, 16):
                if t > machine.cores:
                    continue
                old = simulate_trace(traces["old"], machine, t).total_seconds
                new = simulate_trace(traces["new"], machine, t).total_seconds
                rows.append((machine.name, t, old, new, old / new))
        return rows

    rows = benchmark.pedantic(improvements, rounds=1, iterations=1)
    lines = [
        "TXT2: model-parameter optimization on a fixed tree, d50_50000 p1000",
        f"{'platform':<12} {'threads':>7} {'old':>9} {'new':>9} {'old/new':>8}",
        "-" * 50,
    ]
    for name, t, old, new, ratio in rows:
        lines.append(f"{name:<12} {t:>7} {old:9.1f} {new:9.1f} {ratio:8.3f}")
    write_result(results_dir, "txt2_model_opt", "\n".join(lines))

    ratios = [r[-1] for r in rows]
    # positive but moderate improvement (paper: 5-10%)
    assert all(r >= 1.0 for r in ratios)
    mean_imp = sum(ratios) / len(ratios)
    assert 1.01 <= mean_imp <= 1.6, mean_imp


def test_txt2_much_smaller_than_search(traces, search_traces):
    from repro.simmachine import BARCELONA

    model_imp = (
        simulate_trace(traces["old"], BARCELONA, 16).total_seconds
        / simulate_trace(traces["new"], BARCELONA, 16).total_seconds
    )
    search_imp = (
        simulate_trace(search_traces["old"], BARCELONA, 16).total_seconds
        / simulate_trace(search_traces["new"], BARCELONA, 16).total_seconds
    )
    assert model_imp < search_imp


def test_txt2_same_optimum_reached(get_trace):
    """Numerical equivalence check at capture time is implicit (the cached
    traces came from runs that optimized to convergence); here we verify
    the schedules carried identical work."""
    old = get_trace(DATASET, "modelopt", "old")
    new = get_trace(DATASET, "modelopt", "new")
    to, tn = old.op_totals(), new.op_totals()
    for op in to:
        assert to[op] == pytest.approx(tn[op], rel=0.1)
