"""TXT3 — Paper Section V text: "the speedups were smaller (around 5-10%)
on the two protein datasets ... the computation of the likelihood score
for protein sequences that is based on a 20x20 instead of a 4x4 nucleotide
substitution matrix requires a significantly higher amount (roughly by a
factor of 20x20/4x4 = 25) of floating point operations per column.  Hence,
the load balance problem is less prevalent for protein data."

We capture searches on the two viral-protein stand-ins (r26_21451,
r24_16916) and assert (a) the improvement exists, (b) it is much smaller
than on comparable DNA data, because each protein column carries ~25x the
work between barriers."""
import pytest

from conftest import write_result
from repro.simmachine import X4600, seconds_per_pattern, simulate_trace

PROTEIN_SETS = ("r26_21451", "r24_16916")


@pytest.fixture(scope="module")
def protein_traces(get_trace):
    return {
        ds: {
            s: get_trace(ds, "search", s, max_candidates=40) for s in ("old", "new")
        }
        for ds in PROTEIN_SETS
    }


@pytest.fixture(scope="module")
def dna_traces(get_trace):
    return {
        s: get_trace("r125_19839", "search", s, max_candidates=120)
        for s in ("old", "new")
    }


def test_txt3_per_column_cost_ratio():
    """The 25x flop ratio the paper cites."""
    dna = seconds_per_pattern("newview", 4, 4, X4600, 16)
    aa = seconds_per_pattern("newview", 20, 4, X4600, 16)
    assert 15 <= aa / dna <= 30


def test_txt3_protein_improvement_small(benchmark, protein_traces, dna_traces, results_dir):
    def improvements():
        out = {}
        for ds, pair in protein_traces.items():
            old = simulate_trace(pair["old"], X4600, 16).total_seconds
            new = simulate_trace(pair["new"], X4600, 16).total_seconds
            out[ds] = (old, new, old / new)
        return out

    rows = benchmark.pedantic(improvements, rounds=1, iterations=1)
    dna_old = simulate_trace(dna_traces["old"], X4600, 16).total_seconds
    dna_new = simulate_trace(dna_traces["new"], X4600, 16).total_seconds
    dna_imp = dna_old / dna_new

    lines = [
        "TXT3: viral protein stand-ins, x4600 @ 16 threads, tree search",
        f"{'dataset':<12} {'old':>10} {'new':>10} {'old/new':>8}",
        "-" * 44,
    ]
    for ds, (old, new, ratio) in rows.items():
        lines.append(f"{ds:<12} {old:10.1f} {new:10.1f} {ratio:8.3f}")
    lines.append(f"{'r125 (DNA)':<12} {dna_old:10.1f} {dna_new:10.1f} {dna_imp:8.3f}")
    write_result(results_dir, "txt3_protein", "\n".join(lines))

    for ds, (_, _, ratio) in rows.items():
        assert ratio >= 1.0, ds
        # protein improvement much smaller than DNA improvement
        assert ratio < 0.6 * dna_imp, (ds, ratio, dna_imp)


def test_txt3_protein_datasets_have_aa_geometry(protein_traces):
    for ds, pair in protein_traces.items():
        states = pair["new"].states
        assert (states == 20).all()
