"""TXT4 — Paper Section V text: "the parallel slowdown observed on 16
cores (AMD Barcelona, Sun x4600) for oldPAR compared to run times on 8
cores can be alleviated by our newPAR method."

We decompose WHERE the 16-core time goes: for oldPAR most of the added
threads' capacity is burned in synchronization + idling (its regions carry
~60 patterns per thread against a ~20-40us barrier), while newPAR regions
stay compute-dominated."""
import pytest

from conftest import write_result
from repro.simmachine import BARCELONA, X4600, simulate_trace

DATASET = "d50_50000_p1000"


@pytest.fixture(scope="module")
def traces(get_trace):
    return {
        s: get_trace(DATASET, "search", s, max_candidates=300)
        for s in ("old", "new")
    }


def test_txt4_scaling_8_to_16(benchmark, traces, results_dir):
    def table():
        rows = []
        for machine in (BARCELONA, X4600):
            for strategy in ("old", "new"):
                r8 = simulate_trace(traces[strategy], machine, 8)
                r16 = simulate_trace(traces[strategy], machine, 16)
                rows.append(
                    (
                        machine.name,
                        strategy,
                        r8.total_seconds,
                        r16.total_seconds,
                        r8.total_seconds / r16.total_seconds,
                        r16.efficiency,
                        r16.sync_seconds / r16.total_seconds,
                    )
                )
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    lines = [
        "TXT4: 8 -> 16 core scaling, d50_50000 p1000 tree search",
        f"{'platform':<11} {'strategy':<9} {'T=8':>9} {'T=16':>9} "
        f"{'gain':>6} {'eff@16':>7} {'sync%':>6}",
        "-" * 62,
    ]
    for name, strat, t8, t16, gain, eff, syncfrac in rows:
        lines.append(
            f"{name:<11} {strat:<9} {t8:9.1f} {t16:9.1f} {gain:6.2f} "
            f"{eff:7.1%} {syncfrac:6.1%}"
        )
    write_result(results_dir, "txt4_slowdown16", "\n".join(lines))

    by_key = {(r[0], r[1]): r for r in rows}
    for platform in ("Barcelona", "x4600"):
        old_gain = by_key[(platform, "old")][4]
        new_gain = by_key[(platform, "new")][4]
        # oldPAR: stagnation or slowdown; newPAR: close to 2x
        assert old_gain < 1.25, (platform, old_gain)
        assert new_gain > 1.5, (platform, new_gain)
        # oldPAR's 16-core run is sync-dominated; newPAR's is not
        old_sync = by_key[(platform, "old")][6]
        new_sync = by_key[(platform, "new")][6]
        assert old_sync > 0.4, (platform, old_sync)
        assert new_sync < 0.1, (platform, new_sync)


def test_txt4_idle_time_structure(traces):
    """newPAR at 16 threads keeps threads busy; oldPAR leaves most of
    their time idle+sync."""
    r_old = simulate_trace(traces["old"], X4600, 16)
    r_new = simulate_trace(traces["new"], X4600, 16)
    assert r_new.efficiency > 2 * r_old.efficiency
