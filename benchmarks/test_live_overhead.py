"""LIVE — Overhead gate for the live telemetry plane.

The live plane's contract is "observability you can leave on": every
broadcast pays one flight-recorder event pair on the master plus one
seqlock-guarded stats-row update per worker — all O(1) appends and a
handful of raw memoryview stores.  Two instruments gate that contract:

*Instrument cost vs broadcast cost* (the hard <2% gate) — the exact
per-broadcast instrument cost is measured in isolation (the recorder
event pair; the writer's begin/done/wait cycle, counted once per worker
since the GIL serializes the stores) and compared against the measured
per-broadcast wall time of a compute-bound likelihood workload with the
plane OFF.  Both quantities are stable on a shared host, so this is the
assertion that survives CI.

*End-to-end paired runs* (reported, sanity-bounded) — the same workload
with the plane enabled and disabled, interleaved round-robin.  On an
oversubscribed host the per-team scheduling variance (±30% between team
instances) swamps a single-digit-percent signal, so the end-to-end
ratio is asserted only against a loose regression bound that would
still catch accidental O(patterns) work sneaking onto the broadcast
path.

Teardown is exact either way: the disabled arm must create ZERO extra
shared-memory segments and ``live_segments()`` must return to its
pre-benchmark value afterwards — the stats plane never outlives its
team.

Committed output: ``results/BENCH_live_overhead.txt`` (quoted by
docs/OBSERVABILITY.md and summarized by the CI perf-smoke job).
"""
import statistics
import time

import numpy as np
import pytest

from conftest import write_result
from repro.parallel import ParallelPLK, live_segments
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment

WORKERS = 2
N_PARTS = 4
PART_LEN = 2500  # 10k sites: per-broadcast kernel work in the ms range
ROUNDS = 9
CALLS_PER_ROUND = 10
INSTRUMENT_BUDGET = 0.02  # the documented <2% gate (deterministic)
END_TO_END_BOUND = 0.15   # loose sanity bound for the noisy paired runs


def build():
    sites = N_PARTS * PART_LEN
    rng = np.random.default_rng(23)
    tree, lengths = random_topology_with_lengths(8, rng)
    aln = simulate_alignment(
        tree, lengths, SubstitutionModel.random_gtr(0), 1.0, sites, rng
    )
    data = PartitionedAlignment(aln, uniform_scheme(sites, PART_LEN))
    models = [SubstitutionModel.random_gtr(p) for p in range(N_PARTS)]
    alphas = [1.0] * N_PARTS
    return data, tree, lengths, models, alphas


def _round_seconds(team):
    t0 = time.perf_counter()
    for _ in range(CALLS_PER_ROUND):
        team.loglikelihood(0)
    return time.perf_counter() - t0


def instrument_cost_seconds():
    """Measured per-broadcast instrument cost: the master's two flight
    events plus every worker's begin/done/wait stats cycle."""
    from repro.obs.live import LiveTelemetry
    from repro.parallel.shm import WorkerStatsPlane, WorkerStatsWriter

    n = 20_000
    live = LiveTelemetry()
    t0 = time.perf_counter()
    for _ in range(n):
        live.record("dispatch", op="lnl", kind="evaluate", n_commands=1)
        live.record("barrier_exit", op="lnl", kind="evaluate", wall=1e-3)
    recorder_pair = (time.perf_counter() - t0) / n

    plane = WorkerStatsPlane(1)
    writer = WorkerStatsWriter(plane.row(0), 0)
    t0 = time.perf_counter()
    for _ in range(n):
        writer.begin("lnl")
        writer.done(1e-3, 10)
        writer.wait(1e-4)
    writer_cycle = (time.perf_counter() - t0) / n
    plane.close()
    return recorder_pair, writer_cycle


@pytest.mark.timeout(600)
def test_live_plane_overhead_under_budget(results_dir):
    from repro.obs.live import LiveTelemetry, NullLiveTelemetry

    data, tree, lengths, models, alphas = build()
    before = live_segments()

    def team(live):
        return ParallelPLK(
            data, tree, models, alphas, WORKERS, backend="threads",
            initial_lengths=lengths, live=live,
        )

    live = LiveTelemetry()
    with team(None) as off, team(live) as on:
        # exactly one extra segment for the enabled arm, zero for the
        # disabled one
        assert isinstance(off.live, NullLiveTelemetry)
        assert off._stats_plane is None
        assert len(live_segments()) == len(before) + 1
        for arm in (off, on):  # warm caches and code paths
            _round_seconds(arm)
        off_rounds, on_rounds = [], []
        for _ in range(ROUNDS):  # interleaved: drift hits both arms
            off_rounds.append(_round_seconds(off))
            on_rounds.append(_round_seconds(on))
    # teardown is exact: no stats plane (or anything else) left behind
    assert live_segments() == before

    recorder_pair, writer_cycle = instrument_cost_seconds()
    instrument = recorder_pair + WORKERS * writer_cycle
    broadcast = min(off_rounds) / CALLS_PER_ROUND
    instrument_ratio = instrument / broadcast

    off_best = min(off_rounds)
    on_best = min(on_rounds)
    end_to_end = on_best / off_best - 1.0
    n_events = len(live.recorder)
    samples = live.sample()  # final rows survive close()
    lines = [
        "BENCH live overhead: compute-bound lnl broadcasts, "
        f"{WORKERS} thread workers, {N_PARTS}x{PART_LEN} sites",
        f"  per-broadcast compute (live off): {broadcast * 1e6:8.1f} us",
        f"  instrument cost: {instrument * 1e6:6.2f} us "
        f"(recorder pair {recorder_pair * 1e6:.2f} + "
        f"{WORKERS} x writer cycle {writer_cycle * 1e6:.2f})",
        f"  instrument overhead: {instrument_ratio * 100:.3f}%  "
        f"(budget {INSTRUMENT_BUDGET:.0%})",
        f"  end-to-end paired rounds ({ROUNDS} x {CALLS_PER_ROUND} calls): "
        f"off best {off_best * 1e3:.2f} ms "
        f"(median {statistics.median(off_rounds) * 1e3:.2f}), "
        f"on best {on_best * 1e3:.2f} ms "
        f"(median {statistics.median(on_rounds) * 1e3:.2f}), "
        f"ratio {end_to_end * 100:+.2f}%",
        f"  flight events buffered: {n_events}, "
        f"worker commands: {[s.commands for s in samples]}",
    ]
    write_result(results_dir, "BENCH_live_overhead", "\n".join(lines))
    # every broadcast of the enabled arm was accounted by the workers
    assert all(s.commands >= ROUNDS * CALLS_PER_ROUND for s in samples)
    assert n_events > 0
    assert instrument_ratio < INSTRUMENT_BUDGET, (
        f"live instruments cost {instrument_ratio:.2%} of a compute-bound "
        f"broadcast (> {INSTRUMENT_BUDGET:.0%} budget)"
    )
    assert end_to_end < END_TO_END_BOUND, (
        f"end-to-end live overhead {end_to_end:.2%} exceeds the "
        f"{END_TO_END_BOUND:.0%} regression bound"
    )
