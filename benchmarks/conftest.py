"""Shared benchmark fixtures.

Each benchmark file regenerates one table/figure of the paper's evaluation
(see DESIGN.md's experiment index).  The expensive step — running the real
analysis to capture its schedule — is cached on disk by
:mod:`repro.bench.runner`; the timed step is the deterministic simulator
replay.  Every benchmark also writes its paper-style table to
``benchmarks/results/`` (EXPERIMENTS.md quotes those files) and asserts
the qualitative claims the paper makes about that figure.
"""
from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = str(Path(__file__).parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def get_trace():
    """Session-cached access to captured experiment traces."""
    from repro.bench import capture_experiment

    cache: dict = {}

    def fetch(dataset: str, analysis: str, strategy: str, **kw):
        key = (dataset, analysis, strategy, tuple(sorted(kw.items())))
        if key not in cache:
            cache[key] = capture_experiment(dataset, analysis, strategy, **kw)
        return cache[key]

    return fetch


def write_result(results_dir: Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
