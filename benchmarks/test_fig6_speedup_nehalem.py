"""FIG6 — Paper Figure 6: speedups on the Intel Nehalem for d50_50000
(50 x p1000): an unpartitioned analysis vs the new and old parallelization
approaches for the partitioned analysis, at 2/4/8 threads.

Paper claims reproduced:
* the unpartitioned analysis scales almost linearly;
* newPAR's partitioned speedup is "nearly as good as ... a completely
  unpartitioned analysis, despite the load imbalance problem";
* oldPAR falls far behind at 8 threads.
"""
import pytest

from conftest import write_result
from repro.bench import format_speedup_figure, speedup_figure
from repro.simmachine import NEHALEM

DATASET = "d50_50000_p1000"
CANDIDATES = 300


@pytest.fixture(scope="module")
def traces(get_trace):
    return {
        "Unpartitioned": get_trace(
            DATASET, "search", "new", unpartitioned=True, max_candidates=CANDIDATES
        ),
        "New": get_trace(DATASET, "search", "new", max_candidates=CANDIDATES),
        "Old": get_trace(DATASET, "search", "old", max_candidates=CANDIDATES),
    }


def test_fig6_speedup_curves(benchmark, traces, results_dir):
    series = benchmark.pedantic(
        speedup_figure, args=(traces, NEHALEM, (2, 4, 8)), rounds=1, iterations=1
    )
    text = format_speedup_figure(
        series, "FIG6: speedups on Nehalem, d50_50000 (50 x p1000)"
    )
    write_result(results_dir, "fig6_speedup_nehalem", text)

    sp = {s.label: s.speedups for s in series}
    # ordering at every thread count: unpartitioned >= new >> old
    for t in (2, 4, 8):
        assert sp["Unpartitioned"][t] >= sp["New"][t] * 0.97
        assert sp["New"][t] > sp["Old"][t]
    # paper: new is "nearly as good" as unpartitioned at 8 threads
    assert sp["New"][8] >= 0.85 * sp["Unpartitioned"][8]
    # paper Fig. 6 shape: old saturates well below linear
    assert sp["Old"][8] < 0.75 * sp["New"][8]
    # speedups grow with threads for all three
    for label in sp:
        assert sp[label][2] < sp[label][4] < sp[label][8]


def test_fig6_monotone_efficiency_gap(traces):
    """The old-vs-new gap widens with the thread count (more threads ->
    less work per barrier for oldPAR)."""
    sp = {
        label: speedup_figure({label: tr}, NEHALEM, (2, 4, 8))[0].speedups
        for label, tr in traces.items()
    }
    gaps = [sp["New"][t] / sp["Old"][t] for t in (2, 4, 8)]
    assert gaps[0] < gaps[1] < gaps[2]
