"""FIG5 — Paper Figure 5: execution times for the real-world mammalian DNA
dataset r125_19839 (125 taxa, 34 partitions of variable length, min 148 /
max 2,705 distinct patterns) on the four platforms.

The paper: "execution times on the real-world mammalian DNA dataset ...
improve to a similar degree as for our simulated datasets".  We assert the
same ordering claims as FIG3 plus the variable-partition-length shape of
the stand-in dataset."""
import pytest

from conftest import write_result
from repro.bench import format_runtime_figure, improvement_factors, runtime_figure

DATASET = "r125_19839"
CANDIDATES = 120


@pytest.fixture(scope="module")
def traces(get_trace):
    return {
        s: get_trace(DATASET, "search", s, max_candidates=CANDIDATES)
        for s in ("old", "new")
    }


def test_fig5_runtime_table(benchmark, traces, results_dir):
    rows = benchmark.pedantic(
        runtime_figure, args=(traces["old"], traces["new"]), rounds=1, iterations=1
    )
    text = format_runtime_figure(
        rows,
        "FIG5: r125_19839 (mammalian DNA stand-in), 34 variable-length "
        "partitions, full ML tree search (per-partition branch lengths)",
    )
    write_result(results_dir, "fig5_r125_19839", text)

    for row in rows:
        assert row.new8 < row.old8
    factors = improvement_factors(rows)
    # "improve to a similar degree as for our simulated datasets"
    for platform in ("Barcelona", "x4600"):
        assert factors[platform][16] >= 1.8, factors


def test_fig5_dataset_shape(traces):
    """The stand-in reproduces the published shape statistics."""
    counts = traces["new"].pattern_counts
    assert counts.sum() == 19_839
    assert len(counts) == 34
    assert counts.min() == 148
    assert counts.max() == 2_705


def test_fig5_short_partitions_starve_threads(traces):
    """The min-length partition (148 patterns) leaves most of 16 threads
    nearly idle in oldPAR regions — quantify per-thread imbalance."""
    import numpy as np

    from repro.parallel import cyclic_partition_counts

    counts = cyclic_partition_counts(0, 148, 16)
    assert counts.max() == 10  # 148/16 rounded up
    assert counts.min() == 9
    # at 148 patterns the per-barrier work per thread is tiny compared to
    # the barrier itself on x4600 (the crux of the paper's worst case)
    from repro.simmachine import X4600, seconds_per_pattern

    work = counts.max() * seconds_per_pattern("derivative", 4, 4, X4600, 16)
    assert work < X4600.barrier_seconds(16)
