"""TXT1 — Paper Section V text: "the run time differences between the old
per-partition parallelization approach (oldPAR) and the new simultaneous
parallelization approach (newPAR) were insignificant for analyses using a
joint branch length estimate over all partitions.  The average execution
time improvement amounts to approximately 5%."

With joint branch lengths every Newton iteration spans all partitions, so
only the Brent (Q/alpha) phases differ between strategies — a small
effect.  We assert the improvement is positive but far below the
per-partition case."""
import pytest

from conftest import write_result
from repro.simmachine import PLATFORMS, simulate_trace

DATASET = "d50_50000_p1000"


@pytest.fixture(scope="module")
def traces(get_trace):
    return {
        s: get_trace(
            DATASET, "search", s, branch_mode="joint", max_candidates=150
        )
        for s in ("old", "new")
    }


@pytest.fixture(scope="module")
def pp_traces(get_trace):
    return {
        s: get_trace(DATASET, "search", s, max_candidates=300)
        for s in ("old", "new")
    }


def test_txt1_joint_improvement_small(benchmark, traces, pp_traces, results_dir):
    def improvements():
        rows = []
        for name, machine in PLATFORMS.items():
            for t in (8, 16):
                if t > machine.cores:
                    continue
                old = simulate_trace(traces["old"], machine, t).total_seconds
                new = simulate_trace(traces["new"], machine, t).total_seconds
                rows.append((machine.name, t, old, new, old / new))
        return rows

    rows = benchmark.pedantic(improvements, rounds=1, iterations=1)
    lines = [
        "TXT1: joint branch-length estimate, d50_50000 p1000 tree search",
        f"{'platform':<12} {'threads':>7} {'old':>9} {'new':>9} {'old/new':>8}",
        "-" * 50,
    ]
    for name, t, old, new, ratio in rows:
        lines.append(f"{name:<12} {t:>7} {old:9.1f} {new:9.1f} {ratio:8.3f}")
    write_result(results_dir, "txt1_joint_bl", "\n".join(lines))

    ratios = [r[-1] for r in rows]
    # improvement exists but is small (paper: ~5%); allow up to ~25%
    assert all(r >= 0.99 for r in ratios)
    assert sum(ratios) / len(ratios) < 1.25


def test_txt1_joint_much_smaller_than_per_partition(traces, pp_traces):
    """The joint-BL improvement is a fraction of the per-partition one on
    the 16-core machines."""
    from repro.simmachine import X4600

    joint_imp = (
        simulate_trace(traces["old"], X4600, 16).total_seconds
        / simulate_trace(traces["new"], X4600, 16).total_seconds
    )
    pp_imp = (
        simulate_trace(pp_traces["old"], X4600, 16).total_seconds
        / simulate_trace(pp_traces["new"], X4600, 16).total_seconds
    )
    assert joint_imp < 0.5 * pp_imp
