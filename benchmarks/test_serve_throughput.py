"""SERV1 — Warm-pool service throughput vs cold one-shot runs.

The service tier's claim: keeping worker teams forked-and-ready between
requests removes the per-request setup bill — fork the team, build the
pre-fork shm input arena, prime every worker's partition engines — that
a one-shot run pays every time.  Measured on the processes backend with
``comms=shm`` (the configuration where setup is most expensive and the
paper-relevant one for many-core serving):

*Cold lane* — each submission builds a fresh
:class:`~repro.parallel.engine.ParallelPLK`, computes one lnl, tears
down.  *Warm lane* — the same submissions against one
:class:`~repro.serve.daemon.LikelihoodService`: only the FIRST builds a
team (``pool.misses == 1`` is asserted — every later submission skipped
fork+arena setup), the rest ride the warm pool through the full
queue/schedule/execute path.

Hard assertions: pool reuse (misses == 1, hits == N-1), warm results
identical to cold to 1e-9, and warm mean latency below cold mean
latency.  The speedup magnitude is reported, not asserted — it is
host-dependent fork cost vs a tiny kernel.

Committed output: ``results/BENCH_serve.json`` (quoted by EXPERIMENTS.md
SERV1) plus the usual text table.
"""
import json
import statistics
import time

import pytest

from conftest import write_result
from repro.parallel import ParallelPLK
from repro.parallel.shm import live_segments
from repro.serve import LikelihoodService, LocalClient, ServiceConfig
from repro.serve.cache import build_context

WORKERS = 2
N_JOBS = 8
DS = {"kind": "simulated", "taxa": 8, "sites": 600, "partitions": 6, "seed": 17}


def _cold_submission(context) -> tuple[float, float]:
    """One cold one-shot: full build (fork + arena) + lnl + teardown."""
    t0 = time.perf_counter()
    with ParallelPLK(context.data, context.tree, context.models,
                     context.alphas, n_workers=WORKERS, backend="processes",
                     comms="shm", initial_lengths=context.lengths) as eng:
        lnl = eng.loglikelihood(0)
    return time.perf_counter() - t0, lnl


@pytest.mark.timeout(600)
def test_serv1_warm_pool_vs_cold_oneshot(results_dir):
    context = build_context(DS)

    cold_times, cold_lnls = [], []
    for _ in range(N_JOBS):
        dt, lnl = _cold_submission(context)
        cold_times.append(dt)
        cold_lnls.append(lnl)
    assert len(set(cold_lnls)) == 1  # deterministic reference

    svc = LikelihoodService(ServiceConfig(
        workers=WORKERS, executors=1, pool_capacity=1,
        backend="processes", comms="shm",
    ))
    warm_times, warm_lnls = [], []
    with svc:
        client = LocalClient(svc)
        for _ in range(N_JOBS):
            t0 = time.perf_counter()
            view = client.run({"op": "loglikelihood", "dataset": DS}, wait=120)
            warm_times.append(time.perf_counter() - t0)
            assert view["state"] == "done"
            warm_lnls.append(view["result"]["lnl"])
        pool = svc.pool.stats()
    assert not live_segments(), "leaked shared-memory segments"

    # The service claim: one cold build, every other submission warm.
    assert pool["misses"] == 1
    assert pool["hits"] == N_JOBS - 1
    for lnl in warm_lnls:
        assert abs(lnl - cold_lnls[0]) < 1e-9

    cold_mean = statistics.mean(cold_times)
    warm_tail = warm_times[1:]  # [0] pays the one cold build
    warm_mean = statistics.mean(warm_tail)
    assert warm_mean < cold_mean, (
        f"warm submissions ({warm_mean:.4f}s) should beat cold one-shots "
        f"({cold_mean:.4f}s)"
    )

    payload = {
        "workload": {**DS, "workers": WORKERS, "backend": "processes",
                     "comms": "shm"},
        "n_jobs": N_JOBS,
        "cold": {
            "mean_s": round(cold_mean, 5),
            "min_s": round(min(cold_times), 5),
        },
        "warm": {
            "first_s": round(warm_times[0], 5),
            "mean_warm_s": round(warm_mean, 5),
            "min_s": round(min(warm_tail), 5),
            "speedup_vs_cold": round(cold_mean / warm_mean, 2),
        },
        "pool": {"hits": pool["hits"], "misses": pool["misses"]},
    }
    (results_dir / "BENCH_serve.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    lines = [
        "SERV1  warm-pool service vs cold one-shot "
        f"({N_JOBS} lnl submissions, {WORKERS}-worker processes+shm teams)",
        f"  cold one-shot   mean {cold_mean * 1e3:8.1f} ms  "
        f"(fork + arena + lnl + teardown each time)",
        f"  warm first      {warm_times[0] * 1e3:13.1f} ms  "
        f"(pays the one cold build)",
        f"  warm steady     mean {warm_mean * 1e3:8.1f} ms  "
        f"(queue + schedule + fused lnl only)",
        f"  speedup (steady vs cold)  {cold_mean / warm_mean:6.2f}x   "
        f"pool hits/misses {pool['hits']}/{pool['misses']}",
    ]
    write_result(results_dir, "BENCH_serve", "\n".join(lines))
