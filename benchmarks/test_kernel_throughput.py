"""Microbenchmarks of the four kernel primitives (pytest-benchmark).

Not a paper figure, but the foundation under all of them: these are the
inner loops whose per-pattern cost the simulator's cost model abstracts.
Regression-guards the vectorized implementations."""
import numpy as np
import pytest

from repro.plk import EigenSystem, SubstitutionModel, discrete_gamma_rates, kernel

M = 5_000


@pytest.fixture(scope="module", params=["DNA", "AA"])
def setup(request):
    if request.param == "DNA":
        model = SubstitutionModel.random_gtr(1)
    else:
        model = SubstitutionModel.synthetic_aa(1)
    eig = EigenSystem.from_model(model)
    rates = discrete_gamma_rates(0.8, 4)
    rng = np.random.default_rng(0)
    s = model.states
    clv_a = rng.random((4, M, s)) + 0.01
    clv_b = rng.random((4, M, s)) + 0.01
    p = eig.transition_matrices(0.1, rates)
    weights = np.ones(M)
    return model, eig, rates, p, clv_a, clv_b, weights


def test_newview_throughput(benchmark, setup):
    _, _, _, p, clv_a, clv_b, _ = setup
    benchmark(kernel.newview, p, clv_a, None, p, clv_b, None)


def test_evaluate_throughput(benchmark, setup):
    model, _, _, p, clv_a, clv_b, weights = setup
    benchmark(
        kernel.evaluate, p, clv_a, None, clv_b, None, model.frequencies, weights
    )


def test_sumtable_throughput(benchmark, setup):
    model, eig, _, _, clv_a, clv_b, _ = setup
    benchmark(kernel.make_sumtable, clv_a, clv_b, eig.u, eig.v, model.frequencies)


def test_derivative_throughput(benchmark, setup):
    model, eig, rates, _, clv_a, clv_b, weights = setup
    table = kernel.make_sumtable(clv_a, clv_b, eig.u, eig.v, model.frequencies)
    benchmark(
        kernel.branch_derivatives, table, eig.eigenvalues, rates, 0.3, weights
    )
