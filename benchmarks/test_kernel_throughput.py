"""KERNEL — per-backend throughput of the PLK inner loop.

Not a paper figure, but the foundation under all of them: these are the
inner loops whose per-pattern cost the simulator's cost model abstracts.
The seam contract being gated here (ISSUE acceptance): the ``blocked``
backend must beat the numpy reference on >=1000-pattern workloads.  The
win comes from three effects whose weight shifts with the pattern count:

* the transposed transition matrices are prepared once per edge
  (:class:`~repro.plk.kernels.PreparedP`) instead of per call;
* the right-child propagation lands in one persistent scratch buffer
  instead of a fresh full-width temporary per call;
* past the cache cliff the pattern axis is walked in blocks, keeping
  the working set resident (the large-m regime, where the speedup is
  severalfold).

Timing protocol: best-of-``REPEATS`` over auto-calibrated inner loops —
the standard defense against scheduler noise on a shared host.  The
hard gate uses the geometric mean across the >=1000-pattern sizes plus
a stronger floor at the largest (cache-bound) size, so a +-5% wobble on
one mid-size workload cannot flake the suite.

Committed output: ``results/BENCH_kernel.txt`` / ``.json`` (quoted by
EXPERIMENTS.md and summarized by the CI perf-smoke job).
"""
import json
import math
import time
import warnings

import numpy as np
import pytest

from conftest import write_result
from repro.plk import EigenSystem, SubstitutionModel, discrete_gamma_rates
from repro.plk.kernels import KERNELS, get_kernel, numba_available

#: Pattern counts per datatype.  All sizes >=1000 take part in the gate;
#: the largest DNA size sits well past the blocked backend's full-width
#: threshold so the block loop itself is what gets measured.
SIZES = {"DNA": (1_000, 5_000, 20_000), "AA": (1_000, 4_000)}
REPEATS = 5
TARGET_SECONDS = 0.02  # per calibrated inner loop


def build(datatype, m):
    if datatype == "DNA":
        model = SubstitutionModel.random_gtr(1)
    else:
        model = SubstitutionModel.synthetic_aa(1)
    eig = EigenSystem.from_model(model)
    rates = discrete_gamma_rates(0.8, 4)
    rng = np.random.default_rng(0)
    s = model.states
    clv_a = rng.random((4, m, s)) + 0.01
    clv_b = rng.random((4, m, s)) + 0.01
    p = eig.transition_matrices(0.1, rates)
    weights = np.ones(m)
    return model, eig, rates, p, clv_a, clv_b, weights


def best_time(fn, repeats=REPEATS):
    """Best-of-N mean seconds per call, auto-calibrated inner loop."""
    fn()  # warm-up (touches caches, compiles, allocates scratch)
    t0 = time.perf_counter()
    fn()
    once = max(time.perf_counter() - t0, 1e-9)
    number = max(1, int(TARGET_SECONDS / once))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - t0) / number)
    return best


def measure_backend(name, datatype, m):
    """Seconds per primitive call through one backend, edge prep amortized
    (prepare_p once, many calls — the engine's real access pattern)."""
    model, eig, rates, p, clv_a, clv_b, weights = build(datatype, m)
    with warnings.catch_warnings():
        # numba-absent fallback announces itself; expected here
        warnings.simplefilter("ignore", RuntimeWarning)
        backend = get_kernel(name)
    pp = backend.prepare_p(p)
    out = np.empty_like(clv_a)
    return {
        "newview": best_time(
            lambda: backend.newview(pp, clv_a, None, pp, clv_b, None, out=out)
        ),
        "evaluate": best_time(
            lambda: backend.evaluate(pp, clv_a, None, clv_b, None,
                                     model.frequencies, weights)
        ),
        "sumtable": best_time(
            lambda: backend.make_sumtable(clv_a, clv_b, eig.u, eig.v,
                                          model.frequencies)
        ),
    }


@pytest.fixture(scope="module")
def timings():
    grid = {}
    for datatype, sizes in SIZES.items():
        for m in sizes:
            grid[(datatype, m)] = {
                name: measure_backend(name, datatype, m) for name in KERNELS
            }
    return grid


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


@pytest.mark.timeout(600)
def test_kernel_throughput_report(timings, results_dir):
    lines = [
        "KERNEL: inner-loop throughput per backend "
        f"(best of {REPEATS}, us/call; numba jitted={numba_available()})",
        "",
        f"{'workload':<12} {'primitive':<9} "
        + " ".join(f"{name:>9}" for name in KERNELS)
        + f" {'blocked/numpy':>14}",
        "-" * 62,
    ]
    table = {}
    for (datatype, m), rows in timings.items():
        workload = f"{datatype} m={m}"
        table[workload] = {
            name: {k: v * 1e6 for k, v in row.items()}
            for name, row in rows.items()
        }
        for primitive in ("newview", "evaluate", "sumtable"):
            speed = rows["numpy"][primitive] / rows["blocked"][primitive]
            lines.append(
                f"{workload:<12} {primitive:<9} "
                + " ".join(f"{rows[n][primitive] * 1e6:>9.1f}" for n in KERNELS)
                + f" {speed:>13.2f}x"
            )
    speedups = {
        f"{dt} m={m}": rows["numpy"]["newview"] / rows["blocked"]["newview"]
        for (dt, m), rows in timings.items()
    }
    lines += ["", "newview speedup (blocked over numpy reference):"]
    lines += [f"  {wl:<12} {sp:5.2f}x" for wl, sp in speedups.items()]
    lines.append(f"  geometric mean {geomean(speedups.values()):.2f}x")
    write_result(results_dir, "BENCH_kernel", "\n".join(lines))
    (results_dir / "BENCH_kernel.json").write_text(json.dumps(
        {
            "repeats": REPEATS,
            "numba_jitted": numba_available(),
            "us_per_call": table,
            "newview_speedup_blocked_over_numpy": speedups,
        },
        indent=2,
    ) + "\n")


@pytest.mark.timeout(600)
def test_blocked_beats_numpy_at_scale(timings):
    """ISSUE acceptance: the blocked backend beats the reference on
    >=1000-pattern workloads.  Gate on the geometric mean (robust to one
    noisy mid-size point) plus a hard floor at the cache-bound size,
    where blocking is the whole point."""
    newview = {
        (dt, m): rows["numpy"]["newview"] / rows["blocked"]["newview"]
        for (dt, m), rows in timings.items()
    }
    assert geomean(newview.values()) > 1.0, newview
    assert newview[("DNA", 20_000)] > 1.2, newview
    # and it must never be a real regression anywhere in the grid
    assert min(newview.values()) > 0.85, newview


@pytest.mark.timeout(600)
def test_numba_backend_never_loses_to_fallback(timings):
    """Selecting numba is always safe: jitted it should win at small m
    (no temporaries), absent it IS the reference (equal modulo noise)."""
    for (dt, m), rows in timings.items():
        ratio = rows["numpy"]["newview"] / rows["numba"]["newview"]
        floor = 0.9 if numba_available() else 0.7
        assert ratio > floor, (dt, m, ratio)
