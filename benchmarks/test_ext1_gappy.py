"""EXT1 — Extension: induced-subtree likelihoods for gappy alignments.

The paper's stated future work ("implement tree searches under the
computationally improved likelihood model for gappy phylogenomic
alignments [32]") and the computational argument behind its advocacy of
per-partition branch lengths.  We measure the traversal-cost saving of
evaluating each partition on the subtree induced by its covered taxa
(exact — asserted against the full-tree likelihood) across a coverage
sweep, reproducing the shape of [32]'s claim that the saving grows toward
one-to-two orders of magnitude as alignments get gappier."""
import numpy as np
import pytest

from conftest import write_result
from repro.core import PartitionedEngine
from repro.plk import GappyEngine, SubstitutionModel, traversal_cost_ratio
from repro.seqgen import gappy_dataset


COVERAGES = (0.9, 0.6, 0.3, 0.15)
TAXA = 48
PARTITIONS = 8


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for cov in COVERAGES:
        ds = gappy_dataset(TAXA, PARTITIONS, 200, coverage=cov, seed=13)
        out[cov] = ds
    return out


def test_ext1_savings_sweep(benchmark, sweep, results_dir):
    def ratios():
        return {
            cov: traversal_cost_ratio(ds.partitioned(), ds.tree)
            for cov, ds in sweep.items()
        }

    rows = benchmark.pedantic(ratios, rounds=1, iterations=1)
    lines = [
        f"EXT1: induced-subtree traversal savings, {TAXA} taxa x "
        f"{PARTITIONS} partitions",
        f"{'coverage':>8} {'full/induced cost':>18}",
        "-" * 28,
    ]
    for cov in COVERAGES:
        lines.append(f"{cov:>8.2f} {rows[cov]:>18.2f}")
    write_result(results_dir, "ext1_gappy", "\n".join(lines))

    # savings grow monotonically as coverage drops
    values = [rows[c] for c in COVERAGES]
    assert all(b > a for a, b in zip(values, values[1:]))
    # sparse sampling approaches the order-of-magnitude regime
    assert rows[0.15] > 4.0
    assert rows[0.9] < 1.6


def test_ext1_induced_likelihood_exact(sweep):
    """The speedup is free: induced-subtree evaluation is EXACT."""
    ds = sweep[0.3]
    pa = ds.partitioned()
    models = [SubstitutionModel.random_gtr(p) for p in range(PARTITIONS)]
    alphas = [1.0] * PARTITIONS
    full = PartitionedEngine(
        pa, ds.tree.copy(), models=models, alphas=alphas,
        initial_lengths=ds.true_lengths,
    )
    gap = GappyEngine(
        pa, ds.tree, models=models, alphas=alphas,
        initial_lengths=ds.true_lengths,
    )
    assert gap.loglikelihood() == pytest.approx(full.loglikelihood(), abs=1e-7)


def test_ext1_real_op_counts(sweep, results_dir):
    """Count actual newview operations of one full evaluation both ways."""
    from repro.core import TraceRecorder

    ds = sweep[0.3]
    pa = ds.partitioned()

    rec_full = TraceRecorder()
    full = PartitionedEngine(
        pa, ds.tree.copy(), initial_lengths=ds.true_lengths, recorder=rec_full
    )
    full.loglikelihood()
    full_ops = rec_full.finalize(full.pattern_counts(), full.states()).op_totals()

    rec_gap = TraceRecorder()
    gap = GappyEngine(
        pa, ds.tree, initial_lengths=ds.true_lengths, recorder=rec_gap
    )
    rec_gap.begin_region("gappy_eval")
    lnl = gap.loglikelihood()
    rec_gap.end_region()
    gap_ops = rec_gap.finalize(
        full.pattern_counts(), full.states()
    ).op_totals()

    ratio = full_ops["newview"] / gap_ops["newview"]
    write_result(
        results_dir,
        "ext1_op_counts",
        f"EXT1 op counts (coverage 0.3): full newview pattern-ops "
        f"{full_ops['newview']:,} vs induced {gap_ops['newview']:,} "
        f"-> {ratio:.2f}x fewer",
    )
    assert ratio > 2.0
