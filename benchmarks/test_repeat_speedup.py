"""REPEATS — repeat-aware vs dense engine throughput.

ISSUE acceptance for the repeat-compression layer: on a repeat-heavy
workload (measured mean unique-site ratio <= 0.4) the ``repeats``
backend must deliver >= 1.5x the dense reference's newview-sweep
throughput, and on a high-diversity workload (unique ratio ~1, where
every node takes the dense fallback) it must never regress by more than
5%.

Workload construction matters here: the paper-style datasets are
pattern-compressed, so *globally* duplicated columns are already gone
before the engine sees them.  What repeat compression exploits is
*subtree-local* redundancy — columns that agree on most taxa but differ
on a few, so each column is a distinct global pattern while deep
subtrees still see tiny class counts.  The low-diversity workload below
makes that structure explicit (columns constant outside a 5-taxon
varying set); the high-diversity workload is i.i.d. uniform columns,
which saturate every node's class count immediately.

Timed unit: one full invalidate_all() + loglikelihood() sweep — every
inner node recomputes its CLV while the repeat index is reused, exactly
the per-iteration shape of branch-length optimization (the index
depends only on topology and tips, never on branch lengths).

Committed output: ``results/BENCH_repeats.txt`` / ``.json`` (quoted by
EXPERIMENTS.md and summarized by the CI perf-smoke job).
"""
import json
import time

import numpy as np
import pytest

from conftest import write_result
from repro.plk import (
    Alignment,
    PartitionLikelihood,
    PartitionedAlignment,
    SubstitutionModel,
    repeat_profile,
    uniform_scheme,
)
from repro.seqgen import random_topology_with_lengths

N_TAXA = 50
N_SITES = 2_000
REPEATS = 5
ROUNDS = 3  # refresh sweeps per timed call


def _columns_low_diversity(n_taxa, n_sites, rng):
    """Columns constant outside a 5-taxon varying set: distinct global
    patterns, tiny class counts at every deep node."""
    base = np.array(list("ACGT"))
    chars = np.repeat(base[rng.integers(0, 4, size=n_sites)], n_taxa)
    chars = chars.reshape(n_sites, n_taxa).copy()
    vary = rng.integers(0, n_taxa, size=5)
    chars[:, vary] = base[rng.integers(0, 4, size=(n_sites, 5))]
    return chars


def _columns_high_diversity(n_taxa, n_sites, rng):
    """i.i.d. uniform columns: class counts saturate immediately, every
    node takes the dense fallback."""
    return np.array(list("ACGT"))[rng.integers(0, 4, size=(n_sites, n_taxa))]


def build_workload(kind):
    rng = np.random.default_rng(2009)
    tree, lengths = random_topology_with_lengths(N_TAXA, rng)
    maker = {
        "low": _columns_low_diversity, "high": _columns_high_diversity,
    }[kind]
    chars = maker(N_TAXA, N_SITES, rng)
    aln = Alignment.from_sequences(
        {tree.taxa[i]: "".join(chars[:, i]) for i in range(N_TAXA)}
    )
    data = PartitionedAlignment(aln, uniform_scheme(aln.n_sites, aln.n_sites))
    return data.data[0], tree, np.abs(lengths) + 0.02


def sweep_time(engine, repeats=REPEATS):
    """Best-of-N seconds for ROUNDS invalidate-all refresh sweeps."""
    engine.loglikelihood(0)  # warm-up: builds index, scratch, P cache
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(ROUNDS):
            engine.invalidate_all()
            engine.loglikelihood(0)
        best = min(best, (time.perf_counter() - t0) / ROUNDS)
    return best


@pytest.fixture(scope="module")
def measurements():
    model = SubstitutionModel.random_gtr(9)
    out = {}
    for kind in ("low", "high"):
        block, tree, lengths = build_workload(kind)
        prof = repeat_profile(block.tip_states, tree)
        row = {"mean_unique_ratio": prof["mean_unique_ratio"],
               "n_patterns": prof["n_patterns"]}
        lnl = {}
        for name in ("numpy", "repeats"):
            eng = PartitionLikelihood(
                block, tree, model, alpha=0.8, kernel_backend=name
            )
            eng.set_branch_lengths(lengths)
            row[name] = sweep_time(eng)
            lnl[name] = eng.loglikelihood(0)
        assert lnl["repeats"] == pytest.approx(lnl["numpy"], rel=1e-12)
        row["speedup"] = row["numpy"] / row["repeats"]
        out[kind] = row
    return out


@pytest.mark.timeout(600)
def test_repeat_speedup_report(measurements, results_dir):
    lines = [
        "REPEATS: repeat-aware vs dense engine, full refresh sweep "
        f"({N_TAXA} taxa, {N_SITES} sites, best of {REPEATS})",
        "",
        f"{'workload':<16} {'uniq ratio':>10} {'patterns':>9} "
        f"{'dense ms':>9} {'repeats ms':>11} {'speedup':>8}",
        "-" * 68,
    ]
    for kind, row in measurements.items():
        lines.append(
            f"{kind + '-diversity':<16} {row['mean_unique_ratio']:>10.3f} "
            f"{row['n_patterns']:>9d} {row['numpy'] * 1e3:>9.2f} "
            f"{row['repeats'] * 1e3:>11.2f} {row['speedup']:>7.2f}x"
        )
    lines += [
        "",
        "gate: low-diversity (uniq <= 0.4) speedup >= 1.5x; "
        "high-diversity never regresses past 0.95x.",
    ]
    write_result(results_dir, "BENCH_repeats", "\n".join(lines))
    (results_dir / "BENCH_repeats.json").write_text(json.dumps(
        {
            "taxa": N_TAXA,
            "sites": N_SITES,
            "repeats": REPEATS,
            "workloads": {
                kind: {
                    "mean_unique_ratio": row["mean_unique_ratio"],
                    "n_patterns": row["n_patterns"],
                    "dense_seconds": row["numpy"],
                    "repeats_seconds": row["repeats"],
                    "speedup": row["speedup"],
                }
                for kind, row in measurements.items()
            },
        },
        indent=2,
    ) + "\n")


@pytest.mark.timeout(600)
def test_low_diversity_gate(measurements):
    """ISSUE acceptance: >= 1.5x on a <= 0.4 unique-ratio workload."""
    row = measurements["low"]
    assert row["mean_unique_ratio"] <= 0.4, row
    assert row["speedup"] >= 1.5, row


@pytest.mark.timeout(600)
def test_high_diversity_never_regresses(measurements):
    """The dense fallback keeps the repeats backend honest when deep
    nodes have nothing to compress: at most 5% overhead.  Note i.i.d.
    columns still repeat BELOW small subtrees (a k-leaf DNA subtree has
    at most 4^k classes), so the mean unique ratio saturates near 0.5
    here, not 1.0 — the dense fallback covers the saturated deep nodes
    while the tip-adjacent ones keep compressing."""
    row = measurements["high"]
    assert row["mean_unique_ratio"] > 0.4, row
    assert row["speedup"] >= 0.95, row
