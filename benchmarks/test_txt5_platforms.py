"""TXT5 — Paper Section V text, platform observations:

* "performance on Intel processors for sequential program runs is
  significantly better than performance on AMD processors";
* "with 8 threads the AMD processors are on par with the Intel
  Clovertown ... all 8 cores of the Clovertown system share a common
  front-side bus ... whereas the AMD NUMA architecture provides a higher
  aggregated memory bandwidth";
* "the Intel Nehalem system clearly outperforms all other systems" and
  "the sequential runtime on the Nehalem is almost 40% lower than on the
  Clovertown".
"""
import pytest

from conftest import write_result
from repro.simmachine import BARCELONA, CLOVERTOWN, NEHALEM, X4600, simulate_trace

DATASET = "d50_50000_p1000"


@pytest.fixture(scope="module")
def trace(get_trace):
    return get_trace(DATASET, "search", "new", max_candidates=300)


def test_txt5_platform_ranking(benchmark, trace, results_dir):
    def table():
        rows = {}
        for machine in (NEHALEM, CLOVERTOWN, BARCELONA, X4600):
            seq = simulate_trace(trace, machine, 1).total_seconds
            par8 = simulate_trace(trace, machine, 8).total_seconds
            rows[machine.name] = (seq, par8)
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    lines = [
        "TXT5: platform comparison, d50_50000 p1000 tree search (newPAR)",
        f"{'platform':<12} {'sequential':>11} {'8 threads':>10}",
        "-" * 36,
    ]
    for name, (seq, par8) in rows.items():
        lines.append(f"{name:<12} {seq:11.1f} {par8:10.1f}")
    write_result(results_dir, "txt5_platforms", "\n".join(lines))

    # sequential: Intel beats AMD; Nehalem ~40% below Clovertown
    assert rows["Nehalem"][0] < rows["Clovertown"][0]
    assert rows["Clovertown"][0] < rows["Barcelona"][0]
    assert rows["Clovertown"][0] < rows["x4600"][0]
    ratio = rows["Nehalem"][0] / rows["Clovertown"][0]
    assert 0.5 <= ratio <= 0.75, ratio

    # 8 threads: AMD on par with Clovertown (within 25%)
    for amd in ("Barcelona", "x4600"):
        assert rows[amd][1] == pytest.approx(rows["Clovertown"][1], rel=0.25)

    # Nehalem clearly fastest in parallel
    others = [rows[n][1] for n in ("Clovertown", "Barcelona", "x4600")]
    assert rows["Nehalem"][1] < 0.75 * min(others)


def test_txt5_memory_bound_explanation():
    """The model encodes the paper's explanation: Clovertown's per-thread
    bandwidth collapses at 8 threads; the NUMA machines' does not."""
    fsb8 = CLOVERTOWN.bandwidth_per_thread(8)
    fsb1 = CLOVERTOWN.bandwidth_per_thread(1)
    assert fsb8 < fsb1 / 3
    numa8 = BARCELONA.bandwidth_per_thread(8)
    numa1 = BARCELONA.bandwidth_per_thread(1)
    assert numa8 > numa1 / 2
