"""FIG4 — Paper Figure 4: execution times for d100_50000 with 50
partitions of 1,000 columns each (full ML tree search, per-partition
branch lengths) on the four platforms.

Same claims as Figure 3, on the 100-taxon dataset (twice the tree depth:
more likelihood arrays per traversal, more branches to optimize)."""
import pytest

from conftest import write_result
from repro.bench import format_runtime_figure, improvement_factors, runtime_figure

DATASET = "d100_50000_p1000"
CANDIDATES = 300


@pytest.fixture(scope="module")
def traces(get_trace):
    return {
        s: get_trace(DATASET, "search", s, max_candidates=CANDIDATES)
        for s in ("old", "new")
    }


def test_fig4_runtime_table(benchmark, traces, results_dir):
    rows = benchmark.pedantic(
        runtime_figure, args=(traces["old"], traces["new"]), rounds=1, iterations=1
    )
    text = format_runtime_figure(
        rows,
        "FIG4: d100_50000, 50 x p1000, full ML tree search "
        "(per-partition branch lengths)",
    )
    write_result(results_dir, "fig4_d100_50000", text)

    by_platform = {r.platform: r for r in rows}
    assert by_platform["Nehalem"].sequential < by_platform["Clovertown"].sequential
    for row in rows:
        assert row.new8 < row.old8
    factors = improvement_factors(rows)
    for platform in ("Barcelona", "x4600"):
        assert 2.0 <= factors[platform][16] <= 8.0, factors


def test_fig4_runtimes_exceed_fig3(get_trace, traces):
    """100 taxa cost more than 50 taxa at the same alignment width (the
    paper's Fig. 4 y-axis tops ~50,000s vs Fig. 3's ~30,000s)."""
    from repro.simmachine import NEHALEM, simulate_trace

    fig3_new = get_trace("d50_50000_p1000", "search", "new", max_candidates=300)
    t50 = simulate_trace(fig3_new, NEHALEM, 1).total_seconds
    t100 = simulate_trace(traces["new"], NEHALEM, 1).total_seconds
    assert t100 > t50
