"""ABL2 — Ablation: partition length/count sweep.

The paper (Section V): "the number and length of partitions in a dataset
will have direct impact on the performance improvements achieved by
newPAR, i.e., the more and the shorter the partitions are, the better the
performance of newPAR versus oldPAR will become."

We capture searches on d20_20000 under p1000 (20 partitions) and p5000
(4 partitions) and compare improvement factors."""
import pytest

from conftest import write_result
from repro.simmachine import X4600, simulate_trace

CANDIDATES = 120


@pytest.fixture(scope="module")
def traces(get_trace):
    out = {}
    for plen in (1_000, 5_000):
        out[plen] = {
            s: get_trace(
                f"d20_20000_p{plen}", "search", s, max_candidates=CANDIDATES
            )
            for s in ("old", "new")
        }
    return out


def test_abl2_shorter_partitions_bigger_win(benchmark, traces, results_dir):
    def improvements():
        out = {}
        for plen, pair in traces.items():
            old = simulate_trace(pair["old"], X4600, 16).total_seconds
            new = simulate_trace(pair["new"], X4600, 16).total_seconds
            out[plen] = (old, new, old / new)
        return out

    rows = benchmark.pedantic(improvements, rounds=1, iterations=1)
    lines = [
        "ABL2: partition-length sweep, d20_20000 tree search, x4600 @ 16",
        f"{'scheme':<8} {'#parts':>6} {'old':>9} {'new':>9} {'old/new':>8}",
        "-" * 45,
    ]
    for plen, (old, new, ratio) in sorted(rows.items()):
        lines.append(
            f"p{plen:<7} {20_000 // plen:>6} {old:9.1f} {new:9.1f} {ratio:8.3f}"
        )
    write_result(results_dir, "abl2_partition_sweep", "\n".join(lines))

    # the paper's monotonicity claim: shorter partitions -> larger win
    assert rows[1_000][2] > rows[5_000][2]
    assert rows[1_000][2] > 1.5
    assert rows[5_000][2] >= 1.0


def test_abl2_geometry(traces):
    assert len(traces[1_000]["new"].pattern_counts) == 20
    assert len(traces[5_000]["new"].pattern_counts) == 4
