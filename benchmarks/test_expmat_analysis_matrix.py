"""EXPMAT — the paper's experimental-setup matrix (Section V).

"For every possible combination of simulated datasets and corresponding
partition schemes we executed 4 distinct analyses: an optimization of ML
model parameters (without tree search) on a fixed input tree with joint
and per-partition branch length estimates, as well as full ML tree
searches ... with joint and per-partition branch length estimates."

We run that grid on two simulated datasets (scaled-down capture effort)
and assert the ordering the paper's results imply everywhere:

    improvement(search, per-partition)  >  improvement(modelopt, per-partition)
    improvement(search, per-partition)  >  improvement(search, joint)
    improvement(*, joint) ~ small
"""
import pytest

from conftest import write_result
from repro.simmachine import X4600, simulate_trace

DATASETS = ("d10_5000_p1000", "d20_20000_p1000")
CELLS = (
    ("search", "per_partition"),
    ("search", "joint"),
    ("modelopt", "per_partition"),
    ("modelopt", "joint"),
)


@pytest.fixture(scope="module")
def matrix(get_trace):
    out = {}
    for dataset in DATASETS:
        for analysis, mode in CELLS:
            for strategy in ("old", "new"):
                out[(dataset, analysis, mode, strategy)] = get_trace(
                    dataset, analysis, strategy,
                    branch_mode=mode, max_candidates=120,
                )
    return out


def improvement(matrix, dataset, analysis, mode, threads=16):
    old = simulate_trace(matrix[(dataset, analysis, mode, "old")], X4600, threads)
    new = simulate_trace(matrix[(dataset, analysis, mode, "new")], X4600, threads)
    return old.total_seconds / new.total_seconds


def test_expmat_grid(benchmark, matrix, results_dir):
    def table():
        rows = []
        for dataset in DATASETS:
            for analysis, mode in CELLS:
                rows.append(
                    (dataset, analysis, mode, improvement(matrix, dataset, analysis, mode))
                )
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    lines = [
        "EXPMAT: the paper's 4-analysis grid, x4600 @ 16 threads (old/new)",
        f"{'dataset':<18} {'analysis':<9} {'branch mode':<14} {'old/new':>8}",
        "-" * 54,
    ]
    for dataset, analysis, mode, ratio in rows:
        lines.append(f"{dataset:<18} {analysis:<9} {mode:<14} {ratio:8.2f}")
    write_result(results_dir, "expmat_analysis_matrix", "\n".join(lines))

    by_cell = {(d, a, m): r for d, a, m, r in rows}
    for dataset in DATASETS:
        search_pp = by_cell[(dataset, "search", "per_partition")]
        search_joint = by_cell[(dataset, "search", "joint")]
        modelopt_pp = by_cell[(dataset, "modelopt", "per_partition")]
        modelopt_joint = by_cell[(dataset, "modelopt", "joint")]
        # the paper's ordering
        assert search_pp > modelopt_pp, dataset
        assert search_pp > search_joint, dataset
        # joint-mode improvements stay small everywhere
        assert search_joint < 1.4, (dataset, search_joint)
        assert modelopt_joint < 1.4, (dataset, modelopt_joint)
        # and nothing regresses
        assert min(search_pp, search_joint, modelopt_pp, modelopt_joint) >= 0.98


def test_expmat_more_partitions_bigger_effect(matrix):
    """d20_20000 (20 partitions) beats d10_5000 (5 partitions) on the
    per-partition search improvement — the paper's 'the more and the
    shorter the partitions' claim across the dataset axis."""
    small = improvement(matrix, "d10_5000_p1000", "search", "per_partition")
    large = improvement(matrix, "d20_20000_p1000", "search", "per_partition")
    assert large > small
