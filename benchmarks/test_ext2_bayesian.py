"""EXT2 — Extension: proposal scheduling for Bayesian inference.

Paper Section IV ("Implications for Bayesian Inference"): per-partition
proposals give Bayesian programs the same oldPAR-shaped schedules; the
proposal mechanism "should be designed such as to allow for applying
simultaneous changes to one of the parameter types across all partitions"
and branch-length changes "should be simultaneously proposed for all
partitions of the same topological connection".

We run the same MCMC under both proposal schedulings, capture both
schedules, and replay them on the 16-core platforms — the ML result,
transposed to MC3."""
import numpy as np
import pytest

from conftest import write_result
from repro.core import TraceRecorder
from repro.mcmc import BayesianChain
from repro.seqgen import simulated_dataset
from repro.simmachine import BARCELONA, X4600, simulate_trace

GENERATIONS = 400


@pytest.fixture(scope="module")
def traces():
    ds = simulated_dataset(10, 5_000, 500, seed=17)
    pa = ds.partitioned()
    out = {}
    for mode in ("per_partition", "simultaneous"):
        rec = TraceRecorder()
        chain = BayesianChain(
            pa, ds.tree.copy(), seed=4, scheduling=mode,
            recorder=rec, initial_lengths=ds.true_lengths,
        )
        chain.run(GENERATIONS, sample_every=GENERATIONS)
        out[mode] = rec.finalize(
            chain.engine.pattern_counts(), chain.engine.states()
        )
    return out


def test_ext2_bayesian_scheduling(benchmark, traces, results_dir):
    def table():
        rows = []
        for machine in (BARCELONA, X4600):
            for t in (8, 16):
                old = simulate_trace(traces["per_partition"], machine, t)
                new = simulate_trace(traces["simultaneous"], machine, t)
                rows.append(
                    (
                        machine.name, t,
                        old.total_seconds, new.total_seconds,
                        old.total_seconds / new.total_seconds,
                    )
                )
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    lines = [
        f"EXT2: Bayesian proposal scheduling, {GENERATIONS} generations, "
        "10 taxa x 10 partitions",
        f"{'platform':<11} {'threads':>7} {'per-part':>9} {'simult':>9} {'ratio':>6}",
        "-" * 47,
    ]
    for name, t, old, new, ratio in rows:
        lines.append(f"{name:<11} {t:>7} {old:9.2f} {new:9.2f} {ratio:6.2f}")
    write_result(results_dir, "ext2_bayesian", "\n".join(lines))

    # simultaneous proposals win, and more so at 16 threads
    by_key = {(r[0], r[1]): r[4] for r in rows}
    for platform in ("Barcelona", "x4600"):
        assert by_key[(platform, 8)] > 1.2
        assert by_key[(platform, 16)] > by_key[(platform, 8)]


def test_ext2_region_counts(traces, results_dir):
    """per-partition scheduling issues ~P times more regions."""
    per_part = traces["per_partition"].n_regions
    simult = traces["simultaneous"].n_regions
    write_result(
        results_dir,
        "ext2_regions",
        f"EXT2 regions: per-partition {per_part:,} vs simultaneous "
        f"{simult:,} ({per_part / simult:.1f}x)",
    )
    assert per_part > 4 * simult  # 10 partitions -> close to 10x
