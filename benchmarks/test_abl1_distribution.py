"""ABL1 — Ablation: the four pattern-distribution policies.

The paper (Section IV): "We use a cyclic distribution of the m' distinct
alignment patterns to threads, mainly to allow for better load-balance in
phylogenomic datasets that can contain DNA as well as AA data."

Part 1 replays the paper's schedules under the block (contiguous-chunk)
baseline: each partition then concentrates on few threads, so even
newPAR's batched regions lose balance — cyclic is what makes newPAR work.

Part 2 goes beyond the paper with the cost-aware policies on genuinely
mixed DNA+AA data.  Cyclic treats every pattern as equal, so the ~25x
more expensive AA patterns land wherever the per-partition remainders
fall; ``weighted`` (cost-aware cyclic) and ``lpt`` (longest-processing-
time chunk packing) place them by cost and drive the per-thread busy-time
imbalance toward 1.0.  See docs/LOAD_BALANCE.md ("Reading the ablation"
in EXPERIMENTS.md) for how to interpret the table.
"""
import numpy as np
import pytest

from conftest import write_result
from repro.core.analysis import run_model_optimization
from repro.parallel import DISTRIBUTIONS, CostModel, PartitionLayout, build_plan
from repro.plk import (
    AA,
    DNA,
    Alignment,
    Partition,
    PartitionedAlignment,
    PartitionScheme,
)
from repro.seqgen import random_topology_with_lengths, simulate_alignment
from repro.simmachine import X4600, simulate_trace

DATASET = "d50_50000_p1000"


@pytest.fixture(scope="module")
def traces(get_trace):
    return {
        s: get_trace(DATASET, "search", s, max_candidates=300)
        for s in ("old", "new")
    }


def _mixed_dataset(seed: int = 11):
    """A phylogenomic-style supermatrix: 8 short expensive AA partitions
    of irregular length followed by 8 long cheap DNA partitions (the shape
    the paper names as cyclic distribution's motivation).  The irregular
    AA lengths make cyclic's remainder placement collide — several threads
    end up owning visibly more ~25x-cost AA patterns than others."""
    from repro.plk import SubstitutionModel

    rng = np.random.default_rng(seed)
    tree, lengths = random_topology_with_lengths(10, rng)
    blocks: list[np.ndarray] = []
    parts: list[Partition] = []
    offset = 0
    aa_sites = (9, 13, 21, 11, 17, 10, 19, 14)
    for p in range(16):
        if p < 8:
            n_sites, dtype = aa_sites[p], AA
            model = SubstitutionModel.synthetic_aa(seed + p)
        else:
            n_sites, dtype = 200, DNA
            model = SubstitutionModel.random_gtr(seed + p)
        sub = simulate_alignment(
            tree, lengths, model, 1.0, n_sites, rng
        )
        blocks.append(sub.matrix)
        parts.append(
            Partition(f"{dtype.name.lower()}{p}", dtype,
                      ((offset, offset + n_sites),))
        )
        offset += n_sites
    aln = Alignment(tree.taxa, np.concatenate(blocks, axis=1), DNA)
    return PartitionedAlignment(aln, PartitionScheme(tuple(parts))), tree, lengths


@pytest.fixture(scope="module")
def mixed_trace():
    data, tree, lengths = _mixed_dataset()
    run = run_model_optimization(
        data, tree, strategy="new", initial_lengths=lengths, max_rounds=1
    )
    return run.trace


def test_abl1_cyclic_vs_block(benchmark, traces, results_dir):
    def table():
        rows = []
        for strategy in ("old", "new"):
            for policy in ("cyclic", "block"):
                r = simulate_trace(traces[strategy], X4600, 16, policy)
                rows.append((strategy, policy, r.total_seconds, r.efficiency))
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    lines = [
        "ABL1: pattern distribution policy, d50_50000 p1000, x4600 @ 16",
        f"{'strategy':<9} {'policy':<8} {'time':>9} {'efficiency':>11}",
        "-" * 40,
    ]
    for strat, policy, t, eff in rows:
        lines.append(f"{strat:<9} {policy:<8} {t:9.1f} {eff:11.1%}")
    write_result(results_dir, "abl1_distribution", "\n".join(lines))

    by_key = {(r[0], r[1]): r[2] for r in rows}
    # block is strictly worse for BOTH strategies ...
    assert by_key[("new", "block")] > by_key[("new", "cyclic")]
    assert by_key[("old", "block")] > by_key[("old", "cyclic")]
    # ... and hits per-partition regions catastrophically: under block,
    # a p1000 partition lands on ~1/3 of the 16 threads.
    assert by_key[("old", "block")] > 1.5 * by_key[("old", "cyclic")]


def _schedule_cost_model(trace, machine, n_threads) -> CostModel:
    """Per-pattern seconds including each partition's actual schedule
    activity: total simulated op-seconds of the partition divided by its
    pattern count.  This is the measured-feedback idea of
    :class:`repro.parallel.Rebalancer` applied at per-partition
    granularity — an analytic ``states**2`` weight alone is NOT enough
    here, because partitions converge after different iteration counts
    and a plan balancing raw pattern cost can still be activity-lumpy
    (docs/LOAD_BALANCE.md discusses this failure mode)."""
    from repro.simmachine.costmodel import seconds_per_pattern

    per = np.zeros(len(trace.pattern_counts))
    for (p, op), pattern_ops in trace.partition_op_totals().items():
        per[p] += pattern_ops * seconds_per_pattern(
            op, int(trace.states[p]), trace.categories, machine, n_threads
        )
    per /= np.maximum(trace.pattern_counts, 1)
    return CostModel(np.maximum(per, np.finfo(float).tiny), unit="seconds")


def test_abl1_four_policies_mixed_data(benchmark, mixed_trace, results_dir):
    """The cost-aware extension: on mixed DNA+AA data the weighted and
    LPT policies — driven by the schedule-calibrated cost model — beat
    plain cyclic on per-thread busy-time balance."""

    def table():
        layout = PartitionLayout.from_trace(mixed_trace)
        cost = _schedule_cost_model(mixed_trace, X4600, 16)
        rows = []
        for policy in DISTRIBUTIONS:
            if policy in ("weighted", "lpt"):
                dist = build_plan(layout, 16, policy, cost_model=cost)
            else:
                dist = policy
            r = simulate_trace(mixed_trace, X4600, 16, dist)
            rows.append(
                (policy, r.total_seconds, r.efficiency, r.imbalance)
            )
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    lines = [
        "ABL1b: four policies, mixed 8xAA(9-21) + 8xDNA(200), "
        "newPAR model-opt, x4600 @ 16",
        "(weighted/lpt plans use the schedule-calibrated cost model)",
        f"{'policy':<9} {'time':>9} {'efficiency':>11} {'imbalance':>10}",
        "-" * 42,
    ]
    for policy, t, eff, imb in rows:
        lines.append(f"{policy:<9} {t:9.2f} {eff:11.1%} {imb:10.3f}")
    lines.append("(imbalance = max/mean per-thread busy seconds; 1.000 = perfect)")
    write_result(results_dir, "abl1_four_policies", "\n".join(lines))

    by_policy = {r[0]: r for r in rows}
    imb = {policy: r[3] for policy, r in by_policy.items()}
    # The cost-aware policies beat plain cyclic on busy-time balance ...
    assert imb["weighted"] < imb["cyclic"]
    assert imb["lpt"] < imb["cyclic"]
    # ... and block, which stacks whole AA partitions on few threads, is
    # by far the worst.
    assert imb["block"] > imb["cyclic"]
    assert imb["block"] > 1.2 * min(imb["weighted"], imb["lpt"])


def test_abl1_block_concentrates_partitions():
    """Structural check: with 50 equal partitions over 16 block chunks, a
    single partition touches at most 2 threads."""
    from repro.parallel import block_partition_counts

    counts = block_partition_counts(17_000, 1_000, 50_000, 16)
    assert (counts > 0).sum() <= 2
