"""ABL1 — Ablation: cyclic vs block pattern distribution.

The paper (Section IV): "We use a cyclic distribution of the m' distinct
alignment patterns to threads, mainly to allow for better load-balance in
phylogenomic datasets that can contain DNA as well as AA data."

The ablation replays the same schedules under a block (contiguous-chunk)
distribution: each partition then concentrates on few threads, so even
newPAR's batched regions lose balance — cyclic is what makes newPAR work.
"""
import pytest

from conftest import write_result
from repro.simmachine import NEHALEM, X4600, simulate_trace

DATASET = "d50_50000_p1000"


@pytest.fixture(scope="module")
def traces(get_trace):
    return {
        s: get_trace(DATASET, "search", s, max_candidates=300)
        for s in ("old", "new")
    }


def test_abl1_cyclic_vs_block(benchmark, traces, results_dir):
    def table():
        rows = []
        for strategy in ("old", "new"):
            for policy in ("cyclic", "block"):
                r = simulate_trace(traces[strategy], X4600, 16, policy)
                rows.append((strategy, policy, r.total_seconds, r.efficiency))
        return rows

    rows = benchmark.pedantic(table, rounds=1, iterations=1)
    lines = [
        "ABL1: pattern distribution policy, d50_50000 p1000, x4600 @ 16",
        f"{'strategy':<9} {'policy':<8} {'time':>9} {'efficiency':>11}",
        "-" * 40,
    ]
    for strat, policy, t, eff in rows:
        lines.append(f"{strat:<9} {policy:<8} {t:9.1f} {eff:11.1%}")
    write_result(results_dir, "abl1_distribution", "\n".join(lines))

    by_key = {(r[0], r[1]): r[2] for r in rows}
    # block is strictly worse for BOTH strategies ...
    assert by_key[("new", "block")] > by_key[("new", "cyclic")]
    assert by_key[("old", "block")] > by_key[("old", "cyclic")]
    # ... and hits per-partition regions catastrophically: under block,
    # a p1000 partition lands on ~1/3 of the 16 threads.
    assert by_key[("old", "block")] > 1.5 * by_key[("old", "cyclic")]


def test_abl1_block_concentrates_partitions():
    """Structural check: with 50 equal partitions over 16 block chunks, a
    single partition touches at most 2 threads."""
    from repro.parallel import block_partition_counts

    counts = block_partition_counts(17_000, 1_000, 50_000, 16)
    assert (counts > 0).sum() <= 2
