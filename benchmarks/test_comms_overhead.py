"""COMMS — Pipe-vs-shm and fused-vs-unfused overhead on real processes.

The tentpole claim of the comms plane: for the batched optimizers the
dominant IPC cost is synchronization round-trips and pickled result
payloads, not kernel work.  Two instruments:

*Isolated exchange latency* — a ``deriv`` broadcast with an empty active
set does zero kernel work but still ships the full fixed-layout reply
(2P floats per worker), so timing a long run of them measures the pure
dispatch + barrier + reply-transport cost of each comms plane.  Same
idea for fusion: one 3-step program vs the same 3 commands as separate
broadcasts is exactly two barriers of difference.  These are stable even
on an oversubscribed host and carry the hard assertions.

*End-to-end optimizer matrix* — the newPAR branch optimizer across
{pipe, shm} x {fused, unfused} on two workload shapes: ``txt4_style``
(many tiny partitions, the TXT4 slowdown regime where barrier count
dominates) and ``kernel_style`` (few large partitions, compute-heavy).
Wall clock is reported for context; the asserted quantities are the
deterministic per-round barrier counts and bytes moved.

Committed output: ``results/BENCH_comms.json`` (quoted by EXPERIMENTS.md
and summarized by the CI perf-smoke job) plus the usual text table.
"""
import json
import statistics
import time

import numpy as np
import pytest

from conftest import write_result
from repro.parallel import ParallelPLK, live_segments
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment

WORKERS = 4
REPEATS = 5

WORKLOADS = {
    # name: (taxa, partitions, sites_per_partition, edges)
    "txt4_style": (8, 32, 16, 3),
    "kernel_style": (8, 4, 500, 3),
}


def build(n_parts, part_len, taxa=8):
    sites = n_parts * part_len
    rng = np.random.default_rng(17)
    tree, lengths = random_topology_with_lengths(taxa, rng)
    aln = simulate_alignment(
        tree, lengths, SubstitutionModel.random_gtr(0), 1.0, sites, rng
    )
    data = PartitionedAlignment(aln, uniform_scheme(sites, part_len))
    models = [SubstitutionModel.random_gtr(p) for p in range(n_parts)]
    alphas = [1.0] * n_parts
    return data, tree, lengths, models, alphas


# -- isolated comms-plane latency (the hard-asserted instrument) ----------

def exchange_latency(comms, n_parts=64, workers=2, n_exchanges=600):
    """Best-of-3 mean seconds per empty-deriv exchange: full-size reply,
    zero kernel work."""
    data, tree, lengths, models, alphas = build(n_parts, 4, taxa=6)
    with ParallelPLK(
        data, tree, models, alphas, workers, backend="processes",
        comms=comms, initial_lengths=lengths,
    ) as team:
        handle = team.prepare_branch(0, list(range(n_parts)))
        z = np.full(n_parts, 0.1)
        for _ in range(50):  # warm-up
            team._broadcast(("deriv", handle.token, z, []))
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(n_exchanges):
                team._broadcast(("deriv", handle.token, z, []))
            best = min(best, time.perf_counter() - t0)
        stats = team.comms_stats()
    return best / n_exchanges, stats


def program_latency(fused, workers=2, n_rounds=400):
    """Best-of-3 mean seconds per prepare+deriv+release round, issued as
    ONE fused program vs three separate broadcasts (two extra barriers).
    Tiny partitions keep the sumtable work negligible, so the round is
    barrier-dominated — the regime fusion targets."""
    data, tree, lengths, models, alphas = build(4, 4, taxa=6)
    n = data.n_partitions
    every = list(range(n))
    z = np.full(n, 0.1)
    with ParallelPLK(
        data, tree, models, alphas, workers, backend="processes",
        initial_lengths=lengths,
    ) as team:
        def round_(token):
            if fused:
                team.run_program((
                    ("prepare", 0, token, every),
                    ("deriv", token, z, []),
                    ("release", token),
                ))
            else:
                team._broadcast(("prepare", 0, token, every))
                team._broadcast(("deriv", token, z, []))
                team._broadcast(("release", token))

        for i in range(30):  # warm-up
            round_(10_000 + i)
        best = float("inf")
        for rep in range(3):
            t0 = time.perf_counter()
            for i in range(n_rounds):
                round_(20_000 + rep * n_rounds + i)
            best = min(best, time.perf_counter() - t0)
    return best / n_rounds


# -- end-to-end optimizer matrix (reported; deterministic parts asserted) --

def measure(workload, comms, fused):
    """Median wall seconds of one optimizer round, plus barrier count and
    cumulative bytes moved per round (team start-up excluded)."""
    taxa, n_parts, part_len, n_edges = WORKLOADS[workload]
    data, tree, lengths, models, alphas = build(n_parts, part_len, taxa)
    edges = list(range(n_edges))
    with ParallelPLK(
        data, tree, models, alphas, WORKERS, backend="processes",
        comms=comms, fuse_programs=fused, initial_lengths=lengths,
    ) as team:
        z0 = np.tile(0.1, (len(edges), n_parts))
        team.optimize_branches(edges, "new", lengths0=z0)  # warm-up round
        barriers0 = team.commands_issued
        bytes0 = dict(team.comms_stats())
        walls = []
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            team.optimize_branches(edges, "new", lengths0=z0)
            walls.append(time.perf_counter() - t0)
        stats = team.comms_stats()
        barriers = (team.commands_issued - barriers0) / REPEATS
        pipe_bytes = (stats["pipe_tx_bytes"] + stats["pipe_rx_bytes"]
                      - bytes0["pipe_tx_bytes"] - bytes0["pipe_rx_bytes"]) / REPEATS
        shm_bytes = (stats["shm_rx_bytes"] - bytes0["shm_rx_bytes"]) / REPEATS
    return {
        "comms": comms,
        "fused": fused,
        "wall_ms": statistics.median(walls) * 1e3,
        "barriers_per_round": barriers,
        "pipe_bytes_per_round": pipe_bytes,
        "shm_bytes_per_round": shm_bytes,
    }


def _row(rows, comms, fused):
    return next(r for r in rows if r["comms"] == comms and r["fused"] == fused)


@pytest.fixture(scope="module")
def results():
    latency = {}
    for comms in ("pipe", "shm"):
        seconds, stats = exchange_latency(comms)
        latency[comms] = {
            "us_per_exchange": seconds * 1e6,
            "pipe_rx_bytes": stats["pipe_rx_bytes"],
            "shm_rx_bytes": stats["shm_rx_bytes"],
        }
    fusion = {
        "fused_us": program_latency(True) * 1e6,
        "unfused_us": program_latency(False) * 1e6,
    }
    matrix = {}
    for workload in WORKLOADS:
        matrix[workload] = [
            measure(workload, comms, fused)
            for comms in ("pipe", "shm")
            for fused in (True, False)
        ]
    assert live_segments() == []  # every team tears its segments down
    return {"exchange_latency": latency, "program_fusion": fusion,
            "optimizer_matrix": matrix}


@pytest.mark.timeout(900)
def test_comms_overhead_report(results, results_dir):
    latency = results["exchange_latency"]
    fusion = results["program_fusion"]
    matrix = results["optimizer_matrix"]
    lines = [
        "COMMS: process-backend comms-plane overhead",
        "",
        "isolated exchange (empty deriv, 64 partitions, 2 workers, "
        "best of 3x600):",
        f"  pipe {latency['pipe']['us_per_exchange']:7.1f} us/exchange",
        f"  shm  {latency['shm']['us_per_exchange']:7.1f} us/exchange  "
        f"({latency['pipe']['us_per_exchange'] / latency['shm']['us_per_exchange']:.2f}x)",
        "",
        "prepare+deriv+release round (4 tiny partitions, 2 workers, "
        "best of 3x400):",
        f"  1 fused barrier   {fusion['fused_us']:7.1f} us/round",
        f"  3 plain barriers  {fusion['unfused_us']:7.1f} us/round  "
        f"({fusion['unfused_us'] / fusion['fused_us']:.2f}x)",
        "",
        f"newPAR optimizer, {WORKERS} worker processes, median of "
        f"{REPEATS} rounds:",
        f"{'workload':<14} {'comms':<5} {'fused':<6} {'wall[ms]':>9} "
        f"{'barriers':>9} {'pipe[B]':>9} {'shm[B]':>8}",
        "-" * 66,
    ]
    for workload, rows in matrix.items():
        for r in rows:
            lines.append(
                f"{workload:<14} {r['comms']:<5} {str(r['fused']):<6} "
                f"{r['wall_ms']:>9.1f} {r['barriers_per_round']:>9.1f} "
                f"{r['pipe_bytes_per_round']:>9.0f} "
                f"{r['shm_bytes_per_round']:>8.0f}"
            )
    for workload, rows in matrix.items():
        fused = _row(rows, "shm", True)
        base = _row(rows, "pipe", False)
        lines.append(
            f"{workload}: shm+fused vs pipe+unfused = "
            f"{base['barriers_per_round'] / fused['barriers_per_round']:.2f}x "
            f"barriers, {base['pipe_bytes_per_round'] / fused['pipe_bytes_per_round']:.2f}x "
            "pipe bytes"
        )
    write_result(results_dir, "BENCH_comms", "\n".join(lines))
    (results_dir / "BENCH_comms.json").write_text(json.dumps(
        {"workers": WORKERS, "repeats": REPEATS, **results}, indent=2,
    ) + "\n")


@pytest.mark.timeout(900)
def test_shm_beats_pipe_on_exchange_latency(results):
    """ISSUE acceptance: --comms shm beats pipe on the comms
    microbenchmark — the reply payload moves through shared memory and
    the pipe round-trip carries only the ready token."""
    latency = results["exchange_latency"]
    assert (latency["shm"]["us_per_exchange"]
            < latency["pipe"]["us_per_exchange"])
    assert latency["shm"]["shm_rx_bytes"] > 0
    assert latency["shm"]["pipe_rx_bytes"] < latency["pipe"]["pipe_rx_bytes"]


@pytest.mark.timeout(900)
def test_fused_program_beats_separate_broadcasts(results):
    """One barrier vs three for the same work: fusion must win, and by a
    margin (two pipe round-trips saved per round)."""
    fusion = results["program_fusion"]
    assert fusion["fused_us"] < fusion["unfused_us"]


@pytest.mark.timeout(900)
def test_fusion_cuts_optimizer_barriers(results):
    """Deterministic end-to-end effect: fused runs issue the same worker
    commands over far fewer barriers, and the shm plane strictly reduces
    pipe traffic at equal schedule."""
    for workload, rows in results["optimizer_matrix"].items():
        # each edge saves >= 5 barriers (fused prepare+deriv, fused
        # guard+release, vectorized set_bl) -> 3 edges save >= 15
        assert (_row(rows, "pipe", True)["barriers_per_round"]
                <= _row(rows, "pipe", False)["barriers_per_round"] - 12)
        assert (_row(rows, "shm", True)["pipe_bytes_per_round"]
                < _row(rows, "pipe", True)["pipe_bytes_per_round"])
        assert _row(rows, "shm", True)["shm_bytes_per_round"] > 0
        assert _row(rows, "pipe", True)["shm_bytes_per_round"] == 0
