"""FIG3 — Paper Figure 3: execution times for d50_50000 with 50 partitions
of 1,000 columns each (full ML tree search, per-partition branch lengths)
on Nehalem, Clovertown, Barcelona and Sun x4600.

Paper claims reproduced here:
* sequential runtime: Intel < AMD; Nehalem fastest of all;
* oldPAR vs newPAR at 8 threads: new clearly faster;
* at 16 threads (Barcelona, x4600) the improvement factor lands in the
  paper's 2x-8x band;
* oldPAR suffers parallel slowdown (or near-zero gain) going 8 -> 16
  threads, which newPAR eliminates.
"""
import pytest

from conftest import write_result
from repro.bench import format_runtime_figure, improvement_factors, runtime_figure

DATASET = "d50_50000_p1000"
CANDIDATES = 300


@pytest.fixture(scope="module")
def traces(get_trace):
    return {
        s: get_trace(DATASET, "search", s, max_candidates=CANDIDATES)
        for s in ("old", "new")
    }


def test_fig3_runtime_table(benchmark, traces, results_dir):
    rows = benchmark.pedantic(
        runtime_figure, args=(traces["old"], traces["new"]), rounds=1, iterations=1
    )
    text = format_runtime_figure(
        rows,
        "FIG3: d50_50000, 50 x p1000, full ML tree search "
        "(per-partition branch lengths)",
    )
    write_result(results_dir, "fig3_d50_50000", text)

    by_platform = {r.platform: r for r in rows}
    # Sequential ranking: Nehalem < Clovertown < both AMD machines.
    assert by_platform["Nehalem"].sequential < by_platform["Clovertown"].sequential
    assert by_platform["Clovertown"].sequential < by_platform["Barcelona"].sequential
    assert by_platform["Clovertown"].sequential < by_platform["x4600"].sequential
    # newPAR wins everywhere.
    for row in rows:
        assert row.new8 < row.old8
        if row.new16 is not None:
            assert row.new16 < row.old16
    # 16-thread improvement factors within the paper's 2x-8x band.
    factors = improvement_factors(rows)
    for platform in ("Barcelona", "x4600"):
        assert 2.0 <= factors[platform][16] <= 8.0, factors


def test_fig3_oldpar_16core_stagnation(traces, results_dir):
    """oldPAR gains little or regresses from 8 to 16 cores; newPAR keeps
    scaling (the paper's 'parallel slowdown ... can be alleviated')."""
    rows = runtime_figure(traces["old"], traces["new"])
    for row in rows:
        if row.old16 is None:
            continue
        old_gain = row.old8 / row.old16
        new_gain = row.new8 / row.new16
        assert old_gain < 1.25  # stagnation or slowdown
        assert new_gain > 1.5   # healthy scaling


def test_fig3_same_total_work(traces):
    """Sanity: the two strategies scheduled identical kernel work."""
    assert traces["old"].op_totals() == traces["new"].op_totals()
