"""The Phylogenetic Likelihood Kernel substrate (paper Section III).

Everything needed to compute the likelihood of a multiple sequence
alignment on an unrooted binary tree under GTR-class models with discrete
Gamma rate heterogeneity: state spaces, alignments and pattern compression,
partition schemes, substitution models and their eigensystems, tree
topology, and the vectorized pruning/evaluation/derivative kernels.
"""
from .alignment import Alignment, compress_columns
from .datatypes import AA, DNA, DataType, get_datatype
from .eigen import EigenSystem
from .frequencies import (
    empirical_frequencies,
    frequency_ratios,
    ratios_to_frequencies,
)
from .gamma import GAMMA_CATEGORIES, discrete_gamma_rates
from .gappy import (
    GappyEngine,
    InducedSubtree,
    induced_subtree,
    taxon_coverage,
    traversal_cost_ratio,
)
from .kernels import (
    KERNELS,
    BlockedKernel,
    KernelBackend,
    NumbaKernel,
    NumpyKernel,
    get_kernel,
)
from .likelihood import BranchWorkspace, PartitionLikelihood
from .models import SubstitutionModel, n_exchange_rates
from .newick import parse_newick, write_newick
from .partition import (
    Partition,
    PartitionData,
    PartitionedAlignment,
    PartitionScheme,
    parse_partition_file,
    uniform_scheme,
)
from .phylip import parse_fasta, parse_phylip, write_fasta, write_phylip
from .tree import TraversalStep, Tree

__all__ = [
    "AA",
    "Alignment",
    "BlockedKernel",
    "BranchWorkspace",
    "DNA",
    "DataType",
    "EigenSystem",
    "GAMMA_CATEGORIES",
    "GappyEngine",
    "InducedSubtree",
    "KERNELS",
    "KernelBackend",
    "NumbaKernel",
    "NumpyKernel",
    "Partition",
    "PartitionData",
    "PartitionLikelihood",
    "PartitionScheme",
    "PartitionedAlignment",
    "SubstitutionModel",
    "TraversalStep",
    "Tree",
    "compress_columns",
    "discrete_gamma_rates",
    "empirical_frequencies",
    "frequency_ratios",
    "get_datatype",
    "get_kernel",
    "induced_subtree",
    "n_exchange_rates",
    "parse_fasta",
    "parse_newick",
    "parse_partition_file",
    "parse_phylip",
    "ratios_to_frequencies",
    "taxon_coverage",
    "traversal_cost_ratio",
    "uniform_scheme",
    "write_fasta",
    "write_newick",
    "write_phylip",
]
