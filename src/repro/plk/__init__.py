"""The Phylogenetic Likelihood Kernel substrate (paper Section III).

Everything needed to compute the likelihood of a multiple sequence
alignment on an unrooted binary tree under GTR-class models with discrete
Gamma rate heterogeneity: state spaces, alignments and pattern compression,
partition schemes, substitution models and their eigensystems, tree
topology, and the vectorized pruning/evaluation/derivative kernels.
"""
from .alignment import Alignment, compress_columns
from .datatypes import AA, DNA, DataType, get_datatype
from .eigen import EigenSystem
from .frequencies import (
    empirical_frequencies,
    frequency_ratios,
    ratios_to_frequencies,
)
from .gamma import GAMMA_CATEGORIES, discrete_gamma_rates
from .gappy import (
    GappyEngine,
    InducedSubtree,
    induced_subtree,
    taxon_coverage,
    traversal_cost_ratio,
)
from .kernels import (
    KERNEL_CHOICES,
    KERNELS,
    BlockedKernel,
    KernelBackend,
    NumbaKernel,
    NumpyKernel,
    RepeatsKernel,
    get_kernel,
    normalize_kernel_name,
)
from .likelihood import BranchWorkspace, PartitionLikelihood
from .models import SubstitutionModel, n_exchange_rates
from .newick import parse_newick, write_newick
from .partition import (
    Partition,
    PartitionData,
    PartitionedAlignment,
    PartitionScheme,
    parse_partition_file,
    uniform_scheme,
)
from .phylip import parse_fasta, parse_phylip, write_fasta, write_phylip
from .repeats import (
    NodeRepeats,
    effective_pattern_weights,
    repeat_profile,
    tip_state_codes,
)
from .tree import TraversalStep, Tree

__all__ = [
    "AA",
    "Alignment",
    "BlockedKernel",
    "BranchWorkspace",
    "DNA",
    "DataType",
    "EigenSystem",
    "GAMMA_CATEGORIES",
    "GappyEngine",
    "InducedSubtree",
    "KERNEL_CHOICES",
    "KERNELS",
    "KernelBackend",
    "NodeRepeats",
    "NumbaKernel",
    "NumpyKernel",
    "Partition",
    "PartitionData",
    "PartitionLikelihood",
    "PartitionScheme",
    "PartitionedAlignment",
    "RepeatsKernel",
    "SubstitutionModel",
    "TraversalStep",
    "Tree",
    "compress_columns",
    "discrete_gamma_rates",
    "effective_pattern_weights",
    "empirical_frequencies",
    "frequency_ratios",
    "get_datatype",
    "get_kernel",
    "induced_subtree",
    "n_exchange_rates",
    "normalize_kernel_name",
    "parse_fasta",
    "parse_newick",
    "parse_partition_file",
    "parse_phylip",
    "ratios_to_frequencies",
    "repeat_profile",
    "taxon_coverage",
    "tip_state_codes",
    "traversal_cost_ratio",
    "uniform_scheme",
    "write_fasta",
    "write_newick",
    "write_phylip",
]
