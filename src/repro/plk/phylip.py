"""PHYLIP and FASTA alignment readers/writers.

RAxML consumes relaxed PHYLIP (taxon names of arbitrary length separated
from the sequence by whitespace); that is what we emit and the primary
format we parse.  Interleaved PHYLIP and FASTA are also read, since the
paper's real-world alignments circulate in both.
"""
from __future__ import annotations

from .alignment import Alignment
from .datatypes import DNA, DataType

__all__ = ["parse_phylip", "write_phylip", "parse_fasta", "write_fasta"]


def parse_phylip(text: str, datatype: DataType = DNA) -> Alignment:
    """Parse sequential or interleaved (relaxed) PHYLIP text."""
    lines = [ln.rstrip() for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ValueError("empty PHYLIP input")
    header = lines[0].split()
    if len(header) != 2:
        raise ValueError(f"bad PHYLIP header: {lines[0]!r}")
    n_taxa, n_sites = int(header[0]), int(header[1])
    body = lines[1:]
    if len(body) < n_taxa:
        raise ValueError(f"PHYLIP header promises {n_taxa} taxa, found {len(body)} lines")

    taxa: list[str] = []
    chunks: list[list[str]] = []
    for line in body[:n_taxa]:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise ValueError(f"cannot split taxon/sequence in line {line!r}")
        taxa.append(parts[0])
        chunks.append([parts[1].replace(" ", "")])
    # Interleaved continuation blocks: bare sequence lines cycling taxa.
    for i, line in enumerate(body[n_taxa:]):
        chunks[i % n_taxa].append(line.replace(" ", ""))

    sequences = {t: "".join(c) for t, c in zip(taxa, chunks)}
    for taxon, seq in sequences.items():
        if len(seq) != n_sites:
            raise ValueError(
                f"taxon {taxon!r}: {len(seq)} characters, header says {n_sites}"
            )
    return Alignment.from_sequences(sequences, datatype)


def write_phylip(alignment: Alignment) -> str:
    """Relaxed sequential PHYLIP (one line per taxon)."""
    out = [f"{alignment.n_taxa} {alignment.n_sites}"]
    for taxon in alignment.taxa:
        out.append(f"{taxon} {alignment.sequence(taxon)}")
    return "\n".join(out) + "\n"


def parse_fasta(text: str, datatype: DataType = DNA) -> Alignment:
    """Parse aligned FASTA (all records equal length)."""
    sequences: dict[str, list[str]] = {}
    current: list[str] | None = None
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith(">"):
            name = line[1:].split()[0]
            if name in sequences:
                raise ValueError(f"duplicate FASTA record {name!r}")
            current = sequences.setdefault(name, [])
        else:
            if current is None:
                raise ValueError("FASTA sequence data before first header")
            current.append(line)
    if not sequences:
        raise ValueError("empty FASTA input")
    return Alignment.from_sequences(
        {k: "".join(v) for k, v in sequences.items()}, datatype
    )


def write_fasta(alignment: Alignment, width: int = 80) -> str:
    out: list[str] = []
    for taxon in alignment.taxa:
        out.append(f">{taxon}")
        seq = alignment.sequence(taxon)
        out.extend(seq[i : i + width] for i in range(0, len(seq), width))
    return "\n".join(out) + "\n"
