"""Discrete Gamma rate heterogeneity (Yang 1994).

Different alignment columns evolve at different speeds.  The Gamma model
draws each site's rate from a Gamma(alpha, alpha) distribution (mean 1);
the discrete approximation splits the distribution into K equal-probability
categories and represents each by either its mean (default, what RAxML
uses) or its median.  The per-site likelihood is then the average of the
per-category likelihoods, which multiplies the kernel's work per column by
K (K = 4 throughout the paper).
"""
from __future__ import annotations

import numpy as np
from scipy.special import gammainc, gammaincinv

__all__ = ["discrete_gamma_rates", "GAMMA_CATEGORIES"]

GAMMA_CATEGORIES = 4
_MIN_ALPHA = 0.02
_MAX_ALPHA = 1000.0


def discrete_gamma_rates(
    alpha: float, categories: int = GAMMA_CATEGORIES, median: bool = False
) -> np.ndarray:
    """Category rates of the discrete Gamma(alpha, alpha) model.

    Parameters
    ----------
    alpha:
        Shape parameter; small alpha = strong heterogeneity.  Clamped to
        RAxML's feasible interval [0.02, 1000].
    categories:
        Number of equal-probability categories, K.
    median:
        Use category medians instead of means.  Means are renormalized
        exactly; medians are rescaled to mean 1 (as in Yang 1994).

    Returns
    -------
    (K,) ascending rates with mean exactly 1.
    """
    if categories < 1:
        raise ValueError("need at least one rate category")
    alpha = float(np.clip(alpha, _MIN_ALPHA, _MAX_ALPHA))
    if categories == 1:
        return np.ones(1)
    k = categories
    probs = np.arange(1, k) / k
    # Quantile boundaries of Gamma(shape=alpha, rate=alpha): the rate
    # parameter cancels inside gammaincinv since scipy uses scale 1; divide
    # by alpha to convert.
    cuts = gammaincinv(alpha, probs) / alpha
    if median:
        mids = (np.arange(k) + 0.5) / k
        rates = gammaincinv(alpha, mids) / alpha
    else:
        # Mean of Gamma(alpha, alpha) over [a, b] with total prob 1/k:
        #   k * [ I(alpha+1, b*alpha) - I(alpha+1, a*alpha) ]
        # where I is the regularized lower incomplete gamma.
        bounds = np.concatenate([[0.0], cuts, [np.inf]])
        upper = gammainc(alpha + 1.0, np.where(np.isinf(bounds[1:]), np.inf, bounds[1:] * alpha))
        upper = np.where(np.isinf(bounds[1:]), 1.0, upper)
        lower = gammainc(alpha + 1.0, bounds[:-1] * alpha)
        rates = k * (upper - lower)
    rates = np.maximum(rates, 1e-10)
    return rates / rates.mean()
