"""Gappy phylogenomic alignments and induced-subtree likelihoods.

Multi-gene alignments are "gappy": sequence data is not available for
every gene of every organism, so the gene sampling has large holes filled
with alignment gaps (paper Fig. 2; described in detail in the paper's
reference [32], Stamatakis & Ott 2008, Phil. Trans. R. Soc. B).

A taxon whose data is entirely missing in a partition contributes a
conditional vector of all ones — mathematically it can be *pruned exactly*
from that partition's tree, and the surviving degree-2 junctions collapse
by adding branch lengths (P(b1) @ P(b2) == P(b1 + b2) for a shared Q).
With a **per-partition branch length estimate** every partition can
therefore be computed on its own *induced subtree* spanning only the taxa
it covers — this is why the paper "strongly argue[s] in favor of using
per-gene branch length estimates", and the speedup [32] reports as one to
two orders of magnitude on very gappy data.  The paper lists implementing
tree searches under this model as future work; here we implement the
likelihood machinery (exact induced-subtree evaluation plus the cost
accounting), which is what the load-balance analysis needs.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kernels import get_kernel
from .likelihood import PartitionLikelihood
from .models import SubstitutionModel
from .partition import PartitionData, PartitionedAlignment
from .tree import Tree

__all__ = [
    "taxon_coverage",
    "InducedSubtree",
    "induced_subtree",
    "GappyEngine",
    "traversal_cost_ratio",
]


def taxon_coverage(data: PartitionedAlignment) -> np.ndarray:
    """(n_partitions, n_taxa) bool: does the taxon have ANY informative
    (non-fully-ambiguous) character in the partition?"""
    out = np.zeros((data.n_partitions, data.n_taxa), dtype=bool)
    for p, block in enumerate(data.data):
        # tip_states: (n_taxa, m, s); a row of all ones == no information
        informative = block.tip_states.sum(axis=2) < block.states
        out[p] = informative.any(axis=1)
    return out


@dataclass(frozen=True)
class InducedSubtree:
    """The subtree a partition's present taxa span.

    Attributes
    ----------
    tree:
        A fresh :class:`Tree` over the present taxa only (their original
        names).
    leaf_map:
        ``{original leaf id -> induced leaf id}``.
    edge_spans:
        For every induced edge id, the tuple of ORIGINAL edge ids it
        replaces (collapsed chains have length > 1); induced branch
        lengths are the sums over these spans.
    """

    tree: Tree
    leaf_map: dict[int, int]
    edge_spans: tuple[tuple[int, ...], ...]

    def project_lengths(self, full_lengths: np.ndarray) -> np.ndarray:
        """Map a full-tree branch-length vector onto the induced tree."""
        return np.array(
            [sum(full_lengths[e] for e in span) for span in self.edge_spans]
        )


def induced_subtree(tree: Tree, keep: set[int]) -> InducedSubtree:
    """The exact induced subtree over the leaf set ``keep`` (>= 3 leaves).

    Prunes absent leaves, then suppresses the resulting degree-2 nodes,
    recording which original edges each induced edge spans.
    """
    if len(keep) < 3:
        raise ValueError("induced subtrees need at least 3 present taxa")
    if not keep <= set(range(tree.n_taxa)):
        raise ValueError("keep must be a set of leaf ids")

    # Work on a mutable adjacency copy: node -> {neighbor: span tuple}.
    adj: dict[int, dict[int, tuple[int, ...]]] = {
        node: {nb: (tree.edge_between(node, nb),) for nb in tree.neighbors(node)}
        for node in range(tree.n_nodes)
    }

    # 1. Iteratively prune leaves not kept (and inner nodes that become
    #    leaves as a result).
    queue = [leaf for leaf in range(tree.n_taxa) if leaf not in keep]
    while queue:
        node = queue.pop()
        if node not in adj or len(adj[node]) != 1:
            continue
        (neighbor,) = adj[node]
        del adj[neighbor][node]
        del adj[node]
        if len(adj[neighbor]) == 1 and neighbor >= tree.n_taxa:
            queue.append(neighbor)

    # 2. Suppress degree-2 inner nodes, concatenating spans.
    for node in [n for n in list(adj) if n >= tree.n_taxa and len(adj[n]) == 2]:
        (a, span_a), (b, span_b) = adj[node].items()
        del adj[node]
        del adj[a][node]
        del adj[b][node]
        adj[a][b] = span_a + span_b
        adj[b][a] = span_b + span_a

    # 3. Rebuild as a fresh Tree over the kept taxa.
    kept_leaves = sorted(keep)
    taxa = tuple(tree.taxa[leaf] for leaf in kept_leaves)
    new_tree = Tree(taxa)
    leaf_map = {old: i for i, old in enumerate(kept_leaves)}
    inner_map: dict[int, int] = {}
    next_inner = new_tree.n_taxa

    def new_id(old: int) -> int:
        nonlocal next_inner
        if old in leaf_map:
            return leaf_map[old]
        if old not in inner_map:
            inner_map[old] = next_inner
            next_inner += 1
        return inner_map[old]

    spans: list[tuple[int, ...]] = []
    seen: set[frozenset[int]] = set()
    next_edge = 0
    for node, nbrs in adj.items():
        for nb, span in nbrs.items():
            key = frozenset((node, nb))
            if key in seen:
                continue
            seen.add(key)
            new_tree._link(new_id(node), new_id(nb), next_edge)
            spans.append(tuple(span))
            next_edge += 1
    new_tree.validate()
    return InducedSubtree(
        tree=new_tree, leaf_map=leaf_map, edge_spans=tuple(spans)
    )


class GappyEngine:
    """Exact partitioned likelihood over per-partition induced subtrees.

    Every partition computes on the subtree its covered taxa span, with
    its own branch lengths projected from (or optimized independently of)
    the full tree — the computational model of the paper's reference [32]
    that motivates per-partition branch lengths.

    Parameters
    ----------
    data:
        Partitioned alignment (possibly with data holes).
    tree:
        The full topology over all taxa.
    models, alphas:
        Per-partition parameters, as in
        :class:`~repro.core.engine.PartitionedEngine`.
    initial_lengths:
        Full-tree lengths; each partition starts from their projection
        onto its induced subtree.
    kernel:
        Kernel backend name/instance shared by all partition engines
        (``None`` = layered default, as in
        :class:`~repro.plk.likelihood.PartitionLikelihood`).  The
        repeat-aware backends seed their indexes from the REDUCED tip
        matrices, so repeat classes reflect each induced subtree's
        restricted taxon set.
    """

    def __init__(
        self,
        data: PartitionedAlignment,
        tree: Tree,
        models: list[SubstitutionModel] | None = None,
        alphas: list[float] | None = None,
        initial_lengths: np.ndarray | None = None,
        recorder=None,
        categories: int = 4,
        kernel=None,
    ):
        self.data = data
        self.full_tree = tree
        self.kernel = get_kernel(kernel)
        coverage = taxon_coverage(data)
        if models is None:
            models = [
                SubstitutionModel.jc69()
                if d.partition.datatype.states == 4
                else SubstitutionModel.poisson_aa()
                for d in data.data
            ]
        if alphas is None:
            alphas = [1.0] * data.n_partitions

        self.subtrees: list[InducedSubtree] = []
        self.parts: list[PartitionLikelihood] = []
        for p, block in enumerate(data.data):
            present = set(np.flatnonzero(coverage[p]).tolist())
            sub = induced_subtree(tree, present)
            # Re-order the tip rows into the induced tree's leaf numbering.
            order = sorted(present)
            tips = np.ascontiguousarray(block.tip_states[order])
            reduced = PartitionData(
                partition=block.partition,
                tip_states=tips,
                weights=block.weights,
            )
            engine = PartitionLikelihood(
                reduced,
                sub.tree,
                models[p],
                alpha=alphas[p],
                categories=categories,
                index=p,
                recorder=recorder,
                kernel_backend=self.kernel,
            )
            if initial_lengths is not None:
                engine.set_branch_lengths(sub.project_lengths(initial_lengths))
            self.subtrees.append(sub)
            self.parts.append(engine)

    @property
    def n_partitions(self) -> int:
        return len(self.parts)

    def loglikelihood(self) -> float:
        """Total log-likelihood over the induced subtrees (exactly equal
        to the full-tree likelihood at corresponding branch lengths)."""
        return float(sum(p.loglikelihood(0) for p in self.parts))

    def inner_node_counts(self) -> np.ndarray:
        """(P,) inner nodes per induced subtree — the per-partition
        traversal work, vs n - 2 on the full tree."""
        return np.array(
            [sub.tree.n_nodes - sub.tree.n_taxa for sub in self.subtrees]
        )


def traversal_cost_ratio(data: PartitionedAlignment, tree: Tree) -> float:
    """Full-tree over induced-subtree traversal cost for one full
    evaluation: ``sum_p m_p * (n-2)  /  sum_p m_p * inner_p``.

    This is the speedup bound [32] exploits; on very gappy alignments it
    reaches one to two orders of magnitude.
    """
    coverage = taxon_coverage(data)
    full = 0.0
    induced = 0.0
    n_inner_full = tree.n_taxa - 2
    for p, block in enumerate(data.data):
        present = set(np.flatnonzero(coverage[p]).tolist())
        sub = induced_subtree(tree, present)
        full += block.n_patterns * n_inner_full
        induced += block.n_patterns * (sub.tree.n_nodes - sub.tree.n_taxa)
    return full / induced
