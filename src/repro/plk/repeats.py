"""Site/subtree repeat compression: the per-node repeat index.

On real alignments many columns induce *identical subtree states*: below
an inner node v, two sites whose characters agree at every leaf of v's
subtree have — for any branch lengths and any model — exactly the same
conditional likelihood vector at v.  Computing both is pure redundancy.
The LvD line of work (PAPERS.md; Kobert et al.) turns this into an
algorithmic speedup: partition each node's pattern axis into *repeat
classes* and run ``newview`` only over one representative per class.

Class construction is one bottom-up pass (this module):

* at a **tip**, two sites share a class iff their state codes agree —
  codes are bitmasks over the state set, so ambiguity codes (``R``,
  ``N``, gaps, …) and the reduced-tip rows of :mod:`repro.plk.gappy`
  compare correctly for free;
* at an **inner node**, two sites share a class iff their classes agree
  at BOTH children (``key = c1 * n2 + c2`` + one ``np.unique``).

Two structural facts make the index cheap to exploit:

* the classes depend only on the topology and the tip data — NOT on
  branch lengths or model parameters — so the index survives every
  Newton/Brent round and is invalidated only by topology moves;
* class structure only refines upward: once a node reaches ``n_classes
  == m`` (every site unique) all its ancestors are saturated too, so the
  pass short-circuits to identity without running ``np.unique`` again.

Storage policy: a node whose unique ratio ``n_classes / m`` is above
:data:`DENSE_FALLBACK_RATIO` stores its CLV dense (the gather overhead
would eat the win); its true classes still feed the ancestors.  The
engine-side plumbing — compressed CLV storage, gathers, boundary
expansion — lives in :class:`repro.plk.likelihood.PartitionLikelihood`;
this module is pure index arithmetic so the cost model
(:meth:`repro.parallel.balance.CostModel.repeat_aware`) can reuse it
without touching an engine.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DENSE_FALLBACK_RATIO",
    "NodeRepeats",
    "tip_state_codes",
    "effective_pattern_weights",
    "repeat_profile",
]

#: Unique-ratio threshold above which a node's CLV is stored dense: with
#: ``n_classes`` this close to ``m`` the per-call gather of the child
#: columns costs more than the few duplicate newview columns it saves.
DENSE_FALLBACK_RATIO = 0.9


def tip_state_codes(tip_states: np.ndarray) -> np.ndarray:
    """(n_taxa, m) integer codes of the tip indicator rows.

    Each code is the bitmask of states with nonzero indicator mass, so
    plain states, every IUPAC ambiguity code and the all-ones gap row map
    to distinct, order-independent integers for both DNA (4 bits) and AA
    (20 bits) alphabets.
    """
    states = tip_states.shape[2]
    bits = (np.int64(1) << np.arange(states, dtype=np.int64))
    return (tip_states > 0.0) @ bits


@dataclass(frozen=True)
class NodeRepeats:
    """The repeat classes of one node's pattern axis.

    Attributes
    ----------
    classes:
        (m,) class id per site (class ids are dense, ``0..n_classes-1``,
        in sorted-key order — deterministic across runs).
    n_classes:
        Number of distinct classes.
    representatives:
        (n_classes,) site index of one representative per class
        (``classes[representatives[j]] == j``).
    compressed:
        Whether the engine stores this node's CLV over classes (False =
        dense fallback; the classes still describe the true structure
        for the node's ancestors).
    """

    classes: np.ndarray
    n_classes: int
    representatives: np.ndarray
    compressed: bool

    @property
    def m(self) -> int:
        return int(self.classes.shape[0])

    @property
    def saturated(self) -> bool:
        """Every site is its own class — so is every ancestor's."""
        return self.n_classes == self.m

    @property
    def unique_ratio(self) -> float:
        """``n_classes / m`` (1.0 for empty slices: nothing to save)."""
        return self.n_classes / self.m if self.m else 1.0

    @classmethod
    def identity(cls, m: int) -> "NodeRepeats":
        """The saturated index: every site its own class, stored dense."""
        sites = np.arange(m, dtype=np.int64)
        return cls(classes=sites, n_classes=m, representatives=sites,
                   compressed=False)

    @classmethod
    def from_keys(
        cls, keys: np.ndarray, max_ratio: float = DENSE_FALLBACK_RATIO
    ) -> "NodeRepeats":
        """Classes from any per-site integer key vector (tip codes or
        combined child classes)."""
        m = int(keys.shape[0])
        if m == 0:
            return cls.identity(0)
        _, first, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        n = int(first.shape[0])
        return cls(
            classes=inverse.astype(np.int64, copy=False),
            n_classes=n,
            representatives=first.astype(np.int64, copy=False),
            compressed=bool(n <= max_ratio * m),
        )

    @classmethod
    def combine(
        cls,
        left: "NodeRepeats",
        right: "NodeRepeats",
        max_ratio: float = DENSE_FALLBACK_RATIO,
    ) -> "NodeRepeats":
        """The parent's classes from its two children's: sites share a
        class iff they share one at both children.  Saturated children
        short-circuit (class structure only refines upward)."""
        if left.saturated or right.saturated:
            return cls.identity(left.m)
        # n1 * n2 <= m^2 fits int64 comfortably for any real alignment.
        keys = left.classes * np.int64(right.n_classes) + right.classes
        return cls.from_keys(keys, max_ratio)


def _postorder_repeats(tip_states: np.ndarray, tree, root_edge: int = 0):
    """Yield ``(node, NodeRepeats)`` for every inner node in postorder
    (index-construction core shared by the profile and the cost model)."""
    codes = tip_state_codes(tip_states)
    reps: dict[int, NodeRepeats] = {}

    def node_rep(node: int) -> NodeRepeats:
        if tree.is_leaf(node):
            rep = reps.get(node)
            if rep is None:
                rep = NodeRepeats.from_keys(codes[node])
                reps[node] = rep
            return rep
        return reps[node]

    for step in tree.postorder(root_edge):
        rep = NodeRepeats.combine(node_rep(step.c1), node_rep(step.c2))
        reps[step.node] = rep
        yield step.node, rep


def repeat_profile(tip_states: np.ndarray, tree, root_edge: int = 0) -> dict:
    """Repeat statistics of one partition on one topology.

    Returns ``{"per_node": {node: unique_ratio}, "mean_unique_ratio":
    float, "min_unique_ratio": float, "n_patterns": m}`` — the ground
    truth the cost model and EXPERIMENTS.md record for each dataset.
    """
    per_node = {
        node: rep.unique_ratio
        for node, rep in _postorder_repeats(tip_states, tree, root_edge)
    }
    ratios = list(per_node.values()) or [1.0]
    return {
        "per_node": per_node,
        "mean_unique_ratio": float(np.mean(ratios)),
        "min_unique_ratio": float(np.min(ratios)),
        "n_patterns": int(tip_states.shape[1]),
    }


def effective_pattern_weights(
    tip_states: np.ndarray,
    tree,
    states: int,
    categories: int = 4,
    root_edge: int = 0,
) -> np.ndarray:
    """(m,) post-compression cost of each pattern in the
    ``categories * states**2`` currency of
    :func:`repro.parallel.balance.pattern_weight`.

    Under repeat compression, the newview work of a class at node v is
    shared by its ``|class_v(i)|`` member sites, so pattern i's effective
    share of one full traversal is the mean over inner nodes of
    ``1 / |class_v(i)|`` — exactly the base weight when nothing repeats,
    and a vanishing sliver for a site duplicated everywhere.  These are
    the per-pattern costs a repeat-aware :class:`~repro.parallel.balance.
    CostModel` prices plans with.
    """
    base = float(categories * states * states)
    m = int(tip_states.shape[1])
    if m == 0:
        return np.zeros(0)
    share = np.zeros(m)
    n_inner = 0
    for _, rep in _postorder_repeats(tip_states, tree, root_edge):
        counts = np.bincount(rep.classes, minlength=rep.n_classes)
        share += 1.0 / counts[rep.classes]
        n_inner += 1
    if n_inner == 0:
        return np.full(m, base)
    return base * share / n_inner
