"""Character state spaces for the likelihood kernel.

The kernel is generic over the number of states: DNA uses 4 states, amino
acid (protein) data uses 20.  The paper's load-balance analysis depends on
this because the per-column floating point cost scales with ``states**2``
(a 20x20 vs 4x4 substitution matrix, a factor of 25 the paper cites when
explaining why protein partitions hide the imbalance).

Tip (leaf) sequences are stored as *ambiguity bit-vectors*: each character
maps to a 0/1 indicator over the state set, so ``A -> (1,0,0,0)`` and the
fully-ambiguous gap ``- -> (1,1,1,1)``.  This is exactly RAxML's tip
representation and lets the pruning recursion treat tips and inner nodes
uniformly.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

__all__ = ["DataType", "DNA", "AA", "get_datatype"]


@dataclass(frozen=True)
class DataType:
    """A character alphabet plus its ambiguity-code table.

    Parameters
    ----------
    name:
        Short identifier, e.g. ``"DNA"`` or ``"AA"``.
    states:
        Number of unambiguous states (4 for DNA, 20 for AA).
    symbols:
        The canonical one-letter codes, index ``i`` is state ``i``.
    ambiguities:
        Maps additional symbols to the tuple of state indices they may
        represent.  Gap/unknown symbols map to *all* states.
    """

    name: str
    states: int
    symbols: str
    ambiguities: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.symbols) != self.states:
            raise ValueError(
                f"{self.name}: {len(self.symbols)} symbols for {self.states} states"
            )

    @property
    def alphabet(self) -> str:
        """All accepted symbols (canonical plus ambiguity codes)."""
        return self.symbols + "".join(self.ambiguities)

    def encoding_table(self) -> np.ndarray:
        """(256, states) float64 indicator table indexed by ``ord(upper(ch))``.

        Unknown characters encode as all-ones (treated like gaps), matching
        the permissive behaviour of most phylogenetics readers.
        """
        table = np.ones((256, self.states), dtype=np.float64)
        for i, sym in enumerate(self.symbols):
            row = np.zeros(self.states)
            row[i] = 1.0
            table[ord(sym)] = row
            table[ord(sym.lower())] = row
        for sym, idxs in self.ambiguities.items():
            row = np.zeros(self.states)
            row[list(idxs)] = 1.0
            table[ord(sym)] = row
            if sym.lower() != sym:
                table[ord(sym.lower())] = row
        return table

    def encode(self, sequence: str) -> np.ndarray:
        """Encode a character string into an (len, states) indicator array."""
        raw = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
        return self.encoding_table()[raw]

    def decode_states(self, states: np.ndarray) -> str:
        """Map an integer state-index array back to canonical symbols."""
        lut = np.frombuffer(self.symbols.encode("ascii"), dtype=np.uint8)
        return lut[np.asarray(states, dtype=np.intp)].tobytes().decode("ascii")


_DNA_AMBIG = {
    "R": (0, 2),        # A/G  (purines)
    "Y": (1, 3),        # C/T  (pyrimidines)
    "S": (1, 2),        # C/G
    "W": (0, 3),        # A/T
    "K": (2, 3),        # G/T
    "M": (0, 1),        # A/C
    "B": (1, 2, 3),
    "D": (0, 2, 3),
    "H": (0, 1, 3),
    "V": (0, 1, 2),
    "N": (0, 1, 2, 3),
    "?": (0, 1, 2, 3),
    "-": (0, 1, 2, 3),
    "X": (0, 1, 2, 3),
    "O": (0, 1, 2, 3),
    "U": (3,),          # RNA uracil == T
}

DNA = DataType(name="DNA", states=4, symbols="ACGT", ambiguities=_DNA_AMBIG)

_AA_SYMBOLS = "ARNDCQEGHILKMFPSTWYV"
_AA_AMBIG = {
    "B": (_AA_SYMBOLS.index("N"), _AA_SYMBOLS.index("D")),
    "Z": (_AA_SYMBOLS.index("Q"), _AA_SYMBOLS.index("E")),
    "J": (_AA_SYMBOLS.index("I"), _AA_SYMBOLS.index("L")),
    "X": tuple(range(20)),
    "?": tuple(range(20)),
    "-": tuple(range(20)),
    "*": tuple(range(20)),
    "U": (_AA_SYMBOLS.index("C"),),   # selenocysteine ~ cysteine
    "O": (_AA_SYMBOLS.index("K"),),   # pyrrolysine ~ lysine
}

AA = DataType(name="AA", states=20, symbols=_AA_SYMBOLS, ambiguities=_AA_AMBIG)

_REGISTRY = {"DNA": DNA, "AA": AA, "PROT": AA, "PROTEIN": AA}


@lru_cache(maxsize=None)
def get_datatype(name: str) -> DataType:
    """Look up a registered datatype by (case-insensitive) name."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown datatype {name!r}; known: {sorted(set(_REGISTRY))}"
        ) from None
