"""Selectable kernel backends behind one seam (mirrors ``comms=``).

:mod:`repro.plk.kernel` defines the array-level semantics of the PLK —
newview / evaluate / sumtable — with the numpy implementation as the
executable reference.  This module packages those semantics behind a small
:class:`KernelBackend` protocol so the *implementation* of the inner loop
can be swapped per run, exactly like the ``comms=`` transport seam:

``numpy``
    The reference: thin delegation to :mod:`repro.plk.kernel`, unchanged
    numerics, unchanged allocation behavior.  Every other backend is
    validated against it (``tests/test_kernel_backends.py``).
``blocked``
    Cache-blocked BLAS: the transposed/contiguous transition matrices are
    prepared ONCE per edge (:class:`PreparedP`) instead of the per-call
    ``ascontiguousarray`` in :func:`repro.plk.kernel.propagate`, and
    ``newview`` walks the pattern axis in blocks sized to stay
    cache-resident — each block is two batched ``dgemm`` calls into the
    output plus an in-place multiply, with one persistent scratch buffer
    instead of two full-width temporaries per call.
``numba``
    JIT-compiled fused newview loop (one pass, no temporaries at all)
    when numba is importable; otherwise it degrades gracefully to the
    numpy reference with a :class:`RuntimeWarning` — selecting ``numba``
    is always safe, never a hard dependency.
``repeats``
    Repeat-aware marker backend: primitives delegate verbatim to an
    inner backend (numpy by default; ``repeats+blocked`` /
    ``repeats+numba`` compose), but ``supports_repeats = True`` tells
    :class:`~repro.plk.likelihood.PartitionLikelihood` to build the
    per-node repeat index (:mod:`repro.plk.repeats`), run ``newview``
    only over each node's unique site classes, and expand by gather at
    the evaluate/sumtable boundaries.  The *work avoidance* lives in the
    engine; the seam only carries the capability flag, so all three flop
    backends get the algorithmic speedup through one code path.

Scaling/underflow semantics are shared: every backend funnels through
:func:`repro.plk.kernel.rescale` and the log-domain helpers, so the
dead-pattern sentinel and counter arithmetic are bit-identical across
backends by construction.

Selection: ``get_kernel(name)`` — ``name=None`` reads ``REPRO_KERNEL``
from the environment (default ``numpy``), mirroring how workers inherit
the choice in process teams.  Backend instances hold per-instance scratch
and therefore are NOT shared across threads; each worker resolves its own
(:class:`~repro.parallel.worker.WorkerState` does this once at startup).
"""
from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from . import kernel

__all__ = [
    "KERNELS",
    "KERNEL_CHOICES",
    "KernelBackend",
    "PreparedP",
    "NumpyKernel",
    "BlockedKernel",
    "NumbaKernel",
    "RepeatsKernel",
    "get_kernel",
    "normalize_kernel_name",
    "numba_available",
]

#: Selectable backend names, in the order shown by ``--kernel`` help.
KERNELS = ("numpy", "blocked", "numba", "repeats")

#: Everything ``--kernel`` accepts: the base backends plus the composite
#: repeat-aware spellings (``repeats`` alone wraps the numpy reference).
KERNEL_CHOICES = KERNELS + ("repeats+blocked", "repeats+numba")

#: Environment variable consulted when no explicit kernel is requested.
KERNEL_ENV = "REPRO_KERNEL"


@dataclass(frozen=True)
class PreparedP:
    """Per-edge precomputation of a ``(K, states, states)`` transition
    matrix stack: the original ``p`` plus its contiguous transpose ``pt``
    (``pt[k, t, s] == p[k, s, t]``), so ``propagate`` is a single batched
    ``clv @ pt`` with no per-call copy."""

    p: np.ndarray
    pt: np.ndarray

    @classmethod
    def from_matrices(cls, p: np.ndarray) -> "PreparedP":
        return cls(p=p, pt=np.ascontiguousarray(p.transpose(0, 2, 1)))


def raw_p(p: np.ndarray | PreparedP) -> np.ndarray:
    """The plain ``(K, s, s)`` matrix stack of either representation."""
    return p.p if isinstance(p, PreparedP) else p


def transposed_p(p: np.ndarray | PreparedP) -> np.ndarray:
    """The contiguous transpose, reusing the precomputed one if present."""
    if isinstance(p, PreparedP):
        return p.pt
    return np.ascontiguousarray(p.transpose(0, 2, 1))


@runtime_checkable
class KernelBackend(Protocol):
    """What :class:`~repro.plk.likelihood.PartitionLikelihood` needs from
    an inner-loop implementation.

    ``p`` arguments accept whatever :meth:`prepare_p` returned — the
    engine caches that handle per edge, so backends amortize per-edge
    preprocessing across every newview/evaluate touching the edge.
    Derivative-side operations (`sumtable_loglikelihood`,
    `branch_derivatives`) are shared pure functions in
    :mod:`repro.plk.kernel`; backends only own the pattern-axis-heavy
    primitives.
    """

    name: str

    def prepare_p(self, p: np.ndarray):
        """Per-edge preprocessing of a transition-matrix stack."""

    def propagate(self, p, clv: np.ndarray) -> np.ndarray:
        """Move a CLV (or tip matrix) across a branch."""

    def newview(self, p1, clv1, scale1, p2, clv2, scale2, out=None):
        """One pruning step -> (clv, scale)."""

    def root_site_likelihoods(self, p, clv_left, clv_right, frequencies):
        """Per-pattern category-averaged likelihoods at the virtual root."""

    def evaluate(self, p, clv_left, scale_left, clv_right, scale_right,
                 frequencies, weights) -> float:
        """Log-likelihood at the virtual root."""

    def make_sumtable(self, clv_left, clv_right, u, v, frequencies):
        """Eigenbasis coefficient table for Newton-Raphson on one branch."""


class NumpyKernel:
    """The reference backend: direct delegation to :mod:`repro.plk.kernel`.

    ``prepare_p`` is the identity — this backend's numerics and allocation
    behavior are exactly the pre-seam kernel, which is what the
    cross-backend equivalence suite pins the others against.
    """

    name = "numpy"

    def prepare_p(self, p: np.ndarray) -> np.ndarray:
        return p

    def propagate(self, p, clv: np.ndarray) -> np.ndarray:
        return kernel.propagate(raw_p(p), clv)

    def newview(self, p1, clv1, scale1, p2, clv2, scale2, out=None):
        return kernel.newview(raw_p(p1), clv1, scale1, raw_p(p2), clv2,
                              scale2, out)

    def root_site_likelihoods(self, p, clv_left, clv_right, frequencies):
        return kernel._root_site_likelihoods(
            raw_p(p), clv_left, clv_right, frequencies
        )

    def evaluate(self, p, clv_left, scale_left, clv_right, scale_right,
                 frequencies, weights) -> float:
        return kernel.evaluate(raw_p(p), clv_left, scale_left, clv_right,
                               scale_right, frequencies, weights)

    def make_sumtable(self, clv_left, clv_right, u, v, frequencies):
        return kernel.make_sumtable(clv_left, clv_right, u, v, frequencies)


def _as_3d(clv: np.ndarray) -> np.ndarray:
    """Tip matrices ``(m, s)`` as broadcastable ``(1, m, s)`` views."""
    return clv[np.newaxis] if clv.ndim == 2 else clv


class BlockedKernel(NumpyKernel):
    """Cache-blocked backend.

    ``newview`` processes the pattern axis in blocks sized so the working
    set (output block + scratch block + the two child blocks) stays within
    ``block_bytes`` of cache per buffer; each block is two batched BLAS
    matmuls written straight into the output and one in-place multiply.
    The transposed transition matrices come precomputed per edge via
    :class:`PreparedP` and the small eigen-side products of
    ``make_sumtable`` (``pi*U``, contiguous ``V.T``) are cached per
    eigensystem, removing the remaining per-call ``ascontiguousarray``
    copies of the reference.

    Instances keep a persistent scratch buffer — one instance per worker,
    never shared across threads.
    """

    name = "blocked"

    def __init__(self, block_bytes: int = 1 << 18):
        self._block_bytes = int(block_bytes)
        self._scratch: np.ndarray | None = None
        # id-keyed with strong refs kept alongside, so a recycled id of a
        # garbage-collected array can never alias a stale entry.
        self._eig_cache: dict[tuple[int, int, int], tuple] = {}
        # raw (unprepared) matrix stacks memoize their contiguous
        # transpose on matrix identity, same idiom as _eig_cache: cold
        # paths that repeatedly hand the same raw ``p`` stop paying the
        # per-call ascontiguousarray of :func:`transposed_p`.
        self._pt_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _transposed(self, p) -> np.ndarray:
        if isinstance(p, PreparedP):
            return p.pt
        hit = self._pt_cache.get(id(p))
        if hit is not None and hit[0] is p:
            return hit[1]
        if len(self._pt_cache) > 32:
            self._pt_cache.clear()
        pt = np.ascontiguousarray(p.transpose(0, 2, 1))
        self._pt_cache[id(p)] = (p, pt)
        return pt

    # -- geometry ------------------------------------------------------

    def _block_patterns(self, n_cat: int, states: int, m: int) -> int:
        per_pattern = n_cat * states * 8  # one float64 plane column
        b = self._block_bytes // max(per_pattern, 1)
        return max(64, min(m, int(b)))

    def _scratch_for(self, n_cat: int, b: int, states: int) -> np.ndarray:
        sc = self._scratch
        if sc is None or sc.shape[0] != n_cat or sc.shape[1] < b or sc.shape[2] != states:
            sc = np.empty((n_cat, b, states))
            self._scratch = sc
        return sc

    # -- primitives ----------------------------------------------------

    def prepare_p(self, p: np.ndarray) -> PreparedP:
        return PreparedP.from_matrices(p)

    def propagate(self, p, clv: np.ndarray) -> np.ndarray:
        return np.matmul(_as_3d(clv), self._transposed(p))

    def newview(self, p1, clv1, scale1, p2, clv2, scale2, out=None):
        pt1 = self._transposed(p1)
        pt2 = self._transposed(p2)
        c1 = _as_3d(clv1)
        c2 = _as_3d(clv2)
        n_cat, states = pt1.shape[0], pt1.shape[2]
        m = c1.shape[1]
        b = self._block_patterns(n_cat, states, m)
        if m <= 4 * b:
            # The whole working set is cache-resident: one batched dgemm
            # per child, full width, beats the block loop's slicing
            # overhead.  The right child lands in the persistent scratch
            # (no second full-width allocation per call) and the prepared
            # transposes skip the reference's per-call copies.
            result = np.matmul(c1, pt1, out=out)
            tmp = self._scratch_for(n_cat, m, states)[:, :m, :]
            np.matmul(c2, pt2, out=tmp)
            np.multiply(result, tmp, out=result)
        else:
            result = np.empty((n_cat, m, states)) if out is None else out
            scratch = self._scratch_for(n_cat, b, states)
            for lo in range(0, m, b):
                hi = min(m, lo + b)
                blk = result[:, lo:hi, :]
                np.matmul(c1[:, lo:hi, :], pt1, out=blk)
                tmp = scratch[:, : hi - lo, :]
                np.matmul(c2[:, lo:hi, :], pt2, out=tmp)
                blk *= tmp
        scale = np.zeros(m, dtype=np.int32)
        if scale1 is not None:
            scale += scale1
        if scale2 is not None:
            scale += scale2
        kernel.rescale(result, scale)
        return result, scale

    def root_site_likelihoods(self, p, clv_left, clv_right, frequencies):
        moved = np.matmul(_as_3d(clv_right), self._transposed(p))
        weighted = _as_3d(clv_left) * frequencies
        per_cat = np.einsum("kms,kms->km", weighted, moved)
        return per_cat.mean(axis=0)

    def evaluate(self, p, clv_left, scale_left, clv_right, scale_right,
                 frequencies, weights) -> float:
        site = self.root_site_likelihoods(p, clv_left, clv_right, frequencies)
        logs = kernel.scaled_log_likelihoods(
            site, kernel.combine_scales(scale_left, scale_right)
        )
        return kernel.weighted_log_sum(weights, logs)

    def make_sumtable(self, clv_left, clv_right, u, v, frequencies):
        piu, vt = self._eigen_products(u, v, frequencies)
        left = np.matmul(_as_3d(clv_left), piu)
        right = np.matmul(_as_3d(clv_right), vt)
        return left * right

    def _eigen_products(self, u, v, frequencies):
        key = (id(u), id(v), id(frequencies))
        hit = self._eig_cache.get(key)
        if hit is not None and hit[0] is u and hit[1] is v and hit[2] is frequencies:
            return hit[3], hit[4]
        if len(self._eig_cache) > 32:
            self._eig_cache.clear()
        piu = frequencies[:, np.newaxis] * u
        vt = np.ascontiguousarray(v.T)
        self._eig_cache[key] = (u, v, frequencies, piu, vt)
        return piu, vt


def numba_available() -> bool:
    """Whether the numba JIT is importable in this interpreter."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


_jitted_newview = None


def _build_jitted_newview():
    """Compile (once per process) the fused newview loop.

    One pass over ``(k, i, a)`` computes both propagations and their
    product with zero temporaries; tips arrive as ``(1, m, s)`` views and
    broadcast via the ``k1``/``k2`` index pin.
    """
    global _jitted_newview
    if _jitted_newview is not None:
        return _jitted_newview
    import numba

    @numba.njit(cache=False, nogil=True)
    def nv(pt1, c1, pt2, c2, out):  # pragma: no cover - needs numba
        n_cat, m, states = out.shape
        for k in range(n_cat):
            k1 = k if c1.shape[0] > 1 else 0
            k2 = k if c2.shape[0] > 1 else 0
            for i in range(m):
                for a in range(states):
                    acc1 = 0.0
                    acc2 = 0.0
                    for t in range(states):
                        acc1 += pt1[k, t, a] * c1[k1, i, t]
                        acc2 += pt2[k, t, a] * c2[k2, i, t]
                    out[k, i, a] = acc1 * acc2

    _jitted_newview = nv
    return nv


class NumbaKernel(NumpyKernel):
    """JIT backend with graceful degradation.

    When numba is importable the pruning step runs as a single fused,
    nogil-compiled loop (shared :func:`repro.plk.kernel.rescale` keeps the
    scaling semantics identical); everything else inherits the numpy
    reference.  When numba is absent the instance IS the numpy reference
    (plus a one-time :class:`RuntimeWarning`), so ``--kernel numba`` never
    fails — it just doesn't accelerate.
    """

    name = "numba"

    def __init__(self):
        self.jitted = numba_available()
        self._nv = _build_jitted_newview() if self.jitted else None
        if not self.jitted:
            warnings.warn(
                "numba is not installed; kernel 'numba' is falling back to "
                "the numpy reference backend",
                RuntimeWarning,
                stacklevel=3,
            )

    def prepare_p(self, p: np.ndarray):
        if not self.jitted:
            return p
        return PreparedP.from_matrices(p)

    def newview(self, p1, clv1, scale1, p2, clv2, scale2, out=None):
        if not self.jitted:
            return super().newview(p1, clv1, scale1, p2, clv2, scale2, out)
        pt1 = transposed_p(p1)
        pt2 = transposed_p(p2)
        c1 = np.ascontiguousarray(_as_3d(clv1))
        c2 = np.ascontiguousarray(_as_3d(clv2))
        n_cat, states = pt1.shape[0], pt1.shape[2]
        m = c1.shape[1]
        result = np.empty((n_cat, m, states)) if out is None else out
        if m:
            self._nv(pt1, c1, pt2, c2, result)
        scale = np.zeros(m, dtype=np.int32)
        if scale1 is not None:
            scale += scale1
        if scale2 is not None:
            scale += scale2
        kernel.rescale(result, scale)
        return result, scale


class RepeatsKernel:
    """Repeat-aware wrapper backend.

    Delegates every primitive verbatim to ``inner`` (numpy reference by
    default) and advertises ``supports_repeats = True`` — the flag
    :class:`~repro.plk.likelihood.PartitionLikelihood` reads to switch on
    repeat-compressed CLV storage.  Composition is by name:
    ``repeats`` wraps numpy, ``repeats+blocked`` / ``repeats+numba`` wrap
    the respective flop backends, so algorithmic work avoidance stacks
    with flop-level acceleration.
    """

    supports_repeats = True

    def __init__(self, inner: KernelBackend | None = None):
        self.inner = inner if inner is not None else NumpyKernel()
        inner_name = getattr(self.inner, "name", "numpy")
        self.name = "repeats" if inner_name == "numpy" else f"repeats+{inner_name}"

    def prepare_p(self, p: np.ndarray):
        return self.inner.prepare_p(p)

    def propagate(self, p, clv: np.ndarray) -> np.ndarray:
        return self.inner.propagate(p, clv)

    def newview(self, p1, clv1, scale1, p2, clv2, scale2, out=None):
        return self.inner.newview(p1, clv1, scale1, p2, clv2, scale2, out)

    def root_site_likelihoods(self, p, clv_left, clv_right, frequencies):
        return self.inner.root_site_likelihoods(
            p, clv_left, clv_right, frequencies
        )

    def evaluate(self, p, clv_left, scale_left, clv_right, scale_right,
                 frequencies, weights) -> float:
        return self.inner.evaluate(p, clv_left, scale_left, clv_right,
                                   scale_right, frequencies, weights)

    def make_sumtable(self, clv_left, clv_right, u, v, frequencies):
        return self.inner.make_sumtable(clv_left, clv_right, u, v,
                                        frequencies)


_FACTORIES = {
    "numpy": NumpyKernel,
    "blocked": BlockedKernel,
    "numba": NumbaKernel,
}


def normalize_kernel_name(name: str | None = None) -> str:
    """Validate a kernel name and return its canonical spelling.

    Applies the same layered default as :func:`get_kernel` (``None`` →
    ``REPRO_KERNEL`` env → ``"numpy"``) but never instantiates a backend,
    so callers that only need validation (CLI parsers, the parallel
    engine, serve job specs) don't trigger numba's fallback warning.
    ``repeats+numpy`` canonicalizes to ``repeats``.
    """
    if name is None:
        name = os.environ.get(KERNEL_ENV, "").strip() or "numpy"
    base, sep, inner = name.partition("+")
    if sep:
        if base == "repeats" and inner in _FACTORIES:
            return "repeats" if inner == "numpy" else name
    elif base in _FACTORIES or base == "repeats":
        return base
    raise ValueError(
        f"unknown kernel backend {name!r}; choose from "
        f"{', '.join(KERNEL_CHOICES)}"
    )


def get_kernel(name: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve a kernel backend by name.

    ``None`` consults the ``REPRO_KERNEL`` environment variable and falls
    back to ``"numpy"`` — the same layered default as the CLI's
    ``--kernel``.  An already-constructed backend instance passes through
    untouched (so an engine can hand its resolved backend to
    sub-components).  Each call with a *name* returns a FRESH instance:
    backends hold per-instance scratch and must not be shared across
    worker threads.  Composite names (``repeats``, ``repeats+blocked``,
    ``repeats+numba``) build a :class:`RepeatsKernel` around the named
    inner backend.
    """
    if name is not None and not isinstance(name, str):
        return name
    name = normalize_kernel_name(name)
    if name == "repeats" or name.startswith("repeats+"):
        inner = name.partition("+")[2] or "numpy"
        return RepeatsKernel(_FACTORIES[inner]())
    return _FACTORIES[name]()
