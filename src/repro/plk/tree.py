"""Unrooted binary tree topology.

The PLK operates on unrooted binary trees: the n taxa are leaves, the n-2
inner nodes have degree 3, and there are 2n-3 branches.  The likelihood is
evaluated at a *virtual root* placed on any branch; time-reversibility
makes the score invariant to that placement (a key invariant our property
tests exercise).

Node ids: leaves are ``0 .. n-1`` (index into :attr:`Tree.taxa`), inner
nodes are ``n .. 2n-3``.  Edge ids are ``0 .. 2n-4`` and remain stable
across topology moves (moves reuse the ids of the edges they delete), so
branch-length arrays indexed by edge id survive SPR/NNI rearrangements.
"""
from __future__ import annotations

import numpy as np

__all__ = ["Tree", "TraversalStep"]


class TraversalStep(tuple):
    """One pruning step: compute node ``node``'s conditional vector from
    children ``c1``/``c2`` across edges ``e1``/``e2`` (a named 5-tuple:
    ``(node, c1, e1, c2, e2)``)."""

    __slots__ = ()

    def __new__(cls, node: int, c1: int, e1: int, c2: int, e2: int):
        return super().__new__(cls, (node, c1, e1, c2, e2))

    node = property(lambda self: self[0])
    c1 = property(lambda self: self[1])
    e1 = property(lambda self: self[2])
    c2 = property(lambda self: self[3])
    e2 = property(lambda self: self[4])


class Tree:
    """A mutable unrooted binary tree.

    Use :meth:`random`, :meth:`from_newick` or
    :func:`repro.seqgen.randomtree.yule_tree` to build instances; mutate
    only through the provided topology operations so invariants hold.
    """

    def __init__(self, taxa: tuple[str, ...]):
        n = len(taxa)
        if n < 3:
            raise ValueError("an unrooted binary tree needs >= 3 taxa")
        if len(set(taxa)) != n:
            raise ValueError("duplicate taxon names")
        self.taxa: tuple[str, ...] = tuple(taxa)
        self.n_taxa: int = n
        self.n_nodes: int = 2 * n - 2
        self.n_edges: int = 2 * n - 3
        # adjacency: node -> {neighbor: edge_id}
        self._adj: list[dict[int, int]] = [dict() for _ in range(self.n_nodes)]
        # edge id -> (u, v); -1 marks a slot temporarily freed mid-move
        self._edge_nodes: list[tuple[int, int]] = [(-1, -1)] * self.n_edges
        # topology version: bumped on every link/unlink; keys the traversal
        # caches shared by all partitions' likelihood engines.
        self._version: int = 0
        self._postorder_cache: dict[int, list["TraversalStep"]] = {}
        self._orientation_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def random(cls, taxa: tuple[str, ...], rng: np.random.Generator) -> "Tree":
        """Uniform-ish random topology by stepwise random addition."""
        tree = cls(taxa)
        n = tree.n_taxa
        # Start with the 3-taxon star around inner node n.
        tree._link(0, n, 0)
        tree._link(1, n, 1)
        tree._link(2, n, 2)
        next_inner = n + 1
        next_edge = 3
        for leaf in range(3, n):
            # Pick a random existing edge and subdivide it with a new inner
            # node to which the new leaf attaches.
            edge = int(rng.integers(0, next_edge))
            u, v = tree._edge_nodes[edge]
            tree._unlink(u, v)
            mid = next_inner
            next_inner += 1
            tree._link(u, mid, edge)
            tree._link(v, mid, next_edge)
            tree._link(leaf, mid, next_edge + 1)
            next_edge += 2
        tree.validate()
        return tree

    def copy(self) -> "Tree":
        dup = Tree.__new__(Tree)
        dup.taxa = self.taxa
        dup.n_taxa = self.n_taxa
        dup.n_nodes = self.n_nodes
        dup.n_edges = self.n_edges
        dup._adj = [dict(d) for d in self._adj]
        dup._edge_nodes = list(self._edge_nodes)
        dup._version = 0
        dup._postorder_cache = {}
        dup._orientation_cache = {}
        return dup

    # ------------------------------------------------------------------
    # Low-level structure
    # ------------------------------------------------------------------

    def _link(self, u: int, v: int, edge_id: int) -> None:
        if v in self._adj[u]:
            raise ValueError(f"nodes {u},{v} already connected")
        self._adj[u][v] = edge_id
        self._adj[v][u] = edge_id
        self._edge_nodes[edge_id] = (u, v)
        self._bump_version()

    def _unlink(self, u: int, v: int) -> int:
        edge_id = self._adj[u].pop(v)
        del self._adj[v][u]
        self._edge_nodes[edge_id] = (-1, -1)
        self._bump_version()
        return edge_id

    def _bump_version(self) -> None:
        self._version += 1
        if self._postorder_cache:
            self._postorder_cache.clear()
        if self._orientation_cache:
            self._orientation_cache.clear()

    def is_leaf(self, node: int) -> bool:
        return node < self.n_taxa

    def degree(self, node: int) -> int:
        return len(self._adj[node])

    def neighbors(self, node: int) -> tuple[int, ...]:
        return tuple(self._adj[node])

    def edge_between(self, u: int, v: int) -> int:
        """Edge id connecting two adjacent nodes (KeyError otherwise)."""
        return self._adj[u][v]

    def edge_nodes(self, edge_id: int) -> tuple[int, int]:
        u, v = self._edge_nodes[edge_id]
        if u < 0:
            raise KeyError(f"edge {edge_id} is not present")
        return u, v

    def edges(self) -> list[tuple[int, int, int]]:
        """All edges as ``(edge_id, u, v)`` with u < v, ascending id."""
        return [
            (eid, min(u, v), max(u, v))
            for eid, (u, v) in enumerate(self._edge_nodes)
            if u >= 0
        ]

    def validate(self) -> None:
        """Assert binary-tree invariants; raises on violation."""
        for node in range(self.n_nodes):
            deg = self.degree(node)
            expect = 1 if self.is_leaf(node) else 3
            if deg != expect:
                raise AssertionError(f"node {node}: degree {deg}, expected {expect}")
        present = [e for e in self._edge_nodes if e[0] >= 0]
        if len(present) != self.n_edges:
            raise AssertionError(
                f"{len(present)} edges present, expected {self.n_edges}"
            )
        # Connectivity: BFS from node 0 must reach all nodes.
        seen = {0}
        stack = [0]
        while stack:
            cur = stack.pop()
            for nxt in self._adj[cur]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        if len(seen) != self.n_nodes:
            raise AssertionError("tree is disconnected")

    # ------------------------------------------------------------------
    # Orientation and traversal
    # ------------------------------------------------------------------

    def orientation(self, root_edge: int) -> np.ndarray:
        """Parent pointers when the virtual root sits on ``root_edge``.

        Returns ``(n_nodes,)`` int array; the two endpoints of the root
        edge have parent -1 (they look across the root at each other).
        """
        cached = self._orientation_cache.get(root_edge)
        if cached is not None:
            return cached
        parent = np.full(self.n_nodes, -2, dtype=np.int64)
        a, b = self.edge_nodes(root_edge)
        parent[a] = -1
        parent[b] = -1
        stack = [a, b]
        while stack:
            cur = stack.pop()
            for nxt in self._adj[cur]:
                if parent[nxt] == -2 and not (cur in (a, b) and nxt in (a, b)):
                    parent[nxt] = cur
                    stack.append(nxt)
        parent.setflags(write=False)
        self._orientation_cache[root_edge] = parent
        return parent

    def postorder(self, root_edge: int) -> list[TraversalStep]:
        """Full pruning schedule toward the virtual root on ``root_edge``.

        Yields a :class:`TraversalStep` for every *inner* node, children
        before parents, covering both root-edge subtrees.  This is the
        "full tree traversal list" the paper's master thread builds for the
        model-optimization phase.
        """
        cached = self._postorder_cache.get(root_edge)
        if cached is not None:
            return cached
        parent = self.orientation(root_edge)
        a, b = self.edge_nodes(root_edge)
        steps: list[TraversalStep] = []
        stack: list[tuple[int, bool]] = [(b, False), (a, False)]
        seen: set[int] = set()
        while stack:
            node, expanded = stack.pop()
            if self.is_leaf(node):
                continue
            kids = [nb for nb in self._adj[node] if parent[node] != nb]
            if parent[node] == -1:
                # Root-edge endpoints: the mate across the root is not a child.
                mate = b if node == a else a
                kids = [nb for nb in kids if nb != mate]
            if len(kids) != 2:
                raise AssertionError(f"inner node {node} has {len(kids)} children")
            if expanded:
                c1, c2 = kids
                steps.append(
                    TraversalStep(
                        node, c1, self._adj[node][c1], c2, self._adj[node][c2]
                    )
                )
            elif node not in seen:
                seen.add(node)
                stack.append((node, True))
                stack.extend((kid, False) for kid in kids)
        self._postorder_cache[root_edge] = steps
        return steps

    def leaves_under(self, node: int, parent: int) -> set[int]:
        """Leaf ids in the subtree hanging from ``node`` away from ``parent``."""
        out: set[int] = set()
        stack = [(node, parent)]
        while stack:
            cur, par = stack.pop()
            if self.is_leaf(cur):
                out.add(cur)
                continue
            for nxt in self._adj[cur]:
                if nxt != par:
                    stack.append((nxt, cur))
        return out

    # ------------------------------------------------------------------
    # Splits / comparison
    # ------------------------------------------------------------------

    def splits(self) -> set[frozenset[int]]:
        """Non-trivial bipartitions (as the smaller-side leaf set, with
        ties broken by excluding leaf 0) — the standard topology
        fingerprint for Robinson-Foulds distances."""
        out: set[frozenset[int]] = set()
        for _eid, u, v in self.edges():
            if self.is_leaf(u) or self.is_leaf(v):
                continue
            side = self.leaves_under(u, v)
            if 0 in side:
                side = set(range(self.n_taxa)) - side
            if 1 < len(side) < self.n_taxa - 1:
                out.add(frozenset(side))
        return out

    def _split_lengths(self, lengths: np.ndarray) -> dict[frozenset[int], float]:
        """Map every bipartition (canonical smaller/0-excluded side,
        including the trivial single-leaf splits) to its branch length."""
        out: dict[frozenset[int], float] = {}
        full = frozenset(range(self.n_taxa))
        for eid, u, v in self.edges():
            if self.is_leaf(u):
                side = frozenset({u})
            elif self.is_leaf(v):
                side = frozenset({v})
            else:
                side = frozenset(self.leaves_under(u, v))
            if 0 in side:
                side = full - side
            out[side] = float(lengths[eid])
        return out

    def branch_score_distance(
        self,
        lengths: np.ndarray,
        other: "Tree",
        other_lengths: np.ndarray,
    ) -> float:
        """Kuhner-Felsenstein branch-score distance: the Euclidean norm of
        per-split branch-length differences, with splits present in only
        one tree contributing their full length."""
        if set(self.taxa) != set(other.taxa):
            raise ValueError("trees are over different taxon sets")
        mine = self._split_lengths(lengths)
        remap = {i: self.taxa.index(name) for i, name in enumerate(other.taxa)}
        full = frozenset(range(self.n_taxa))
        theirs: dict[frozenset[int], float] = {}
        for split, length in other._split_lengths(other_lengths).items():
            mapped = frozenset(remap[x] for x in split)
            if 0 in mapped:
                mapped = full - mapped
            theirs[mapped] = length
        total = 0.0
        for split in mine.keys() | theirs.keys():
            diff = mine.get(split, 0.0) - theirs.get(split, 0.0)
            total += diff * diff
        return float(np.sqrt(total))

    def robinson_foulds(self, other: "Tree") -> int:
        """Unweighted RF distance (requires identical taxon sets)."""
        if set(self.taxa) != set(other.taxa):
            raise ValueError("trees are over different taxon sets")
        # Map other's leaf ids into this tree's numbering via names.
        remap = {i: self.taxa.index(name) for i, name in enumerate(other.taxa)}
        mine = self.splits()
        theirs = {
            frozenset(remap[x] for x in split) for split in other.splits()
        }
        theirs = {
            s if 0 not in s else frozenset(range(self.n_taxa)) - s for s in theirs
        }
        return len(mine ^ theirs)
