"""Partition schemes for multi-gene (phylogenomic) alignments.

A *partition* is a set of alignment columns (typically one gene) that
shares one set of maximum-likelihood model parameters: its own Q matrix,
its own Gamma shape parameter alpha, and — in *per-partition* (unlinked)
branch-length mode — its own set of 2n-3 branch lengths (Fig. 2 of the
paper).  Partition files use the RAxML syntax::

    DNA, gene0 = 1-1000
    DNA, gene1 = 1001-2000
    AA,  cytb  = 2001-2500, 3001-3100

Column indices in files are 1-based and inclusive, as in RAxML; the
in-memory representation is 0-based half-open.
"""
from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from .alignment import Alignment, compress_columns
from .datatypes import DataType, get_datatype

__all__ = [
    "Partition",
    "PartitionScheme",
    "PartitionData",
    "PartitionedAlignment",
    "parse_partition_file",
    "uniform_scheme",
]


@dataclass(frozen=True)
class Partition:
    """One partition: a name, a datatype and its column ranges.

    ``ranges`` is a tuple of 0-based half-open ``(start, stop)`` column
    intervals; most genes are a single contiguous interval but the format
    allows several.
    """

    name: str
    datatype: DataType
    ranges: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.ranges:
            raise ValueError(f"partition {self.name!r} has no column ranges")
        for start, stop in self.ranges:
            if start < 0 or stop <= start:
                raise ValueError(
                    f"partition {self.name!r}: bad range [{start}, {stop})"
                )

    @property
    def n_sites(self) -> int:
        """Total number of raw columns in this partition."""
        return sum(stop - start for start, stop in self.ranges)

    def column_indices(self) -> np.ndarray:
        """All 0-based column indices of this partition, ascending."""
        return np.concatenate(
            [np.arange(start, stop) for start, stop in self.ranges]
        )


@dataclass(frozen=True)
class PartitionScheme:
    """An ordered, non-overlapping set of partitions covering an alignment."""

    partitions: tuple[Partition, ...]

    def __post_init__(self) -> None:
        if not self.partitions:
            raise ValueError("empty partition scheme")
        names = [p.name for p in self.partitions]
        if len(set(names)) != len(names):
            raise ValueError("duplicate partition names")
        seen: set[int] = set()
        for p in self.partitions:
            for idx in p.column_indices():
                if int(idx) in seen:
                    raise ValueError(
                        f"column {idx + 1} assigned to more than one partition"
                    )
                seen.add(int(idx))

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self):
        return iter(self.partitions)

    def __getitem__(self, i: int) -> Partition:
        return self.partitions[i]

    @property
    def n_sites(self) -> int:
        return sum(p.n_sites for p in self.partitions)

    def validate_against(self, alignment: Alignment) -> None:
        """Check every partition column exists; gaps in coverage are allowed
        only if the scheme covers the full width (RAxML requires full
        coverage, and so do we)."""
        covered = self.n_sites
        m = alignment.n_sites
        top = max(stop for p in self.partitions for _, stop in p.ranges)
        if top > m:
            raise ValueError(
                f"scheme references column {top} but alignment has {m}"
            )
        if covered != m:
            raise ValueError(
                f"scheme covers {covered} of {m} alignment columns; "
                "partition schemes must cover the full alignment"
            )


_PARTITION_LINE = re.compile(
    r"^\s*(?P<dtype>[A-Za-z]+)\s*,\s*(?P<name>[\w.+-]+)\s*=\s*(?P<ranges>[\d\s,\-]+)$"
)


def parse_partition_file(text: str) -> PartitionScheme:
    """Parse RAxML-style partition-file text into a :class:`PartitionScheme`."""
    partitions: list[Partition] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _PARTITION_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: cannot parse partition line {line!r}")
        dtype = get_datatype(match["dtype"])
        ranges: list[tuple[int, int]] = []
        for chunk in match["ranges"].split(","):
            chunk = chunk.strip()
            if "-" in chunk:
                lo_s, hi_s = chunk.split("-")
                lo, hi = int(lo_s), int(hi_s)
            else:
                lo = hi = int(chunk)
            if lo < 1 or hi < lo:
                raise ValueError(f"line {lineno}: bad range {chunk!r}")
            ranges.append((lo - 1, hi))  # 1-based inclusive -> 0-based half-open
        partitions.append(Partition(match["name"], dtype, tuple(ranges)))
    return PartitionScheme(tuple(partitions))


def uniform_scheme(
    n_sites: int, partition_length: int, datatype: DataType | str = "DNA"
) -> PartitionScheme:
    """The paper's pXXXX schemes: split ``n_sites`` columns into consecutive
    partitions of ``partition_length`` (the last may be shorter)."""
    if partition_length <= 0:
        raise ValueError("partition_length must be positive")
    dtype = get_datatype(datatype) if isinstance(datatype, str) else datatype
    parts = []
    for i, start in enumerate(range(0, n_sites, partition_length)):
        stop = min(start + partition_length, n_sites)
        parts.append(Partition(f"p{i}", dtype, ((start, stop),)))
    return PartitionScheme(tuple(parts))


@dataclass(frozen=True)
class PartitionData:
    """Compressed, likelihood-ready data for one partition.

    Attributes
    ----------
    partition:
        The source :class:`Partition`.
    tip_states:
        ``(n_taxa, m'_p, states)`` float64 ambiguity indicators for the
        partition's distinct patterns.
    weights:
        ``(m'_p,)`` pattern multiplicities.
    """

    partition: Partition
    tip_states: np.ndarray
    weights: np.ndarray

    @property
    def n_patterns(self) -> int:
        return self.tip_states.shape[1]

    @property
    def states(self) -> int:
        return self.partition.datatype.states


@dataclass(frozen=True)
class PartitionedAlignment:
    """An alignment bound to a partition scheme, pattern-compressed per
    partition.

    Patterns are compressed *within* each partition (two identical columns
    in different genes are distinct patterns — they evolve under different
    models).  The global distinct-pattern count ``sum(m'_p)`` is the
    paper's ``m'``.
    """

    alignment: Alignment
    scheme: PartitionScheme
    data: tuple[PartitionData, ...] = field(init=False)

    def __post_init__(self) -> None:
        self.scheme.validate_against(self.alignment)
        blocks: list[PartitionData] = []
        for part in self.scheme:
            cols = part.column_indices()
            sub = self.alignment.matrix[:, cols]
            patterns, weights, _ = compress_columns(sub)
            tips = part.datatype.encoding_table()[patterns]
            tips.setflags(write=False)
            weights.setflags(write=False)
            blocks.append(PartitionData(part, tips, weights))
        object.__setattr__(self, "data", tuple(blocks))

    @property
    def n_taxa(self) -> int:
        return self.alignment.n_taxa

    @property
    def taxa(self) -> tuple[str, ...]:
        return self.alignment.taxa

    @property
    def n_partitions(self) -> int:
        return len(self.scheme)

    @property
    def n_patterns(self) -> int:
        """Total distinct pattern count across partitions (the paper's m')."""
        return sum(d.n_patterns for d in self.data)

    def pattern_counts(self) -> np.ndarray:
        """(n_partitions,) per-partition distinct pattern counts m'_p."""
        return np.array([d.n_patterns for d in self.data], dtype=np.int64)
