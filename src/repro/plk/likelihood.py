"""Per-partition likelihood evaluation on a tree (Felsenstein pruning).

:class:`PartitionLikelihood` owns, for ONE partition: the encoded tip
patterns, the substitution model and its eigensystem, the Gamma rates, a
private branch-length vector, and one conditional likelihood vector (CLV)
per inner node.  Exactly like RAxML it stores a single *oriented* CLV per
inner node — the conditional of the subtree hanging below the node w.r.t.
the current virtual-root placement — and relocating the virtual root or
changing a branch only recomputes the vectors whose orientation or inputs
changed (the paper's "partial traversals").

Multi-partition coordination (joint branch lengths, the oldPAR/newPAR
optimization strategies) lives in :mod:`repro.core.engine`, which drives a
collection of these single-partition engines.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import kernel
from .eigen import EigenSystem
from .gamma import GAMMA_CATEGORIES, discrete_gamma_rates
from .models import SubstitutionModel
from .partition import PartitionData
from .tree import Tree

__all__ = ["PartitionLikelihood", "BranchWorkspace"]


@dataclass
class BranchWorkspace:
    """Precomputed state for Newton-Raphson on one branch of one partition:
    the eigenbasis sumtable plus the total scaling counter of the two
    subtrees meeting at the branch."""

    edge: int
    sumtable: np.ndarray
    scale: np.ndarray | None
    n_patterns: int


class PartitionLikelihood:
    """Likelihood engine for a single partition on a shared tree topology.

    Parameters
    ----------
    data:
        Pattern-compressed tip data for this partition.
    tree:
        The (shared, possibly mutated) topology.  The engine reads it on
        every traversal; after mutating the topology call
        :meth:`invalidate_all` (or targeted :meth:`invalidate_node`).
    model:
        The partition's substitution model.
    alpha:
        Gamma shape parameter.
    categories:
        Number of discrete Gamma categories (4 throughout the paper).
    index:
        The partition's position in its scheme (used by trace recorders).
    recorder:
        Optional kernel-operation listener with ``newview(partition, n)``,
        ``evaluate(partition, n)``, ``sumtable(partition, n)`` and
        ``derivative(partition, n)`` methods (n = pattern count touched).
    """

    def __init__(
        self,
        data: PartitionData,
        tree: Tree,
        model: SubstitutionModel,
        alpha: float = 1.0,
        categories: int = GAMMA_CATEGORIES,
        index: int = 0,
        recorder=None,
    ):
        if model.states != data.states:
            raise ValueError(
                f"model has {model.states} states but partition data has {data.states}"
            )
        self.data = data
        self.tree = tree
        self.index = index
        self.categories = categories
        self.recorder = recorder
        self.branch_lengths = np.full(tree.n_edges, 0.1)
        self._model = model
        self._alpha = float(alpha)
        self._pinv = 0.0
        self._invariant_mask: np.ndarray | None = None  # (m, s), lazy
        self._eigen = EigenSystem.from_model(model)
        self._rates = discrete_gamma_rates(alpha, categories)
        # Per-inner-node CLV storage.  The signature records exactly which
        # children/edges/orientation a stored CLV was computed from, so
        # topology moves (which change adjacency) and virtual-root motion
        # (which changes orientation) are both detected (RAxML's partial
        # traversal logic).
        self._clv: dict[int, np.ndarray] = {}
        self._scale: dict[int, np.ndarray] = {}
        self._stored_sig: dict[int, tuple[int, int, int, int, int]] = {}
        self._dirty: set[int] = set(range(tree.n_taxa, tree.n_nodes))
        # Transition-matrix cache: edge -> (length, P).  Branch lengths
        # change rarely relative to how often P(t) is consumed (every
        # partition touches every edge on a full traversal).
        self._p_cache: dict[int, tuple[float, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------

    @property
    def model(self) -> SubstitutionModel:
        return self._model

    @model.setter
    def model(self, model: SubstitutionModel) -> None:
        if model.states != self.data.states:
            raise ValueError("cannot change the state-space of a partition")
        self._model = model
        self._eigen = EigenSystem.from_model(model)
        self._p_cache.clear()
        self.invalidate_all()

    @property
    def alpha(self) -> float:
        return self._alpha

    @alpha.setter
    def alpha(self, alpha: float) -> None:
        self._alpha = float(alpha)
        self._rates = discrete_gamma_rates(alpha, self.categories)
        self._p_cache.clear()
        self.invalidate_all()

    @property
    def pinv(self) -> float:
        """Proportion of invariable sites (the +I mixture component).

        0.0 (the default) disables the mixture.  Changing it does NOT
        invalidate the conditional vectors: only the root-level mixing
        changes — proposals/optimization of pinv are therefore the
        cheapest parameter moves of all (one evaluation, no traversal).
        Convention: site rate is 0 with probability pinv, else
        Gamma(alpha, alpha) with mean 1 (no renormalization; branch
        lengths absorb the scale, as in MrBayes/PhyML).
        """
        return self._pinv

    @pinv.setter
    def pinv(self, value: float) -> None:
        if not 0.0 <= value < 1.0:
            raise ValueError("pinv must be in [0, 1)")
        self._pinv = float(value)

    def invariant_probabilities(self) -> np.ndarray:
        """(m,) prior mass of the states compatible with every tip at each
        pattern (0 for variable patterns) — the invariant component's
        per-pattern likelihood."""
        if self._invariant_mask is None:
            self._invariant_mask = (self.data.tip_states > 0.0).all(axis=0)
        return self._invariant_mask @ self._model.frequencies

    @property
    def gamma_rates(self) -> np.ndarray:
        return self._rates

    @property
    def eigen(self) -> EigenSystem:
        return self._eigen

    @property
    def n_patterns(self) -> int:
        return self.data.n_patterns

    def set_branch_length(self, edge: int, value: float) -> None:
        """Change one branch length, invalidating dependent CLVs."""
        self.branch_lengths[edge] = value
        u, v = self.tree.edge_nodes(edge)
        for node in (u, v):
            if not self.tree.is_leaf(node):
                self._dirty.add(node)

    def set_branch_lengths(self, values: np.ndarray) -> None:
        if values.shape != (self.tree.n_edges,):
            raise ValueError("branch-length vector has wrong shape")
        self.branch_lengths[:] = values
        self.invalidate_all()

    # ------------------------------------------------------------------
    # CLV management
    # ------------------------------------------------------------------

    def invalidate_all(self) -> None:
        """Mark every inner CLV stale (model change / bulk topology edit)."""
        self._dirty.update(range(self.tree.n_taxa, self.tree.n_nodes))

    def invalidate_node(self, node: int) -> None:
        """Mark one inner node stale (targeted topology edit)."""
        if not self.tree.is_leaf(node):
            self._dirty.add(node)

    def _p_matrix(self, edge: int) -> np.ndarray:
        t = float(np.clip(self.branch_lengths[edge], kernel.MIN_BRANCH, kernel.MAX_BRANCH))
        hit = self._p_cache.get(edge)
        if hit is not None and hit[0] == t:
            return hit[1]
        p = self._eigen.transition_matrices(t, self._rates)
        self._p_cache[edge] = (t, p)
        return p

    def _child_clv(self, node: int) -> tuple[np.ndarray, np.ndarray | None]:
        """CLV (or tip matrix) plus scaling counter for a traversal child."""
        if self.tree.is_leaf(node):
            return self.data.tip_states[node], None
        return self._clv[node], self._scale[node]

    def refresh(self, root_edge: int) -> int:
        """Make every CLV needed for the orientation rooted on ``root_edge``
        valid; returns the number of newview operations performed (the
        partial-traversal length)."""
        steps = self.tree.postorder(root_edge)
        recomputed: set[int] = set()
        count = 0
        for step in steps:
            node = step.node
            sig = (step.c1, step.e1, step.c2, step.e2, self._parent_of(step))
            needs = (
                node in self._dirty
                or self._stored_sig.get(node) != sig
                or step.c1 in recomputed
                or step.c2 in recomputed
                or node not in self._clv
            )
            if not needs:
                continue
            clv1, sc1 = self._child_clv(step.c1)
            clv2, sc2 = self._child_clv(step.c2)
            p1 = self._p_matrix(step.e1)
            p2 = self._p_matrix(step.e2)
            clv, scale = kernel.newview(p1, clv1, sc1, p2, clv2, sc2)
            self._clv[node] = clv
            self._scale[node] = scale
            self._stored_sig[node] = sig
            self._dirty.discard(node)
            recomputed.add(node)
            count += 1
        if count and self.recorder is not None:
            self.recorder.newview(self.index, self.n_patterns, count)
        return count

    def _parent_of(self, step) -> int:
        """The neighbor of ``step.node`` that is NOT one of its children in
        this traversal — the stored orientation key."""
        (other,) = [
            nb
            for nb in self.tree.neighbors(step.node)
            if nb not in (step.c1, step.c2)
        ]
        return other

    # ------------------------------------------------------------------
    # Likelihood
    # ------------------------------------------------------------------

    def loglikelihood(self, root_edge: int | None = None) -> float:
        """Per-partition log-likelihood with the virtual root on
        ``root_edge`` (default: edge 0).  Time-reversibility makes the
        result independent of the choice."""
        edge = 0 if root_edge is None else root_edge
        self.refresh(edge)
        a, b = self.tree.edge_nodes(edge)
        clv_a, sc_a = self._child_clv(a)
        clv_b, sc_b = self._child_clv(b)
        p = self._p_matrix(edge)
        if self._pinv == 0.0:
            lnl = kernel.evaluate(
                p, clv_a, sc_a, clv_b, sc_b, self._model.frequencies, self.data.weights
            )
        else:
            site = kernel._root_site_likelihoods(
                p, clv_a, clv_b, self._model.frequencies
            )
            scale = self._combined_scale(sc_a, sc_b)
            logs = kernel.mix_invariant_loglikelihoods(
                site, scale, self._pinv, self.invariant_probabilities()
            )
            lnl = float(np.dot(self.data.weights, logs))
        if self.recorder is not None:
            self.recorder.evaluate(self.index, self.n_patterns)
        return lnl

    @staticmethod
    def _combined_scale(
        sc_a: np.ndarray | None, sc_b: np.ndarray | None
    ) -> np.ndarray | None:
        if sc_a is None:
            return sc_b
        if sc_b is None:
            return sc_a
        return sc_a + sc_b

    def site_loglikelihoods(self, root_edge: int = 0) -> np.ndarray:
        """Per-pattern log-likelihoods (diagnostics and tests)."""
        self.refresh(root_edge)
        a, b = self.tree.edge_nodes(root_edge)
        clv_a, sc_a = self._child_clv(a)
        clv_b, sc_b = self._child_clv(b)
        p = self._p_matrix(root_edge)
        site = kernel._root_site_likelihoods(
            p, clv_a if clv_a.ndim == 3 else clv_a,
            clv_b, self._model.frequencies
        )
        logs = np.log(site)
        if sc_a is not None:
            logs = logs - sc_a * kernel.LOG_SCALE_FACTOR
        if sc_b is not None:
            logs = logs - sc_b * kernel.LOG_SCALE_FACTOR
        return logs

    # ------------------------------------------------------------------
    # Branch-length machinery (Newton-Raphson support)
    # ------------------------------------------------------------------

    def prepare_branch(self, edge: int) -> BranchWorkspace:
        """Validate the CLVs flanking ``edge`` and build its sumtable."""
        self.refresh(edge)
        a, b = self.tree.edge_nodes(edge)
        clv_a, sc_a = self._child_clv(a)
        clv_b, sc_b = self._child_clv(b)
        table = kernel.make_sumtable(
            clv_a, clv_b, self._eigen.u, self._eigen.v, self._model.frequencies
        )
        scale: np.ndarray | None = None
        if sc_a is not None or sc_b is not None:
            scale = np.zeros(self.n_patterns, dtype=np.int32)
            if sc_a is not None:
                scale = scale + sc_a
            if sc_b is not None:
                scale = scale + sc_b
        if self.recorder is not None:
            self.recorder.sumtable(self.index, self.n_patterns)
        return BranchWorkspace(
            edge=edge, sumtable=table, scale=scale, n_patterns=self.n_patterns
        )

    def branch_loglikelihood(self, ws: BranchWorkspace, z: float) -> float:
        """Log-likelihood as a function of the length of ``ws.edge`` with
        everything else fixed (cheap: no traversal)."""
        if self.recorder is not None:
            self.recorder.derivative(self.index, self.n_patterns)
        z = float(np.clip(z, kernel.MIN_BRANCH, kernel.MAX_BRANCH))
        if self._pinv == 0.0:
            return kernel.sumtable_loglikelihood(
                ws.sumtable,
                self._eigen.eigenvalues,
                self._rates,
                z,
                self.data.weights,
                ws.scale,
            )
        site = kernel.sumtable_site_likelihoods(
            ws.sumtable, self._eigen.eigenvalues, self._rates, z
        )
        logs = kernel.mix_invariant_loglikelihoods(
            site, ws.scale, self._pinv, self.invariant_probabilities()
        )
        return float(np.dot(self.data.weights, logs))

    def branch_derivatives(self, ws: BranchWorkspace, z: float) -> tuple[float, float]:
        """(dlnL/dz, d2lnL/dz2) at branch length ``z`` from the sumtable —
        the per-iteration work of Newton-Raphson."""
        if self.recorder is not None:
            self.recorder.derivative(self.index, self.n_patterns)
        z = float(np.clip(z, kernel.MIN_BRANCH, kernel.MAX_BRANCH))
        if self._pinv == 0.0:
            return kernel.branch_derivatives(
                ws.sumtable,
                self._eigen.eigenvalues,
                self._rates,
                z,
                self.data.weights,
            )
        return kernel.branch_derivatives_pinv(
            ws.sumtable,
            self._eigen.eigenvalues,
            self._rates,
            z,
            self.data.weights,
            ws.scale,
            self._pinv,
            self.invariant_probabilities(),
        )
