"""Per-partition likelihood evaluation on a tree (Felsenstein pruning).

:class:`PartitionLikelihood` owns, for ONE partition: the encoded tip
patterns, the substitution model and its eigensystem, the Gamma rates, a
private branch-length vector, and one conditional likelihood vector (CLV)
per inner node.  Exactly like RAxML it stores a single *oriented* CLV per
inner node — the conditional of the subtree hanging below the node w.r.t.
the current virtual-root placement — and relocating the virtual root or
changing a branch only recomputes the vectors whose orientation or inputs
changed (the paper's "partial traversals").

Multi-partition coordination (joint branch lengths, the oldPAR/newPAR
optimization strategies) lives in :mod:`repro.core.engine`, which drives a
collection of these single-partition engines.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import kernel
from .eigen import EigenSystem
from .gamma import GAMMA_CATEGORIES, discrete_gamma_rates
from .kernels import get_kernel
from .models import SubstitutionModel
from .partition import PartitionData
from .repeats import NodeRepeats, tip_state_codes
from .tree import Tree

__all__ = ["PartitionLikelihood", "BranchWorkspace"]


@dataclass
class BranchWorkspace:
    """Precomputed state for Newton-Raphson on one branch of one partition:
    the eigenbasis sumtable plus the total scaling counter of the two
    subtrees meeting at the branch.

    ``epoch`` snapshots the engine's model-parameter epoch at preparation
    time: the sumtable embeds the eigenvectors and implicitly pairs with
    the rates/eigenvalues of that moment, so consuming it after an
    alpha/rates/eigen update would silently mix old and new parameters —
    the engine refuses such stale workspaces (see
    :meth:`PartitionLikelihood.branch_loglikelihood`)."""

    edge: int
    sumtable: np.ndarray
    scale: np.ndarray | None
    n_patterns: int
    epoch: int = 0


class PartitionLikelihood:
    """Likelihood engine for a single partition on a shared tree topology.

    Parameters
    ----------
    data:
        Pattern-compressed tip data for this partition.
    tree:
        The (shared, possibly mutated) topology.  The engine reads it on
        every traversal; after mutating the topology call
        :meth:`invalidate_all` (or targeted :meth:`invalidate_node`).
    model:
        The partition's substitution model.
    alpha:
        Gamma shape parameter.
    categories:
        Number of discrete Gamma categories (4 throughout the paper).
    index:
        The partition's position in its scheme (used by trace recorders).
    recorder:
        Optional kernel-operation listener with ``newview(partition, n)``,
        ``evaluate(partition, n)``, ``sumtable(partition, n)`` and
        ``derivative(partition, n)`` methods (n = pattern count touched).
    kernel_backend:
        Inner-loop implementation: a backend name from
        :data:`repro.plk.kernels.KERNEL_CHOICES` (``"numpy"``,
        ``"blocked"``, ``"numba"``, ``"repeats"``, ``"repeats+blocked"``,
        ...), an already-resolved
        :class:`~repro.plk.kernels.KernelBackend` instance, or ``None``
        for the layered default (the ``REPRO_KERNEL`` environment
        variable, else the numpy reference).  Backends advertising
        ``supports_repeats`` switch on repeat-compressed CLV storage:
        each inner node's CLV is computed and held over its unique site
        classes only (:mod:`repro.plk.repeats`) and expanded by gather
        at the evaluate/sumtable boundaries.
    """

    def __init__(
        self,
        data: PartitionData,
        tree: Tree,
        model: SubstitutionModel,
        alpha: float = 1.0,
        categories: int = GAMMA_CATEGORIES,
        index: int = 0,
        recorder=None,
        kernel_backend=None,
    ):
        if model.states != data.states:
            raise ValueError(
                f"model has {model.states} states but partition data has {data.states}"
            )
        self.data = data
        self.tree = tree
        self.index = index
        self.categories = categories
        self.recorder = recorder
        self.kernel = get_kernel(kernel_backend)
        self.branch_lengths = np.full(tree.n_edges, 0.1)
        self._model = model
        self._alpha = float(alpha)
        self._pinv = 0.0
        self._invariant_mask: np.ndarray | None = None  # (m, s), lazy
        self._eigen = EigenSystem.for_model(model)
        self._rates = discrete_gamma_rates(alpha, categories)
        self._rates.setflags(write=False)
        # Counts model-parameter updates (alpha/rates/eigen).  Snapshotted
        # into every BranchWorkspace and checked on use: a sumtable built
        # under old parameters must never be combined with new
        # eigenvalues/rates (silently wrong likelihoods, not errors).
        self._param_epoch = 0
        # Per-inner-node CLV storage.  The signature records exactly which
        # children/edges/orientation a stored CLV was computed from, so
        # topology moves (which change adjacency) and virtual-root motion
        # (which changes orientation) are both detected (RAxML's partial
        # traversal logic).
        self._clv: dict[int, np.ndarray] = {}
        self._scale: dict[int, np.ndarray] = {}
        self._stored_sig: dict[int, tuple[int, int, int, int, int]] = {}
        self._dirty: set[int] = set(range(tree.n_taxa, tree.n_nodes))
        # Transition-matrix cache: edge -> (length, eigensystem, rates,
        # backend-prepared P).  Branch lengths change rarely relative to
        # how often P(t) is consumed (every partition touches every edge
        # on a full traversal).  The eigensystem/rates are part of the key
        # BY IDENTITY: parameter setters clear the cache, and the identity
        # check makes a missed clear impossible to exploit (defense in
        # depth against the stale-P bug class).
        self._p_cache: dict[int, tuple[float, EigenSystem, np.ndarray, object]] = {}
        # Repeat compression (kernel backends with ``supports_repeats``).
        # The per-node repeat index depends only on the topology and the
        # tip data — NOT on branch lengths or model parameters — so it is
        # keyed by each node's (c1, c2) child pair and survives
        # invalidate_all(); topology moves change the child pairs and are
        # caught exactly like CLV signatures, cascading via the
        # ``reindexed`` set in refresh().  ``_dense`` caches boundary
        # expansions of compressed CLVs and is dropped on recompute.
        self._repeat_aware = bool(getattr(self.kernel, "supports_repeats", False))
        self._tip_codes: np.ndarray | None = None
        self._node_rep: dict[int, NodeRepeats] = {}
        self._rep_sig: dict[int, tuple[int, int]] = {}
        self._dense: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # gather plans per (parent, child) edge: column-index vectors for
        # compressed inner children, gathered indicator matrices for tips
        # (both depend only on the repeat index — dropped on reindex)
        self._gather_cols: dict[tuple[int, int], np.ndarray] = {}
        self._tip_gather: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------

    @property
    def model(self) -> SubstitutionModel:
        return self._model

    @model.setter
    def model(self, model: SubstitutionModel) -> None:
        if model.states != self.data.states:
            raise ValueError("cannot change the state-space of a partition")
        self._model = model
        self._eigen = EigenSystem.for_model(model)
        self._param_epoch += 1
        self._p_cache.clear()
        self.invalidate_all()

    @property
    def alpha(self) -> float:
        return self._alpha

    @alpha.setter
    def alpha(self, alpha: float) -> None:
        self._alpha = float(alpha)
        self._rates = discrete_gamma_rates(alpha, self.categories)
        self._rates.setflags(write=False)
        self._param_epoch += 1
        self._p_cache.clear()
        self.invalidate_all()

    @property
    def pinv(self) -> float:
        """Proportion of invariable sites (the +I mixture component).

        0.0 (the default) disables the mixture.  Changing it does NOT
        invalidate the conditional vectors: only the root-level mixing
        changes — proposals/optimization of pinv are therefore the
        cheapest parameter moves of all (one evaluation, no traversal).
        Convention: site rate is 0 with probability pinv, else
        Gamma(alpha, alpha) with mean 1 (no renormalization; branch
        lengths absorb the scale, as in MrBayes/PhyML).
        """
        return self._pinv

    @pinv.setter
    def pinv(self, value: float) -> None:
        if not 0.0 <= value < 1.0:
            raise ValueError("pinv must be in [0, 1)")
        self._pinv = float(value)

    def invariant_probabilities(self) -> np.ndarray:
        """(m,) prior mass of the states compatible with every tip at each
        pattern (0 for variable patterns) — the invariant component's
        per-pattern likelihood."""
        if self._invariant_mask is None:
            self._invariant_mask = (self.data.tip_states > 0.0).all(axis=0)
        return self._invariant_mask @ self._model.frequencies

    @property
    def gamma_rates(self) -> np.ndarray:
        return self._rates

    @property
    def eigen(self) -> EigenSystem:
        return self._eigen

    @property
    def n_patterns(self) -> int:
        return self.data.n_patterns

    def set_branch_length(self, edge: int, value: float) -> None:
        """Change one branch length, invalidating dependent CLVs."""
        self.branch_lengths[edge] = value
        u, v = self.tree.edge_nodes(edge)
        for node in (u, v):
            if not self.tree.is_leaf(node):
                self._dirty.add(node)

    def set_branch_lengths(self, values: np.ndarray) -> None:
        if values.shape != (self.tree.n_edges,):
            raise ValueError("branch-length vector has wrong shape")
        self.branch_lengths[:] = values
        self.invalidate_all()

    # ------------------------------------------------------------------
    # CLV management
    # ------------------------------------------------------------------

    def invalidate_all(self) -> None:
        """Mark every inner CLV stale (model change / bulk topology edit)."""
        self._dirty.update(range(self.tree.n_taxa, self.tree.n_nodes))

    def invalidate_node(self, node: int) -> None:
        """Mark one inner node stale (targeted topology edit)."""
        if not self.tree.is_leaf(node):
            self._dirty.add(node)

    def _p_matrix(self, edge: int):
        t = float(np.clip(self.branch_lengths[edge], kernel.MIN_BRANCH, kernel.MAX_BRANCH))
        hit = self._p_cache.get(edge)
        if (
            hit is not None
            and hit[0] == t
            and hit[1] is self._eigen
            and hit[2] is self._rates
        ):
            return hit[3]
        p = self._eigen.transition_matrices(t, self._rates)
        prepared = self.kernel.prepare_p(p)
        self._p_cache[edge] = (t, self._eigen, self._rates, prepared)
        return prepared

    def _child_clv(self, node: int) -> tuple[np.ndarray, np.ndarray | None]:
        """CLV (or tip matrix) plus scaling counter for a traversal child.

        This is the repeat-compression boundary: a node stored over its
        repeat classes is expanded back to the full pattern axis here by
        gather (``np.take(clv, classes, axis=1)``), so every consumer —
        evaluate,
        root_site_likelihoods, make_sumtable, dense-fallback newview —
        sees ordinary dense arrays.  Expansions are cached per node and
        dropped whenever the node is recomputed."""
        if self.tree.is_leaf(node):
            return self.data.tip_states[node], None
        rep = self._node_rep.get(node) if self._repeat_aware else None
        if rep is None or not rep.compressed:
            return self._clv[node], self._scale[node]
        cached = self._dense.get(node)
        if cached is None:
            # np.take is several times faster than advanced indexing on
            # the middle axis and returns a fresh contiguous array
            clv = np.take(self._clv[node], rep.classes, axis=1)
            cached = (clv, self._scale[node][rep.classes])
            self._dense[node] = cached
        return cached

    # -- repeat index --------------------------------------------------

    def _site_classes(self, node: int) -> NodeRepeats:
        """The repeat classes of a traversal child (leaf classes come from
        tip state codes and are computed once; inner classes must already
        exist — refresh() visits children first)."""
        rep = self._node_rep.get(node)
        if rep is None:
            # only reachable for leaves: postorder guarantees inner
            # children were indexed earlier in the same pass
            if self._tip_codes is None:
                self._tip_codes = tip_state_codes(self.data.tip_states)
            rep = NodeRepeats.from_keys(self._tip_codes[node])
            self._node_rep[node] = rep
        return rep

    def _ensure_repeats(self, step, reindexed: set[int]) -> None:
        """(Re)build ``step.node``'s repeat classes when its child pair
        changed (topology move / root motion) or a child was reindexed.
        Branch-length and model changes never reach this rebuild — the
        index is reused across every Newton/Brent round."""
        node = step.node
        rsig = (step.c1, step.c2)
        if (
            self._rep_sig.get(node) == rsig
            and step.c1 not in reindexed
            and step.c2 not in reindexed
        ):
            return
        rep = NodeRepeats.combine(
            self._site_classes(step.c1), self._site_classes(step.c2)
        )
        self._node_rep[node] = rep
        self._rep_sig[node] = rsig
        reindexed.add(node)
        # a child's reindex always forces the parent through this branch
        # too, so dropping this node's own gather plans is sufficient
        for cache in (self._gather_cols, self._tip_gather):
            for key in [k for k in cache if k[0] == node]:
                del cache[key]

    def _gather_child(self, node: int, parent: int, representatives: np.ndarray):
        """Child CLV columns at the parent's representative sites, in the
        child's own storage layout (compressed children map sites through
        their class ids; no intermediate dense expansion).

        The gather *plan* — the column-index vector, and for tips the
        gathered indicator matrix itself — depends only on the repeat
        index, so it is cached per ``(parent, child)`` edge and dropped
        when either end is reindexed."""
        key = (parent, node)
        if self.tree.is_leaf(node):
            tip = self._tip_gather.get(key)
            if tip is None:
                tip = self.data.tip_states[node][representatives]
                self._tip_gather[key] = tip
            return tip, None
        rep = self._node_rep[node]
        if not rep.compressed:
            cols = representatives
        else:
            cols = self._gather_cols.get(key)
            if cols is None:
                cols = rep.classes[representatives]
                self._gather_cols[key] = cols
        return np.take(self._clv[node], cols, axis=1), self._scale[node][cols]

    def _propagated_child(self, node: int, edge: int):
        """``propagate`` across ``edge`` at the child's STORED width, then
        expand compressed results back to the full pattern axis.

        This is how a dense parent consumes a compressed child: the
        propagation flops shrink to one column per repeat class and only
        the propagated vectors pay a full-width gather — strictly less
        memory traffic than expanding the child CLV first and propagating
        at full width."""
        p = self._p_matrix(edge)
        if self.tree.is_leaf(node):
            return self.kernel.propagate(p, self.data.tip_states[node]), None
        rep = self._node_rep.get(node) if self._repeat_aware else None
        prop = self.kernel.propagate(p, self._clv[node])
        if rep is None or not rep.compressed:
            return prop, self._scale[node]
        return np.take(prop, rep.classes, axis=1), self._scale[node][rep.classes]

    def refresh(self, root_edge: int) -> int:
        """Make every CLV needed for the orientation rooted on ``root_edge``
        valid; returns the number of newview operations performed (the
        partial-traversal length)."""
        steps = self.tree.postorder(root_edge)
        recomputed: set[int] = set()
        reindexed: set[int] = set()
        count = 0
        for step in steps:
            node = step.node
            if self._repeat_aware:
                self._ensure_repeats(step, reindexed)
            sig = (step.c1, step.e1, step.c2, step.e2, self._parent_of(step))
            needs = (
                node in self._dirty
                or self._stored_sig.get(node) != sig
                or step.c1 in recomputed
                or step.c2 in recomputed
                or node in reindexed
                or node not in self._clv
            )
            if not needs:
                continue
            rep = self._node_rep.get(node) if self._repeat_aware else None
            if rep is not None and rep.compressed:
                # Compressed pruning step: newview over one representative
                # site per repeat class.  Scale counters ride along per
                # class, so rescale()'s sentinel arithmetic (ZERO_SCALE
                # included) is applied to exactly the same value set as
                # the dense path — sites of one class share bit-identical
                # CLVs AND counters by construction.
                reps = rep.representatives
                clv1, sc1 = self._gather_child(step.c1, node, reps)
                clv2, sc2 = self._gather_child(step.c2, node, reps)
                p1 = self._p_matrix(step.e1)
                p2 = self._p_matrix(step.e2)
                clv, scale = self.kernel.newview(p1, clv1, sc1, p2, clv2, sc2)
            elif self._repeat_aware and any(
                (r := self._node_rep.get(c)) is not None and r.compressed
                for c in (step.c1, step.c2)
            ):
                # Dense parent of a compressed child: propagate at class
                # width, expand the propagated vectors, then combine with
                # the shared scaling semantics of repro.plk.kernel (the
                # same rescale every backend routes through).
                clv, sc1 = self._propagated_child(step.c1, step.e1)
                right, sc2 = self._propagated_child(step.c2, step.e2)
                np.multiply(clv, right, out=clv)
                scale = np.zeros(clv.shape[1], dtype=np.int32)
                if sc1 is not None:
                    scale += sc1
                if sc2 is not None:
                    scale += sc2
                kernel.rescale(clv, scale)
            else:
                clv1, sc1 = self._child_clv(step.c1)
                clv2, sc2 = self._child_clv(step.c2)
                p1 = self._p_matrix(step.e1)
                p2 = self._p_matrix(step.e2)
                clv, scale = self.kernel.newview(p1, clv1, sc1, p2, clv2, sc2)
            self._clv[node] = clv
            self._scale[node] = scale
            self._stored_sig[node] = sig
            self._dense.pop(node, None)
            self._dirty.discard(node)
            recomputed.add(node)
            count += 1
        if count and self.recorder is not None:
            self.recorder.newview(self.index, self.n_patterns, count)
        return count

    def _parent_of(self, step) -> int:
        """The neighbor of ``step.node`` that is NOT one of its children in
        this traversal — the stored orientation key."""
        (other,) = [
            nb
            for nb in self.tree.neighbors(step.node)
            if nb not in (step.c1, step.c2)
        ]
        return other

    # ------------------------------------------------------------------
    # Likelihood
    # ------------------------------------------------------------------

    def loglikelihood(self, root_edge: int | None = None) -> float:
        """Per-partition log-likelihood with the virtual root on
        ``root_edge`` (default: edge 0).  Time-reversibility makes the
        result independent of the choice."""
        edge = 0 if root_edge is None else root_edge
        self.refresh(edge)
        a, b = self.tree.edge_nodes(edge)
        clv_a, sc_a = self._child_clv(a)
        clv_b, sc_b = self._child_clv(b)
        p = self._p_matrix(edge)
        if self._pinv == 0.0:
            lnl = self.kernel.evaluate(
                p, clv_a, sc_a, clv_b, sc_b, self._model.frequencies, self.data.weights
            )
        else:
            site = self.kernel.root_site_likelihoods(
                p, clv_a, clv_b, self._model.frequencies
            )
            scale = kernel.combine_scales(sc_a, sc_b)
            logs = kernel.mix_invariant_loglikelihoods(
                site, scale, self._pinv, self.invariant_probabilities()
            )
            lnl = kernel.weighted_log_sum(self.data.weights, logs)
        if self.recorder is not None:
            self.recorder.evaluate(self.index, self.n_patterns)
        return lnl

    def site_loglikelihoods(self, root_edge: int = 0) -> np.ndarray:
        """Per-pattern log-likelihoods (diagnostics and tests)."""
        self.refresh(root_edge)
        a, b = self.tree.edge_nodes(root_edge)
        clv_a, sc_a = self._child_clv(a)
        clv_b, sc_b = self._child_clv(b)
        p = self._p_matrix(root_edge)
        site = self.kernel.root_site_likelihoods(
            p, clv_a, clv_b, self._model.frequencies
        )
        return kernel.scaled_log_likelihoods(
            site, kernel.combine_scales(sc_a, sc_b)
        )

    # ------------------------------------------------------------------
    # Branch-length machinery (Newton-Raphson support)
    # ------------------------------------------------------------------

    def prepare_branch(self, edge: int) -> BranchWorkspace:
        """Validate the CLVs flanking ``edge`` and build its sumtable."""
        self.refresh(edge)
        a, b = self.tree.edge_nodes(edge)
        clv_a, sc_a = self._child_clv(a)
        clv_b, sc_b = self._child_clv(b)
        table = self.kernel.make_sumtable(
            clv_a, clv_b, self._eigen.u, self._eigen.v, self._model.frequencies
        )
        scale = kernel.combine_scales(sc_a, sc_b)
        if self.recorder is not None:
            self.recorder.sumtable(self.index, self.n_patterns)
        return BranchWorkspace(
            edge=edge, sumtable=table, scale=scale, n_patterns=self.n_patterns,
            epoch=self._param_epoch,
        )

    def _check_workspace(self, ws: BranchWorkspace) -> None:
        if ws.epoch != self._param_epoch:
            raise RuntimeError(
                "stale BranchWorkspace: model parameters (alpha/rates/eigen) "
                f"changed after prepare_branch() on edge {ws.edge} — the "
                "sumtable would be combined with mismatched eigenvalues/"
                "rates; re-prepare the branch"
            )

    def branch_loglikelihood(self, ws: BranchWorkspace, z: float) -> float:
        """Log-likelihood as a function of the length of ``ws.edge`` with
        everything else fixed (cheap: no traversal)."""
        self._check_workspace(ws)
        if self.recorder is not None:
            self.recorder.derivative(self.index, self.n_patterns)
        z = float(np.clip(z, kernel.MIN_BRANCH, kernel.MAX_BRANCH))
        if self._pinv == 0.0:
            return kernel.sumtable_loglikelihood(
                ws.sumtable,
                self._eigen.eigenvalues,
                self._rates,
                z,
                self.data.weights,
                ws.scale,
            )
        site = kernel.sumtable_site_likelihoods(
            ws.sumtable, self._eigen.eigenvalues, self._rates, z
        )
        logs = kernel.mix_invariant_loglikelihoods(
            site, ws.scale, self._pinv, self.invariant_probabilities()
        )
        return kernel.weighted_log_sum(self.data.weights, logs)

    def branch_derivatives(self, ws: BranchWorkspace, z: float) -> tuple[float, float]:
        """(dlnL/dz, d2lnL/dz2) at branch length ``z`` from the sumtable —
        the per-iteration work of Newton-Raphson."""
        self._check_workspace(ws)
        if self.recorder is not None:
            self.recorder.derivative(self.index, self.n_patterns)
        z = float(np.clip(z, kernel.MIN_BRANCH, kernel.MAX_BRANCH))
        if self._pinv == 0.0:
            return kernel.branch_derivatives(
                ws.sumtable,
                self._eigen.eigenvalues,
                self._rates,
                z,
                self.data.weights,
                ws.scale,
            )
        return kernel.branch_derivatives_pinv(
            ws.sumtable,
            self._eigen.eigenvalues,
            self._rates,
            z,
            self.data.weights,
            ws.scale,
            self._pinv,
            self.invariant_probabilities(),
        )
