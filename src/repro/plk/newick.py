"""Newick tree serialization.

Unrooted binary trees are conventionally written with a trifurcating root
``(A,B,(C,D));``.  The parser also accepts a bifurcating (rooted) top level
and silently unroots it by fusing the two root edges into one branch whose
length is the sum of the two (the standard convention).  Polytomies other
than the top-level trifurcation are rejected — the PLK operates strictly
on binary trees.
"""
from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from .tree import Tree

__all__ = ["parse_newick", "write_newick"]


@dataclass
class _ParseNode:
    name: str | None = None
    length: float | None = None
    children: list["_ParseNode"] = field(default_factory=list)


_TOKEN = re.compile(
    r"\s*(?:(?P<punct>[(),;:])|(?P<quoted>'(?:[^']|'')*')|(?P<bare>[^\s(),;:]+))"
)


def _tokenize(text: str):
    text = text.strip()
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise ValueError(f"newick: cannot tokenize at offset {pos}: {text[pos:pos+20]!r}")
        pos = match.end()
        if match["punct"]:
            yield match["punct"]
        elif match["quoted"]:
            yield match["quoted"][1:-1].replace("''", "'")
        else:
            yield match["bare"]
    yield ";"  # sentinel for truncated input


def _parse_clade(tokens: list[str], pos: int) -> tuple[_ParseNode, int]:
    node = _ParseNode()
    if tokens[pos] == "(":
        pos += 1
        while True:
            child, pos = _parse_clade(tokens, pos)
            node.children.append(child)
            if tokens[pos] == ",":
                pos += 1
                continue
            if tokens[pos] == ")":
                pos += 1
                break
            raise ValueError(f"newick: expected ',' or ')' at token {pos}")
    if tokens[pos] not in "(),;:":
        node.name = tokens[pos]
        pos += 1
    if tokens[pos] == ":":
        node.length = float(tokens[pos + 1])
        pos += 2
    return node, pos


def parse_newick(text: str) -> tuple[Tree, np.ndarray]:
    """Parse Newick text into a :class:`Tree` and its branch lengths.

    Returns
    -------
    tree:
        The topology; leaf ids follow the order of appearance in the text.
    lengths:
        ``(n_edges,)`` branch lengths indexed by edge id.  Branches with no
        length annotation get 0.1 (a conventional neutral default).
    """
    tokens = list(_tokenize(text))
    root, pos = _parse_clade(tokens, 0)
    if tokens[pos] != ";":
        raise ValueError("newick: trailing garbage after tree")

    # Unroot a bifurcating top level by fusing its two child edges.
    if len(root.children) == 2:
        left, right = root.children
        keep, fold = (left, right) if left.children else (right, left)
        if not keep.children:
            raise ValueError("newick: 2-taxon trees cannot be unrooted")
        extra = fold.length if fold.length is not None else 0.0
        base = keep.length if keep.length is not None else 0.0
        fold.length = (extra + base) if (fold.length is not None or keep.length is not None) else None
        keep.children.append(fold)
        root = keep
        root.length = None
    if len(root.children) != 3:
        raise ValueError(
            f"newick: top level must be bi- or trifurcating, got {len(root.children)}"
        )

    # Collect taxa in order of appearance.
    taxa: list[str] = []

    def collect(node: _ParseNode) -> None:
        if not node.children:
            if not node.name:
                raise ValueError("newick: unnamed leaf")
            taxa.append(node.name)
        for child in node.children:
            collect(child)

    collect(root)
    tree = Tree(tuple(taxa))
    lengths = np.full(tree.n_edges, 0.1)
    leaf_id = {name: i for i, name in enumerate(taxa)}
    counters = {"inner": tree.n_taxa, "edge": 0}

    def build(node: _ParseNode) -> int:
        """Create this clade's apex node in the tree; return its id."""
        if not node.children:
            return leaf_id[node.name]  # type: ignore[index]
        if len(node.children) != 2 and node is not root:
            raise ValueError("newick: internal polytomy; tree must be binary")
        me = counters["inner"]
        counters["inner"] += 1
        for child in node.children:
            kid = build(child)
            eid = counters["edge"]
            counters["edge"] += 1
            tree._link(me, kid, eid)
            if child.length is not None:
                lengths[eid] = child.length
        return me

    build(root)
    tree.validate()
    return tree, lengths


def write_newick(
    tree: Tree, lengths: np.ndarray | None = None, precision: int = 6
) -> str:
    """Serialize a tree (trifurcating top level at the highest-id inner
    node, which makes round-trips deterministic)."""
    if lengths is not None and len(lengths) != tree.n_edges:
        raise ValueError("lengths array does not match edge count")

    def fmt_len(eid: int) -> str:
        if lengths is None:
            return ""
        return f":{lengths[eid]:.{precision}f}"

    def render(node: int, parent: int) -> str:
        if tree.is_leaf(node):
            name = tree.taxa[node]
            quoted = f"'{name}'" if re.search(r"[\s(),;:']", name) else name
            return quoted + fmt_len(tree.edge_between(node, parent))
        kids = [nb for nb in tree.neighbors(node) if nb != parent]
        inner = ",".join(render(k, node) for k in kids)
        tail = fmt_len(tree.edge_between(node, parent)) if parent >= 0 else ""
        return f"({inner})" + tail

    root = tree.n_nodes - 1
    return render(root, -1) + ";"
