"""Time-reversible substitution models (the Q matrix of Section III).

A general time-reversible (GTR) model is parameterized by a symmetric
exchangeability matrix ``S`` (given as the strict upper triangle, with the
last rate fixed to 1.0 as the reference, exactly as RAxML does) and the
stationary base frequencies ``pi``.  The instantaneous rate matrix is

    Q[i, j] = S[i, j] * pi[j]      (i != j)
    Q[i, i] = -sum_{j != i} Q[i, j]

normalized so the expected substitution rate at stationarity is one
(``-sum_i pi_i Q_ii == 1``), which makes branch lengths expected
substitutions per site.

DNA convenience constructors cover JC69, K80, HKY85 and full GTR.  For
protein data the paper uses empirical viral alignments; we provide the
Poisson (equal-rates) amino-acid model plus a deterministic synthetic
heterogeneous 20-state model (``synthetic_aa``) as the stand-in for
empirical matrices like WAG/JTT — the load-balance behaviour depends only
on the 20x20 dimensionality, not the specific empirical rates (DESIGN.md
substitution table).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .datatypes import AA, DNA, DataType

__all__ = ["SubstitutionModel", "n_exchange_rates"]


def n_exchange_rates(states: int) -> int:
    """Number of free exchangeability entries (strict upper triangle)."""
    return states * (states - 1) // 2


def _upper_triangle_to_symmetric(rates: np.ndarray, states: int) -> np.ndarray:
    """Expand a strict-upper-triangle rate vector to a symmetric matrix."""
    expected = n_exchange_rates(states)
    if rates.shape != (expected,):
        raise ValueError(f"expected {expected} rates, got shape {rates.shape}")
    mat = np.zeros((states, states))
    iu = np.triu_indices(states, k=1)
    mat[iu] = rates
    return mat + mat.T


@dataclass(frozen=True)
class SubstitutionModel:
    """An immutable reversible substitution model for one partition.

    Attributes
    ----------
    datatype:
        The state space (DNA or AA).
    rates:
        Strict-upper-triangle exchangeabilities, length ``s(s-1)/2``.  By
        convention the last entry is the reference and equals 1.0 after
        :meth:`normalized`.
    frequencies:
        Stationary state frequencies, positive, summing to 1.
    """

    datatype: DataType
    rates: np.ndarray
    frequencies: np.ndarray

    def __post_init__(self) -> None:
        rates = np.asarray(self.rates, dtype=np.float64).copy()
        freqs = np.asarray(self.frequencies, dtype=np.float64).copy()
        s = self.datatype.states
        if rates.shape != (n_exchange_rates(s),):
            raise ValueError(
                f"{self.datatype.name}: need {n_exchange_rates(s)} rates, "
                f"got {rates.shape}"
            )
        if freqs.shape != (s,):
            raise ValueError(f"need {s} frequencies, got {freqs.shape}")
        if np.any(rates <= 0):
            raise ValueError("exchangeability rates must be positive")
        if np.any(freqs <= 0):
            raise ValueError("frequencies must be positive")
        if not np.isclose(freqs.sum(), 1.0, atol=1e-8):
            raise ValueError(f"frequencies sum to {freqs.sum()}, not 1")
        freqs = freqs / freqs.sum()
        rates.setflags(write=False)
        freqs.setflags(write=False)
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "frequencies", freqs)

    @property
    def states(self) -> int:
        return self.datatype.states

    def normalized(self) -> "SubstitutionModel":
        """Scale rates so the last (reference) exchangeability is 1.0."""
        return SubstitutionModel(
            self.datatype, self.rates / self.rates[-1], self.frequencies
        )

    def with_rates(self, rates: np.ndarray) -> "SubstitutionModel":
        return SubstitutionModel(self.datatype, rates, self.frequencies)

    def with_frequencies(self, freqs: np.ndarray) -> "SubstitutionModel":
        return SubstitutionModel(self.datatype, self.rates, freqs)

    def with_rate(self, index: int, value: float) -> "SubstitutionModel":
        """Copy with one exchangeability replaced (Brent optimizes these
        one at a time, like RAxML)."""
        rates = self.rates.copy()
        rates[index] = value
        return SubstitutionModel(self.datatype, rates, self.frequencies)

    def q_matrix(self) -> np.ndarray:
        """The normalized instantaneous rate matrix Q (states x states)."""
        s = self.states
        pi = self.frequencies
        sym = _upper_triangle_to_symmetric(self.rates, s)
        q = sym * pi[np.newaxis, :]
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        # Normalize to one expected substitution per unit time.
        mu = -np.dot(pi, np.diag(q))
        return q / mu

    # ------------------------------------------------------------------
    # Named constructors
    # ------------------------------------------------------------------

    @classmethod
    def jc69(cls) -> "SubstitutionModel":
        """Jukes-Cantor 1969: equal rates, equal frequencies."""
        return cls(DNA, np.ones(6), np.full(4, 0.25))

    @classmethod
    def k80(cls, kappa: float = 2.0) -> "SubstitutionModel":
        """Kimura 1980: transition/transversion ratio ``kappa``, equal
        frequencies.  State order ACGT; transitions are A<->G and C<->T."""
        rates = np.array([1.0, kappa, 1.0, 1.0, kappa, 1.0])
        return cls(DNA, rates, np.full(4, 0.25))

    @classmethod
    def hky85(cls, kappa: float, frequencies: np.ndarray) -> "SubstitutionModel":
        """Hasegawa-Kishino-Yano 1985: K80 rates with free frequencies."""
        rates = np.array([1.0, kappa, 1.0, 1.0, kappa, 1.0])
        return cls(DNA, rates, np.asarray(frequencies, dtype=np.float64))

    @classmethod
    def gtr(cls, rates: np.ndarray, frequencies: np.ndarray) -> "SubstitutionModel":
        """Full GTR from 6 exchangeabilities (AC, AG, AT, CG, CT, GT) and
        4 frequencies."""
        return cls(
            DNA,
            np.asarray(rates, dtype=np.float64),
            np.asarray(frequencies, dtype=np.float64),
        )

    @classmethod
    def poisson_aa(cls) -> "SubstitutionModel":
        """The Poisson protein model: all exchangeabilities equal, uniform
        frequencies.  The amino-acid analogue of JC69."""
        return cls(AA, np.ones(n_exchange_rates(20)), np.full(20, 0.05))

    @classmethod
    def synthetic_aa(cls, seed: int = 0) -> "SubstitutionModel":
        """A deterministic heterogeneous 20-state model standing in for an
        empirical matrix (WAG/JTT-like spread of exchangeabilities and
        non-uniform frequencies).  Rates are log-normal with ~1.5 orders of
        magnitude spread, matching the qualitative shape of empirical
        protein matrices."""
        rng = np.random.default_rng(seed + 0x5EED)
        rates = np.exp(rng.normal(0.0, 1.4, size=n_exchange_rates(20)))
        rates /= rates[-1]
        freqs = rng.dirichlet(np.full(20, 8.0))
        return cls(AA, rates, freqs)

    @classmethod
    def random_gtr(cls, seed: int = 0) -> "SubstitutionModel":
        """A deterministic random GTR model, for tests and simulation."""
        rng = np.random.default_rng(seed + 1234)
        rates = np.exp(rng.normal(0.0, 0.7, size=6))
        rates /= rates[-1]
        freqs = rng.dirichlet(np.full(4, 10.0))
        return cls(DNA, rates, freqs)
