"""Base-frequency estimation.

Two standard ways to set the stationary frequencies pi of a partition's
model (Section III: "the prior probabilities of observing the nucleotides
... can be determined empirically from the alignment"):

* :func:`empirical_frequencies` — the count estimate RAxML uses by
  default: average the (ambiguity-normalized) character indicators over
  all cells of the partition, weighting patterns by multiplicity.
* ML optimization — handled by
  :func:`repro.core.strategies.optimize_frequencies`, which Brent-optimizes
  the free frequency ratios one at a time per partition (batched across
  partitions under newPAR), using :func:`frequency_ratios` /
  :func:`ratios_to_frequencies` below as the parameterization: frequencies
  are ``x_i / sum(x)`` with the last ratio pinned to 1.
"""
from __future__ import annotations

import numpy as np

from .partition import PartitionData

__all__ = [
    "empirical_frequencies",
    "frequency_ratios",
    "ratios_to_frequencies",
]

_MIN_FREQ = 1e-4


def empirical_frequencies(data: PartitionData) -> np.ndarray:
    """Count-based stationary frequencies for one partition.

    Ambiguity codes contribute fractionally (an ``R`` adds half a count to
    A and to G); fully-ambiguous cells (gaps) contribute the same to every
    state and therefore only flatten the estimate slightly, matching
    standard practice.
    """
    tips = data.tip_states  # (n_taxa, m, s) indicators
    weights = data.weights.astype(np.float64)
    per_cell = tips / tips.sum(axis=2, keepdims=True)
    counts = np.einsum("nms,m->s", per_cell, weights)
    freqs = counts / counts.sum()
    freqs = np.maximum(freqs, _MIN_FREQ)
    return freqs / freqs.sum()


def frequency_ratios(frequencies: np.ndarray) -> np.ndarray:
    """Free-parameter view of a frequency vector: ratios against the last
    state (which is pinned to 1)."""
    frequencies = np.asarray(frequencies, dtype=np.float64)
    return frequencies[:-1] / frequencies[-1]


def ratios_to_frequencies(ratios: np.ndarray) -> np.ndarray:
    """Inverse of :func:`frequency_ratios`."""
    ratios = np.asarray(ratios, dtype=np.float64)
    full = np.concatenate([ratios, [1.0]])
    full = np.maximum(full, _MIN_FREQ)
    return full / full.sum()
