"""Multiple sequence alignments and alignment-pattern compression.

The likelihood of an alignment factorizes over columns, and identical
columns contribute identical per-site likelihoods.  Production PLK
implementations therefore compress the ``m`` raw columns into ``m'``
distinct *patterns*, each carrying an integer weight (its multiplicity),
and all kernel loops run over patterns.  The paper's datasets are built so
that ``m == m'`` (every column unique), but the library handles the general
case and the compression is covered by an exact-equivalence invariant test.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .datatypes import DNA, DataType

__all__ = ["Alignment", "compress_columns"]


def compress_columns(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compress duplicate columns of a character matrix.

    Parameters
    ----------
    matrix:
        ``(n_taxa, m)`` uint8 character matrix.

    Returns
    -------
    patterns:
        ``(n_taxa, m')`` matrix of distinct columns, in order of first
        appearance.
    weights:
        ``(m',)`` int64 multiplicities; ``weights.sum() == m``.
    site_to_pattern:
        ``(m,)`` index of the pattern each original column maps to.
    """
    if matrix.ndim != 2:
        raise ValueError(f"expected 2-D matrix, got shape {matrix.shape}")
    # Unique over columns; keep first-appearance order for reproducibility.
    cols = np.ascontiguousarray(matrix.T)
    uniq_rows, first_idx, inverse, counts = np.unique(
        cols, axis=0, return_index=True, return_inverse=True, return_counts=True
    )
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(order.size, dtype=np.intp)
    rank[order] = np.arange(order.size)
    patterns = np.ascontiguousarray(uniq_rows[order].T)
    weights = counts[order].astype(np.int64)
    site_to_pattern = rank[inverse.ravel()]
    return patterns, weights, site_to_pattern


@dataclass(frozen=True)
class Alignment:
    """An immutable multiple sequence alignment.

    Rows are taxa, columns are alignment sites.  Characters are stored as a
    uint8 matrix (ASCII codes) so that slicing, pattern compression and tip
    encoding are all vectorized.
    """

    taxa: tuple[str, ...]
    matrix: np.ndarray  # (n_taxa, m) uint8, read-only
    datatype: DataType = DNA

    def __post_init__(self) -> None:
        mat = np.asarray(self.matrix, dtype=np.uint8)
        if mat.ndim != 2:
            raise ValueError("alignment matrix must be 2-D")
        if mat.shape[0] != len(self.taxa):
            raise ValueError(
                f"{len(self.taxa)} taxa but matrix has {mat.shape[0]} rows"
            )
        if len(set(self.taxa)) != len(self.taxa):
            raise ValueError("duplicate taxon names")
        mat = np.ascontiguousarray(mat)
        mat.setflags(write=False)
        object.__setattr__(self, "matrix", mat)
        object.__setattr__(self, "taxa", tuple(self.taxa))

    @classmethod
    def from_sequences(
        cls, sequences: dict[str, str], datatype: DataType = DNA
    ) -> "Alignment":
        """Build from a ``{taxon: sequence}`` mapping (all equal length)."""
        if not sequences:
            raise ValueError("empty alignment")
        taxa = tuple(sequences)
        lengths = {len(s) for s in sequences.values()}
        if len(lengths) != 1:
            raise ValueError(f"unequal sequence lengths: {sorted(lengths)}")
        mat = np.frombuffer(
            "".join(sequences[t].upper() for t in taxa).encode("ascii"),
            dtype=np.uint8,
        ).reshape(len(taxa), -1)
        return cls(taxa=taxa, matrix=mat, datatype=datatype)

    @property
    def n_taxa(self) -> int:
        return len(self.taxa)

    @property
    def n_sites(self) -> int:
        """Number of raw alignment columns, the paper's ``m``."""
        return self.matrix.shape[1]

    def sequence(self, taxon: str) -> str:
        """The raw character string for one taxon."""
        row = self.matrix[self.taxa.index(taxon)]
        return row.tobytes().decode("ascii")

    def columns(self, start: int, stop: int) -> "Alignment":
        """Sub-alignment over the half-open column range ``[start, stop)``."""
        if not (0 <= start <= stop <= self.n_sites):
            raise IndexError(f"bad column range [{start}, {stop})")
        return Alignment(self.taxa, self.matrix[:, start:stop], self.datatype)

    def compress(self) -> tuple["Alignment", np.ndarray, np.ndarray]:
        """Return (pattern alignment, weights, site→pattern map).

        The returned alignment has ``m'`` columns (the paper's distinct
        pattern count); summing per-pattern log-likelihoods times weights
        equals the uncompressed log-likelihood exactly.
        """
        patterns, weights, site_map = compress_columns(self.matrix)
        return Alignment(self.taxa, patterns, self.datatype), weights, site_map

    def encode_tips(self) -> np.ndarray:
        """(n_taxa, m, states) float64 ambiguity indicators for all tips."""
        table = self.datatype.encoding_table()
        return table[self.matrix]
