"""Vectorized likelihood-kernel primitives (newview / evaluate / sumtable).

These four array-level operations are the PLK's inner loops — the code the
paper parallelizes over alignment patterns:

* :func:`newview` — recompute one inner node's conditional likelihood
  vector (CLV) from its two children (one pruning step).
* :func:`evaluate` — combine the two CLVs meeting at the virtual root into
  the log-likelihood score (the reduction / synchronization point).
* :func:`make_sumtable` + :func:`branch_derivatives` — RAxML's
  ``makenewz`` machinery: precompute per-site eigenbasis coefficients for a
  branch, then obtain the log-likelihood and its first and second
  derivatives w.r.t. the branch length in O(m * K * states) per
  Newton-Raphson iteration (no tree re-traversal).

Array layout: CLVs are ``(K, m, states)`` C-contiguous, category-major, so
every operation is a batched BLAS matmul over the pattern axis and a worker
thread's pattern slice is a view, never a copy (see the HPC guide notes on
views and cache-friendly contiguity).

Numerical scaling: per-pattern likelihood entries underflow for deep trees;
whenever a pattern's CLV max drops below 2^-256 the pattern is rescaled by
2^+256 and a per-pattern scaling counter increments (RAxML's scheme).  The
counters are additive along the tree and enter the final score as
``-count * 256 * ln 2``.

Impossible patterns: a pattern whose CLV is exactly all-zero (conflicting
hard state assignments) has likelihood exactly 0 — log-likelihood -inf.
Such a pattern must NOT be rescaled (0 * 2^256 stays 0 while the counter
would grow, silently turning -inf into a finite ``-count * 256 ln 2``).
Instead :func:`rescale` marks it with the :data:`ZERO_SCALE` sentinel in
the scaling counter and flushes its CLV entries to 1.0, so (a) every
log-domain consumer recognizes it via :func:`zero_pattern_mask` and emits
an explicit -inf, and (b) a single dead pattern does not permanently
defeat the contiguous ``result.min()`` fast path at every ancestor node.
"""
from __future__ import annotations

import numpy as np

__all__ = [
    "SCALE_THRESHOLD",
    "SCALE_FACTOR",
    "LOG_SCALE_FACTOR",
    "ZERO_SCALE",
    "propagate",
    "newview",
    "rescale",
    "zero_pattern_mask",
    "combine_scales",
    "scaled_log_likelihoods",
    "weighted_log_sum",
    "evaluate",
    "make_sumtable",
    "branch_derivatives",
    "branch_derivatives_pinv",
    "mix_invariant_loglikelihoods",
    "sumtable_loglikelihood",
]

SCALE_FACTOR = np.float64(2.0) ** 256
SCALE_THRESHOLD = np.float64(2.0) ** -256
LOG_SCALE_FACTOR = 256.0 * np.log(2.0)

#: Scaling-counter sentinel for an impossible (all-zero) pattern.  Chosen
#: so that (a) the sum of two children's counters — sentinel plus any
#: realistic accumulated count, or two sentinels — still exceeds
#: ``_ZERO_CUTOFF`` without overflowing int32, and (b) a consumer that
#: misses the explicit dead check still computes ``log(1) - 2^20 * 177.4``
#: ≈ -1.9e8, i.e. an effectively impossible pattern rather than a silently
#: plausible one.
ZERO_SCALE = np.int32(1 << 20)
_ZERO_CUTOFF = int(1 << 19)

MIN_BRANCH = 1e-8
MAX_BRANCH = 50.0


def zero_pattern_mask(scale: np.ndarray | None) -> np.ndarray | None:
    """Boolean mask of patterns marked impossible (likelihood exactly 0)
    by :func:`rescale`, or ``None`` when ``scale`` is ``None``.

    The sentinel survives the additive counter combination of
    :func:`newview` (child sums stay above the detection cutoff), so the
    mask is valid at any tree depth.
    """
    if scale is None:
        return None
    return scale >= _ZERO_CUTOFF


def propagate(p: np.ndarray, clv: np.ndarray) -> np.ndarray:
    """Move a conditional vector across a branch: ``out[k,m,s] =
    sum_t p[k,s,t] * clv[k,m,t]``.

    ``clv`` may be a tip indicator matrix ``(m, states)`` (categories do
    not differentiate tips) or a full CLV ``(K, m, states)``.
    """
    pt = np.ascontiguousarray(p.transpose(0, 2, 1))
    if clv.ndim == 2:
        return np.matmul(clv[np.newaxis, :, :], pt)
    return np.matmul(clv, pt)


def newview(
    p1: np.ndarray,
    clv1: np.ndarray,
    scale1: np.ndarray | None,
    p2: np.ndarray,
    clv2: np.ndarray,
    scale2: np.ndarray | None,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One pruning step: the CLV of a parent from its two children.

    Parameters
    ----------
    p1, p2:
        ``(K, states, states)`` transition matrices of the child branches.
    clv1, clv2:
        Child CLVs ``(K, m, states)`` or tip matrices ``(m, states)``.
    scale1, scale2:
        Child per-pattern scaling counters ``(m,)`` (None for tips).
    out:
        Optional preallocated ``(K, m, states)`` output buffer.

    Returns
    -------
    (clv, scale): the parent CLV and its accumulated scaling counter.
    """
    left = propagate(p1, clv1)
    right = propagate(p2, clv2)
    if out is None:
        result = left
        np.multiply(left, right, out=result)
    else:
        np.multiply(left, right, out=out)
        result = out
    m = result.shape[1]
    scale = np.zeros(m, dtype=np.int32)
    if scale1 is not None:
        scale += scale1
    if scale2 is not None:
        scale += scale2
    rescale(result, scale)
    return result, scale


def rescale(result: np.ndarray, scale: np.ndarray) -> None:
    """Shared underflow handling for every kernel backend: rescale tiny
    patterns in place and mark impossible ones.

    * Underflowing patterns (0 < max < 2^-256) are multiplied by 2^256 and
      their counter increments (RAxML's scheme).
    * Patterns whose maximum is exactly 0 are IMPOSSIBLE, not tiny:
      rescaling cannot revive them (0 * 2^256 == 0) while the growing
      counter would silently turn their -inf log-likelihood into a finite
      ``-count * 256 ln 2``.  They are marked with :data:`ZERO_SCALE` and
      their entries flushed to 1.0 so the contiguous ``result.min()`` fast
      path below stays effective at every ancestor (a single permanent
      zero entry would otherwise force the per-pattern reduction on every
      call for the rest of the traversal).
    * Patterns already marked dead by a child keep the canonical sentinel
      (the additive counter combination in :func:`newview` perturbs it).

    Fast path: CLV entries are non-negative, so if the global minimum is
    above the threshold no pattern can need scaling — one contiguous
    reduction instead of the per-pattern axis reduction.  Zero-width
    slices occur when a worker owns no patterns of a short partition —
    the exact situation behind the paper's idle threads.
    """
    m = result.shape[1]
    if m == 0:
        return
    inherited = scale >= _ZERO_CUTOFF
    if inherited.any():
        # Canonicalize: a dead child's sentinel arrives summed with the
        # sibling's ordinary counter; pin it back to exactly ZERO_SCALE.
        scale[inherited] = ZERO_SCALE
        # The dead columns were flushed to 1.0 when first detected, so
        # their propagated products are healthy and min() stays a valid
        # fast-path guard.
    if result.min() >= SCALE_THRESHOLD:
        return
    maxima = result.max(axis=(0, 2))
    tiny = (maxima < SCALE_THRESHOLD) & (maxima > 0.0)
    zero = (maxima <= 0.0) & ~inherited
    if tiny.any():
        result[:, tiny, :] *= SCALE_FACTOR
        scale[tiny] += 1
    if zero.any():
        result[:, zero, :] = 1.0
        scale[zero] = ZERO_SCALE


def _root_site_likelihoods(
    p: np.ndarray,
    clv_left: np.ndarray,
    clv_right: np.ndarray,
    frequencies: np.ndarray,
) -> np.ndarray:
    """Per-pattern, category-averaged likelihoods at the virtual root."""
    moved = propagate(p, clv_right)            # (K, m, s)
    if clv_left.ndim == 2:
        weighted = clv_left[np.newaxis, :, :] * frequencies
    else:
        weighted = clv_left * frequencies
    per_cat = np.einsum("kms,kms->km", weighted, moved)
    return per_cat.mean(axis=0)


def combine_scales(
    scale_a: np.ndarray | None, scale_b: np.ndarray | None
) -> np.ndarray | None:
    """Additive combination of two per-pattern scaling counters (either
    may be ``None`` for a tip)."""
    if scale_a is None:
        return scale_b
    if scale_b is None:
        return scale_a
    return scale_a + scale_b


def scaled_log_likelihoods(
    site: np.ndarray, scale: np.ndarray | None = None
) -> np.ndarray:
    """Per-pattern log-likelihoods from (possibly scaled) site likelihoods.

    THE log-domain entry point shared by :func:`evaluate`,
    :func:`sumtable_loglikelihood`, :func:`mix_invariant_loglikelihoods`
    and :meth:`~repro.plk.likelihood.PartitionLikelihood.site_loglikelihoods`,
    so zero site likelihoods behave identically everywhere:

    * ``site <= 0`` (exact zeros, or tiny negatives from einsum rounding)
      maps to -inf without emitting ``RuntimeWarning`` or NaN;
    * patterns carrying the :data:`ZERO_SCALE` sentinel are forced to
      -inf explicitly — their stored CLV values are the flushed dummies,
      not likelihoods;
    * ordinary patterns get the usual ``log(site) - count * 256 ln 2``
      unwinding of the scaling counters.
    """
    with np.errstate(divide="ignore"):
        logs = np.log(np.maximum(site, 0.0))
    if scale is not None:
        dead = scale >= _ZERO_CUTOFF
        if dead.any():
            logs = np.where(dead, -np.inf, logs - scale * LOG_SCALE_FACTOR)
        else:
            logs = logs - scale * LOG_SCALE_FACTOR
    return logs


def weighted_log_sum(weights: np.ndarray, logs: np.ndarray) -> float:
    """``sum_i w_i * logs_i`` that treats -inf site log-likelihoods
    exactly: any -inf pattern with positive weight makes the total -inf;
    -inf patterns with zero weight are dropped (a plain ``dot`` would
    poison the sum with ``0 * -inf = NaN``)."""
    neg = np.isneginf(logs)
    if not neg.any():
        return float(np.dot(weights, logs))
    if np.any(np.asarray(weights)[neg] > 0):
        return float("-inf")
    return float(np.dot(weights, np.where(neg, 0.0, logs)))


def evaluate(
    p: np.ndarray,
    clv_left: np.ndarray,
    scale_left: np.ndarray | None,
    clv_right: np.ndarray,
    scale_right: np.ndarray | None,
    frequencies: np.ndarray,
    weights: np.ndarray,
) -> float:
    """Log-likelihood at the virtual root on the branch joining
    ``clv_left`` and ``clv_right`` (transition matrix ``p`` for the full
    branch length).  This is the reduction the paper identifies as the
    natural synchronization point."""
    site = _root_site_likelihoods(p, clv_left, clv_right, frequencies)
    logs = scaled_log_likelihoods(site, combine_scales(scale_left, scale_right))
    return weighted_log_sum(weights, logs)


def make_sumtable(
    clv_left: np.ndarray,
    clv_right: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    frequencies: np.ndarray,
) -> np.ndarray:
    """Eigenbasis coefficient table for Newton-Raphson on one branch.

    With ``P_k(z) = U exp(L r_k z) V`` the root-site likelihood is

        l_i(z) = (1/K) sum_k sum_j T[k,i,j] * exp(lambda_j r_k z)

    where ``T[k,i,j] = (sum_s pi_s clvL[k,i,s] U[s,j]) *
    (sum_t V[j,t] clvR[k,i,t])`` — this function computes T once; every NR
    iteration then costs only an exp + two weighted sums (exactly RAxML's
    ``makenewz`` split between sumtable setup and the core iteration).
    """
    if clv_left.ndim == 2:
        clv_left = clv_left[np.newaxis]
    if clv_right.ndim == 2:
        clv_right = clv_right[np.newaxis]
    piu = frequencies[:, np.newaxis] * u          # (s, j)
    left = np.matmul(clv_left, piu)               # (K, m, j)
    right = np.matmul(clv_right, np.ascontiguousarray(v.T))  # (K, m, j)
    return left * right


def sumtable_site_likelihoods(
    sumtable: np.ndarray,
    eigenvalues: np.ndarray,
    rates: np.ndarray,
    z: float,
) -> np.ndarray:
    """Per-pattern (still scaled) Gamma-mixture likelihoods from a
    sumtable at branch length ``z``."""
    expo = np.exp(np.outer(rates, eigenvalues) * z)    # (K, j)
    return np.einsum("kmj,kj->m", sumtable, expo) / sumtable.shape[0]


def sumtable_loglikelihood(
    sumtable: np.ndarray,
    eigenvalues: np.ndarray,
    rates: np.ndarray,
    z: float,
    weights: np.ndarray,
    scale: np.ndarray | None,
) -> float:
    """Log-likelihood from a precomputed sumtable at branch length ``z``."""
    site = sumtable_site_likelihoods(sumtable, eigenvalues, rates, z)
    return weighted_log_sum(weights, scaled_log_likelihoods(site, scale))


def mix_invariant_loglikelihoods(
    site_gamma: np.ndarray,
    scale: np.ndarray | None,
    pinv: float,
    inv_prob: np.ndarray,
) -> np.ndarray:
    """Per-pattern log-likelihoods under the +I mixture.

    ``site_gamma`` are the (scaled) Gamma-mixture site likelihoods,
    ``scale`` the per-pattern scaling counters, ``inv_prob[i]`` the prior
    probability mass of the states compatible with every tip at pattern i
    (zero for variable patterns).  The mixture is

        l_i = (1 - pinv) * gamma_i + pinv * inv_prob_i

    computed in log space (``logaddexp``) so deep-tree scaling survives.
    The Gamma component goes through :func:`scaled_log_likelihoods` — the
    same zero/dead handling as the unmixed paths — so a pattern whose
    Gamma likelihood is exactly 0 contributes only its invariant mass.
    """
    log_gamma = scaled_log_likelihoods(site_gamma, scale) + np.log1p(-pinv)
    with np.errstate(divide="ignore"):
        log_inv = np.where(
            inv_prob > 0.0, np.log(pinv) + np.log(np.maximum(inv_prob, 1e-300)), -np.inf
        )
    return np.logaddexp(log_gamma, log_inv)


def branch_derivatives_pinv(
    sumtable: np.ndarray,
    eigenvalues: np.ndarray,
    rates: np.ndarray,
    z: float,
    weights: np.ndarray,
    scale: np.ndarray | None,
    pinv: float,
    inv_prob: np.ndarray,
) -> tuple[float, float]:
    """Branch-length derivatives under the +I mixture.

    Only the Gamma component depends on the branch length, so with
    ``l = (1-p) g + p c`` (c constant per pattern):

        dlnL/dz  = sum_i w_i (1-p) g'_i / l_i
        d2lnL/dz = sum_i w_i [ (1-p) g''_i / l_i - ((1-p) g'_i / l_i)^2 ]

    The Gamma terms carry the scaling factor 2^(256 * c_i); it is unwound
    here (patterns scaled once or more have vanishing Gamma likelihoods in
    absolute terms, which is exactly when the invariant component
    dominates).
    """
    coef = np.outer(rates, eigenvalues)
    expo = np.exp(coef * z)
    k = sumtable.shape[0]
    g = np.einsum("kmj,kj->m", sumtable, expo) / k
    g1 = np.einsum("kmj,kj->m", sumtable, coef * expo) / k
    g2 = np.einsum("kmj,kj->m", sumtable, coef * coef * expo) / k
    if scale is not None:
        unscale = np.exp(-scale.astype(np.float64) * LOG_SCALE_FACTOR)
        g = g * unscale
        g1 = g1 * unscale
        g2 = g2 * unscale
    q = 1.0 - pinv
    site = q * g + pinv * inv_prob
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio1 = q * g1 / site
        ratio2 = q * g2 / site
    _drop_undefined_ratios(ratio1, ratio2, scale)
    dlnl = float(np.dot(weights, ratio1))
    d2lnl = float(np.dot(weights, ratio2 - ratio1 * ratio1))
    return dlnl, d2lnl


def _drop_undefined_ratios(
    ratio1: np.ndarray, ratio2: np.ndarray, scale: np.ndarray | None
) -> None:
    """Zero the derivative contributions of patterns whose likelihood is
    exactly 0 (site == 0 makes l'/l undefined; a dead pattern's -inf
    log-likelihood is flat in the branch length, so 0 is the correct
    contribution — and it keeps one impossible pattern from poisoning the
    whole Newton step with NaN/inf)."""
    dead = zero_pattern_mask(scale)
    bad = ~(np.isfinite(ratio1) & np.isfinite(ratio2))
    if dead is not None:
        bad |= dead
    if bad.any():
        ratio1[bad] = 0.0
        ratio2[bad] = 0.0


def branch_derivatives(
    sumtable: np.ndarray,
    eigenvalues: np.ndarray,
    rates: np.ndarray,
    z: float,
    weights: np.ndarray,
    scale: np.ndarray | None = None,
) -> tuple[float, float]:
    """First and second derivative of the log-likelihood w.r.t. the branch
    length, from the sumtable (one Newton-Raphson iteration's work).

    Ordinary scaling counters cancel in the ratios l'/l and l''/l; the
    counter array is consulted only to drop patterns carrying the
    :data:`ZERO_SCALE` dead sentinel (their flushed CLV dummies would
    otherwise contribute plausible-looking finite ratios).
    """
    coef = np.outer(rates, eigenvalues)               # (K, j) = r_k lambda_j
    expo = np.exp(coef * z)
    k = sumtable.shape[0]
    site = np.einsum("kmj,kj->m", sumtable, expo) / k
    d1 = np.einsum("kmj,kj->m", sumtable, coef * expo) / k
    d2 = np.einsum("kmj,kj->m", sumtable, coef * coef * expo) / k
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio1 = d1 / site
        ratio2 = d2 / site
    _drop_undefined_ratios(ratio1, ratio2, scale)
    dlnl = float(np.dot(weights, ratio1))
    d2lnl = float(np.dot(weights, ratio2 - ratio1 * ratio1))
    return dlnl, d2lnl
