"""Eigendecomposition of reversible rate matrices and P(t) computation.

For a reversible Q with stationary distribution pi, the similarity
transform ``B = D Q D^{-1}`` with ``D = diag(sqrt(pi))`` is symmetric, so Q
has a real eigensystem computable with the stable symmetric solver:

    B = W L W^T  (W orthogonal)  =>  Q = U L V,  U = D^{-1} W,  V = W^T D

and the transition matrix for elapsed time t is ``P(t) = U exp(L t) V``.

The decomposition also yields the branch-length derivative machinery used
by Newton-Raphson (Section III of the paper): since only the exponentials
depend on t,

    P'(t)  = U (L   exp(L t)) V
    P''(t) = U (L^2 exp(L t)) V

and per-site likelihoods across a branch become weighted sums of
``exp(lambda_j * r_k * t)`` terms (see :mod:`repro.plk.kernel`'s sumtable).
"""
from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from .models import SubstitutionModel

__all__ = ["EigenSystem"]

# Process-wide memo for :meth:`EigenSystem.for_model`.  SubstitutionModel
# is frozen with read-only arrays, so an eigensystem computed once is
# valid for the model's whole lifetime.  Keyed by object identity (the
# model holds ndarrays and is unhashable); a weakref finalizer evicts the
# entry when the model is collected, so a recycled id() can never alias.
_EIGEN_CACHE: dict[int, "EigenSystem"] = {}


@dataclass(frozen=True)
class EigenSystem:
    """Cached eigensystem of a substitution model's Q matrix.

    Attributes
    ----------
    eigenvalues:
        ``(states,)`` real eigenvalues of Q; all <= 0 with exactly one zero
        (the stationary mode).
    u, v:
        Right/left eigenvector matrices with ``Q = u @ diag(eigenvalues) @ v``
        and ``u @ v == I``.
    frequencies:
        Stationary frequencies pi (copied from the model).
    """

    eigenvalues: np.ndarray
    u: np.ndarray
    v: np.ndarray
    frequencies: np.ndarray

    @classmethod
    def from_model(cls, model: SubstitutionModel) -> "EigenSystem":
        q = model.q_matrix()
        pi = model.frequencies
        sqrt_pi = np.sqrt(pi)
        b = (sqrt_pi[:, None] * q) / sqrt_pi[None, :]
        # Enforce exact symmetry before eigh (q construction is symmetric up
        # to rounding).
        b = 0.5 * (b + b.T)
        lam, w = np.linalg.eigh(b)
        u = w / sqrt_pi[:, None]
        v = w.T * sqrt_pi[None, :]
        for arr in (lam, u, v):
            arr.setflags(write=False)
        return cls(eigenvalues=lam, u=u, v=v, frequencies=pi)

    @classmethod
    def for_model(cls, model: SubstitutionModel) -> "EigenSystem":
        """Memoized :meth:`from_model`: one decomposition per model object.

        A service holding model objects across requests (and every
        :class:`~repro.plk.likelihood.PartitionLikelihood` built from
        them, including in forked worker children) shares a single
        eigendecomposition instead of recomputing ``eigh`` per request.
        """
        key = id(model)
        eigen = _EIGEN_CACHE.get(key)
        if eigen is None:
            eigen = cls.from_model(model)
            _EIGEN_CACHE[key] = eigen
            weakref.finalize(model, _EIGEN_CACHE.pop, key, None)
        return eigen

    @property
    def states(self) -> int:
        return self.eigenvalues.shape[0]

    def transition_matrix(self, t: float, rate: float = 1.0) -> np.ndarray:
        """P(rate * t) for a single rate; ``(states, states)``."""
        expl = np.exp(self.eigenvalues * (rate * t))
        return (self.u * expl[None, :]) @ self.v

    def transition_matrices(self, t: float, rates: np.ndarray) -> np.ndarray:
        """P(r_k * t) for all Gamma categories; ``(ncat, states, states)``.

        Vectorized over categories: one batched matmul.
        """
        rates = np.asarray(rates, dtype=np.float64)
        expl = np.exp(np.outer(rates * t, self.eigenvalues))  # (ncat, s)
        return (self.u[None, :, :] * expl[:, None, :]) @ self.v

    def transition_derivatives(
        self, t: float, rates: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(P, dP/dt, d2P/dt2) stacked over Gamma categories.

        Note the chain rule: category k evolves at ``r_k * t`` so the
        derivative w.r.t. the *branch length* t carries a factor r_k.
        """
        rates = np.asarray(rates, dtype=np.float64)
        scaled = np.outer(rates, self.eigenvalues)           # (ncat, s) = r_k*lam_j
        expl = np.exp(scaled * t)
        p = (self.u[None] * expl[:, None, :]) @ self.v
        dp = (self.u[None] * (scaled * expl)[:, None, :]) @ self.v
        d2p = (self.u[None] * (scaled**2 * expl)[:, None, :]) @ self.v
        return p, dp, d2p
