"""Schedule diagnostics: where does a trace's parallel time go?

Machine-independent metrics of a captured schedule that predict its
parallel behaviour before any simulation:

* region-size distribution — oldPAR schedules are dominated by regions
  whose serial work is a single partition's patterns;
* per-thread *shareability* — for T threads, the average fraction of a
  region's work the busiest thread holds (1/T is perfect);
* the synchronization-to-work ratio under a given barrier cost.

Used by the ``trace_anatomy`` example and the ablation benchmarks.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trace import Trace
from ..parallel.distribution import partition_thread_counts

__all__ = ["ScheduleDiagnostics", "diagnose_trace"]


@dataclass
class ScheduleDiagnostics:
    """Summary statistics of a captured schedule."""

    n_regions: int
    #: serial pattern-ops per region: min / median / mean / max
    region_ops_quantiles: tuple[float, float, float, float]
    #: fraction of regions touching a single partition
    single_partition_fraction: float
    #: mean over regions of (busiest thread's share of the region's work)
    #: for the given thread count; 1/T == perfectly balanced
    mean_busiest_share: float
    #: total serial pattern-ops
    total_ops: int
    n_threads: int

    def balance_efficiency(self) -> float:
        """Ideal-machine parallel efficiency implied by the schedule alone
        (no sync costs): 1 / (T * mean busiest share)."""
        return 1.0 / (self.n_threads * self.mean_busiest_share)

    def summary(self) -> str:
        lo, med, mean, hi = self.region_ops_quantiles
        return (
            f"regions={self.n_regions:,}  ops/region median={med:,.0f} "
            f"mean={mean:,.0f}  single-partition={self.single_partition_fraction:.0%}  "
            f"balance-eff@{self.n_threads}T={self.balance_efficiency():.0%}"
        )


def diagnose_trace(
    trace: Trace, n_threads: int = 16, distribution: str = "cyclic"
) -> ScheduleDiagnostics:
    """Compute machine-independent schedule metrics for a trace."""
    if trace.pattern_counts is None:
        raise ValueError("trace not finalized")
    counts = trace.pattern_counts
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    total_patterns = int(counts.sum())
    shares = {
        p: partition_thread_counts(
            distribution, int(offsets[p]), int(counts[p]), total_patterns, n_threads
        ).astype(np.float64)
        for p in range(len(counts))
    }

    region_ops: list[float] = []
    busiest: list[float] = []
    single = 0
    for region in trace.regions:
        ops = region.total_pattern_ops()
        region_ops.append(ops)
        if len(region.active_partitions()) == 1:
            single += 1
        work = np.zeros(n_threads)
        for item in region.items:
            work += shares[item.partition] * item.count
        total = work.sum()
        busiest.append(float(work.max() / total) if total > 0 else 1.0)

    ops_arr = np.asarray(region_ops)
    return ScheduleDiagnostics(
        n_regions=trace.n_regions,
        region_ops_quantiles=(
            float(ops_arr.min()),
            float(np.median(ops_arr)),
            float(ops_arr.mean()),
            float(ops_arr.max()),
        ),
        single_partition_fraction=single / max(trace.n_regions, 1),
        mean_busiest_share=float(np.mean(busiest)),
        total_ops=int(ops_arr.sum()),
        n_threads=n_threads,
    )
