"""Benchmark harness: experiment capture/caching and paper-style reports."""
from .diagnostics import ScheduleDiagnostics, diagnose_trace
from .report import (
    FIGURE_PLATFORMS,
    RuntimeRow,
    SpeedupSeries,
    format_runtime_figure,
    format_speedup_figure,
    improvement_factors,
    runtime_figure,
    speedup_figure,
)
from .runner import cache_dir, cached_trace, capture_experiment

__all__ = [
    "FIGURE_PLATFORMS",
    "ScheduleDiagnostics",
    "diagnose_trace",
    "RuntimeRow",
    "SpeedupSeries",
    "cache_dir",
    "cached_trace",
    "capture_experiment",
    "format_runtime_figure",
    "format_speedup_figure",
    "improvement_factors",
    "runtime_figure",
    "speedup_figure",
]
