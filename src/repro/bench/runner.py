"""Experiment runner: capture (and cache) analysis traces for benchmarks.

Trace capture means running the *real* optimizers and search on the real
(simulated-data) likelihood kernel — expensive for the 50,000-column
datasets — so captured traces are pickled to a cache directory keyed by
the experiment parameters.  Benchmarks then replay cached traces through
the machine simulator, which is fast and deterministic.

Set ``REPRO_TRACE_CACHE`` to relocate the cache (default:
``~/.cache/repro-traces``).  Delete the directory to force recapture.
"""
from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Callable

from ..core.analysis import (
    run_model_optimization,
    run_tree_search,
    unpartitioned_view,
)
from ..core.trace import Trace
from ..seqgen.datasets import paper_dataset

__all__ = ["cache_dir", "cached_trace", "capture_experiment"]

#: bump to invalidate caches when capture semantics change
CACHE_VERSION = 5


def cache_dir() -> Path:
    root = os.environ.get("REPRO_TRACE_CACHE")
    path = Path(root) if root else Path.home() / ".cache" / "repro-traces"
    path.mkdir(parents=True, exist_ok=True)
    return path


def cached_trace(key: str, builder: Callable[[], Trace]) -> Trace:
    """Fetch a trace from the cache, building and storing it on a miss."""
    path = cache_dir() / f"v{CACHE_VERSION}_{key}.pkl"
    if path.exists():
        with path.open("rb") as fh:
            return pickle.load(fh)
    trace = builder()
    tmp = path.with_suffix(".tmp")
    with tmp.open("wb") as fh:
        pickle.dump(trace, fh)
    tmp.replace(path)
    return trace


def capture_experiment(
    dataset: str,
    analysis: str,
    strategy: str,
    branch_mode: str = "per_partition",
    unpartitioned: bool = False,
    radius: int = 2,
    max_rounds: int = 1,
    max_candidates: int | None = 150,
    seed: int = 0,
) -> Trace:
    """Capture one (dataset, analysis, strategy, mode) schedule.

    Parameters
    ----------
    dataset:
        Paper dataset id (``d50_50000_p1000`` or ``r125_19839``).
    analysis:
        ``"search"`` (full ML tree search) or ``"modelopt"`` (model
        parameter optimization on the fixed input tree).
    strategy:
        ``"old"`` or ``"new"``.
    unpartitioned:
        Collapse the scheme to one partition (the Fig. 6 baseline).
    """
    if analysis not in ("search", "modelopt"):
        raise ValueError("analysis must be 'search' or 'modelopt'")
    key = "_".join(
        [
            dataset,
            analysis,
            strategy,
            branch_mode,
            "unpart" if unpartitioned else "part",
            f"r{radius}",
            f"m{max_rounds}",
            f"c{max_candidates}",
            f"s{seed}",
        ]
    )

    def build() -> Trace:
        ds = paper_dataset(dataset)
        data = ds.partitioned()
        if unpartitioned:
            data = unpartitioned_view(data)
        if analysis == "modelopt":
            run = run_model_optimization(
                data,
                ds.tree,
                strategy=strategy,
                branch_mode=branch_mode,
                initial_lengths=ds.true_lengths,
                max_rounds=max_rounds + 1,
                seed=seed,
            )
        else:
            run = run_tree_search(
                data,
                ds.tree,
                strategy=strategy,
                branch_mode=branch_mode,
                initial_lengths=ds.true_lengths,
                radius=radius,
                max_rounds=max_rounds,
                max_candidates=max_candidates,
                seed=seed,
            )
        return run.trace

    return cached_trace(key, build)
