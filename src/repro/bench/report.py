"""Paper-style result tables from simulator replays.

Each figure in the paper's evaluation is a set of runtimes or speedups
derived from (trace, platform, threads, strategy) combinations; the
helpers here produce exactly the rows/series the figures plot, as plain
data plus formatted text (EXPERIMENTS.md embeds their output).
"""
from __future__ import annotations

from dataclasses import dataclass, field

from ..core.trace import Trace
from ..simmachine.machine import MachineSpec
from ..simmachine.platforms import BARCELONA, CLOVERTOWN, NEHALEM, X4600
from ..simmachine.simulator import simulate_trace

__all__ = [
    "RuntimeRow",
    "runtime_figure",
    "format_runtime_figure",
    "speedup_figure",
    "format_speedup_figure",
    "improvement_factors",
]

#: the paper's platform order in Figures 3-5
FIGURE_PLATFORMS: tuple[MachineSpec, ...] = (NEHALEM, CLOVERTOWN, BARCELONA, X4600)


@dataclass
class RuntimeRow:
    """One platform's bar group in a Fig. 3/4/5-style plot."""

    platform: str
    sequential: float
    old8: float
    new8: float
    old16: float | None = None
    new16: float | None = None

    def improvement(self, threads: int) -> float | None:
        """oldPAR/newPAR runtime ratio (the paper's 'improvement')."""
        if threads == 8:
            return self.old8 / self.new8
        if threads == 16 and self.old16 and self.new16:
            return self.old16 / self.new16
        return None


def runtime_figure(
    old_trace: Trace,
    new_trace: Trace,
    platforms: tuple[MachineSpec, ...] = FIGURE_PLATFORMS,
    distribution: str = "cyclic",
) -> list[RuntimeRow]:
    """The Fig. 3/4/5 data: sequential, old/new at 8 threads, old/new at
    16 threads (where the platform has 16 cores)."""
    rows: list[RuntimeRow] = []
    for machine in platforms:
        seq = simulate_trace(new_trace, machine, 1, distribution).total_seconds
        row = RuntimeRow(
            platform=machine.name,
            sequential=seq,
            old8=simulate_trace(old_trace, machine, 8, distribution).total_seconds,
            new8=simulate_trace(new_trace, machine, 8, distribution).total_seconds,
        )
        if machine.cores >= 16:
            row.old16 = simulate_trace(old_trace, machine, 16, distribution).total_seconds
            row.new16 = simulate_trace(new_trace, machine, 16, distribution).total_seconds
        rows.append(row)
    return rows


def format_runtime_figure(rows: list[RuntimeRow], title: str) -> str:
    out = [title]
    header = (
        f"{'platform':<12} {'sequential':>11} {'old-8':>9} {'new-8':>9} "
        f"{'old-16':>9} {'new-16':>9} {'imp@8':>6} {'imp@16':>7}"
    )
    out.append(header)
    out.append("-" * len(header))
    for r in rows:
        o16 = f"{r.old16:9.1f}" if r.old16 is not None else f"{'-':>9}"
        n16 = f"{r.new16:9.1f}" if r.new16 is not None else f"{'-':>9}"
        i16 = f"{r.improvement(16):7.2f}" if r.improvement(16) else f"{'-':>7}"
        out.append(
            f"{r.platform:<12} {r.sequential:11.1f} {r.old8:9.1f} {r.new8:9.1f} "
            f"{o16} {n16} {r.improvement(8):6.2f} {i16}"
        )
    return "\n".join(out)


@dataclass
class SpeedupSeries:
    """One curve in a Fig. 6-style speedup plot."""

    label: str
    speedups: dict[int, float] = field(default_factory=dict)


def speedup_figure(
    traces: dict[str, Trace],
    machine: MachineSpec = NEHALEM,
    thread_counts: tuple[int, ...] = (2, 4, 8),
    distribution: str = "cyclic",
) -> list[SpeedupSeries]:
    """Fig. 6: speedups over the matching 1-thread replay for each labelled
    trace (``{"Unpartitioned": ..., "New": ..., "Old": ...}``)."""
    series: list[SpeedupSeries] = []
    for label, trace in traces.items():
        base = simulate_trace(trace, machine, 1, distribution).total_seconds
        sp = {
            t: base / simulate_trace(trace, machine, t, distribution).total_seconds
            for t in thread_counts
        }
        series.append(SpeedupSeries(label=label, speedups=sp))
    return series


def format_speedup_figure(series: list[SpeedupSeries], title: str) -> str:
    threads = sorted({t for s in series for t in s.speedups})
    out = [title, f"{'threads':<16}" + "".join(f"{t:>8}" for t in threads)]
    out.append("-" * (16 + 8 * len(threads)))
    for s in series:
        out.append(
            f"{s.label:<16}"
            + "".join(f"{s.speedups.get(t, float('nan')):8.2f}" for t in threads)
        )
    return "\n".join(out)


def improvement_factors(rows: list[RuntimeRow]) -> dict[str, dict[int, float]]:
    """Per-platform old/new improvement factors at 8 and 16 threads."""
    out: dict[str, dict[int, float]] = {}
    for r in rows:
        entry: dict[int, float] = {8: r.improvement(8)}
        if r.improvement(16):
            entry[16] = r.improvement(16)
        out[r.platform] = entry
    return out
