"""ML tree search: lazy-SPR hill climbing (the RAxML search loop).

The paper's "full ML tree search" experiments drive exactly this loop:
alternate *tree search phases* (scan SPR candidates, each evaluated with a
partial traversal plus a quick local branch-length optimization — the
Newton-Raphson work whose per-partition imbalance the paper studies) with
*model optimization phases* (Brent on alpha/rates plus full branch-length
smoothing).  The optimization strategy ("old" per-partition vs "new"
simultaneous) threads through every optimizer call, so a search run
recorded with a :class:`~repro.core.trace.TraceRecorder` captures the full
oldPAR or newPAR schedule for the machine simulator.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.engine import PartitionedEngine
from ..core.strategies import (
    optimize_alpha,
    optimize_branch_lengths,
    optimize_model,
)
from .moves import nni_swap, spr_move, spr_targets

__all__ = ["SearchResult", "spr_round", "nni_round", "tree_search"]

#: minimum log-likelihood gain for accepting a topology move
ACCEPT_EPS = 1e-3


@dataclass
class SearchResult:
    """Outcome of a tree search."""

    loglikelihood: float
    rounds: int
    accepted_moves: int
    evaluated_moves: int
    history: list[float] = field(default_factory=list)


def _restore_lengths(engine: PartitionedEngine, edges: list[int], saved: np.ndarray) -> None:
    """Put back the per-partition lengths of ``edges`` (saved rows of the
    (E, P) length matrix)."""
    for row, edge in enumerate(edges):
        for p in range(engine.n_partitions):
            engine.parts[p].set_branch_length(edge, float(saved[row, p]))


def spr_round(
    engine: PartitionedEngine,
    strategy: str = "new",
    radius: int = 5,
    best_lnl: float | None = None,
    max_candidates: int | None = None,
    accept: str = "first",
) -> tuple[float, int, int]:
    """One SPR sweep: try pruning every eligible branch and regrafting
    within ``radius``.

    Each candidate is scored after a 1-pass Newton-Raphson optimization of
    the three branches around the insertion point (RAxML's lazy-SPR local
    optimization), using the selected strategy.  ``max_candidates`` bounds
    the number of evaluated rearrangements (used by the benchmark harness
    to cap trace-capture cost on the 50,000-column datasets).

    ``accept`` selects the acceptance policy per prune edge:
    ``"first"`` (default) greedily keeps the first improving regraft;
    ``"best"`` scores every regraft of the prune edge and applies the best
    improvement (closer to RAxML's evaluate-all-then-apply behaviour,
    costlier per sweep).

    Returns ``(lnl, accepted, evaluated)``.
    """
    if accept not in ("first", "best"):
        raise ValueError("accept must be 'first' or 'best'")
    tree = engine.tree
    if best_lnl is None:
        best_lnl = engine.loglikelihood()
    accepted = 0
    evaluated = 0

    for prune_edge, _u, _v in list(tree.edges()):
        if max_candidates is not None and evaluated >= max_candidates:
            break
        # Re-read endpoints (accepted moves may rewire edge ids).
        u, v = tree.edge_nodes(prune_edge)
        # Eligible if the junction side is an inner node.
        if tree.is_leaf(u) and tree.is_leaf(v):
            continue
        try:
            targets = spr_targets(tree, prune_edge, radius)
        except ValueError:
            continue
        best_target: int | None = None
        best_target_lnl = best_lnl
        for target in targets:
            if max_candidates is not None and evaluated >= max_candidates:
                break
            lengths_before = engine.branch_lengths()
            try:
                move = spr_move(tree, prune_edge, target)
            except ValueError:
                continue
            evaluated += 1
            saved = lengths_before[move.changed_edges]
            with engine.tracer.span("spr", cat="search",
                                    prune=int(prune_edge), target=int(target)):
                engine.invalidate_topology(move.invalidate)
                optimize_branch_lengths(
                    engine, strategy, passes=1, edges=move.changed_edges
                )
                lnl = engine.loglikelihood(root_edge=target)
            if accept == "first" and lnl > best_lnl + ACCEPT_EPS:
                best_lnl = lnl
                accepted += 1
                break  # re-derive targets for the changed topology
            if accept == "best" and lnl > best_target_lnl + ACCEPT_EPS:
                best_target = target
                best_target_lnl = lnl
            move.undo()
            engine.invalidate_topology(move.invalidate)
            _restore_lengths(engine, move.changed_edges, saved)
        if accept == "best" and best_target is not None:
            # Re-apply the winning move (its branch lengths re-optimize).
            move = spr_move(tree, prune_edge, best_target)
            engine.invalidate_topology(move.invalidate)
            optimize_branch_lengths(
                engine, strategy, passes=1, edges=move.changed_edges
            )
            best_lnl = engine.loglikelihood(root_edge=best_target)
            accepted += 1
    return best_lnl, accepted, evaluated


def nni_round(
    engine: PartitionedEngine,
    strategy: str = "new",
    best_lnl: float | None = None,
) -> tuple[float, int, int]:
    """One NNI sweep over all internal edges (cheaper than SPR; used by
    the quickstart example and as a refinement pass)."""
    tree = engine.tree
    if best_lnl is None:
        best_lnl = engine.loglikelihood()
    accepted = 0
    evaluated = 0
    for edge, _u, _v in list(tree.edges()):
        # Re-read endpoints: an accepted move may have changed what this
        # edge id connects since the snapshot was taken.
        u, v = tree.edge_nodes(edge)
        if tree.is_leaf(u) or tree.is_leaf(v):
            continue
        for variant in (0, 1):
            lengths_before = engine.branch_lengths()
            move = nni_swap(tree, edge, variant)
            evaluated += 1
            saved = lengths_before[move.changed_edges]
            with engine.tracer.span("nni", cat="search",
                                    edge=int(edge), variant=variant):
                engine.invalidate_topology(move.invalidate)
                optimize_branch_lengths(
                    engine, strategy, passes=1, edges=[edge, *move.changed_edges]
                )
                lnl = engine.loglikelihood(root_edge=edge)
            if lnl > best_lnl + ACCEPT_EPS:
                best_lnl = lnl
                accepted += 1
                break
            move.undo()
            engine.invalidate_topology(move.invalidate)
            _restore_lengths(engine, move.changed_edges, saved)
    return best_lnl, accepted, evaluated


def tree_search(
    engine: PartitionedEngine,
    strategy: str = "new",
    radius: int = 5,
    max_rounds: int = 10,
    epsilon: float = 0.1,
    model_rounds: int = 1,
    moves: str = "spr",
    max_candidates: int | None = None,
    accept: str = "first",
) -> SearchResult:
    """Full ML tree search: alternate topology sweeps with model-parameter
    optimization until the likelihood improves by less than ``epsilon``
    per round (the structure of the paper's "full ML tree search"
    experiment).

    Parameters
    ----------
    moves:
        ``"spr"`` (default), ``"nni"``, or ``"both"``.
    """
    if moves not in ("spr", "nni", "both"):
        raise ValueError("moves must be 'spr', 'nni' or 'both'")
    lnl = optimize_model(
        engine, strategy, max_rounds=model_rounds, include_rates=True
    )
    history = [lnl]
    total_accepted = 0
    total_evaluated = 0
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        before = lnl
        with engine.tracer.span("search_round", cat="search", round=rounds):
            if moves in ("spr", "both"):
                lnl, acc, ev = spr_round(
                    engine, strategy, radius, lnl, max_candidates, accept
                )
                total_accepted += acc
                total_evaluated += ev
            if moves in ("nni", "both"):
                lnl, acc, ev = nni_round(engine, strategy, lnl)
                total_accepted += acc
                total_evaluated += ev
            lnl = optimize_model(
                engine, strategy, max_rounds=model_rounds, include_rates=False
            )
        history.append(lnl)
        if lnl - before < epsilon:
            break
    return SearchResult(
        loglikelihood=lnl,
        rounds=rounds,
        accepted_moves=total_accepted,
        evaluated_moves=total_evaluated,
        history=history,
    )
