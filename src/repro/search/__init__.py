"""ML tree search: parsimony starting trees, NNI/SPR rearrangements, and
the hill-climbing driver that alternates tree-search and model-optimization
phases (paper Section III)."""
from .moves import MoveResult, nni_swap, spr_move, spr_targets
from .parsimony import (
    directional_masks,
    encode_bitmasks,
    fitch_score,
    stepwise_addition_tree,
)
from .search import SearchResult, nni_round, spr_round, tree_search

__all__ = [
    "MoveResult",
    "SearchResult",
    "directional_masks",
    "encode_bitmasks",
    "fitch_score",
    "nni_round",
    "nni_swap",
    "spr_move",
    "spr_round",
    "spr_targets",
    "stepwise_addition_tree",
    "tree_search",
]
