"""Fitch parsimony: scoring and stepwise-addition starting trees.

RAxML builds its starting trees with randomized stepwise addition under
the parsimony criterion (much cheaper than likelihood, good enough to seed
hill climbing).  States are bitmasks (bit i set = state i possible), so
the Fitch recursion is two vectorized bitwise ops per node: intersection
where non-empty, else union plus one mutation.

Insertion scoring uses *directional* masks: for every edge (u, v) we keep
the Fitch state set of the component containing u as seen crossing toward
v.  Inserting a new leaf X into edge e with side masks A and B then costs

    delta(e) = cost3(A, B, X) - cost2(A, B)

where cost2/cost3 are the Fitch mutation counts of the local star — the
standard O(n * m)-per-insertion stepwise-addition evaluation.
"""
from __future__ import annotations

import numpy as np

from ..plk.alignment import Alignment
from ..plk.tree import Tree

__all__ = [
    "encode_bitmasks",
    "fitch_score",
    "directional_masks",
    "stepwise_addition_tree",
]


def encode_bitmasks(alignment: Alignment) -> tuple[np.ndarray, np.ndarray]:
    """Bitmask-encode the alignment's distinct patterns.

    Returns ``(masks, weights)``: ``(n_taxa, m')`` uint32 state bitmasks
    and the pattern weights.
    """
    patterns, weights, _ = alignment.compress()
    table = alignment.datatype.encoding_table()  # (256, s) indicators
    states = alignment.datatype.states
    if states > 32:
        raise ValueError("bitmask parsimony supports at most 32 states")
    powers = (1 << np.arange(states, dtype=np.uint64)).astype(np.uint32)
    bits = (table[patterns.matrix].astype(np.uint32) * powers).sum(axis=2)
    return bits.astype(np.uint32), weights


def _combine(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One Fitch step: (combined mask, per-pattern mutation indicator)."""
    inter = a & b
    empty = inter == 0
    return np.where(empty, a | b, inter), empty


def fitch_score(
    tree: Tree, masks: np.ndarray, weights: np.ndarray, root_edge: int = 0
) -> int:
    """Weighted Fitch parsimony score of the tree."""
    node_masks: dict[int, np.ndarray] = {
        leaf: masks[leaf] for leaf in range(tree.n_taxa)
    }
    total = 0
    for step in tree.postorder(root_edge):
        combined, mutated = _combine(node_masks[step.c1], node_masks[step.c2])
        node_masks[step.node] = combined
        total += int(weights[mutated].sum())
    a, b = tree.edge_nodes(root_edge)
    _, mutated = _combine(node_masks[a], node_masks[b])
    total += int(weights[mutated].sum())
    return total


def directional_masks(
    tree: Tree, masks: np.ndarray
) -> dict[tuple[int, int], np.ndarray]:
    """Fitch masks for every directed edge: ``result[(u, v)]`` is the state
    set of the component containing ``u`` as seen crossing the edge toward
    ``v``.  Two passes over the tree (down then up)."""
    out: dict[tuple[int, int], np.ndarray] = {}
    # Down pass: root at edge 0; M(child -> parent) bottom-up.
    a, b = tree.edge_nodes(0)
    parent = tree.orientation(0)
    for leaf in range(tree.n_taxa):
        if tree.degree(leaf) == 0:  # not yet inserted (stepwise addition)
            continue
        par = parent[leaf] if parent[leaf] >= 0 else (b if leaf == a else a)
        out[(leaf, par)] = masks[leaf]
    for step in tree.postorder(0):
        combined, _ = _combine(out[(step.c1, step.node)], out[(step.c2, step.node)])
        par = parent[step.node]
        if par == -1:
            par = b if step.node == a else a
        out[(step.node, par)] = combined

    # Up pass: preorder from the root edge; M(parent -> child) uses the
    # parent's other two incoming masks.
    stack: list[int] = [a, b]
    visited: set[int] = set()
    while stack:
        node = stack.pop()
        if node in visited or tree.is_leaf(node):
            continue
        visited.add(node)
        nbs = tree.neighbors(node)
        for child in nbs:
            if (node, child) in out:
                stack.append(child)
                continue
            others = [nb for nb in nbs if nb != child]
            combined, _ = _combine(out[(others[0], node)], out[(others[1], node)])
            out[(node, child)] = combined
            stack.append(child)
    return out


def _star_cost(weights: np.ndarray, *sets: np.ndarray) -> int:
    """Minimum Fitch mutations of a star joining the given state sets:
    0 if all share a state, 1 if some pair shares, else #sets - 1."""
    if len(sets) == 2:
        return int(weights[(sets[0] & sets[1]) == 0].sum())
    a, b, x = sets
    all3 = (a & b & x) != 0
    pair = ((a & b) != 0) | ((a & x) != 0) | ((b & x) != 0)
    cost = np.where(all3, 0, np.where(pair, 1, 2))
    return int((weights * cost).sum())


def stepwise_addition_tree(alignment: Alignment, rng: np.random.Generator) -> Tree:
    """Randomized stepwise-addition parsimony starting tree.

    Taxa are inserted in random order; each goes into the edge with the
    smallest local Fitch cost increase.  O(n^2 * m') total.
    """
    masks, weights = encode_bitmasks(alignment)
    n = alignment.n_taxa
    if n < 3:
        raise ValueError("need >= 3 taxa")
    order = [int(i) for i in rng.permutation(n)]

    tree = Tree(alignment.taxa)
    hub = tree.n_taxa
    tree._link(order[0], hub, 0)
    tree._link(order[1], hub, 1)
    tree._link(order[2], hub, 2)
    next_inner = hub + 1
    next_edge = 3

    for leaf in order[3:]:
        direction = directional_masks(tree, masks)
        best_edge = -1
        best_delta = None
        for eid, u, v in tree.edges():
            side_a = direction[(u, v)]
            side_b = direction[(v, u)]
            delta = _star_cost(weights, side_a, side_b, masks[leaf]) - _star_cost(
                weights, side_a, side_b
            )
            if best_delta is None or delta < best_delta:
                best_delta = delta
                best_edge = eid
        u, v = tree.edge_nodes(best_edge)
        tree._unlink(u, v)
        mid = next_inner
        next_inner += 1
        tree._link(u, mid, best_edge)
        tree._link(v, mid, next_edge)
        tree._link(leaf, mid, next_edge + 1)
        next_edge += 2
    tree.validate()
    return tree
