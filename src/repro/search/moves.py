"""Topology rearrangements: NNI and (lazy-)SPR.

All moves mutate the shared :class:`~repro.plk.tree.Tree` in place, reuse
the edge ids they free (so branch-length arrays stay aligned), and return
an undo closure plus the list of inner nodes whose conditional vectors the
likelihood engines must invalidate.  This mirrors RAxML: after a move only
a handful of likelihood arrays ("3-4 inner vectors on average", paper
Section IV) need recomputation.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..plk.tree import Tree

__all__ = ["MoveResult", "nni_swap", "spr_move", "spr_targets"]


@dataclass
class MoveResult:
    """Record of an applied move.

    Attributes
    ----------
    undo:
        Zero-argument callable restoring the previous topology (branch
        lengths are the caller's responsibility — the engines own those).
    invalidate:
        Inner nodes whose stored CLVs are stale in EITHER the new or the
        restored topology; pass to ``engine.invalidate_topology`` after
        apply and again after undo.
    changed_edges:
        Edge ids whose meaning (endpoints) changed.
    """

    undo: Callable[[], None]
    invalidate: list[int]
    changed_edges: list[int]


def nni_swap(tree: Tree, edge: int, variant: int = 0) -> MoveResult:
    """Nearest-neighbor interchange across an internal edge.

    The internal edge (u, v) defines four subtrees: (a, b) hanging off u
    and (c, d) hanging off v.  ``variant`` 0 swaps b and c; ``variant`` 1
    swaps b and d.  Raises if ``edge`` touches a leaf.
    """
    if variant not in (0, 1):
        raise ValueError("NNI variant must be 0 or 1")
    u, v = tree.edge_nodes(edge)
    if tree.is_leaf(u) or tree.is_leaf(v):
        raise ValueError(f"edge {edge} is not internal")
    b = [nb for nb in tree.neighbors(u) if nb != v][1]
    targets = [nb for nb in tree.neighbors(v) if nb != u]
    c = targets[variant]

    eb = tree.edge_between(u, b)
    ec = tree.edge_between(v, c)
    tree._unlink(u, b)
    tree._unlink(v, c)
    tree._link(u, c, eb)
    tree._link(v, b, ec)

    def undo() -> None:
        tree._unlink(u, c)
        tree._unlink(v, b)
        tree._link(u, b, eb)
        tree._link(v, c, ec)

    return MoveResult(undo=undo, invalidate=[u, v], changed_edges=[eb, ec])


def spr_targets(tree: Tree, prune_edge: int, radius: int) -> list[int]:
    """Candidate regraft edges for pruning the subtree hanging on
    ``prune_edge``: all edges within ``radius`` hops of the pruning point,
    excluding edges inside the pruned subtree and the edges dissolved by
    the prune itself.  Ordered by BFS distance (nearby first), which keeps
    consecutive evaluations topologically close — the locality RAxML's
    lazy SPR exploits."""
    s, a = tree.edge_nodes(prune_edge)
    # The pruned subtree hangs on the s side; a is the junction that
    # dissolves.  a must be an inner node.
    if tree.is_leaf(a):
        s, a = a, s
    if tree.is_leaf(a):
        raise ValueError("cannot prune across a cherry of two leaves")
    rest = [nb for nb in tree.neighbors(a) if nb != s]
    b, c = rest
    banned = {tree.edge_between(a, b), tree.edge_between(a, c), prune_edge}

    out: list[int] = []
    seen_nodes = {a, s}
    frontier = [b, c]
    for _ in range(radius):
        nxt: list[int] = []
        for node in frontier:
            if node in seen_nodes:
                continue
            seen_nodes.add(node)
            for nb in tree.neighbors(node):
                eid = tree.edge_between(node, nb)
                if eid not in banned:
                    banned.add(eid)
                    out.append(eid)
                if nb not in seen_nodes:
                    nxt.append(nb)
        frontier = nxt
        if not frontier:
            break
    return out


def spr_move(tree: Tree, prune_edge: int, target_edge: int) -> MoveResult:
    """Subtree-prune-and-regraft: detach the subtree hanging on
    ``prune_edge`` and reinsert it into ``target_edge``.

    Edge-id bookkeeping (ids are reused so length arrays stay valid):
    pruning junction ``a`` dissolves, fusing its other two edges into one
    (keeps one id, frees the other); regrafting splits the target edge,
    consuming the freed id.
    """
    s, a = tree.edge_nodes(prune_edge)
    if tree.is_leaf(a):
        s, a = a, s
    if tree.is_leaf(a):
        raise ValueError("cannot prune across a cherry of two leaves")
    b, c = [nb for nb in tree.neighbors(a) if nb != s]
    e_ab = tree.edge_between(a, b)
    e_ac = tree.edge_between(a, c)
    x, y = tree.edge_nodes(target_edge)
    if a in (x, y) or target_edge in (prune_edge, e_ab, e_ac):
        raise ValueError("target edge is adjacent to the pruning point")
    # The target must not be inside the pruned subtree.
    inside = _nodes_under(tree, s, a)
    if x in inside or y in inside:
        raise ValueError("target edge lies inside the pruned subtree")

    # Prune: dissolve a, fuse b-c reusing e_ab; free e_ac.
    tree._unlink(a, b)
    tree._unlink(a, c)
    tree._link(b, c, e_ab)
    # Regraft: split (x, y), reusing target_edge for x-a and e_ac for a-y.
    tree._unlink(x, y)
    tree._link(x, a, target_edge)
    tree._link(a, y, e_ac)

    def undo() -> None:
        tree._unlink(x, a)
        tree._unlink(a, y)
        tree._link(x, y, target_edge)
        tree._unlink(b, c)
        tree._link(a, b, e_ab)
        tree._link(a, c, e_ac)

    invalidate = [n for n in (a, b, c, x, y) if not tree.is_leaf(n)]
    return MoveResult(
        undo=undo,
        invalidate=invalidate,
        changed_edges=[e_ab, e_ac, target_edge],
    )


def _nodes_under(tree: Tree, node: int, parent: int) -> set[int]:
    """All nodes (leaves and inner) in the subtree of ``node`` away from
    ``parent``."""
    out = {node}
    stack = [(node, parent)]
    while stack:
        cur, par = stack.pop()
        for nb in tree.neighbors(cur):
            if nb != par:
                out.add(nb)
                stack.append((nb, cur))
    return out
