"""Newton-Raphson branch-length optimization, scalar and batched.

Branch lengths are optimized with Newton's method on the log-likelihood
(paper Section III): given the sumtable for a branch, each iteration costs
one pass over the branch's alignment patterns to form ``dlnL/dz`` and
``d2lnL/dz2`` and — in the parallel PLK — one reduction barrier.

The batched variant is newPAR's core: one Newton state machine per
partition advances in lock step, so each iteration's derivative pass covers
*all unconverged partitions at once* and the per-barrier work stays near
the full alignment width.  Partitions that converge are retired via the
convergence mask; iteration counts per partition are returned because they
drive the load-balance analysis.

Safeguards (mirroring RAxML's ``makenewz``): steps are clamped into
``[lower, upper]``; where the curvature is non-negative (not locally
concave) the update falls back to a damped gradient step; the step size is
capped per iteration to avoid overshooting.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["NewtonResult", "BatchedNewton", "newton_optimize"]

_MAX_STEP = 2.0  # cap on |dz| per iteration, in branch-length units


@dataclass
class NewtonResult:
    """Outcome of a (batched) Newton-Raphson run.

    ``iterations[i]`` is the number of derivative evaluations lane ``i``
    consumed — the per-partition convergence count the paper's Figure 3-6
    imbalance stems from.  ``rounds`` is the number of lock-step batch
    rounds (each one parallel region + barrier).
    """

    z: np.ndarray
    iterations: np.ndarray
    rounds: int
    converged: np.ndarray


class BatchedNewton:
    """Lock-step Newton-Raphson maximization of ``k`` independent
    log-likelihood curves ``lnL_i(z_i)``.

    The derivative oracle is
    ``fn(z: (k,) array, active: (k,) bool) -> (d1: (k,), d2: (k,))``;
    inactive entries are never read.

    An ``observer`` with an ``iteration(z, active)`` method (e.g. a
    :class:`repro.obs.ConvergenceLog`) receives every lock-step round's
    points and active mask — the per-partition convergence boolean vector
    whose decay drives the paper's load-balance analysis.
    """

    def __init__(
        self,
        lower: float = 1e-8,
        upper: float = 50.0,
        ztol: float = 1e-6,
        max_iter: int = 64,
    ):
        if lower >= upper:
            raise ValueError("need lower < upper")
        self.lower = float(lower)
        self.upper = float(upper)
        self.ztol = float(ztol)
        self.max_iter = int(max_iter)

    def initial_point(self, z0: np.ndarray) -> np.ndarray:
        """The first point :meth:`run` evaluates derivatives at for this
        start — callers that fuse the opening derivative pass into a
        preceding exchange (the parallel backends' prepare+deriv
        :class:`~repro.parallel.program.Program`) must evaluate exactly
        this point and hand the values back via ``first_eval``."""
        return np.clip(np.asarray(z0, dtype=np.float64), self.lower, self.upper)

    def run(
        self,
        fn: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]],
        z0: np.ndarray,
        mask: np.ndarray | None = None,
        observer=None,
        first_eval: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> NewtonResult:
        """Run the lock-step solve.

        ``first_eval``, if given, is a precomputed ``(d1, d2)`` pair for
        the first round — the oracle's value at :meth:`initial_point`
        ``(z0)`` under the full initial mask — consumed in place of the
        first ``fn`` call (command fusion: the caller already paid for it
        in an earlier exchange).  Observer callbacks and iteration counts
        are unchanged.
        """
        z = np.clip(np.asarray(z0, dtype=np.float64).copy(), self.lower, self.upper)
        k = z.shape[0]
        lanes = np.ones(k, dtype=bool) if mask is None else np.asarray(mask, bool).copy()
        active = lanes.copy()
        iterations = np.zeros(k, dtype=np.int64)
        rounds = 0

        for _ in range(self.max_iter):
            if not active.any():
                break
            d1 = np.zeros(k)
            d2 = np.zeros(k)
            if first_eval is not None:
                r1, r2 = first_eval
                first_eval = None
            else:
                r1, r2 = fn(z, active)
            d1[active] = np.asarray(r1, dtype=np.float64)[active]
            d2[active] = np.asarray(r2, dtype=np.float64)[active]
            if observer is not None:
                observer.iteration(z, active)
            iterations[active] += 1
            rounds += 1

            concave = d2 < 0.0
            with np.errstate(divide="ignore", invalid="ignore"):
                newton_step = np.where(concave, -d1 / d2, 0.0)
            # Fallback where not concave: damped gradient ascent.
            grad_step = np.sign(d1) * np.minimum(np.abs(d1), 1.0) * np.maximum(
                0.25 * np.abs(z), 1e-3
            )
            step = np.where(concave, newton_step, grad_step)
            step = np.clip(step, -_MAX_STEP, _MAX_STEP)
            z_new = np.clip(z + step, self.lower, self.upper)
            moved = np.abs(z_new - z)
            z = np.where(active, z_new, z)

            # A lane converges when its actual movement drops below ztol
            # (including being pinned at a bound with the gradient pointing
            # outward) or its gradient vanishes.
            settled = (moved < self.ztol) | (np.abs(d1) < 1e-10)
            active &= ~settled

        converged = lanes & ~active
        return NewtonResult(z=z, iterations=iterations, rounds=rounds, converged=converged)


def newton_optimize(
    fn: Callable[[float], tuple[float, float]],
    z0: float,
    lower: float = 1e-8,
    upper: float = 50.0,
    ztol: float = 1e-6,
    max_iter: int = 64,
) -> tuple[float, int, bool]:
    """Scalar Newton-Raphson maximization (the oldPAR per-partition path).

    Returns ``(z, n_iterations, converged)``.
    """
    solver = BatchedNewton(lower, upper, ztol, max_iter)

    def vec_fn(z: np.ndarray, active: np.ndarray):
        d1, d2 = fn(float(z[0]))
        return np.array([d1]), np.array([d2])

    res = solver.run(vec_fn, np.array([z0]))
    return float(res.z[0]), int(res.iterations[0]), bool(res.converged[0])
