"""Brent's method, scalar and batched (lock-step multi-partition).

"Classic" ML programs optimize the Q-matrix rates and the Gamma shape
parameter with Brent's derivative-free 1-D minimizer (paper Section III).
The paper's newPAR redesign requires running *one Brent state machine per
partition in lock step*: every iteration proposes one trial point per
still-active partition and evaluates all of them in a single batched
objective call (which, in the parallel PLK, is one full-tree traversal over
the union of active partitions — the big, well-balanced parallel region).
Partitions converge after different iteration counts; a boolean mask
retires them from the batch exactly as the paper's "appropriate boolean
vector" does.

The algorithm is the classical bounded Brent minimizer (golden-section
fallback + parabolic interpolation, Brent 1973 / FMIN), vectorized over
lanes with numpy.  ``BatchedBrent`` exposes the state machine; the
:func:`brent_minimize` convenience wrapper handles the scalar case.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["BatchedBrent", "BrentResult", "brent_minimize"]

_GOLD = 0.5 * (3.0 - np.sqrt(5.0))  # golden-section fraction
_SQRT_EPS = np.sqrt(np.finfo(np.float64).eps)


@dataclass
class BrentResult:
    """Outcome of a (batched) Brent minimization.

    Attributes
    ----------
    x:
        ``(k,)`` argmin estimates.
    fx:
        ``(k,)`` objective values at ``x``.
    iterations:
        ``(k,)`` number of objective evaluations each lane consumed before
        converging — the quantity whose per-partition variance causes the
        paper's load imbalance.
    rounds:
        Number of lock-step batch rounds executed (== max(iterations) for a
        fresh batch); each round is one parallel region in the PLK.
    converged:
        ``(k,)`` bool; False only if ``max_iter`` was exhausted.
    """

    x: np.ndarray
    fx: np.ndarray
    iterations: np.ndarray
    rounds: int
    converged: np.ndarray


class BatchedBrent:
    """Lock-step Brent minimization of ``k`` independent 1-D functions.

    Parameters
    ----------
    lower, upper:
        ``(k,)`` (or scalar) bounds per lane.
    xtol:
        Absolute convergence tolerance on x.
    max_iter:
        Per-lane iteration cap.

    The objective is supplied to :meth:`run` as
    ``fn(x: (k,) float array, active: (k,) bool array) -> (k,) float``;
    entries where ``active`` is False are never read.  Lanes may also be
    excluded from the whole run via the ``mask`` argument (used by oldPAR
    to run one partition at a time through the same code path).

    An ``observer`` with an ``iteration(x, active)`` method (e.g. a
    :class:`repro.obs.ConvergenceLog`) receives every lock-step round's
    trial points and active mask — the paper's per-partition convergence
    boolean vector, recorded as it evolves.
    """

    def __init__(
        self,
        lower: np.ndarray | float,
        upper: np.ndarray | float,
        xtol: float = 1e-4,
        max_iter: int = 100,
    ):
        self.lower = np.atleast_1d(np.asarray(lower, dtype=np.float64))
        self.upper = np.atleast_1d(np.asarray(upper, dtype=np.float64))
        if self.lower.shape != self.upper.shape:
            raise ValueError("bounds shape mismatch")
        if np.any(self.lower >= self.upper):
            raise ValueError("need lower < upper in every lane")
        self.xtol = float(xtol)
        self.max_iter = int(max_iter)

    def initial_point(self, guess: np.ndarray | None = None) -> np.ndarray:
        """The first probe point :meth:`run` evaluates for this guess —
        callers that fuse the opening objective evaluation into a
        preceding exchange (command fusion) must evaluate exactly this
        point and hand the values back via ``first_fx``."""
        a, b = self.lower, self.upper
        if guess is None:
            return a + _GOLD * (b - a)
        g = np.atleast_1d(np.asarray(guess, dtype=np.float64))
        pad = self.xtol + _SQRT_EPS * np.abs(g)
        # A bracket narrower than 2*pad would make the clip bounds
        # cross (np.clip with min > max returns max, i.e. x > b);
        # cap the pad at half the bracket width so a+pad <= b-pad.
        pad = np.minimum(pad, 0.5 * (b - a))
        return np.clip(g, a + pad, b - pad)

    def run(
        self,
        fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
        guess: np.ndarray | None = None,
        mask: np.ndarray | None = None,
        observer=None,
        first_fx: np.ndarray | None = None,
    ) -> BrentResult:
        """Run the lock-step solve.

        ``first_fx``, if given, is the precomputed objective at
        :meth:`initial_point` ``(guess)`` under the full initial mask,
        consumed in place of the first ``fn`` call (command fusion).
        Observer callbacks and iteration counts are unchanged.
        """
        k = self.lower.shape[0]
        a = self.lower.copy()
        b = self.upper.copy()
        lanes = np.ones(k, dtype=bool) if mask is None else np.asarray(mask, bool).copy()

        # Initial point: caller's guess clipped inside, else golden split.
        x = self.initial_point(guess)
        fx = np.full(k, np.inf)
        if first_fx is not None:
            fx[lanes] = np.asarray(first_fx, dtype=np.float64)[lanes]
        else:
            fx[lanes] = np.asarray(fn(x, lanes), dtype=np.float64)[lanes]
        if observer is not None:
            observer.iteration(x, lanes)

        w = x.copy()
        v = x.copy()
        fw = fx.copy()
        fv = fx.copy()
        d = np.zeros(k)
        e = np.zeros(k)
        iterations = np.zeros(k, dtype=np.int64)
        iterations[lanes] = 1
        active = lanes.copy()
        rounds = 1

        for _ in range(self.max_iter):
            xm = 0.5 * (a + b)
            tol1 = _SQRT_EPS * np.abs(x) + self.xtol / 3.0
            tol2 = 2.0 * tol1
            done = np.abs(x - xm) <= tol2 - 0.5 * (b - a)
            active &= ~done
            if not active.any():
                break

            # --- propose one trial point per active lane -----------------
            # Parabolic interpolation through (v, w, x); golden fallback.
            # (Lanes excluded by the mask carry inf objective values; their
            # proposals are computed but never used, so NaNs are harmless.)
            with np.errstate(invalid="ignore"):
                r = (x - w) * (fx - fv)
                q = (x - v) * (fx - fw)
                p = (x - v) * q - (x - w) * r
                q = 2.0 * (q - r)
                p = np.where(q > 0.0, -p, p)
                q = np.abs(q)
            etemp = e.copy()
            use_para = (
                (np.abs(etemp) > tol1)
                & (np.abs(p) < np.abs(0.5 * q * etemp))
                & (p > q * (a - x))
                & (p < q * (b - x))
                & (q != 0.0)
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                d_para = np.where(q != 0.0, p / q, 0.0)
            u_para = x + d_para
            # Parabolic step must not land within tol2 of a bound.
            d_para = np.where(
                (u_para - a < tol2) | (b - u_para < tol2),
                np.where(xm - x >= 0.0, tol1, -tol1),
                d_para,
            )
            e_para = d.copy()
            # Golden-section step.
            e_gold = np.where(x >= xm, a - x, b - x)
            d_gold = _GOLD * e_gold
            d = np.where(use_para, d_para, d_gold)
            e = np.where(use_para, e_para, e_gold)
            # Never step less than tol1.
            step = np.where(np.abs(d) >= tol1, d, np.where(d >= 0.0, tol1, -tol1))
            u = x + step

            fu = np.full(k, np.inf)
            fu[active] = np.asarray(fn(u, active), dtype=np.float64)[active]
            if observer is not None:
                observer.iteration(u, active)
            iterations[active] += 1
            rounds += 1

            # --- bookkeeping (vectorized NR updates, active lanes only) --
            better = fu <= fx
            upd = active & better
            # shrink the bracket around the new best point
            a = np.where(upd & (u >= x), x, a)
            b = np.where(upd & (u < x), x, b)
            v = np.where(upd, w, v)
            fv = np.where(upd, fw, fv)
            w = np.where(upd, x, w)
            fw = np.where(upd, fx, fw)
            x = np.where(upd, u, x)
            fx = np.where(upd, fu, fx)

            worse = active & ~better
            a = np.where(worse & (u < x), u, a)
            b = np.where(worse & (u >= x), u, b)
            repl_w = worse & ((fu <= fw) | (w == x))
            v = np.where(repl_w, w, v)
            fv = np.where(repl_w, fw, fv)
            w = np.where(repl_w, u, w)
            fw = np.where(repl_w, fu, fw)
            repl_v = worse & ~repl_w & ((fu <= fv) | (v == x) | (v == w))
            v = np.where(repl_v, u, v)
            fv = np.where(repl_v, fu, fv)

        converged = lanes & ~active
        return BrentResult(
            x=x, fx=fx, iterations=iterations, rounds=rounds, converged=converged
        )


def brent_minimize(
    fn: Callable[[float], float],
    lower: float,
    upper: float,
    guess: float | None = None,
    xtol: float = 1e-4,
    max_iter: int = 100,
) -> tuple[float, float, int]:
    """Scalar bounded Brent minimization.

    Returns ``(x, f(x), n_evaluations)``.  This is the oldPAR code path:
    each partition runs through here on its own, one objective evaluation —
    and hence one thread barrier — per iteration, touching only that
    partition's patterns.
    """
    solver = BatchedBrent(np.array([lower]), np.array([upper]), xtol, max_iter)

    def vec_fn(x: np.ndarray, active: np.ndarray) -> np.ndarray:
        return np.array([fn(float(x[0]))])

    res = solver.run(vec_fn, None if guess is None else np.array([guess]))
    return float(res.x[0]), float(res.fx[0]), int(res.iterations[0])
