"""Iterative optimizers used by the PLK (Brent and Newton-Raphson), in
scalar form (the oldPAR per-partition path) and batched lock-step form
(the newPAR simultaneous-partitions path, the paper's contribution)."""
from .brent import BatchedBrent, BrentResult, brent_minimize
from .newton import BatchedNewton, NewtonResult, newton_optimize

__all__ = [
    "BatchedBrent",
    "BatchedNewton",
    "BrentResult",
    "NewtonResult",
    "brent_minimize",
    "newton_optimize",
]
