"""Deterministic replay of kernel-op traces on a simulated multicore.

:func:`simulate_trace` executes a :class:`~repro.core.trace.Trace` — the
exact region/barrier schedule a real analysis run produced — under a
chosen :class:`~repro.simmachine.machine.MachineSpec`, thread count and
pattern-distribution policy, and reports the makespan plus a per-thread
busy/idle/sync decomposition.

Execution semantics (matching the Pthreads master/worker design of paper
Fig. 1):

1. the master dispatches the region's command (``dispatch_ns``, charged
   once per region when more than one thread runs);
2. every worker processes its share of every work item; the region's span
   is the *maximum* per-thread busy time (threads with little or no work
   idle until the slowest finishes — this idle time IS the load imbalance
   the paper studies);
3. one barrier (cost grows with thread count) retires the region.

Memory-bandwidth contention uses the number of *working* threads in the
region, so a region that keeps only 2 of 16 threads busy also only has 2
threads sharing DRAM.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.trace import Trace
from .costmodel import seconds_per_pattern
from .machine import MachineSpec

__all__ = ["SimulationResult", "simulate_trace", "speedup_curve"]


@dataclass
class SimulationResult:
    """Outcome of replaying one trace on one machine configuration."""

    machine: str
    n_threads: int
    distribution: str
    total_seconds: float
    busy_seconds: np.ndarray          # (T,) productive compute per thread
    idle_seconds: np.ndarray          # (T,) time waiting for the slowest
    sync_seconds: float               # dispatch + barrier total
    n_regions: int
    label_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def efficiency(self) -> float:
        """Mean busy fraction across threads (1.0 = perfect balance)."""
        denom = self.total_seconds * self.n_threads
        return float(self.busy_seconds.sum() / denom) if denom > 0 else 0.0

    @property
    def imbalance(self) -> float:
        """Max over mean per-thread busy seconds (1.0 = perfect balance) —
        the load metric the distribution policies minimize; directly
        comparable with :attr:`repro.perf.RunProfile.imbalance`."""
        from ..parallel.balance import imbalance_ratio

        return imbalance_ratio(self.busy_seconds)

    def decomposition(self) -> dict:
        """The shared predicted-vs-measured comparison shape (also
        implemented by :class:`repro.perf.RunProfile`), so a simulated
        prediction can be compared against a real profiled run with
        :func:`repro.perf.compare_decompositions`."""
        return {
            "n_workers": self.n_threads,
            "total_seconds": self.total_seconds,
            "busy_seconds": [float(b) for b in self.busy_seconds],
            "idle_seconds": [float(i) for i in self.idle_seconds],
            "sync_seconds": self.sync_seconds,
            "efficiency": self.efficiency,
        }

    def summary(self) -> str:
        return (
            f"{self.machine:<11} T={self.n_threads:<3} {self.distribution:<6} "
            f"time={self.total_seconds:10.2f}s  efficiency={self.efficiency:6.1%}  "
            f"sync={self.sync_seconds:8.2f}s"
        )


def simulate_trace(
    trace: Trace,
    machine: MachineSpec,
    n_threads: int,
    distribution=None,
) -> SimulationResult:
    """Replay ``trace`` with ``n_threads`` workers on ``machine``.

    ``distribution`` is any policy name from
    :data:`repro.parallel.DISTRIBUTIONS` (``cyclic``, ``block``,
    ``weighted``, ``lpt``) or a prebuilt
    :class:`~repro.parallel.balance.DistributionPlan`; ``None`` (the
    default) uses the policy stamped on the trace at capture time
    (``trace.distribution``, itself defaulting to ``cyclic``).
    """
    # Imported lazily: repro.parallel.balance itself imports nothing from
    # simmachine, but going through the repro.parallel package here at
    # module scope would create an import cycle.
    from ..parallel.balance import DistributionPlan, PartitionLayout, build_plan

    if trace.pattern_counts is None or trace.states is None:
        raise ValueError("trace not finalized: missing dataset geometry")
    if n_threads < 1:
        raise ValueError("need at least one thread")
    if n_threads > machine.cores:
        raise ValueError(
            f"{machine.name} has {machine.cores} cores; cannot run {n_threads} threads"
        )

    counts = trace.pattern_counts
    categories = trace.categories
    t = n_threads

    if distribution is None:
        distribution = getattr(trace, "distribution", "cyclic")
    if isinstance(distribution, DistributionPlan):
        plan = distribution
        if plan.n_threads != t:
            raise ValueError(
                f"plan built for {plan.n_threads} threads, simulating {t}"
            )
    else:
        plan = build_plan(PartitionLayout.from_trace(trace), t, distribution)

    # Per-partition per-thread counts are fixed per plan (they do not
    # change between regions).
    shares: dict[int, np.ndarray] = {
        p: plan.counts[p] for p in range(len(counts))
    }

    busy = np.zeros(t)
    idle = np.zeros(t)
    sync = 0.0
    total = 0.0
    label_time: dict[str, float] = {}
    dispatch = machine.dispatch_seconds() if t > 1 else 0.0
    barrier = machine.barrier_seconds(t)
    overhead = dispatch + barrier

    n_parts = len(counts)
    share_matrix = np.stack([shares[p] for p in range(n_parts)])  # (P, T)
    active_per_part = np.maximum((share_matrix > 0).sum(axis=1), 1)
    max_share = share_matrix.max(axis=1).astype(np.float64)
    from .costmodel import _OP_INDEX  # op name -> row in the spp table

    spp_table = np.empty((n_parts, len(_OP_INDEX)))
    for p in range(n_parts):
        for op, j in _OP_INDEX.items():
            spp_table[p, j] = seconds_per_pattern(
                op, int(trace.states[p]), categories, machine, int(active_per_part[p])
            )

    # Fast path: regions whose items all touch ONE partition (the
    # overwhelming majority in oldPAR traces: every NR iteration, sumtable
    # setup and per-partition Brent objective) are costed in bulk with
    # array arithmetic; genuinely multi-partition regions (newPAR batches,
    # whole-alignment evaluations) fall back to the general loop.  The
    # split is structural, so it is compiled once per trace and memoized.
    compiled = getattr(trace, "_compiled_regions", None)
    if compiled is None:
        item_p: list[int] = []
        item_op: list[int] = []
        item_cnt: list[int] = []
        item_region: list[int] = []
        region_p: list[int] = []
        region_label: list[str] = []
        multi: list[Region] = []
        for region in trace.regions:
            parts_touched = {it.partition for it in region.items}
            if len(parts_touched) == 1:
                rid = len(region_p)
                region_p.append(next(iter(parts_touched)))
                region_label.append(region.label)
                for it in region.items:
                    item_p.append(it.partition)
                    item_op.append(_OP_INDEX[it.op])
                    item_cnt.append(it.count)
                    item_region.append(rid)
            else:
                multi.append(region)
        compiled = (
            np.asarray(item_p, dtype=np.intp),
            np.asarray(item_op, dtype=np.intp),
            np.asarray(item_cnt, dtype=np.float64),
            np.asarray(item_region, dtype=np.intp),
            np.asarray(region_p, dtype=np.intp),
            tuple(region_label),
            tuple(multi),
        )
        trace._compiled_regions = compiled
    (item_p, item_op, item_cnt, item_region,
     region_p, region_label, multi) = compiled

    if len(region_p):
        # per-item time for one "pattern row" share, then summed per region
        unit = spp_table[item_p, item_op] * item_cnt
        region_unit = np.zeros(len(region_p))
        np.add.at(region_unit, item_region, unit)
        spans = max_share[region_p] * region_unit
        total += float(spans.sum()) + overhead * len(region_p)
        sync += overhead * len(region_p)
        # busy: group item work by (partition, op)
        weight = np.zeros((n_parts, len(_OP_INDEX)))
        np.add.at(weight, (item_p, item_op), item_cnt)
        per_part_time = (weight * spp_table).sum(axis=1)  # (P,)
        single_busy = share_matrix.T @ per_part_time
        busy += single_busy
        idle += float(spans.sum()) - single_busy
        # per-label totals, vectorized via label interning
        label_names = sorted({lab for lab in region_label if lab})
        if label_names:
            lab_id = {lab: i for i, lab in enumerate(label_names)}
            lab_idx = np.asarray(
                [lab_id.get(lab, -1) for lab in region_label], dtype=np.intp
            )
            sums = np.zeros(len(label_names))
            valid = lab_idx >= 0
            np.add.at(sums, lab_idx[valid], (spans + overhead)[valid])
            for lab, s in zip(label_names, sums):
                label_time[lab] = label_time.get(lab, 0.0) + float(s)

    region_busy = np.zeros(t)
    for region in multi:
        region_busy[:] = 0.0
        working = np.zeros(t, dtype=bool)
        for item in region.items:
            working |= shares[item.partition] > 0
        active = max(int(working.sum()), 1)
        for item in region.items:
            spp = seconds_per_pattern(
                item.op, int(trace.states[item.partition]), categories, machine, active
            )
            region_busy += shares[item.partition] * (item.count * spp)
        span = float(region_busy.max())
        busy += region_busy
        idle += span - region_busy
        sync += overhead
        total += span + overhead
        if region.label:
            label_time[region.label] = label_time.get(region.label, 0.0) + span + overhead

    return SimulationResult(
        machine=machine.name,
        n_threads=t,
        distribution=plan.policy,
        total_seconds=total,
        busy_seconds=busy,
        idle_seconds=idle,
        sync_seconds=sync,
        n_regions=trace.n_regions,
        label_seconds=label_time,
    )


def speedup_curve(
    trace: Trace,
    machine: MachineSpec,
    thread_counts: list[int],
    distribution: str | None = None,
) -> dict[int, float]:
    """Speedups over the 1-thread replay for each thread count (the
    quantity plotted in paper Fig. 6).  ``distribution`` accepts any
    policy name (default: the trace's capture-time policy)."""
    base = simulate_trace(trace, machine, 1, distribution).total_seconds
    return {
        n: base / simulate_trace(trace, machine, n, distribution).total_seconds
        for n in thread_counts
    }
