"""Per-pattern cost model for the kernel operations (roofline style).

Each kernel op processes its partition's patterns independently; the cost
of one pattern is ``max(flop_time, dram_time)`` — the PLK is memory-bound
on wide data (the paper: "Because RAxML is memory-bound, the memory
bandwidth available to each thread heavily influences execution times")
and compute-bound on narrow, cache-resident partitions.

Flop counts per pattern (s states, K Gamma categories):

=============  =====================================================
``newview``    two propagations (2 x 2Ks^2 MAC flops) + product (Ks)
``sumtable``   two eigenbasis matmuls (2 x 2Ks^2) + product (Ks)
``derivative`` three weighted reductions over (K, s): ~6Ks + exps 4Ks
``evaluate``   one propagation (2Ks^2) + frequency dot (2Ks)
=============  =====================================================

The s^2 scaling is what makes protein partitions (s=20) 25x more
expensive per column than DNA (s=4) — the paper's explanation for the
smaller load-balance effect on the two viral protein datasets.

DRAM traffic per pattern: the CLV rows read/written (8-byte doubles),
discounted by ``CACHE_REUSE`` = 0.5 because consecutive operations on the
same partition hit in cache roughly half the time at the region sizes the
schedules produce (partitions of ~1,000 patterns fit in L2).
"""
from __future__ import annotations

from functools import lru_cache

from .machine import MachineSpec

__all__ = [
    "flops_per_pattern",
    "bytes_per_pattern",
    "seconds_per_pattern",
    "relative_pattern_cost",
]

CACHE_REUSE = 0.5

#: dense row index for vectorized per-(partition, op) cost tables
_OP_INDEX = {"newview": 0, "sumtable": 1, "derivative": 2, "evaluate": 3}


def flops_per_pattern(op: str, states: int, categories: int) -> float:
    """Double-precision flops for one pattern of one kernel op."""
    s, k = states, categories
    if op == "newview":
        return 4.0 * k * s * s + k * s
    if op == "sumtable":
        return 4.0 * k * s * s + k * s
    if op == "derivative":
        return 10.0 * k * s
    if op == "evaluate":
        return 2.0 * k * s * s + 2.0 * k * s
    raise ValueError(f"unknown kernel op {op!r}")


def bytes_per_pattern(op: str, states: int, categories: int) -> float:
    """Effective DRAM bytes moved for one pattern of one kernel op."""
    s, k = states, categories
    doubles = {
        "newview": 3.0 * k * s,      # read two CLVs, write one
        "sumtable": 3.0 * k * s,     # read two CLVs, write the table
        "derivative": 1.0 * k * s,   # stream the sumtable
        "evaluate": 2.0 * k * s,     # read two CLVs
    }
    try:
        return doubles[op] * 8.0 * CACHE_REUSE
    except KeyError:
        raise ValueError(f"unknown kernel op {op!r}") from None


def relative_pattern_cost(states: int, categories: int = 4) -> float:
    """Machine-independent relative cost of one pattern (dimensionless).

    This is the analytic weight the cost-aware distribution policies use
    (``K * s^2``, the dominant term of every kernel op above) — the same
    value :func:`repro.parallel.balance.pattern_weight` returns, re-exported
    here so simulator-side code does not need to import the parallel
    package.

    >>> relative_pattern_cost(4)
    64.0
    >>> relative_pattern_cost(20) / relative_pattern_cost(4)
    25.0
    """
    from ..parallel.balance import pattern_weight

    return pattern_weight(states, categories)


@lru_cache(maxsize=4096)
def seconds_per_pattern(
    op: str, states: int, categories: int, machine: MachineSpec, n_threads: int
) -> float:
    """Roofline time for one pattern: max of compute and memory time,
    given ``n_threads`` concurrently active threads contending for DRAM."""
    flop_time = flops_per_pattern(op, states, categories) / machine.flops_per_second()
    mem_time = bytes_per_pattern(op, states, categories) / machine.bandwidth_per_thread(
        n_threads
    )
    return max(flop_time, mem_time)
