"""Machine specifications for the simulated multicore testbed.

The paper's experiments ran on four real machines (Section V,
"Platforms").  We model each as a :class:`MachineSpec` capturing exactly
the architectural properties the paper invokes to explain its results:

* per-core double-precision throughput (clock x flops/cycle x an
  efficiency factor for the PLK inner loops — the Intel cores sustain a
  higher fraction of peak, which reproduces the paper's "sequential
  performance on Intel significantly better than AMD");
* the memory subsystem: per-socket bandwidth for NUMA machines
  (Barcelona's HyperTransport, Nehalem's QPI, the x4600's 8 sockets) vs a
  single shared front-side bus (Clovertown) — "all 8 cores of the
  Clovertown share a common front-side bus ... whereas the AMD NUMA
  architecture provides a higher aggregated memory bandwidth", and
  "RAxML is memory-bound";
* synchronization cost: barrier latency grows with thread count, which is
  what turns oldPAR's many tiny regions into parallel slowdown at 16
  cores.
"""
from __future__ import annotations

from dataclasses import dataclass


__all__ = ["MachineSpec"]


@dataclass(frozen=True)
class MachineSpec:
    """An abstract shared-memory multicore for trace replay.

    Attributes
    ----------
    name:
        Display name, e.g. ``"Nehalem"``.
    sockets, cores_per_socket:
        Topology; total core count is the product.
    clock_ghz:
        Core clock.
    flops_per_cycle:
        Peak double-precision flops per cycle per core (mul+add pipes).
    efficiency:
        Fraction of peak the PLK's fused propagate/product loops sustain.
    socket_bandwidth_gbs:
        DRAM bandwidth per socket (GB/s).  For ``shared_bus`` machines
        this is the *total* front-side-bus bandwidth instead.
    per_core_bandwidth_gbs:
        Cap on what a single core can draw (load/store unit limit).
    shared_bus:
        True for FSB machines (Clovertown): all threads share one pool.
    barrier_base_ns, barrier_per_thread_ns:
        Barrier latency model: ``base + per_thread * T`` nanoseconds.
    dispatch_ns:
        Master-side cost to issue one command (region), nanoseconds.
    """

    name: str
    sockets: int
    cores_per_socket: int
    clock_ghz: float
    flops_per_cycle: float
    efficiency: float
    socket_bandwidth_gbs: float
    per_core_bandwidth_gbs: float
    shared_bus: bool = False
    barrier_base_ns: float = 500.0
    barrier_per_thread_ns: float = 350.0
    dispatch_ns: float = 1500.0

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("need at least one socket and one core")
        for field_name in (
            "clock_ghz",
            "flops_per_cycle",
            "efficiency",
            "socket_bandwidth_gbs",
            "per_core_bandwidth_gbs",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.efficiency > 1.0:
            raise ValueError("efficiency is a fraction of peak")

    @property
    def cores(self) -> int:
        """Total core count.

        >>> from repro.simmachine import NEHALEM
        >>> NEHALEM.cores == NEHALEM.sockets * NEHALEM.cores_per_socket
        True
        """
        return self.sockets * self.cores_per_socket

    def flops_per_second(self) -> float:
        """Sustained DP flops/s of one core on the PLK loops."""
        return self.clock_ghz * 1e9 * self.flops_per_cycle * self.efficiency

    def bandwidth_per_thread(self, n_threads: int) -> float:
        """Effective DRAM bytes/s available to each of ``n_threads``
        concurrently streaming threads (assumed spread across sockets —
        the scheduling that maximizes aggregate bandwidth, standard for
        HPC pinning)."""
        if n_threads < 1:
            raise ValueError("need at least one thread")
        n_threads = min(n_threads, self.cores)
        if self.shared_bus:
            total = self.socket_bandwidth_gbs * 1e9
        else:
            # Threads spread across sockets engage one memory controller
            # each until all sockets are busy (the pinning that maximizes
            # aggregate bandwidth, standard for HPC runs).
            sockets_used = min(self.sockets, n_threads)
            total = self.socket_bandwidth_gbs * 1e9 * sockets_used
        per_thread = total / n_threads
        return min(per_thread, self.per_core_bandwidth_gbs * 1e9)

    def barrier_seconds(self, n_threads: int) -> float:
        """Latency of one barrier across ``n_threads`` threads."""
        if n_threads <= 1:
            return 0.0
        return (self.barrier_base_ns + self.barrier_per_thread_ns * n_threads) * 1e-9

    def dispatch_seconds(self) -> float:
        return self.dispatch_ns * 1e-9
