"""Simulated multicore testbed: machine specs for the paper's four
platforms, a roofline cost model for the kernel ops, and a deterministic
trace-replay simulator (the substitution for the paper's physical
machines; see DESIGN.md)."""
from .costmodel import bytes_per_pattern, flops_per_pattern, seconds_per_pattern
from .machine import MachineSpec
from .platforms import BARCELONA, CLOVERTOWN, NEHALEM, PLATFORMS, X4600, get_platform
from .simulator import SimulationResult, simulate_trace, speedup_curve

__all__ = [
    "BARCELONA",
    "CLOVERTOWN",
    "MachineSpec",
    "NEHALEM",
    "PLATFORMS",
    "SimulationResult",
    "X4600",
    "bytes_per_pattern",
    "flops_per_pattern",
    "get_platform",
    "seconds_per_pattern",
    "simulate_trace",
    "speedup_curve",
]
