"""The paper's four test platforms (Section V, "Platforms").

Constants follow the published hardware where the paper states it
(sockets, cores, clocks, NUMA vs FSB, "approximately 30GB per second and
per processor" for Nehalem) and vendor datasheets of the era otherwise
(DDR2-667 dual-channel ~10.6 GB/s per socket for Barcelona and the
x4600's Opterons; ~10.6 GB/s total FSB for the dual-bus Clovertown
platform).  Efficiency factors encode the paper's sequential-performance
ranking: the Intel cores sustain a larger fraction of peak on the PLK
loops than the AMD cores (Section V, "Results", last paragraph).
"""
from __future__ import annotations

from .machine import MachineSpec

__all__ = ["NEHALEM", "CLOVERTOWN", "BARCELONA", "X4600", "PLATFORMS", "get_platform"]

#: 2-way Intel Nehalem pre-production, 8 cores, 2.933 GHz, QPI NUMA.
NEHALEM = MachineSpec(
    name="Nehalem",
    sockets=2,
    cores_per_socket=4,
    clock_ghz=2.933,
    flops_per_cycle=4.0,
    efficiency=0.40,
    socket_bandwidth_gbs=30.0,
    per_core_bandwidth_gbs=12.0,
    shared_bus=False,
    barrier_base_ns=2500.0,
    barrier_per_thread_ns=1200.0,
    dispatch_ns=2000.0,
)

#: 2-way Intel Clovertown, 8 cores, 2.66 GHz, shared front-side bus.
CLOVERTOWN = MachineSpec(
    name="Clovertown",
    sockets=2,
    cores_per_socket=4,
    clock_ghz=2.66,
    flops_per_cycle=4.0,
    efficiency=0.26,
    socket_bandwidth_gbs=10.6,  # total FSB pool (shared_bus=True)
    per_core_bandwidth_gbs=6.0,
    shared_bus=True,
    barrier_base_ns=2500.0,
    barrier_per_thread_ns=1200.0,
    dispatch_ns=2000.0,
)

#: 4-way AMD Barcelona, 16 cores, 2.2 GHz, HyperTransport NUMA.
BARCELONA = MachineSpec(
    name="Barcelona",
    sockets=4,
    cores_per_socket=4,
    clock_ghz=2.2,
    flops_per_cycle=4.0,
    efficiency=0.22,
    socket_bandwidth_gbs=10.6,
    per_core_bandwidth_gbs=5.0,
    shared_bus=False,
    barrier_base_ns=3500.0,
    barrier_per_thread_ns=2000.0,
    dispatch_ns=2500.0,
)

#: 8-way Sun x4600 (dual-core Opterons), 16 cores, 2.6 GHz, NUMA.
X4600 = MachineSpec(
    name="x4600",
    sockets=8,
    cores_per_socket=2,
    clock_ghz=2.6,
    flops_per_cycle=2.0,
    efficiency=0.40,
    socket_bandwidth_gbs=6.4,
    per_core_bandwidth_gbs=4.0,
    shared_bus=False,
    barrier_base_ns=4000.0,
    barrier_per_thread_ns=2500.0,
    dispatch_ns=2500.0,
)

PLATFORMS: dict[str, MachineSpec] = {
    spec.name.lower(): spec for spec in (NEHALEM, CLOVERTOWN, BARCELONA, X4600)
}


def get_platform(name: str) -> MachineSpec:
    """Look up one of the paper's platforms by (case-insensitive) name."""
    try:
        return PLATFORMS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; known: {sorted(PLATFORMS)}"
        ) from None
