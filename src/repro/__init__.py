"""repro: a reproduction of "Load Balance in the Phylogenetic Likelihood
Kernel" (Stamatakis & Ott, ICPP 2009).

Subpackages
-----------
``repro.plk``
    The Phylogenetic Likelihood Kernel substrate: alignments, models,
    trees, and the vectorized pruning/evaluation/derivative kernels.
``repro.optimize``
    Brent and Newton-Raphson, scalar and batched-lock-step.
``repro.search``
    Parsimony starting trees, NNI/SPR, hill-climbing ML search.
``repro.seqgen``
    Sequence simulation and the paper's benchmark datasets.
``repro.core``
    The paper's contribution: the partitioned engine, the oldPAR/newPAR
    scheduling strategies, and kernel-op trace capture.
``repro.parallel``
    Real thread/process master-worker backends.
``repro.simmachine``
    The simulated multicore testbed (Nehalem, Clovertown, Barcelona,
    Sun x4600) replaying captured traces.
``repro.bench``
    Benchmark harness and paper-style reports.
"""
from . import bench, core, optimize, parallel, plk, search, seqgen, simmachine

__version__ = "1.0.0"

__all__ = [
    "bench",
    "core",
    "optimize",
    "parallel",
    "plk",
    "search",
    "seqgen",
    "simmachine",
    "__version__",
]
