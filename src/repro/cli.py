"""Command-line interface (a miniature RAxML).

Subcommands
-----------
``simulate``
    Generate a benchmark dataset (alignment + partition file + true tree).
``analyze``
    Model-parameter optimization and/or tree search on a PHYLIP/FASTA
    alignment with a RAxML-style partition file, under either scheduling
    strategy, optionally on real parallel workers.
``replay``
    Capture a paper experiment's schedule and replay it on the simulated
    platforms (regenerates Figure-3-style tables from the shell).
``profile``
    Run oldPAR vs newPAR on the *real* thread/process backends with the
    :mod:`repro.perf` profiler attached and report each run's measured
    per-worker busy/idle decomposition (the hardware analogue of what
    ``replay`` predicts).
``timeline``
    Run one profiled + traced workload (or load a saved profile JSON) and
    export it as a Chrome trace-event timeline — one lane per worker plus
    the master command lane, loadable in Perfetto / ``chrome://tracing``
    — alongside an ASCII rendering, the metrics snapshot and the
    per-partition convergence telemetry.
``balance``
    Compare all four pattern-distribution policies (``cyclic``, ``block``,
    ``weighted``, ``lpt``) on one workload: per-thread load as *predicted*
    by the machine simulator and as *measured* on a real parallel backend,
    each summarized by the imbalance ratio (max/mean thread busy time;
    1.0 = perfect).  ``--rebalance`` additionally demonstrates the
    measured-feedback loop: warmup run -> calibrated cost model ->
    LPT replan -> re-measured imbalance.
``top``
    A refreshing ASCII dashboard over the live telemetry plane
    (:mod:`repro.obs.live`): per-worker lanes showing busy fraction,
    heartbeat age, commands/s and the live imbalance ratio.  Runs a
    workload itself (rendering while it executes) or attaches to another
    process's plane by shared-memory segment name (``--plane``).
``perfcheck``
    Re-run the committed perf-smoke workload and diff its structural and
    relative-performance summary against the committed baseline
    (:mod:`repro.obs.regression`); non-zero exit on regression.

Examples
--------
::

    python -m repro simulate --taxa 20 --sites 5000 --partition-length 1000 \
        --out data/d20_5000
    python -m repro analyze --alignment data/d20_5000.phy \
        --partitions data/d20_5000.part --search --strategy new
    python -m repro replay --dataset d50_50000_p1000 --analysis search \
        --candidates 60
    python -m repro profile --workers 4 --backend processes \
        --partitions 10 --warmup --out profile.json
    python -m repro balance --workers 4 --partitions 10 --rebalance
    python -m repro timeline --workers 4 --backend processes \
        --out timeline_trace.json
    python -m repro perfcheck --baseline benchmarks/baselines/perf_smoke.json
"""
from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from .parallel.distribution import DISTRIBUTIONS
    from .plk.kernels import KERNEL_CHOICES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Load-balanced partitioned phylogenetic likelihood "
        "analyses (Stamatakis & Ott, ICPP 2009 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a benchmark dataset")
    sim.add_argument("--taxa", type=int, required=True)
    sim.add_argument("--sites", type=int, required=True)
    sim.add_argument("--partition-length", type=int, default=1_000)
    sim.add_argument("--seed", type=int, default=42)
    sim.add_argument(
        "--out", required=True,
        help="output prefix; writes <out>.phy, <out>.part, <out>.nwk",
    )

    ana = sub.add_parser("analyze", help="run a partitioned ML analysis")
    ana.add_argument("--alignment", required=True, help="PHYLIP or FASTA file")
    ana.add_argument("--partitions", help="RAxML-style partition file "
                     "(default: single partition)")
    ana.add_argument("--tree", help="starting tree (Newick; default: "
                     "randomized stepwise-addition parsimony)")
    ana.add_argument("--strategy", choices=("old", "new"), default="new")
    ana.add_argument("--kernel", choices=KERNEL_CHOICES, default="numpy",
                     help="PLK inner-loop backend (default: %(default)s)")
    ana.add_argument("--branch-mode", choices=("joint", "per_partition"),
                     default="per_partition")
    ana.add_argument("--search", action="store_true",
                     help="run an SPR tree search (default: model "
                     "optimization on the fixed/starting tree only)")
    ana.add_argument("--radius", type=int, default=5, help="SPR radius")
    ana.add_argument("--rounds", type=int, default=5)
    ana.add_argument("--seed", type=int, default=0)
    ana.add_argument("--out-tree", help="write the final tree here")
    ana.add_argument("--checkpoint", help="write a JSON checkpoint of the "
                     "optimized state here")
    ana.add_argument("--resume", help="resume from a checkpoint written by "
                     "--checkpoint (overrides --tree)")
    ana.add_argument("--trace-summary", action="store_true",
                     help="print the captured parallel-schedule statistics")

    rep = sub.add_parser("replay", help="capture + replay a paper experiment")
    rep.add_argument("--dataset", required=True,
                     help="paper dataset id, e.g. d50_50000_p1000 or r125_19839")
    rep.add_argument("--analysis", choices=("search", "modelopt"),
                     default="search")
    rep.add_argument("--candidates", type=int, default=60,
                     help="SPR candidates to evaluate during capture")
    rep.add_argument("--threads", type=int, nargs="+", default=[1, 8, 16])
    rep.add_argument("--distribution", choices=DISTRIBUTIONS,
                     default="cyclic")

    def add_workload_args(p, workers_default: int = 4) -> None:
        p.add_argument("--taxa", type=int, default=12)
        p.add_argument("--sites", type=int, default=2_000)
        p.add_argument("--partitions", type=int, default=10)
        p.add_argument("--workers", type=int, default=workers_default)
        p.add_argument("--backend", choices=("threads", "processes"),
                       default="processes")
        p.add_argument("--comms", choices=("pipe", "shm"), default="pipe",
                       help="result transport for the processes backend: "
                       "pickled pipe replies or the zero-copy shared-memory "
                       "result plane (default: %(default)s)")
        p.add_argument("--kernel", choices=KERNEL_CHOICES, default="numpy",
                       help="PLK inner-loop backend: the numpy reference, "
                       "the cache-blocked BLAS kernel, the numba JIT "
                       "(falls back to numpy when numba is missing), or "
                       "the repeat-aware composites repeats[+blocked|"
                       "+numba] (default: %(default)s)")
        p.add_argument("--distribution", choices=DISTRIBUTIONS,
                       default="cyclic")
        p.add_argument("--edges", type=int, default=6,
                       help="branches to optimize per strategy")
        p.add_argument("--alpha", action="store_true",
                       help="also profile Gamma-shape (Brent) optimization")
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--live", action="store_true",
                       help="enable the live telemetry plane "
                       "(repro.obs.live): per-worker shared-memory "
                       "heartbeat rows, flight recorder with post-mortem "
                       "JSONL dumps on worker death, live imbalance")
        p.add_argument("--prom", metavar="PATH",
                       help="with --live: write a Prometheus text-format "
                       "snapshot (metrics + per-worker gauges) here after "
                       "the run")
        p.add_argument("--events", metavar="PATH",
                       help="with --live: append the flight-recorder "
                       "event stream here as JSONL while running")

    prof = sub.add_parser(
        "profile",
        help="measure oldPAR vs newPAR on the real parallel backends",
    )
    add_workload_args(prof)
    prof.add_argument("--warmup", action="store_true",
                      help="run the workload once untimed first (worker "
                      "start-up, allocator and cache warm-up), then reset "
                      "the profiler and measure a second pass")
    prof.add_argument("--out", help="write both RunProfiles as JSON here")

    tl = sub.add_parser(
        "timeline",
        help="export a run as a Chrome trace-event (Perfetto) timeline",
    )
    add_workload_args(tl)
    tl.add_argument("--strategy", choices=("old", "new"), default="new")
    tl.add_argument("--profile", dest="profile_json",
                    help="render a saved profile JSON (from 'repro profile "
                    "--out') instead of running a fresh workload")
    tl.add_argument("--out", default="timeline_trace.json",
                    help="Chrome trace-event JSON output path "
                    "(default: %(default)s)")
    tl.add_argument("--width", type=int, default=72,
                    help="ASCII timeline width in columns")

    bal = sub.add_parser(
        "balance",
        help="compare the four distribution policies: predicted vs "
        "measured per-thread load and imbalance ratio",
    )
    add_workload_args(bal)
    bal.add_argument("--platform", default="nehalem",
                     help="simulated platform for the prediction "
                     "(nehalem / clovertown / barcelona / x4600; "
                     "default: %(default)s)")
    bal.add_argument("--strategy", choices=("old", "new"), default="new")
    bal.add_argument("--rebalance", action="store_true",
                     help="also demonstrate the measured-feedback loop: "
                     "warmup run -> calibrated cost model -> LPT replan -> "
                     "re-measured imbalance")

    top = sub.add_parser(
        "top",
        help="refreshing ASCII dashboard over the live telemetry plane "
        "(per-worker busy fraction, heartbeat age, commands/s, imbalance)",
    )
    add_workload_args(top)
    top.add_argument("--plane", metavar="SEGMENT",
                     help="attach to a running process's worker-stats "
                     "plane by shared-memory segment name instead of "
                     "running a workload")
    top.add_argument("--interval", type=float, default=0.5,
                     help="seconds between dashboard frames "
                     "(default: %(default)s)")
    top.add_argument("--frames", type=int, default=0,
                     help="maximum frames to render (0 = until the "
                     "workload finishes; required with --plane)")
    top.add_argument("--width", type=int, default=78,
                     help="dashboard width in columns")
    top.add_argument("--stall-threshold", type=float, default=5.0,
                     help="seconds without heartbeat progress before a "
                     "busy worker is reported stalled")
    top.set_defaults(live=True)

    chk = sub.add_parser(
        "perfcheck",
        help="run the perf-smoke workload and diff against the committed "
        "baseline (non-zero exit on regression)",
    )
    chk.add_argument("--baseline", default="benchmarks/baselines/perf_smoke.json",
                     help="baseline summary path (default: %(default)s)")
    chk.add_argument("--update", action="store_true",
                     help="freeze the fresh measurements as the new baseline "
                     "instead of checking against it")
    chk.add_argument("--out-trace",
                     help="also write the newPAR run's Chrome trace-event "
                     "JSON here (CI artifact)")
    add_workload_args(chk, workers_default=2)
    chk.set_defaults(taxa=8, sites=400, partitions=6, edges=4, backend="threads")

    srv = sub.add_parser(
        "serve",
        help="run the likelihood daemon: warm team pool + job queue "
        "behind an NDJSON unix socket (see docs/SERVICE.md)",
    )
    srv.add_argument("--socket", default="/tmp/repro.sock",
                     help="unix socket path (default: %(default)s)")
    srv.add_argument("--workers", type=int, default=2,
                     help="workers per team (default: %(default)s)")
    srv.add_argument("--backend", choices=("threads", "processes"),
                     default="threads")
    srv.add_argument("--comms", choices=("pipe", "shm"), default="pipe",
                     help="processes-backend result transport")
    srv.add_argument("--kernel", choices=KERNEL_CHOICES, default="numpy")
    srv.add_argument("--distribution", choices=DISTRIBUTIONS, default="cyclic")
    srv.add_argument("--executors", type=int, default=2,
                     help="concurrent job executors (default: %(default)s)")
    srv.add_argument("--pool-capacity", type=int, default=2,
                     help="max live warm teams (default: %(default)s)")
    srv.add_argument("--cache-bytes", type=int, default=None,
                     help="dataset-context cache budget in bytes "
                     "(default: unbounded)")
    srv.add_argument("--batch-limit", type=int, default=8,
                     help="max loglikelihood jobs fused into one worker "
                     "program (default: %(default)s)")
    srv.add_argument("--live", action="store_true",
                     help="per-team live telemetry planes; segment names "
                     "appear under stats.live_planes for "
                     "'repro top --plane'")
    srv.add_argument("--allow-chaos", action="store_true",
                     help="enable the chaos_* fault-injection ops "
                     "(failure drills; never in production)")
    srv.add_argument("--postmortem-dir",
                     help="directory for worker-death flight-recorder "
                     "dumps (default: $REPRO_FLIGHT_DIR or the tempdir)")

    sbm = sub.add_parser(
        "submit",
        help="submit one job to a running 'repro serve' daemon and "
        "print the result as JSON",
    )
    sbm.add_argument("--socket", default="/tmp/repro.sock",
                     help="daemon unix socket path (default: %(default)s)")
    sbm.add_argument("--op", default="loglikelihood",
                     choices=("loglikelihood", "loglikelihood_parts",
                              "optimize_branches", "optimize_alpha",
                              "ping", "stats", "metrics", "shutdown"),
                     help="job operation, or a daemon query "
                     "(default: %(default)s)")
    sbm.add_argument("--tenant", default="cli")
    sbm.add_argument("--priority", type=int, default=0)
    sbm.add_argument("--timeout", type=float, default=None,
                     help="max seconds the job may wait in the queue")
    sbm.add_argument("--wait", type=float, default=120.0,
                     help="seconds to block for completion "
                     "(default: %(default)s)")
    sbm.add_argument("--taxa", type=int, default=8)
    sbm.add_argument("--sites", type=int, default=400)
    sbm.add_argument("--partitions", type=int, default=4)
    sbm.add_argument("--seed", type=int, default=42)
    sbm.add_argument("--edges", type=int, nargs="+",
                     help="edges for optimize_branches (default: [0])")
    sbm.add_argument("--kernel", choices=KERNEL_CHOICES, default=None,
                     help="per-job kernel backend override (the daemon "
                     "keeps one warm team per dataset+kernel)")
    sbm.add_argument("--spec", help="raw JSON job spec (overrides the "
                     "dataset/op flags entirely)")

    return parser


def _validate_workload(args: argparse.Namespace) -> str | None:
    """Sanity-check the shared profile/timeline/perfcheck workload flags;
    returns an error string (for stderr) or None."""
    if min(args.partitions, args.workers, args.edges, args.sites) < 1:
        return "--partitions, --workers, --edges and --sites must be >= 1"
    if args.taxa < 4:
        return "--taxa must be >= 4 (smallest unrooted binary tree)"
    n_edges = 2 * args.taxa - 3
    if args.edges > n_edges:
        return (f"--edges {args.edges} exceeds the {n_edges} branches of a "
                f"{args.taxa}-taxon unrooted tree")
    if getattr(args, "comms", "pipe") == "shm" and args.backend != "processes":
        return "--comms shm requires --backend processes"
    if (getattr(args, "prom", None) or getattr(args, "events", None)) and \
            not getattr(args, "live", False):
        return "--prom and --events require --live"
    return None


def _build_workload(args: argparse.Namespace):
    """Simulate the shared profiling workload; returns
    ``(data, tree, lengths, models, alphas, edges)``."""
    from .plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
    from .seqgen import random_topology_with_lengths, simulate_alignment

    rng = np.random.default_rng(args.seed)
    tree, lengths = random_topology_with_lengths(args.taxa, rng)
    part_len = max(args.sites // args.partitions, 1)
    sites = part_len * args.partitions
    aln = simulate_alignment(
        tree, lengths, SubstitutionModel.random_gtr(0), 1.0, sites, rng
    )
    data = PartitionedAlignment(aln, uniform_scheme(sites, part_len))
    models = [SubstitutionModel.random_gtr(p) for p in range(data.n_partitions)]
    alphas = [1.0] * data.n_partitions
    edges = list(range(args.edges))
    return data, tree, lengths, models, alphas, edges


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .plk import write_newick, write_phylip
    from .seqgen import simulated_dataset

    dataset = simulated_dataset(
        args.taxa, args.sites, args.partition_length, seed=args.seed
    )
    prefix = Path(args.out)
    prefix.parent.mkdir(parents=True, exist_ok=True)
    (prefix.with_suffix(".phy")).write_text(write_phylip(dataset.alignment))
    part_lines = [
        f"DNA, {p.name} = {p.ranges[0][0] + 1}-{p.ranges[0][1]}"
        for p in dataset.scheme
    ]
    (prefix.with_suffix(".part")).write_text("\n".join(part_lines) + "\n")
    (prefix.with_suffix(".nwk")).write_text(
        write_newick(dataset.tree, dataset.true_lengths) + "\n"
    )
    print(f"wrote {prefix}.phy ({args.taxa} taxa x {args.sites} sites), "
          f"{prefix}.part ({dataset.n_partitions} partitions), {prefix}.nwk")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .core import PartitionedEngine, TraceRecorder, optimize_model
    from .plk import (
        PartitionedAlignment,
        parse_newick,
        parse_partition_file,
        parse_phylip,
        parse_fasta,
        uniform_scheme,
        write_newick,
    )
    from .search import stepwise_addition_tree, tree_search

    text = Path(args.alignment).read_text()
    if text.lstrip().startswith(">"):
        alignment = parse_fasta(text)
    else:
        alignment = parse_phylip(text)
    print(f"alignment: {alignment.n_taxa} taxa x {alignment.n_sites} sites")

    if args.partitions:
        scheme = parse_partition_file(Path(args.partitions).read_text())
    else:
        scheme = uniform_scheme(alignment.n_sites, alignment.n_sites)

    def build_data(aln):
        data = PartitionedAlignment(aln, scheme)
        print(
            f"partitions: {data.n_partitions}, distinct patterns: {data.n_patterns}"
        )
        return data

    recorder = TraceRecorder()
    if args.resume:
        import json

        from .core import engine_from_checkpoint
        from .plk import Alignment

        state = json.loads(Path(args.resume).read_text())
        ckpt_taxa = tuple(state["taxa"])
        if set(ckpt_taxa) != set(alignment.taxa):
            print("error: checkpoint and alignment taxa differ", file=sys.stderr)
            return 2
        if ckpt_taxa != alignment.taxa:
            order = [alignment.taxa.index(name) for name in ckpt_taxa]
            alignment = Alignment(
                ckpt_taxa, alignment.matrix[order], alignment.datatype
            )
        data = build_data(alignment)
        engine = engine_from_checkpoint(data, state, kernel=args.kernel)
        engine.recorder = recorder
        for part in engine.parts:
            part.recorder = recorder
        tree = engine.tree
        print(f"resumed from checkpoint {args.resume}")
    else:
        if args.tree:
            tree, lengths = parse_newick(Path(args.tree).read_text())
            if set(tree.taxa) != set(alignment.taxa):
                print("error: tree and alignment taxa differ", file=sys.stderr)
                return 2
            if tuple(tree.taxa) != alignment.taxa:
                # Newick numbers leaves by appearance order; permute the
                # alignment rows so leaf i carries the data of taxon i.
                from .plk import Alignment

                order = [alignment.taxa.index(name) for name in tree.taxa]
                alignment = Alignment(
                    tuple(tree.taxa), alignment.matrix[order], alignment.datatype
                )
        else:
            rng = np.random.default_rng(args.seed)
            tree = stepwise_addition_tree(alignment, rng)
            lengths = None
            print("starting tree: randomized stepwise-addition parsimony")
        data = build_data(alignment)
        engine = PartitionedEngine(
            data,
            tree,
            branch_mode=args.branch_mode,
            initial_lengths=lengths,
            recorder=recorder,
            kernel=args.kernel,
        )
    t0 = time.perf_counter()
    if args.search:
        result = tree_search(
            engine, strategy=args.strategy, radius=args.radius,
            max_rounds=args.rounds,
        )
        lnl = result.loglikelihood
        print(f"search: {result.rounds} rounds, "
              f"{result.accepted_moves}/{result.evaluated_moves} moves accepted")
    else:
        lnl = optimize_model(engine, strategy=args.strategy, max_rounds=args.rounds)
    elapsed = time.perf_counter() - t0
    print(f"final log-likelihood: {lnl:.4f}   ({elapsed:.1f}s, "
          f"strategy={args.strategy}, branch_mode={args.branch_mode})")

    for i, part in enumerate(engine.parts):
        print(f"  partition {scheme[i].name}: alpha={part.alpha:.4f} "
              f"tree-length={part.branch_lengths.sum():.4f}")

    if args.trace_summary:
        trace = recorder.finalize(engine.pattern_counts(), engine.states())
        print(f"schedule: {trace.n_regions} parallel regions, "
              f"op totals {trace.op_totals()}")

    if args.checkpoint:
        from .core import save_checkpoint

        save_checkpoint(engine, args.checkpoint)
        print(f"wrote checkpoint {args.checkpoint}")

    if args.out_tree:
        Path(args.out_tree).write_text(
            write_newick(tree, engine.parts[0].branch_lengths) + "\n"
        )
        print(f"wrote {args.out_tree}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .bench import capture_experiment
    from .simmachine import PLATFORMS, simulate_trace

    traces = {}
    for strategy in ("old", "new"):
        print(f"capturing {args.dataset} {args.analysis} {strategy} "
              f"(cached after first run) ...")
        traces[strategy] = capture_experiment(
            args.dataset, args.analysis, strategy,
            max_candidates=args.candidates,
        )
    header = f"{'platform':<12} {'threads':>7} {'old':>10} {'new':>10} {'old/new':>8}"
    print(header)
    print("-" * len(header))
    for machine in PLATFORMS.values():
        for t in args.threads:
            if t > machine.cores:
                continue
            old = simulate_trace(traces["old"], machine, t, args.distribution)
            new = simulate_trace(traces["new"], machine, t, args.distribution)
            print(f"{machine.name:<12} {t:>7} {old.total_seconds:>10.2f} "
                  f"{new.total_seconds:>10.2f} "
                  f"{old.total_seconds / new.total_seconds:>8.2f}")
    return 0


def _run_profiled_strategies(
    args: argparse.Namespace, warmup: bool = False, lives: dict | None = None
) -> dict:
    """Run the shared workload under both strategies with a profiler
    attached; returns ``{"old": RunProfile, "new": RunProfile}``.

    With ``--live`` a fresh :class:`~repro.obs.live.LiveTelemetry` is
    bound per strategy run; pass ``lives`` (an out-dict) to receive them
    keyed by strategy.
    """
    from .parallel import ParallelPLK
    from .perf import Profiler

    data, tree, lengths, models, alphas, edges = _build_workload(args)
    comms = getattr(args, "comms", "pipe")
    kernel = getattr(args, "kernel", None)
    profiles = {}
    for strategy in ("old", "new"):
        live = None
        if getattr(args, "live", False):
            from .obs import LiveTelemetry

            live = LiveTelemetry(events_path=getattr(args, "events", None))
            if lives is not None:
                lives[strategy] = live
        profiler = Profiler(meta={
            "strategy": strategy, "taxa": args.taxa, "sites": data.scheme.n_sites,
            "partitions": data.n_partitions, "edges": len(edges),
            "seed": args.seed, "warmup": bool(warmup),
        })
        with ParallelPLK(
            data, tree, models, alphas, args.workers,
            backend=args.backend, distribution=args.distribution,
            comms=comms, kernel=kernel, initial_lengths=lengths,
            profiler=profiler, live=live,
        ) as team:
            if warmup:
                # Untimed pass absorbs worker start-up / allocator / cache
                # warm-up; the measured pass then starts from the warmed
                # (partially optimized) state.
                team.optimize_branches(edges, strategy)
                if args.alpha:
                    team.optimize_alpha(strategy)
                profiler.reset()
            team.optimize_branches(edges, strategy)
            if args.alpha:
                team.optimize_alpha(strategy)
            stats = team.comms_stats()
        profiles[strategy] = profiler.profile()
        profiles[strategy].meta.update(stats)
    return profiles


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .perf import compare_strategies

    error = _validate_workload(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(
        f"profiling {args.partitions} partitions x "
        f"~{max(args.sites // args.partitions, 1)} sites, "
        f"{args.workers} {args.backend} workers, {args.edges} branches"
        + (", alpha" if args.alpha else "")
        + (", warmup pass" if args.warmup else "")
        + (", live plane" if args.live else "")
    )
    lives: dict = {}
    profiles = _run_profiled_strategies(args, warmup=args.warmup, lives=lives)
    for strategy in ("old", "new"):
        prof = profiles[strategy]
        print(f"\n{strategy}PAR\n{prof.summary()}")
        if "comms" in prof.meta:
            pipe = prof.meta.get("pipe_tx_bytes", 0) + prof.meta.get(
                "pipe_rx_bytes", 0
            )
            print(f"  comms ({prof.meta['comms']}): pipe {pipe} B, "
                  f"shm {prof.meta.get('shm_rx_bytes', 0)} B")
        if strategy in lives:
            live = lives[strategy]
            print(f"  live: imbalance {live.imbalance():.3f}, "
                  f"{len(live.recorder)} flight events buffered")
    print("\n" + compare_strategies(profiles["old"], profiles["new"]).summary())

    if args.prom and "new" in lives:
        out = Path(args.prom)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(lives["new"].prometheus())
        print(f"wrote {out}")
    if args.events:
        print(f"event stream appended to {args.events}")

    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(
            {s: p.to_dict() for s, p in profiles.items()}, indent=2
        ) + "\n")
        print(f"wrote {out}")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    import json

    from .obs import (
        ConvergenceTelemetry,
        MetricsRegistry,
        Tracer,
        ascii_timeline,
        profile_ascii_timeline,
        profile_to_chrome,
        tracer_to_chrome,
        validate_chrome_trace,
        write_chrome_trace,
    )

    if args.profile_json:
        from .perf import RunProfile

        payload = json.loads(Path(args.profile_json).read_text())
        if "records" in payload:
            profiles = {payload.get("meta", {}).get("strategy", "run"):
                        RunProfile.from_dict(payload)}
        else:
            profiles = {k: RunProfile.from_dict(v) for k, v in payload.items()}
        key = args.strategy if args.strategy in profiles else next(iter(profiles))
        profile = profiles[key]
        print(f"timeline of {args.profile_json} [{key}]: "
              f"{profile.n_regions} regions, {profile.n_workers} "
              f"{profile.backend} workers")
        events = profile_to_chrome(profile)
        print(profile_ascii_timeline(profile, width=args.width))
    else:
        from .parallel import ParallelPLK
        from .perf import Profiler

        error = _validate_workload(args)
        if error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        data, tree, lengths, models, alphas, edges = _build_workload(args)
        tracer = Tracer()
        metrics = MetricsRegistry()
        telemetry = ConvergenceTelemetry()
        profiler = Profiler(meta={"strategy": args.strategy})
        print(
            f"tracing {data.n_partitions} partitions, {args.workers} "
            f"{args.backend} workers, {len(edges)} branches, "
            f"strategy={args.strategy}"
        )
        with ParallelPLK(
            data, tree, models, alphas, args.workers,
            backend=args.backend, distribution=args.distribution,
            comms=getattr(args, "comms", "pipe"),
            kernel=getattr(args, "kernel", None),
            initial_lengths=lengths, profiler=profiler,
            tracer=tracer, metrics=metrics, telemetry=telemetry,
            live=bool(getattr(args, "live", False)),
        ) as team:
            team.optimize_branches(edges, args.strategy)
            if args.alpha:
                team.optimize_alpha(args.strategy)
        events = tracer_to_chrome(tracer, run_config={
            "backend": team.backend, "n_workers": team.n_workers,
            "comms": team.comms, "kernel": team.kernel,
            "distribution": team.distribution, "strategy": args.strategy,
            "live": team.live.enabled,
        })
        print(ascii_timeline(tracer, width=args.width))
        snap = metrics.snapshot()
        counts = {
            name.removeprefix("broadcasts."): int(inst["value"])
            for name, inst in snap.items()
            if name.startswith("broadcasts.") and name != "broadcasts.total"
        }
        total = int(snap.get("broadcasts.total", {}).get("value", 0))
        n_cmds = int(snap.get("commands.total", {}).get("value", 0))
        print(f"broadcasts: {total} total  "
              + "  ".join(f"{k}={v}" for k, v in sorted(counts.items())))
        if total:
            print(f"commands: {n_cmds} over {total} barriers "
                  f"({n_cmds / total:.2f} commands/barrier)")
        waits = snap.get("barrier_wait_seconds")
        if waits and waits["count"]:
            print(f"barrier wait: n={waits['count']} "
                  f"mean={waits['mean']*1e6:.1f}us max={waits['max']*1e6:.1f}us")
        print(telemetry.summary())

    validate_chrome_trace(events)
    out = write_chrome_trace(args.out, events)
    lanes = sorted({ev["tid"] for ev in events if ev.get("ph") == "X"})
    print(f"wrote {out}: {len(events)} events across {len(lanes)} lanes "
          "(Perfetto / chrome://tracing compatible)")
    return 0


def _cmd_balance(args: argparse.Namespace) -> int:
    from .core import PartitionedEngine, TraceRecorder
    from .core.strategies import optimize_alpha, optimize_branch_lengths
    from .parallel import (
        DISTRIBUTIONS,
        ParallelPLK,
        PartitionLayout,
        Rebalancer,
        build_plan,
    )
    from .perf import Profiler
    from .simmachine import get_platform, simulate_trace

    error = _validate_workload(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        machine = get_platform(args.platform)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.workers > machine.cores:
        print(f"error: {machine.name} has {machine.cores} cores; cannot "
              f"predict {args.workers} threads", file=sys.stderr)
        return 2

    data, tree, lengths, models, alphas, edges = _build_workload(args)
    print(f"balance study: {data.n_partitions} partitions x "
          f"~{max(args.sites // args.partitions, 1)} sites, "
          f"{args.workers} {args.backend} workers, {len(edges)} branches, "
          f"strategy={args.strategy}, platform={machine.name}")

    # Capture the schedule once with a sequential pass over the same work
    # the team executes; every policy is then predicted from this trace.
    recorder = TraceRecorder()
    engine = PartitionedEngine(
        data, tree.copy(), models=list(models), alphas=list(alphas),
        initial_lengths=lengths, recorder=recorder,
        kernel=getattr(args, "kernel", None),
    )
    optimize_branch_lengths(engine, args.strategy, passes=1, edges=edges)
    if args.alpha:
        optimize_alpha(engine, args.strategy)
    trace = recorder.finalize(engine.pattern_counts(), engine.states())

    def measured(policy):
        profiler = Profiler(meta={
            "policy": getattr(policy, "policy", policy), "seed": args.seed,
        })
        with ParallelPLK(
            data, tree, models, alphas, args.workers,
            backend=args.backend, distribution=policy,
            comms=getattr(args, "comms", "pipe"),
            kernel=getattr(args, "kernel", None),
            initial_lengths=lengths, profiler=profiler,
        ) as team:
            team.optimize_branches(edges, args.strategy)
            if args.alpha:
                team.optimize_alpha(args.strategy)
        return profiler.profile()

    def fmt_busy(busy):
        return " ".join(f"{b * 1e3:8.2f}" for b in busy)

    rows = []
    for policy in DISTRIBUTIONS:
        sim = simulate_trace(trace, machine, args.workers, policy)
        prof = measured(policy)
        rows.append((policy, sim.imbalance, prof.imbalance))
        print(f"\n== {policy} ==")
        print(f"  predicted ({machine.name} T={args.workers}) "
              f"busy/thread [ms]: {fmt_busy(sim.busy_seconds)}   "
              f"imbalance {sim.imbalance:.3f}")
        print(f"  measured  ({args.backend} x{args.workers}) "
              f"busy/thread [ms]: {fmt_busy(prof.busy_seconds)}   "
              f"imbalance {prof.imbalance:.3f}")

    header = f"\n{'policy':<10} {'predicted':>10} {'measured':>10}"
    print(header)
    print("-" * (len(header) - 1))
    for policy, pred, meas in rows:
        print(f"{policy:<10} {pred:>10.3f} {meas:>10.3f}")
    print("(imbalance ratio = max/mean per-thread busy time; 1.000 = perfect)")

    if args.rebalance:
        layout = PartitionLayout.from_alignment(data)
        warm_plan = build_plan(layout, args.workers, args.distribution)
        warm = measured(warm_plan)
        replanned = Rebalancer(layout, args.workers).rebalance(warm_plan, warm)
        tuned = measured(replanned)
        print(f"\nrebalance: warmup ({warm_plan.policy}) measured imbalance "
              f"{warm.imbalance:.3f} -> calibrated {replanned.policy} replan "
              f"predicted {replanned.imbalance():.3f}, "
              f"measured {tuned.imbalance:.3f}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.live import render_dashboard, sample_plane

    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""

    if args.plane:
        # Attach mode: observe another process's run by segment name
        # (printed by any --live run).  The attached plane is never
        # unlinked — close() only unmaps.
        from .parallel.shm import WorkerStatsPlane

        if args.frames < 1:
            print("error: --plane requires --frames >= 1", file=sys.stderr)
            return 2
        try:
            plane = WorkerStatsPlane.attach(args.plane)
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: cannot attach {args.plane!r}: {exc}", file=sys.stderr)
            return 2
        try:
            for frame in range(args.frames):
                print(clear + render_dashboard(
                    sample_plane(plane), width=args.width
                ), flush=True)
                if frame + 1 < args.frames:
                    time.sleep(args.interval)
                    if not clear:
                        print()
        finally:
            plane.close()
        return 0

    import threading

    from .obs import LiveTelemetry, MetricsRegistry
    from .parallel import ParallelPLK, WorkerError

    error = _validate_workload(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    data, tree, lengths, models, alphas, edges = _build_workload(args)
    live = LiveTelemetry(stall_threshold=args.stall_threshold)
    metrics = MetricsRegistry()
    failures: list[BaseException] = []

    def workload(team: ParallelPLK) -> None:
        try:
            team.optimize_branches(edges, "new")
            if args.alpha:
                team.optimize_alpha("new")
        except BaseException as exc:  # noqa: BLE001 - reported after join
            failures.append(exc)

    with ParallelPLK(
        data, tree, models, alphas, args.workers,
        backend=args.backend, distribution=args.distribution,
        comms=getattr(args, "comms", "pipe"),
        kernel=getattr(args, "kernel", None),
        initial_lengths=lengths, metrics=metrics, live=live,
    ) as team:
        print(f"live plane segment: {live.plane.name}  "
              f"(attach with: repro top --plane {live.plane.name} "
              "--frames N)")
        runner = threading.Thread(target=workload, args=(team,), daemon=True)
        runner.start()
        frames = 0
        while runner.is_alive() and (args.frames == 0 or frames < args.frames):
            print(clear + live.dashboard(width=args.width), flush=True)
            if not clear:
                print()
            frames += 1
            runner.join(timeout=args.interval)
        runner.join()
    # Final frame from the rows captured at close() — the just-recorded
    # run stays renderable after the team is gone.
    print(clear + live.dashboard(width=args.width), flush=True)
    if failures:
        exc = failures[0]
        rank = getattr(exc, "rank", None)
        print(f"workload failed: {exc}", file=sys.stderr)
        if isinstance(exc, WorkerError) and live.last_postmortem:
            print(f"post-mortem dump: {live.last_postmortem} (rank {rank})",
                  file=sys.stderr)
        return 1
    print(f"done: imbalance {live.imbalance():.3f}, "
          f"{len(live.recorder)} flight events buffered")
    return 0


def _cmd_perfcheck(args: argparse.Namespace) -> int:
    from .obs import check_profiles, load_baseline, write_baseline

    baseline_path = Path(args.baseline)
    baseline = None
    if not args.update:
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} not found "
                  "(run with --update to create it)", file=sys.stderr)
            return 2
        baseline = load_baseline(baseline_path)
        # Re-run exactly the workload the baseline froze; CLI workload
        # flags only shape a --update run.
        for key, value in baseline.get("workload", {}).items():
            setattr(args, key, value)

    error = _validate_workload(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(f"perf-smoke workload: {args.partitions} partitions, "
          f"{args.workers} {args.backend} workers, {args.edges} branches"
          + (", alpha" if args.alpha else ""))
    profiles = _run_profiled_strategies(args, warmup=True)

    if args.out_trace:
        from .obs import profile_to_chrome, write_chrome_trace

        out = write_chrome_trace(args.out_trace, profile_to_chrome(profiles["new"]))
        print(f"wrote {out}")

    if args.update:
        workload = {
            key: getattr(args, key)
            for key in ("taxa", "sites", "partitions", "workers", "backend",
                        "comms", "distribution", "kernel", "edges", "alpha",
                        "seed")
        }
        write_baseline(baseline_path, profiles, workload)
        print(f"froze baseline {baseline_path}")
        return 0

    report = check_profiles(profiles, baseline)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.daemon import LikelihoodService, ServiceConfig, serve_forever

    config = ServiceConfig(
        workers=args.workers,
        backend=args.backend,
        comms=args.comms,
        kernel=args.kernel,
        distribution=args.distribution,
        executors=args.executors,
        pool_capacity=args.pool_capacity,
        cache_bytes=args.cache_bytes,
        batch_limit=args.batch_limit,
        allow_chaos=args.allow_chaos,
        live=args.live,
        postmortem_dir=args.postmortem_dir,
    )
    service = LikelihoodService(config)
    print(f"repro serve: {args.executors} executors, pool capacity "
          f"{args.pool_capacity}, {args.workers}-worker {args.backend} teams "
          f"({args.comms}/{args.kernel}); listening on {args.socket}",
          flush=True)
    serve_forever(service, args.socket)
    print("repro serve: shut down")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from .serve.client import SocketClient

    with SocketClient(args.socket) as client:
        if args.op == "ping":
            print(json.dumps(client.ping()))
            return 0
        if args.op == "stats":
            print(json.dumps(client.stats(), indent=2))
            return 0
        if args.op == "metrics":
            print(client.metrics(), end="")
            return 0
        if args.op == "shutdown":
            client.shutdown()
            print("shutdown requested")
            return 0
        if args.spec:
            spec = json.loads(args.spec)
        else:
            spec = {
                "op": args.op,
                "dataset": {
                    "kind": "simulated",
                    "taxa": args.taxa,
                    "sites": args.sites,
                    "partitions": args.partitions,
                    "seed": args.seed,
                },
            }
            if args.op == "optimize_branches":
                spec["edges"] = args.edges if args.edges else [0]
            if args.kernel:
                spec["kernel"] = args.kernel
        job_id = client.submit(spec, tenant=args.tenant,
                               priority=args.priority, timeout=args.timeout)
        view = client.result(job_id, wait=args.wait)
        print(json.dumps(view, indent=2))
        return 0 if view.get("state") == "done" else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "analyze": _cmd_analyze,
        "replay": _cmd_replay,
        "profile": _cmd_profile,
        "balance": _cmd_balance,
        "timeline": _cmd_timeline,
        "top": _cmd_top,
        "perfcheck": _cmd_perfcheck,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
