"""Gappy multi-gene alignment generation (paper Fig. 2's "data holes").

Real phylogenomic matrices rarely have data for every gene x taxon cell;
the holes are filled with alignment gaps.  :func:`gappy_dataset` simulates
such an alignment: every gene evolves on the shared tree under its own
model, then the taxa NOT sampled for that gene are blanked out.
"""
from __future__ import annotations

import numpy as np

from ..plk.alignment import Alignment
from ..plk.models import SubstitutionModel
from ..plk.partition import PartitionedAlignment, uniform_scheme
from .datasets import Dataset
from .randomtree import random_topology_with_lengths
from .simulate import simulate_alignment

__all__ = ["gappy_dataset", "coverage_fraction"]


def gappy_dataset(
    n_taxa: int,
    n_partitions: int,
    partition_length: int,
    coverage: float = 0.5,
    min_present: int = 4,
    seed: int = 0,
) -> Dataset:
    """A partitioned DNA dataset where each gene covers a random subset of
    taxa (fraction ``coverage``, at least ``min_present``), the rest
    filled with gaps.

    Every taxon is guaranteed data in at least one partition (otherwise it
    would be unplaceable).
    """
    if not 0 < coverage <= 1:
        raise ValueError("coverage must be in (0, 1]")
    if min_present < 3:
        raise ValueError("need at least 3 present taxa per partition")
    rng = np.random.default_rng(seed)
    tree, lengths = random_topology_with_lengths(n_taxa, rng)
    scheme = uniform_scheme(n_partitions * partition_length, partition_length)

    n_present = max(min_present, int(round(coverage * n_taxa)))
    if n_present > n_taxa:
        raise ValueError("min_present exceeds the taxon count")

    # Sample coverage sets, then constructively repair: every taxon left
    # uncovered joins one random partition (so effective coverage sits
    # slightly above the target on sparse settings).
    alphas: list[float] = []
    present_sets = [
        set(rng.choice(n_taxa, size=n_present, replace=False).tolist())
        for _ in range(n_partitions)
    ]
    uncovered = set(range(n_taxa)) - set().union(*present_sets)
    for taxon in sorted(uncovered):
        present_sets[int(rng.integers(0, n_partitions))].add(taxon)

    blocks = []
    for p in range(n_partitions):
        model = SubstitutionModel.random_gtr(seed * 1_000 + p)
        alpha = float(np.exp(rng.normal(-0.2, 0.5)))
        alphas.append(alpha)
        sub = simulate_alignment(
            tree, lengths, model, alpha, partition_length, rng
        )
        matrix = sub.matrix.copy()
        absent = [t for t in range(n_taxa) if t not in present_sets[p]]
        matrix[absent, :] = ord("-")
        blocks.append(matrix)

    alignment = Alignment(tree.taxa, np.concatenate(blocks, axis=1))
    return Dataset(
        name=f"gappy{n_taxa}_{n_partitions}x{partition_length}_c{coverage}",
        tree=tree,
        true_lengths=lengths,
        alignment=alignment,
        scheme=scheme,
        alphas=tuple(alphas),
    )


def coverage_fraction(data: PartitionedAlignment) -> float:
    """Fraction of (partition, taxon) cells that carry data."""
    from ..plk.gappy import taxon_coverage

    cov = taxon_coverage(data)
    return float(cov.mean())
