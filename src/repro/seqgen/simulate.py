"""Monte-Carlo sequence evolution along a tree (our SeqGen).

Given a tree with branch lengths, a substitution model and a Gamma shape
parameter, :func:`simulate_alignment` draws an alignment column-by-column
exactly the way SeqGen does: sample root states from the stationary
distribution, assign each site a rate category from the discrete Gamma
model, and walk the tree sampling each child's state from the row of
``P(r_site * t_branch)`` selected by the parent's state.

Everything is vectorized across sites: for each branch we loop only over
the (category, parent-state) pairs — at most ``K * states`` inner steps —
and sample all matching sites with one ``searchsorted`` each.
"""
from __future__ import annotations

import numpy as np

from ..plk.alignment import Alignment
from ..plk.datatypes import DataType
from ..plk.eigen import EigenSystem
from ..plk.gamma import GAMMA_CATEGORIES, discrete_gamma_rates
from ..plk.models import SubstitutionModel
from ..plk.tree import Tree

__all__ = ["simulate_alignment", "simulate_states"]


def simulate_states(
    tree: Tree,
    lengths: np.ndarray,
    model: SubstitutionModel,
    alpha: float,
    n_sites: int,
    rng: np.random.Generator,
    categories: int = GAMMA_CATEGORIES,
) -> np.ndarray:
    """Simulate integer state indices for every leaf.

    Returns ``(n_taxa, n_sites)`` int8 state indices.
    """
    if lengths.shape != (tree.n_edges,):
        raise ValueError("branch-length vector has wrong shape")
    eigen = EigenSystem.from_model(model)
    rates = discrete_gamma_rates(alpha, categories)
    pi = model.frequencies
    states = model.states

    site_cat = rng.integers(0, categories, size=n_sites)
    root = tree.n_nodes - 1  # highest inner node as the simulation root
    node_states = np.empty((tree.n_nodes, n_sites), dtype=np.int8)
    node_states[root] = rng.choice(states, size=n_sites, p=pi)

    # Preorder walk from the root.
    stack: list[tuple[int, int]] = [(root, -1)]
    while stack:
        node, parent = stack.pop()
        for child in tree.neighbors(node):
            if child == parent:
                continue
            eid = tree.edge_between(node, child)
            t = float(max(lengths[eid], 1e-8))
            # (K, s, s) cumulative transition rows for this branch.
            pmats = eigen.transition_matrices(t, rates)
            pmats = np.clip(pmats, 0.0, None)
            pmats /= pmats.sum(axis=2, keepdims=True)
            cum = np.cumsum(pmats, axis=2)
            draw = rng.random(n_sites)
            child_states = np.empty(n_sites, dtype=np.int8)
            parent_states = node_states[node]
            for k in range(len(rates)):
                for s in range(states):
                    mask = (site_cat == k) & (parent_states == s)
                    if not mask.any():
                        continue
                    child_states[mask] = np.searchsorted(
                        cum[k, s], draw[mask], side="right"
                    ).astype(np.int8)
            np.clip(child_states, 0, states - 1, out=child_states)
            node_states[child] = child_states
            stack.append((child, node))
    return node_states[: tree.n_taxa]


def simulate_alignment(
    tree: Tree,
    lengths: np.ndarray,
    model: SubstitutionModel,
    alpha: float,
    n_sites: int,
    rng: np.random.Generator,
    categories: int = GAMMA_CATEGORIES,
    unique_columns: bool = False,
    max_attempts: int = 20,
) -> Alignment:
    """Simulate an alignment; optionally enforce all-unique columns.

    ``unique_columns=True`` reproduces the paper's experimental-setup
    statement "we ensured that each alignment consists entirely of unique
    columns, hence m = m'": duplicate columns are replaced by freshly
    simulated ones until the alignment has ``n_sites`` distinct columns.
    """
    datatype: DataType = model.datatype
    leaf_states = simulate_states(tree, lengths, model, alpha, n_sites, rng, categories)
    if unique_columns:
        columns = _unique_columns(leaf_states)
        attempts = 0
        while columns.shape[1] < n_sites:
            attempts += 1
            if attempts > max_attempts:
                raise RuntimeError(
                    f"could not reach {n_sites} unique columns in "
                    f"{max_attempts} attempts (tree too small / too similar?)"
                )
            deficit = n_sites - columns.shape[1]
            # Common patterns keep recurring, so grow the oversampling
            # factor with each attempt.
            extra = simulate_states(
                tree,
                lengths,
                model,
                alpha,
                max(deficit * 2 * attempts, 256),
                rng,
                categories,
            )
            columns = _unique_columns(np.concatenate([columns, extra], axis=1))
        leaf_states = columns[:, :n_sites]

    chars = np.frombuffer(datatype.symbols.encode("ascii"), dtype=np.uint8)
    matrix = chars[leaf_states.astype(np.intp)]
    return Alignment(
        taxa=tree.taxa, matrix=matrix, datatype=datatype
    )


def _unique_columns(states: np.ndarray) -> np.ndarray:
    """Distinct columns of a state matrix, in first-appearance order."""
    cols = np.ascontiguousarray(states.T)
    _, first = np.unique(cols, axis=0, return_index=True)
    return states[:, np.sort(first)]
