"""Bootstrap replicates (Felsenstein 1985) over partitioned alignments.

The paper's introduction situates the PLK's fine-grained parallelism
against the *embarrassingly parallel* outer layer of bootstrap replicates.
This module supplies that layer: column resampling is done per partition
(standard practice for partitioned data) and — because the likelihood only
sees (pattern, weight) pairs — a replicate is simply the SAME pattern data
with a multinomially resampled weight vector, costing no extra memory for
tips or CLV structure.
"""
from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..plk.partition import PartitionData, PartitionedAlignment
from ..plk.tree import Tree

__all__ = ["bootstrap_weights", "bootstrap_replicate", "split_support"]


def bootstrap_weights(
    data: PartitionedAlignment, rng: np.random.Generator
) -> list[np.ndarray]:
    """Per-partition resampled weight vectors.

    Each partition's ``n_sites`` columns are drawn with replacement; since
    identical columns share a pattern, the replicate's weights follow
    ``Multinomial(n_sites, w / n_sites)`` over the existing patterns.
    """
    out = []
    for block in data.data:
        total = int(block.weights.sum())
        probs = block.weights / total
        out.append(rng.multinomial(total, probs).astype(np.int64))
    return out


@dataclass(frozen=True)
class _ReweightedAlignment:
    """A bootstrap replicate: original pattern data, new weights.

    Duck-types the slice of :class:`PartitionedAlignment` the engines use
    (``data``, ``n_partitions``, ``n_taxa``, ``pattern_counts``).
    """

    data: tuple[PartitionData, ...]
    alignment: object
    scheme: object

    @property
    def n_partitions(self) -> int:
        return len(self.data)

    @property
    def n_taxa(self) -> int:
        return self.data[0].tip_states.shape[0]

    @property
    def n_patterns(self) -> int:
        return sum(d.n_patterns for d in self.data)

    def pattern_counts(self) -> np.ndarray:
        return np.array([d.n_patterns for d in self.data], dtype=np.int64)


def bootstrap_replicate(
    data: PartitionedAlignment, rng: np.random.Generator
) -> _ReweightedAlignment:
    """One bootstrap replicate of a partitioned alignment.

    Patterns with weight 0 in the draw are kept (zero weight contributes
    nothing to the likelihood) so every replicate shares tip arrays with
    the original — replicates are nearly free to construct.
    """
    weights = bootstrap_weights(data, rng)
    blocks = tuple(
        PartitionData(
            partition=block.partition,
            tip_states=block.tip_states,  # shared, read-only
            weights=w,
        )
        for block, w in zip(data.data, weights)
    )
    return _ReweightedAlignment(
        data=blocks, alignment=data.alignment, scheme=data.scheme
    )


def split_support(reference: Tree, replicate_trees: list[Tree]) -> dict[frozenset[int], float]:
    """Bootstrap support of each non-trivial split of ``reference``: the
    fraction of replicate trees containing it."""
    if not replicate_trees:
        raise ValueError("need at least one replicate tree")
    counts: Counter = Counter()
    for tree in replicate_trees:
        remap = {i: reference.taxa.index(name) for i, name in enumerate(tree.taxa)}
        for split in tree.splits():
            mapped = frozenset(remap[x] for x in split)
            if 0 in mapped:
                mapped = frozenset(range(reference.n_taxa)) - mapped
            counts[mapped] += 1
    n = len(replicate_trees)
    return {split: counts.get(split, 0) / n for split in reference.splits()}
