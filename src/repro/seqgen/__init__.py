"""Sequence and dataset simulation (the SeqGen substitute, Section V)."""
from .datasets import (
    PAPER_REALWORLD,
    PAPER_SIMULATED,
    Dataset,
    paper_dataset,
    realworld_standin,
    simulated_dataset,
)
from .bootstrap import bootstrap_replicate, bootstrap_weights, split_support
from .gappy import coverage_fraction, gappy_dataset
from .randomtree import default_taxa, random_topology_with_lengths, yule_tree
from .schemes import scheme_from_lengths, variable_lengths
from .simulate import simulate_alignment, simulate_states

__all__ = [
    "PAPER_REALWORLD",
    "PAPER_SIMULATED",
    "Dataset",
    "bootstrap_replicate",
    "bootstrap_weights",
    "coverage_fraction",
    "default_taxa",
    "gappy_dataset",
    "paper_dataset",
    "random_topology_with_lengths",
    "realworld_standin",
    "scheme_from_lengths",
    "simulate_alignment",
    "simulate_states",
    "simulated_dataset",
    "split_support",
    "variable_lengths",
    "yule_tree",
]
