"""Partition-scheme construction helpers.

The paper uses two families of schemes:

* the uniform ``p1000 / p5000 / p10000`` schemes for the simulated
  datasets (:func:`repro.plk.partition.uniform_scheme`), and
* variable-length biologically-curated schemes for the real-world
  alignments (e.g. r125_19839: 34 partitions between 148 and 2,705
  patterns).  :func:`variable_lengths` draws such a length profile
  deterministically, honouring the published total / count / min / max.
"""
from __future__ import annotations

import numpy as np

from ..plk.datatypes import DataType, get_datatype
from ..plk.partition import Partition, PartitionScheme

__all__ = ["variable_lengths", "scheme_from_lengths"]


def variable_lengths(
    total: int,
    count: int,
    lo: int,
    hi: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``count`` partition lengths in ``[lo, hi]`` summing to ``total``.

    The smallest and largest entries are pinned to exactly ``lo`` and
    ``hi`` (matching the min/max the paper reports); interior entries are
    log-uniform, then iteratively rebalanced to hit the exact total.
    """
    if count < 2:
        raise ValueError("need at least 2 partitions")
    if not (lo * count <= total <= hi * count):
        raise ValueError(
            f"total {total} infeasible for {count} partitions in [{lo}, {hi}]"
        )
    lengths = np.exp(rng.uniform(np.log(lo), np.log(hi), size=count))
    lengths = np.round(lengths).astype(np.int64)
    lengths[0] = lo
    lengths[-1] = hi
    lengths[1:-1] = np.clip(lengths[1:-1], lo, hi)

    # Rebalance interior entries until the sum is exact.
    for _ in range(10_000):
        gap = total - int(lengths.sum())
        if gap == 0:
            break
        idx = 1 + int(rng.integers(0, count - 2)) if count > 2 else 0
        step = int(np.sign(gap)) * min(abs(gap), max(1, abs(gap) // max(count - 2, 1)))
        new = int(np.clip(lengths[idx] + step, lo, hi))
        lengths[idx] = new
    if int(lengths.sum()) != total:
        raise RuntimeError("length rebalancing failed to converge")
    return lengths


def scheme_from_lengths(
    lengths: np.ndarray, datatype: DataType | str = "DNA", prefix: str = "gene"
) -> PartitionScheme:
    """Consecutive partitions with the given lengths."""
    dtype = get_datatype(datatype) if isinstance(datatype, str) else datatype
    parts = []
    start = 0
    for i, length in enumerate(np.asarray(lengths, dtype=np.int64)):
        parts.append(
            Partition(f"{prefix}{i}", dtype, ((start, start + int(length)),))
        )
        start += int(length)
    return PartitionScheme(tuple(parts))
