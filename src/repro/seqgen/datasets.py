"""The paper's test datasets (Section V, "Test Datasets").

Simulated matrix: 12 DNA datasets ``dXX_YYYY`` (XX taxa in {10, 20, 50,
100}, YYYY columns in {5,000, 20,000, 50,000}) generated on random seed
trees, every column unique (m == m').  Each dataset combines with the
uniform partition schemes p1000 / p5000 / p10000 where the partition
length divides into the alignment (e.g. d10_5000 cannot run p10000).

Real-world stand-ins: the paper's three biological alignments are
proprietary collaborations; we generate synthetic alignments with the
*published shape statistics* (taxa, #partitions, total distinct patterns,
min/max partition length, datatype), which are the only properties the
load-balance behaviour depends on (see DESIGN.md substitution table):

* ``r26_21451`` — 26 taxa, viral proteins, 26 partitions, 21,451 patterns,
  partition lengths in [173, 2,695], AA.
* ``r24_16916`` — 24 taxa, viral proteins, 20 partitions, 16,916 patterns,
  partition lengths in [173, 2,695], AA.
* ``r125_19839`` — 125 taxa, mammalian DNA, 34 partitions, 19,839
  patterns, partition lengths in [148, 2,705], DNA.

Per-partition model heterogeneity (different GTR rates, alpha, and a
per-gene rate multiplier) is essential: it is what makes the iterative
optimizers converge after *different* iteration counts per partition,
which is the root cause of the paper's load imbalance.

Caveat: the all-unique-columns construction (the paper's m == m') is a
*performance* benchmark design, not a statistical one — discarding
duplicate columns removes exactly the slow-evolving sites that evidence
rate heterogeneity, so parameter estimates (notably alpha) on these
datasets are biased toward homogeneity.  Use plain
:func:`repro.seqgen.simulate_alignment` data for estimation studies.
"""
from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..plk.alignment import Alignment
from ..plk.datatypes import AA, DNA
from ..plk.models import SubstitutionModel
from ..plk.partition import PartitionedAlignment, PartitionScheme, uniform_scheme
from ..plk.tree import Tree
from .randomtree import random_topology_with_lengths
from .schemes import scheme_from_lengths, variable_lengths
from .simulate import simulate_alignment

__all__ = [
    "Dataset",
    "simulated_dataset",
    "realworld_standin",
    "PAPER_SIMULATED",
    "PAPER_REALWORLD",
    "paper_dataset",
]

#: The paper's 12 simulated datasets: (taxa, columns).
PAPER_SIMULATED: tuple[tuple[int, int], ...] = tuple(
    (taxa, sites)
    for taxa in (10, 20, 50, 100)
    for sites in (5_000, 20_000, 50_000)
)

#: Published shape statistics of the three real-world alignments:
#: name -> (taxa, partitions, total patterns, min len, max len, datatype).
PAPER_REALWORLD: dict[str, tuple[int, int, int, int, int, str]] = {
    "r26_21451": (26, 26, 21_451, 173, 2_695, "AA"),
    "r24_16916": (24, 20, 16_916, 173, 2_695, "AA"),
    "r125_19839": (125, 34, 19_839, 148, 2_705, "DNA"),
}


@dataclass(frozen=True)
class Dataset:
    """A ready-to-analyze benchmark dataset: alignment + scheme + the true
    generating tree (used as the fixed input tree, as the paper does "on a
    fixed input tree for reproducibility")."""

    name: str
    tree: Tree
    true_lengths: np.ndarray
    alignment: Alignment
    scheme: PartitionScheme
    #: per-partition generating parameters, for reference
    alphas: tuple[float, ...]

    def partitioned(self) -> PartitionedAlignment:
        return PartitionedAlignment(self.alignment, self.scheme)

    @property
    def n_taxa(self) -> int:
        return self.alignment.n_taxa

    @property
    def n_partitions(self) -> int:
        return len(self.scheme)


def _heterogeneous_models(
    n_partitions: int, datatype: str, seed: int
) -> tuple[list[SubstitutionModel], list[float], np.ndarray]:
    """Per-partition generating models, alphas and rate multipliers."""
    rng = np.random.default_rng(seed)
    models: list[SubstitutionModel] = []
    alphas: list[float] = []
    for p in range(n_partitions):
        if datatype == "DNA":
            models.append(SubstitutionModel.random_gtr(seed * 1_000 + p))
        else:
            models.append(SubstitutionModel.synthetic_aa(seed * 1_000 + p))
        alphas.append(float(np.exp(rng.normal(-0.2, 0.5))))  # ~[0.3, 2.5]
    multipliers = np.exp(rng.normal(0.0, 0.35, size=n_partitions))
    return models, alphas, multipliers


def _simulate_partitioned(
    name: str,
    tree: Tree,
    lengths: np.ndarray,
    scheme: PartitionScheme,
    datatype: str,
    seed: int,
    unique_columns: bool,
) -> Dataset:
    models, alphas, multipliers = _heterogeneous_models(len(scheme), datatype, seed)
    rng = np.random.default_rng(seed + 99)
    blocks: list[np.ndarray] = []
    for p, part in enumerate(scheme):
        sub = simulate_alignment(
            tree,
            lengths * multipliers[p],
            models[p],
            alphas[p],
            part.n_sites,
            rng,
            unique_columns=unique_columns,
        )
        blocks.append(sub.matrix)
    matrix = np.concatenate(blocks, axis=1)
    dtype = DNA if datatype == "DNA" else AA
    alignment = Alignment(taxa=tree.taxa, matrix=matrix, datatype=dtype)
    return Dataset(
        name=name,
        tree=tree,
        true_lengths=lengths,
        alignment=alignment,
        scheme=scheme,
        alphas=tuple(alphas),
    )


@lru_cache(maxsize=8)
def simulated_dataset(
    n_taxa: int,
    n_sites: int,
    partition_length: int = 1_000,
    seed: int = 42,
    unique_columns: bool = True,
) -> Dataset:
    """One of the paper's ``dXX_YYYY`` datasets with a ``pZZZZ`` scheme.

    ``simulated_dataset(50, 50_000, 1_000)`` is Figure 3's d50_50000 with
    50 partitions of 1,000 columns each.
    """
    if n_sites % partition_length != 0:
        raise ValueError(
            f"the paper only combines datasets with schemes that divide "
            f"evenly; {partition_length} does not divide {n_sites}"
        )
    rng = np.random.default_rng(seed)
    tree, lengths = random_topology_with_lengths(n_taxa, rng)
    scheme = uniform_scheme(n_sites, partition_length)
    return _simulate_partitioned(
        f"d{n_taxa}_{n_sites}_p{partition_length}",
        tree,
        lengths,
        scheme,
        "DNA",
        seed,
        unique_columns,
    )


@lru_cache(maxsize=4)
def realworld_standin(name: str, seed: int = 7) -> Dataset:
    """Synthetic stand-in for one of the paper's real-world alignments."""
    try:
        taxa, n_parts, total, lo, hi, dtype = PAPER_REALWORLD[name]
    except KeyError:
        raise KeyError(
            f"unknown real-world dataset {name!r}; known: {sorted(PAPER_REALWORLD)}"
        ) from None
    rng = np.random.default_rng(seed)
    part_lengths = variable_lengths(total, n_parts, lo, hi, rng)
    tree, lengths = random_topology_with_lengths(taxa, rng)
    scheme = scheme_from_lengths(part_lengths, dtype)
    return _simulate_partitioned(
        name, tree, lengths, scheme, dtype, seed, unique_columns=True
    )


def paper_dataset(name: str, seed: int = 42) -> Dataset:
    """Resolve any paper dataset id: ``d50_50000_p1000`` or ``r125_19839``."""
    if name.startswith("r"):
        return realworld_standin(name)
    parts = name.split("_")
    if len(parts) != 3 or not parts[2].startswith("p"):
        raise ValueError(
            "simulated dataset ids look like d50_50000_p1000 "
            f"(got {name!r})"
        )
    return simulated_dataset(
        int(parts[0][1:]), int(parts[1]), int(parts[2][1:]), seed=seed
    )
