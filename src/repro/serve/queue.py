"""Job lifecycle and the multi-tenant queue.

A job moves through a small state machine::

    PENDING --claim--> RUNNING --finish--> DONE | FAILED
    PENDING --cancel--> CANCELLED
    PENDING --deadline--> EXPIRED

Cancellation and expiry only affect PENDING jobs: a claimed job runs to
completion (worker commands are not interruptible mid-barrier), which
keeps the warm team's parameter state well-defined.  ``docs/SERVICE.md``
documents these semantics for operators.

Scheduling order within :meth:`JobQueue.claim` is strict priority
classes; inside a class, the tenant with the least *cumulative served
cost* goes first (cost-weighted fair sharing — a tenant submitting huge
analyses cannot starve a tenant submitting small ones), and ties fall
back to submission order.  Served cost uses the same units as
:class:`repro.parallel.balance.CostModel` prices work in, so fairness
and team packing speak one currency.
"""
from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Job", "JobQueue", "JobState"]


class JobState:
    """String constants for the job state machine (JSON-friendly)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    EXPIRED = "expired"

    #: States a job can never leave.
    TERMINAL = frozenset({DONE, FAILED, CANCELLED, EXPIRED})


@dataclass
class Job:
    """One unit of service work: an operation against a dataset context.

    ``spec`` is the client-provided request body: at minimum an ``op``
    (e.g. ``"loglikelihood"``) and a ``dataset`` description the
    :class:`~repro.serve.cache.ServeCache` can build a context from.
    ``cost`` is the scheduler's predicted cost in
    :class:`~repro.parallel.balance.CostModel` units, priced at submit
    time by :func:`repro.serve.pool.price_job`.
    """

    id: str
    tenant: str
    spec: dict
    priority: int = 0
    timeout: float | None = None  # max seconds to wait in the queue
    cost: float = 1.0
    state: str = JobState.PENDING
    result: Any = None
    error: dict | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    _seq: int = 0
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def finished(self) -> bool:
        return self.state in JobState.TERMINAL

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._done.wait(timeout)

    def to_dict(self) -> dict:
        """JSON-ready summary (the socket protocol's job view)."""
        out = {
            "id": self.id,
            "tenant": self.tenant,
            "op": self.spec.get("op"),
            "priority": self.priority,
            "cost": round(float(self.cost), 6),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.state == JobState.DONE:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        return out


class JobQueue:
    """Thread-safe priority queue with per-tenant fair sharing.

    The queue is intentionally small and scan-based: service queues hold
    tens of jobs, not millions, and a linear scan under the lock keeps
    the fairness rule (priority class, then least-served tenant, then
    FIFO) trivially auditable.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._pending: list[Job] = []
        self._jobs: dict[str, Job] = {}
        self._seq = itertools.count()
        #: Cumulative served cost per tenant (fairness counters).
        self.tenant_served: dict[str, float] = {}
        self._closed = False

    # -- submission --------------------------------------------------------

    def submit(self, job: Job) -> Job:
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is closed")
            if job.id in self._jobs:
                raise ValueError(f"duplicate job id {job.id!r}")
            job._seq = next(self._seq)
            self._jobs[job.id] = job
            self._pending.append(job)
            self.tenant_served.setdefault(job.tenant, 0.0)
            self._ready.notify()
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- scheduling --------------------------------------------------------

    def _claim_key(self, job: Job):
        return (-job.priority, self.tenant_served.get(job.tenant, 0.0), job._seq)

    def _reap_locked(self, now: float) -> None:
        expired = [
            j for j in self._pending
            if j.timeout is not None and now - j.submitted_at > j.timeout
        ]
        for job in expired:
            self._pending.remove(job)
            job.state = JobState.EXPIRED
            job.error = {
                "type": "expired",
                "message": f"queued longer than timeout={job.timeout}s",
            }
            job.finished_at = now
            job._done.set()

    def reap(self) -> list[Job]:
        """Expire pending jobs past their queue-wait deadline; returns them."""
        with self._lock:
            before = {j.id for j in self._pending}
            self._reap_locked(time.time())
            return [
                j for jid, j in self._jobs.items()
                if jid in before and j.state == JobState.EXPIRED
            ]

    def claim(self, timeout: float | None = None) -> Job | None:
        """Take the best eligible pending job (blocks up to ``timeout``).

        Returns ``None`` on timeout or queue shutdown.  The returned job
        is already RUNNING and its cost is charged to the tenant's
        fairness counter.
        """
        deadline = None if timeout is None else time.time() + timeout
        with self._lock:
            while True:
                self._reap_locked(time.time())
                if self._pending:
                    job = min(self._pending, key=self._claim_key)
                    self._pending.remove(job)
                    job.state = JobState.RUNNING
                    job.started_at = time.time()
                    self.tenant_served[job.tenant] = (
                        self.tenant_served.get(job.tenant, 0.0) + job.cost
                    )
                    return job
                if self._closed:
                    return None
                wait = None if deadline is None else deadline - time.time()
                if wait is not None and wait <= 0:
                    return None
                self._ready.wait(wait)

    def claim_batch(self, match, limit: int = 8) -> list[Job]:
        """Claim up to ``limit`` additional pending jobs satisfying
        ``match(job)`` (non-blocking) — the request-batching hook: the
        executor drains compatible small jobs and fuses them into one
        program."""
        out: list[Job] = []
        with self._lock:
            for job in sorted(self._pending, key=self._claim_key):
                if len(out) >= limit:
                    break
                if not match(job):
                    continue
                out.append(job)
            now = time.time()
            for job in out:
                self._pending.remove(job)
                job.state = JobState.RUNNING
                job.started_at = now
                self.tenant_served[job.tenant] = (
                    self.tenant_served.get(job.tenant, 0.0) + job.cost
                )
        return out

    # -- completion --------------------------------------------------------

    def finish(self, job: Job, result: Any = None, error: dict | None = None) -> None:
        with self._lock:
            if job.finished:
                return
            job.state = JobState.FAILED if error is not None else JobState.DONE
            job.result = result
            job.error = error
            job.finished_at = time.time()
            job._done.set()

    def cancel(self, job_id: str) -> bool:
        """Cancel a PENDING job.  Returns False if unknown, already
        running, or already terminal (running jobs run to completion)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != JobState.PENDING:
                return False
            self._pending.remove(job)
            job.state = JobState.CANCELLED
            job.error = {"type": "cancelled", "message": "cancelled by client"}
            job.finished_at = time.time()
            job._done.set()
            return True

    def close(self) -> None:
        """Stop accepting work and wake blocked claimers (they get None)."""
        with self._lock:
            self._closed = True
            self._ready.notify_all()

    # -- introspection -----------------------------------------------------

    def imbalance(self) -> float:
        """max/mean over per-tenant served cost (1.0 = perfectly fair);
        the ``serve.tenant_imbalance`` gauge."""
        from ..parallel.balance import imbalance_ratio

        served = [v for v in self.tenant_served.values() if v > 0]
        if not served:
            return 1.0
        return imbalance_ratio(served)

    def snapshot(self) -> dict:
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "depth": len(self._pending),
                "jobs": dict(states),
                "tenants": {t: round(c, 6) for t, c in self.tenant_served.items()},
            }
