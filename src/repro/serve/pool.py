"""Warm worker-team pool: checkout/return without teardown.

The expensive part of the processes backend is setup: fork the team,
build (under shm comms) the pre-fork input arena, prime every worker's
partition engines.  A one-shot run pays it per invocation; the pool pays
it once per (dataset, engine-config) and keeps the team *warm* —
forked-and-ready — between requests.

Scheduling is cost-aware in the :mod:`repro.parallel.balance` currency:

* :func:`price_job` prices a request with the same
  :class:`~repro.parallel.balance.CostModel` that prices partition work,
  so queue fairness, team packing and load balancing all speak one unit;
* :meth:`TeamPool.checkout` is *online least-loaded packing*: among idle
  replicas for a dataset it picks the team with the least cumulative
  served cost;
* :func:`pack_jobs` is the offline LPT counterpart (the same greedy
  heap idiom as ``balance._lpt_indices``) used to split a drained batch
  across several idle teams.

Hermeticity: a warm team that ran a parameter-mutating job is restored
to its initial snapshot via
:meth:`~repro.parallel.engine.ParallelPLK.restore_parameters` (one fused
program) on check-in, so every checkout observes the same state a cold
engine starts from — warm results are bitwise-identical to one-shot
runs.
"""
from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..parallel.balance import CostModel
from ..parallel.engine import WorkerError

__all__ = ["TeamPool", "WarmTeam", "pack_jobs", "price_job"]


#: Relative cost of one service op against one full-traversal evaluation
#: of the dataset.  Rough but consistent: fairness and packing only need
#: costs to be *comparable*, not exact seconds.
OP_WEIGHT = {
    "loglikelihood": 1.0,
    "optimize_branch": 6.0,   # per edge: prepare + Newton rounds
    "optimize_branches": 6.0, # per edge in spec["edges"]
    "optimize_alpha": 10.0,   # Brent evaluations
}


def price_job(spec: dict, layout, cost_model: CostModel | None = None) -> float:
    """Predicted cost of a job spec over a dataset layout, in
    :class:`~repro.parallel.balance.CostModel` units.

    >>> from repro.parallel.balance import PartitionLayout
    >>> layout = PartitionLayout((100, 100), (4, 4))
    >>> lnl = price_job({"op": "loglikelihood"}, layout)
    >>> opt = price_job({"op": "optimize_branches", "edges": [0, 1, 2]}, layout)
    >>> opt / lnl
    18.0
    """
    model = cost_model if cost_model is not None else CostModel.analytic(layout)
    base = float(model.partition_costs(layout).sum())
    op = spec.get("op", "loglikelihood")
    weight = OP_WEIGHT.get(op, 1.0)
    edges = spec.get("edges")
    if op in ("optimize_branch", "optimize_branches") and edges is not None:
        n_edges = len(edges) if hasattr(edges, "__len__") else int(edges)
        weight *= max(n_edges, 1)
    return base * weight


def pack_jobs(costs, n_teams: int) -> list[list[int]]:
    """LPT-pack job indices onto ``n_teams`` by descending cost (the
    greedy heap idiom of ``balance._lpt_indices``, applied to jobs).

    >>> pack_jobs([5.0, 3.0, 3.0, 2.0, 1.0], 2)
    [[0, 3], [1, 2, 4]]
    """
    if n_teams < 1:
        raise ValueError("need at least one team")
    heap = [(0.0, t) for t in range(n_teams)]
    heapq.heapify(heap)
    groups: list[list[int]] = [[] for _ in range(n_teams)]
    order = sorted(range(len(costs)), key=lambda i: -float(costs[i]))
    for i in order:
        load, t = heapq.heappop(heap)
        groups[t].append(i)
        heapq.heappush(heap, (load + float(costs[i]), t))
    for group in groups:
        group.sort()
    return groups


@dataclass
class WarmTeam:
    """One warm engine bound to one dataset context."""

    key: str
    engine: object  # ParallelPLK
    context: object  # AnalysisContext
    lengths0: np.ndarray
    alphas0: list[float]
    jobs_served: int = 0
    cost_served: float = 0.0
    dirty: bool = False
    last_used: float = field(default_factory=time.time)

    def restore(self) -> None:
        """Replay the initial parameter snapshot (one fused program)."""
        self.engine.restore_parameters(self.lengths0, self.alphas0)
        self.dirty = False


class TeamPool:
    """Bounded pool of warm teams with LRU cross-dataset eviction.

    ``factory(context)`` builds a fresh
    :class:`~repro.parallel.engine.ParallelPLK` for a context; the
    service supplies it with its backend/comms/kernel configuration.

    ``capacity`` bounds the number of live teams (each one holds a full
    worker team's processes/threads).  A checkout for a new dataset when
    every slot is busy blocks until a team frees; if an *idle* team for
    a different dataset exists it is evicted (closed) instead, LRU
    first.
    """

    def __init__(self, factory, capacity: int = 2):
        if capacity < 1:
            raise ValueError("pool capacity must be >= 1")
        self.factory = factory
        self.capacity = capacity
        self._lock = threading.Lock()
        self._freed = threading.Condition(self._lock)
        self._idle: list[WarmTeam] = []
        self._busy: list[WarmTeam] = []
        self._building = 0
        self._closed = False
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.discards = 0

    # -- lifecycle ---------------------------------------------------------

    def _total_locked(self) -> int:
        return len(self._idle) + len(self._busy) + self._building

    def checkout(self, context, timeout: float | None = None) -> WarmTeam:
        """Acquire a warm team for ``context`` (build one on miss).

        Blocks up to ``timeout`` seconds when the pool is saturated with
        busy teams; raises ``TimeoutError`` after that.
        """
        deadline = None if timeout is None else time.time() + timeout
        with self._lock:
            while True:
                if self._closed:
                    raise RuntimeError("team pool is closed")
                # Warm hit: least-loaded idle replica for this dataset.
                matches = [t for t in self._idle if t.key == context.key]
                if matches:
                    team = min(matches, key=lambda t: t.cost_served)
                    self._idle.remove(team)
                    self._busy.append(team)
                    self.hits += 1
                    return team
                if self._total_locked() < self.capacity:
                    self._building += 1
                    break
                # Saturated: evict an idle team of another dataset (LRU).
                if self._idle:
                    victim = min(self._idle, key=lambda t: t.last_used)
                    self._idle.remove(victim)
                    self.evictions += 1
                    victim.engine.close()
                    continue  # slot freed; loop re-checks capacity
                wait = None if deadline is None else deadline - time.time()
                if wait is not None and wait <= 0:
                    raise TimeoutError(
                        f"no team available within {timeout}s "
                        f"(capacity={self.capacity}, all busy)"
                    )
                self._freed.wait(wait)
        # Cold build outside the lock (fork + arenas are slow).
        self.misses += 1
        try:
            engine = self.factory(context)
        except BaseException:
            with self._lock:
                self._building -= 1
                self._freed.notify()
            raise
        team = WarmTeam(
            key=context.key,
            engine=engine,
            context=context,
            lengths0=np.asarray(context.lengths, float).copy(),
            alphas0=list(context.alphas),
        )
        with self._lock:
            self._building -= 1
            self._busy.append(team)
        return team

    def checkin(self, team: WarmTeam) -> None:
        """Return a team warm (no teardown).  A dirty team is restored to
        its initial snapshot first; a team whose engine died is discarded
        instead of reused."""
        if team.engine.closed:
            self.discard(team)
            return
        if team.dirty:
            try:
                team.restore()
            except WorkerError:
                self.discard(team)
                return
        team.last_used = time.time()
        with self._lock:
            if team in self._busy:
                self._busy.remove(team)
            self._idle.append(team)
            self._freed.notify()

    def discard(self, team: WarmTeam) -> None:
        """Drop a team from the pool and tear it down (post-failure)."""
        self.discards += 1
        try:
            team.engine.close()
        except Exception:
            pass
        with self._lock:
            if team in self._busy:
                self._busy.remove(team)
            if team in self._idle:
                self._idle.remove(team)
            self._freed.notify()

    def record(self, team: WarmTeam, cost: float) -> None:
        team.jobs_served += 1
        team.cost_served += float(cost)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            teams = self._idle + self._busy
            self._idle = []
            self._busy = []
            self._freed.notify_all()
        for team in teams:
            try:
                team.engine.close()
            except Exception:
                pass

    # -- introspection -----------------------------------------------------

    def idle_teams(self, key: str | None = None) -> list[WarmTeam]:
        with self._lock:
            return [t for t in self._idle if key is None or t.key == key]

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "idle": len(self._idle),
                "busy": len(self._busy),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "discards": self.discards,
                "teams": [
                    {
                        "key": t.key,
                        "jobs_served": t.jobs_served,
                        "cost_served": round(t.cost_served, 6),
                        "busy": t in self._busy,
                    }
                    for t in self._idle + self._busy
                ],
            }
