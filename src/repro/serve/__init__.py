"""Likelihood-as-a-service: a persistent engine behind a job queue.

The one-shot CLI pays the full setup bill — fork a worker team, build
tip arenas, eigendecompose every model — per invocation.  ``repro.serve``
keeps that state warm between requests and multiplexes many tenants over
it, the way BEAGLE serves diverse clients behind one likelihood API:

* :mod:`repro.serve.queue` — job lifecycle (priorities, per-tenant
  fairness, queue-wait timeouts, cancellation);
* :mod:`repro.serve.pool` — warm :class:`~repro.parallel.engine.ParallelPLK`
  teams checked out and returned without teardown, priced onto teams by
  the :mod:`repro.parallel.balance` cost model;
* :mod:`repro.serve.cache` — cross-request contexts (datasets, trees,
  models with memoized eigensystems) with memory-pressure LRU eviction;
* :mod:`repro.serve.daemon` — the :class:`LikelihoodService` executor
  core and the newline-delimited-JSON unix-socket front end;
* :mod:`repro.serve.client` — one client interface, in-process or over
  the socket.

Operator's handbook: ``docs/SERVICE.md``.
"""
from .cache import AnalysisContext, ServeCache, fingerprint
from .client import LocalClient, SocketClient
from .daemon import LikelihoodService, ServiceConfig
from .pool import TeamPool, WarmTeam, price_job
from .queue import Job, JobQueue, JobState

__all__ = [
    "AnalysisContext",
    "Job",
    "JobQueue",
    "JobState",
    "LikelihoodService",
    "LocalClient",
    "ServeCache",
    "ServiceConfig",
    "SocketClient",
    "TeamPool",
    "WarmTeam",
    "fingerprint",
    "price_job",
]
