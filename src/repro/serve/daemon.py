"""The service core and the unix-socket daemon.

:class:`LikelihoodService` is the in-process heart: N executor threads
pull priced jobs from a :class:`~repro.serve.queue.JobQueue`, check warm
teams out of a :class:`~repro.serve.pool.TeamPool`, run the requested
operation, and thread every outcome through the obs plane (metrics
counters/gauges, tracer job spans, flight-recorder events with JSONL
post-mortems on worker death).  Tests and the
:class:`~repro.serve.client.LocalClient` drive it directly; the socket
front end (:func:`serve_forever`) adds NDJSON framing on top, nothing
more — one code path serves both.

Request batching: an executor that claims a ``loglikelihood`` job drains
other pending ``loglikelihood`` jobs for the *same dataset* (up to
``batch_limit``) and fuses all of them into ONE worker program — one
broadcast/barrier computes every lnl in the batch, the same trick the
batched optimizers use for Newton rounds.

Failure semantics (the contract ``docs/SERVICE.md`` promises):

* a worker-side exception or a dead worker process surfaces as a
  FAILED job with a structured ``error`` dict (type, rank, message,
  post-mortem path) — never a hung client;
* the affected team is discarded from the pool (its replacement is
  built cold on the next request);
* queue-wait timeouts expire jobs (EXPIRED), client cancellation
  removes pending jobs (CANCELLED); running jobs always run to
  completion.
"""
from __future__ import annotations

import collections
import itertools
import os
import socketserver
import tempfile
import threading
import time
from dataclasses import dataclass, field, replace

from ..obs.live import FLIGHT_DIR_ENV, FlightRecorder
from ..obs.metrics import MetricsRegistry
from ..obs.prometheus import prometheus_text
from ..obs.tracer import NullTracer
from ..parallel.engine import ParallelPLK, WorkerError
from ..plk.kernels import normalize_kernel_name
from . import protocol
from .cache import ServeCache
from .pool import TeamPool, price_job
from .queue import Job, JobQueue, JobState

__all__ = ["LikelihoodService", "ServiceConfig", "serve_forever"]

#: Operations a job spec may request.  ``mutates`` marks ops that change
#: team parameter state (the team is snapshot-restored on check-in).
OPS = {
    "loglikelihood": {"mutates": False},
    "loglikelihood_parts": {"mutates": False},
    "optimize_branches": {"mutates": True},
    "optimize_alpha": {"mutates": True},
    "chaos_die": {"mutates": False},
    "chaos_raise": {"mutates": False},
}


@dataclass
class ServiceConfig:
    """Engine and scheduling configuration for one service instance."""

    workers: int = 2
    backend: str = "threads"
    comms: str = "pipe"
    kernel: str = "numpy"
    distribution: str = "cyclic"
    categories: int = 4
    executors: int = 2
    pool_capacity: int = 2
    cache_bytes: int | None = None
    batch_limit: int = 8
    checkout_timeout: float = 60.0
    #: Enable the ``chaos_*`` fault-injection ops (tests/drills only).
    allow_chaos: bool = False
    #: Per-team live telemetry planes (``repro top`` attach targets).
    live: bool = False
    postmortem_dir: str | None = None
    engine_kwargs: dict = field(default_factory=dict)


class LikelihoodService:
    """A persistent likelihood engine behind a job queue."""

    def __init__(self, config: ServiceConfig | None = None,
                 metrics: MetricsRegistry | None = None, tracer=None):
        self.config = config or ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NullTracer()
        self.flight = FlightRecorder()
        self.queue = JobQueue()
        self.cache = ServeCache(max_bytes=self.config.cache_bytes)
        self.pool = TeamPool(self._build_engine, self.config.pool_capacity)
        self.started_at = time.time()
        self._job_ids = (f"job-{n}" for n in itertools.count(1))
        self._finish_times: collections.deque[float] = collections.deque(maxlen=256)
        self._threads: list[threading.Thread] = []
        self._live_planes: dict[str, str] = {}
        self._running = False

    # -- engine construction ----------------------------------------------

    def _job_context(self, spec: dict):
        """The dataset context a job runs against, specialized to the
        job's kernel.  A spec-level ``"kernel"`` overrides the service
        default; the override is folded into the context key, so the
        team pool keeps one warm team PER (dataset, kernel) and batching
        never mixes backends."""
        context = self.cache.get(spec["dataset"])
        kern = normalize_kernel_name(spec.get("kernel") or self.config.kernel)
        if kern == normalize_kernel_name(self.config.kernel):
            return context
        return replace(context, key=f"{context.key}+{kern}", kernel=kern)

    def _build_engine(self, context) -> ParallelPLK:
        cfg = self.config
        engine = ParallelPLK(
            context.data,
            context.tree,
            context.models,
            context.alphas,
            n_workers=cfg.workers,
            backend=cfg.backend,
            distribution=cfg.distribution,
            initial_lengths=context.lengths,
            categories=cfg.categories,
            comms=cfg.comms if cfg.backend == "processes" else "pipe",
            kernel=context.kernel or cfg.kernel,
            live=cfg.live,
            metrics=self.metrics,
            **cfg.engine_kwargs,
        )
        plane = getattr(engine, "_stats_plane", None)
        if plane is not None:
            self._live_planes[context.key] = plane.name
        return engine

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "LikelihoodService":
        if self._running:
            return self
        self._running = True
        self.flight.record("service_start", executors=self.config.executors)
        for n in range(self.config.executors):
            t = threading.Thread(
                target=self._executor_loop, name=f"serve-exec-{n}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self.queue.close()
        for t in self._threads:
            t.join(timeout=30)
        self._threads = []
        self.pool.close()
        self.flight.record("service_stop")

    def __enter__(self) -> "LikelihoodService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission --------------------------------------------------------

    def submit(self, spec: dict, tenant: str = "default", priority: int = 0,
               timeout: float | None = None) -> Job:
        """Validate, price and enqueue one job; returns it immediately.

        ``spec`` must carry ``op`` (one of :data:`OPS`) and ``dataset``
        (a :func:`repro.serve.cache.build_context` spec).  An optional
        ``"kernel"`` picks the worker backend for this job (any
        :data:`repro.plk.kernels.KERNEL_CHOICES` name); jobs with
        different kernels run on different warm teams and never batch
        together.  Pricing builds/reuses the dataset context, so the
        cache is warm by the time an executor claims the job.
        """
        op = spec.get("op")
        if op not in OPS:
            raise ValueError(f"unknown op {op!r} (expected one of {sorted(OPS)})")
        if op.startswith("chaos_") and not self.config.allow_chaos:
            raise ValueError(f"op {op!r} requires allow_chaos=True")
        if "dataset" not in spec:
            raise ValueError("spec must carry a 'dataset' description")
        # Validates spec["kernel"] eagerly (bad names fail at submit, not
        # in an executor thread) and warms the dataset context.
        context = self._job_context(spec)
        kern = context.kernel or normalize_kernel_name(self.config.kernel)
        job = Job(
            id=next(self._job_ids),
            tenant=tenant,
            spec=spec,
            priority=int(priority),
            timeout=timeout,
            cost=price_job(spec, context.layout),
        )
        self.queue.submit(job)
        self.metrics.counter("serve.jobs.submitted").inc()
        self.metrics.counter(f"serve.kernel.{kern}.jobs").inc()
        self.metrics.gauge("serve.queue_depth").set(self.queue.depth())
        self.flight.record(
            "job_submitted", job=job.id, tenant=tenant, op=op, kernel=kern
        )
        return job

    # -- execution ---------------------------------------------------------

    def _executor_loop(self) -> None:
        while True:
            job = self.queue.claim()
            if job is None:
                return
            batch = [job]
            if (
                job.spec["op"] == "loglikelihood"
                and self.config.batch_limit > 1
            ):
                key = self._job_context(job.spec).key
                extras = self.queue.claim_batch(
                    lambda j: (
                        j.spec["op"] == "loglikelihood"
                        and self._job_context(j.spec).key == key
                    ),
                    limit=self.config.batch_limit - 1,
                )
                batch.extend(extras)
                if extras:
                    self.metrics.counter("serve.jobs.batched").inc(len(extras))
            self._run_batch(batch)
            self.metrics.gauge("serve.queue_depth").set(self.queue.depth())

    def _run_batch(self, batch: list[Job]) -> None:
        context = self._job_context(batch[0].spec)
        t0 = time.perf_counter()
        try:
            team = self.pool.checkout(context, timeout=self.config.checkout_timeout)
        except (TimeoutError, RuntimeError) as exc:
            for job in batch:
                self._finish(job, error={"type": "pool", "message": str(exc)})
            return
        try:
            if len(batch) > 1:
                steps = tuple(
                    ("lnl", int(j.spec.get("root_edge", 0))) for j in batch
                )
                per_step = team.engine.run_program(steps)
                outcomes = [
                    {"lnl": float(sum(parts)), "batched": len(batch)}
                    for parts in per_step
                ]
            else:
                outcomes = [self._run_op(team, batch[0])]
            for job in batch:
                self.pool.record(team, job.cost)
            # Check the team in BEFORE notifying clients: a client that
            # resubmits the instant its job completes must find the warm
            # team idle, not race it into a cold build.
            self.pool.checkin(team)
            for job, result in zip(batch, outcomes):
                self._finish(job, result=result)
        except WorkerError as exc:
            # EOFError/OSError originals mean the worker process died
            # (the team auto-terminated); anything else is a worker-side
            # exception shipped back — the team itself is still healthy.
            died = isinstance(exc.original, (EOFError, OSError)) or team.engine.closed
            path = self._postmortem(exc, batch)
            error = {
                "type": "worker_death" if died else "worker_error",
                "rank": exc.rank,
                "message": str(exc),
                "postmortem": path,
            }
            for job in batch:
                self._finish(job, error=error)
            if died:
                self.pool.discard(team)
            else:
                # The failed op may have half-applied parameter writes;
                # force a snapshot restore before anyone reuses the team.
                team.dirty = True
                self.pool.checkin(team)
        except Exception as exc:  # noqa: BLE001 - becomes the job's error
            for job in batch:
                self._finish(job, error={"type": "error", "message": str(exc)})
            team.dirty = True
            self.pool.checkin(team)
        finally:
            dur = time.perf_counter() - t0
            for job in batch:
                self.tracer.add_span(
                    f"job:{job.spec['op']}", cat="serve", lane=-1,
                    start=t0, duration=dur, job=job.id, tenant=job.tenant,
                )
                self.metrics.histogram("serve.job_seconds").observe(dur)

    def _run_op(self, team, job: Job) -> dict:
        engine = team.engine
        spec = job.spec
        op = spec["op"]
        if OPS[op]["mutates"]:
            team.dirty = True
        if op == "loglikelihood":
            return {"lnl": float(engine.loglikelihood(int(spec.get("root_edge", 0))))}
        if op == "loglikelihood_parts":
            parts = engine.partition_loglikelihoods(int(spec.get("root_edge", 0)))
            return {"lnl_parts": [float(x) for x in parts],
                    "lnl": float(parts.sum())}
        if op == "optimize_branches":
            edges = [int(e) for e in spec.get("edges", [0])]
            lengths = engine.optimize_branches(edges, spec.get("strategy", "new"))
            return {
                "edges": edges,
                "lengths": [[float(x) for x in row] for row in lengths],
                "lnl": float(engine.loglikelihood(edges[0])),
            }
        if op == "optimize_alpha":
            alphas = engine.optimize_alpha(spec.get("strategy", "new"))
            return {"alphas": [float(a) for a in alphas],
                    "lnl": float(engine.loglikelihood())}
        if op == "chaos_die":
            engine._broadcast(("die", int(spec.get("rank", 0))))
            return {}
        if op == "chaos_raise":
            # An op no worker implements: exercises the worker-side
            # exception path (shipped back, team survives protocol-wise
            # but the error still fails the job).
            engine._broadcast(("no_such_op",))
            return {}
        raise ValueError(f"unhandled op {op!r}")

    def _postmortem(self, exc: WorkerError, batch: list[Job]) -> str:
        self.flight.record(
            "worker_death", rank=exc.rank, jobs=[j.id for j in batch],
            detail=str(exc.original),
        )
        directory = (
            self.config.postmortem_dir
            or os.environ.get(FLIGHT_DIR_ENV)
            or tempfile.gettempdir()
        )
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"serve-flight-{os.getpid()}-{exc.rank}.jsonl")
        return self.flight.dump(path)

    def _finish(self, job: Job, result=None, error=None) -> None:
        self.queue.finish(job, result=result, error=error)
        if job.state == JobState.DONE:
            self.metrics.counter("serve.jobs.completed").inc()
        else:
            self.metrics.counter("serve.jobs.failed").inc()
            self.flight.record("job_failed", job=job.id,
                               error=(error or {}).get("type"))
        self._finish_times.append(time.time())

    # -- client surface ----------------------------------------------------

    def result(self, job_id: str, wait: float | None = None) -> dict:
        job = self.queue.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        if wait:
            job.wait(wait)
        return job.to_dict()

    def cancel(self, job_id: str) -> bool:
        ok = self.queue.cancel(job_id)
        if ok:
            self.metrics.counter("serve.jobs.cancelled").inc()
        return ok

    def qps(self, window: float = 10.0) -> float:
        cutoff = time.time() - window
        return sum(1 for t in self._finish_times if t >= cutoff) / window

    def stats(self) -> dict:
        expired = self.queue.reap()
        if expired:
            self.metrics.counter("serve.jobs.expired").inc(len(expired))
        self._update_gauges()
        return {
            "uptime": round(time.time() - self.started_at, 3),
            "qps": round(self.qps(), 4),
            "queue": self.queue.snapshot(),
            "pool": self.pool.stats(),
            "cache": self.cache.stats(),
            "tenant_imbalance": round(self.queue.imbalance(), 4),
            "live_planes": dict(self._live_planes),
        }

    def _update_gauges(self) -> None:
        self.metrics.gauge("serve.qps").set(self.qps())
        self.metrics.gauge("serve.queue_depth").set(self.queue.depth())
        self.metrics.gauge("serve.tenant_imbalance").set(self.queue.imbalance())
        pool = self.pool.stats()
        self.metrics.gauge("serve.pool.idle").set(pool["idle"])
        self.metrics.gauge("serve.pool.busy").set(pool["busy"])
        cache = self.cache.stats()
        self.metrics.gauge("serve.cache.entries").set(cache["entries"])
        self.metrics.gauge("serve.cache.bytes").set(cache["bytes"])

    def prometheus(self) -> str:
        self._update_gauges()
        cfg = self.config
        return prometheus_text(self.metrics, run_config={
            "mode": "serve", "backend": cfg.backend, "comms": cfg.comms,
            "kernel": cfg.kernel, "workers": cfg.workers,
            "executors": cfg.executors,
        })


# -- the socket front end --------------------------------------------------


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: LikelihoodService = self.server.service  # type: ignore[attr-defined]
        for raw in self.rfile:
            if not raw.strip():
                continue
            try:
                request = protocol.decode(raw)
                response = self._dispatch(service, request)
            except Exception as exc:  # noqa: BLE001 - reported to the client
                response = protocol.error_response("?", str(exc))
            self.wfile.write(protocol.encode(response))
            self.wfile.flush()
            if response.get("op") == "shutdown" and response.get("ok"):
                return

    def _dispatch(self, service: LikelihoodService, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return protocol.ok_response(
                "ping", version=protocol.PROTOCOL_VERSION,
                uptime=round(time.time() - service.started_at, 3),
            )
        if op == "submit":
            job = service.submit(
                request["spec"],
                tenant=request.get("tenant", "default"),
                priority=request.get("priority", 0),
                timeout=request.get("timeout"),
            )
            return protocol.ok_response("submit", id=job.id, cost=job.cost)
        if op == "result":
            view = service.result(request["id"], wait=request.get("wait"))
            return protocol.ok_response("result", job=view)
        if op == "cancel":
            return protocol.ok_response(
                "cancel", cancelled=service.cancel(request["id"])
            )
        if op == "stats":
            return protocol.ok_response("stats", stats=service.stats())
        if op == "metrics":
            return protocol.ok_response("metrics", text=service.prometheus())
        if op == "shutdown":
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()
            return protocol.ok_response("shutdown")
        return protocol.error_response(str(op), f"unknown protocol op {op!r}")


class _Server(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True


def serve_forever(service: LikelihoodService, socket_path: str,
                  ready: threading.Event | None = None) -> None:
    """Run the NDJSON daemon on a unix socket until a ``shutdown``
    request (or ``KeyboardInterrupt``).  Removes a stale socket file on
    bind and cleans up on exit."""
    if os.path.exists(socket_path):
        os.unlink(socket_path)
    service.start()
    server = _Server(socket_path, _Handler)
    server.service = service  # type: ignore[attr-defined]
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
        if os.path.exists(socket_path):
            os.unlink(socket_path)
