"""Cross-request caching of analysis contexts.

Building a request's working set is the expensive part of a one-shot
run: simulate/parse the alignment, pattern-compress it, eigendecompose
every model.  The service keys all of that by the *dataset fingerprint*
(a SHA-1 over the canonical-JSON dataset spec) and reuses it across
requests and tenants:

* the :class:`AnalysisContext` holds the alignment, tree, initial
  parameters and layout; the warm-team pool keys teams by the same
  fingerprint, so a context cache hit usually becomes a pool hit too;
* model eigensystems go through the process-wide
  :meth:`repro.plk.eigen.EigenSystem.for_model` memo — as long as the
  context (and its model objects) stays cached, every engine built from
  it, including forked worker children, shares one decomposition;
* under the shm comms plane the pre-fork
  :class:`~repro.parallel.shm.SharedInputArena` is built once per warm
  team from the cached context and inherited by its children — a warm
  submission never re-maps tip arenas.

Eviction is LRU under a byte budget (``max_bytes``): contexts are
dropped least-recently-used-first once tip/weight storage exceeds the
budget.  Dropping a context does not tear down a warm team that is
still using it — the pool holds its own references — it only forces the
next request for that dataset to rebuild.
"""
from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["AnalysisContext", "ServeCache", "fingerprint"]


def fingerprint(spec: dict) -> str:
    """Canonical fingerprint of a dataset spec: SHA-1 over sorted-key
    JSON, so semantically identical specs hash identically regardless of
    key order."""
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(blob.encode()).hexdigest()[:16]


@dataclass
class AnalysisContext:
    """Everything needed to build an engine for one dataset, plus the
    layout the cost model prices jobs against."""

    key: str
    spec: dict
    data: object  # PartitionedAlignment
    tree: object  # Tree
    lengths: np.ndarray
    models: list
    alphas: list[float]
    layout: object  # PartitionLayout
    nbytes: int = 0
    hits: int = field(default=0)
    #: Per-job kernel override (None = the service default).  Set by the
    #: daemon when a job spec carries ``"kernel"``; the override is part
    #: of the context ``key`` so warm teams are kernel-isolated.
    kernel: str | None = None

    @property
    def n_partitions(self) -> int:
        return self.data.n_partitions


def _build_simulated(spec: dict) -> AnalysisContext:
    from ..parallel.balance import PartitionLayout
    from ..plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
    from ..seqgen import random_topology_with_lengths, simulate_alignment

    taxa = int(spec.get("taxa", 8))
    partitions = int(spec.get("partitions", 4))
    sites = int(spec.get("sites", 400))
    seed = int(spec.get("seed", 42))

    rng = np.random.default_rng(seed)
    tree, lengths = random_topology_with_lengths(taxa, rng)
    part_len = max(sites // partitions, 1)
    sites = part_len * partitions
    aln = simulate_alignment(
        tree, lengths, SubstitutionModel.random_gtr(0), 1.0, sites, rng
    )
    data = PartitionedAlignment(aln, uniform_scheme(sites, part_len))
    models = [SubstitutionModel.random_gtr(p) for p in range(data.n_partitions)]
    alphas = [1.0] * data.n_partitions
    return AnalysisContext(
        key="",
        spec=spec,
        data=data,
        tree=tree,
        lengths=lengths,
        models=models,
        alphas=alphas,
        layout=PartitionLayout.from_alignment(data),
    )


def _build_files(spec: dict) -> AnalysisContext:
    from pathlib import Path

    from ..parallel.balance import PartitionLayout
    from ..plk import (
        PartitionedAlignment,
        SubstitutionModel,
        parse_fasta,
        parse_newick,
        parse_partition_file,
        parse_phylip,
        uniform_scheme,
    )

    text = Path(spec["alignment"]).read_text()
    alignment = parse_fasta(text) if text.lstrip().startswith(">") else parse_phylip(text)
    if "partitions" in spec:
        scheme = parse_partition_file(Path(spec["partitions"]).read_text())
    else:
        scheme = uniform_scheme(alignment.n_sites, alignment.n_sites)
    data = PartitionedAlignment(alignment, scheme)
    tree, lengths = parse_newick(Path(spec["tree"]).read_text())
    models = [SubstitutionModel.random_gtr(p) for p in range(data.n_partitions)]
    alphas = [1.0] * data.n_partitions
    return AnalysisContext(
        key="",
        spec=spec,
        data=data,
        tree=tree,
        lengths=lengths,
        models=models,
        alphas=alphas,
        layout=PartitionLayout.from_alignment(data),
    )


_BUILDERS = {"simulated": _build_simulated, "files": _build_files}


def build_context(spec: dict) -> AnalysisContext:
    """Build an :class:`AnalysisContext` from a dataset spec dict.

    ``spec["kind"]`` selects the builder: ``"simulated"`` (taxa, sites,
    partitions, seed — mirrors the CLI's shared profiling workload) or
    ``"files"`` (alignment, tree, optional partitions paths).
    """
    from ..plk.eigen import EigenSystem

    kind = spec.get("kind", "simulated")
    builder = _BUILDERS.get(kind)
    if builder is None:
        raise ValueError(
            f"unknown dataset kind {kind!r} (expected one of {sorted(_BUILDERS)})"
        )
    ctx = builder(spec)
    ctx.key = fingerprint(spec)
    ctx.nbytes = sum(
        p.tip_states.nbytes + p.weights.nbytes for p in ctx.data.data
    )
    # Warm the process-wide eigensystem memo now, off any engine's
    # critical path; subsequent PartitionLikelihood builds (and forked
    # children) reuse these decompositions by model identity.
    for model in ctx.models:
        EigenSystem.for_model(model)
    return ctx


class ServeCache:
    """LRU context cache under a byte budget (memory-pressure eviction).

    ``max_bytes=None`` means unbounded.  All methods are thread-safe;
    concurrent misses for the same key may both build, last insert wins
    (builds are deterministic per spec, so either result is correct).
    """

    def __init__(self, max_bytes: int | None = None):
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, AnalysisContext]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, spec: dict) -> AnalysisContext:
        key = fingerprint(spec)
        with self._lock:
            ctx = self._entries.get(key)
            if ctx is not None:
                self._entries.move_to_end(key)
                ctx.hits += 1
                self.hits += 1
                return ctx
            self.misses += 1
        ctx = build_context(spec)  # build outside the lock (slow)
        with self._lock:
            self._entries[key] = ctx
            self._entries.move_to_end(key)
            self._evict_locked()
        return ctx

    def _evict_locked(self) -> None:
        if self.max_bytes is None:
            return
        while len(self._entries) > 1 and self.total_bytes() > self.max_bytes:
            self._entries.popitem(last=False)
            self.evictions += 1

    def total_bytes(self) -> int:
        return sum(c.nbytes for c in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, spec: dict) -> bool:
        return fingerprint(spec) in self._entries

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.total_bytes(),
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
