"""One client interface, two transports.

:class:`LocalClient` wraps an in-process
:class:`~repro.serve.daemon.LikelihoodService` (tests, notebooks,
embedding the service in a bigger program); :class:`SocketClient` speaks
the NDJSON protocol to a running ``repro serve`` daemon.  Both expose
the same methods, so code written against one runs against the other —
the ``repro submit`` subcommand is a :class:`SocketClient` call.
"""
from __future__ import annotations

import socket

from . import protocol

__all__ = ["LocalClient", "SocketClient"]


class LocalClient:
    """Drive a :class:`~repro.serve.daemon.LikelihoodService` in-process."""

    def __init__(self, service):
        self.service = service

    def ping(self) -> dict:
        return {"ok": True, "version": protocol.PROTOCOL_VERSION}

    def submit(self, spec: dict, tenant: str = "default", priority: int = 0,
               timeout: float | None = None) -> str:
        return self.service.submit(spec, tenant, priority, timeout).id

    def result(self, job_id: str, wait: float | None = None) -> dict:
        return self.service.result(job_id, wait=wait)

    def cancel(self, job_id: str) -> bool:
        return self.service.cancel(job_id)

    def stats(self) -> dict:
        return self.service.stats()

    def metrics(self) -> str:
        return self.service.prometheus()

    def run(self, spec: dict, tenant: str = "default", priority: int = 0,
            wait: float = 60.0) -> dict:
        """Submit and block for the terminal job view (convenience)."""
        return self.result(self.submit(spec, tenant, priority), wait=wait)


class SocketClient:
    """Speak the NDJSON protocol to a daemon on a unix socket.

    One connection per client; requests are serialized on it (the
    protocol is strictly request/response per line).
    """

    def __init__(self, socket_path: str, connect_timeout: float = 10.0):
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(connect_timeout)
        self._sock.connect(socket_path)
        self._sock.settimeout(None)
        self._file = self._sock.makefile("rwb")

    def _call(self, request: dict) -> dict:
        self._file.write(protocol.encode(request))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        response = protocol.decode(line)
        if not response.get("ok"):
            raise RuntimeError(response.get("error", "request failed"))
        return response

    def ping(self) -> dict:
        return self._call({"op": "ping"})

    def submit(self, spec: dict, tenant: str = "default", priority: int = 0,
               timeout: float | None = None) -> str:
        request = {"op": "submit", "spec": spec, "tenant": tenant,
                   "priority": priority}
        if timeout is not None:
            request["timeout"] = timeout
        return self._call(request)["id"]

    def result(self, job_id: str, wait: float | None = None) -> dict:
        request = {"op": "result", "id": job_id}
        if wait is not None:
            request["wait"] = wait
        return self._call(request)["job"]

    def cancel(self, job_id: str) -> bool:
        return bool(self._call({"op": "cancel", "id": job_id})["cancelled"])

    def stats(self) -> dict:
        return self._call({"op": "stats"})["stats"]

    def metrics(self) -> str:
        return self._call({"op": "metrics"})["text"]

    def shutdown(self) -> None:
        self._call({"op": "shutdown"})

    def run(self, spec: dict, tenant: str = "default", priority: int = 0,
            wait: float = 60.0) -> dict:
        return self.result(self.submit(spec, tenant, priority), wait=wait)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
