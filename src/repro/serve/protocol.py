"""The client<->daemon socket protocol: newline-delimited JSON.

One request per line, one response per line, over a unix stream socket.
Every request carries an ``op``; every response carries ``ok`` (bool)
and echoes the request's ``op``.  Binary-free and line-framed on
purpose: ``socat - UNIX-CONNECT:/tmp/repro.sock`` is a working client,
and the example transcripts in ``docs/SERVICE.md`` are literal traffic.

Request ops (see :class:`repro.serve.daemon.LikelihoodService`):

==========  ===========================================================
op          fields
==========  ===========================================================
ping        --
submit      spec (dict), tenant?, priority?, timeout?
result      id, wait? (float seconds to block for completion)
cancel      id
stats       --
metrics     -- (response carries Prometheus text exposition)
shutdown    --
==========  ===========================================================

Versioning: ``PROTOCOL_VERSION`` covers this framing and op vocabulary
(the daemon reports it in ``ping``); the *inner* master<->worker command
vocabulary is versioned separately as
:data:`repro.parallel.program.WIRE_VERSION` — both are documented in
``docs/ARCHITECTURE.md``.
"""
from __future__ import annotations

import json

__all__ = [
    "PROTOCOL_VERSION",
    "decode",
    "encode",
    "error_response",
    "ok_response",
]

PROTOCOL_VERSION = 1


def encode(message: dict) -> bytes:
    """One protocol frame: compact JSON + newline."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes | str) -> dict:
    """Parse one frame; raises ``ValueError`` on malformed input."""
    if isinstance(line, bytes):
        line = line.decode()
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError("protocol frame must be a JSON object")
    return obj


def ok_response(op: str, **fields) -> dict:
    return {"ok": True, "op": op, **fields}


def error_response(op: str, message: str, **fields) -> dict:
    return {"ok": False, "op": op, "error": message, **fields}
