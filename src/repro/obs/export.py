"""Timeline exporters: Chrome trace-event JSON (Perfetto) and ASCII.

Three sources feed the same timeline shape — one *master* lane (the
command stream) plus one lane per worker:

* a live :class:`~repro.obs.tracer.Tracer` (real timestamps; the parallel
  backends synthesize worker busy spans from measured execute seconds);
* a measured :class:`~repro.perf.profile.RunProfile` (no absolute
  timestamps are stored, so commands are laid back to back — each record's
  wall time on the master lane, each worker's busy seconds inside it);
* a simulated :class:`~repro.simmachine.simulator.SimulationResult`
  (aggregate decomposition only: per-thread busy/idle blocks).

The Chrome trace-event format is the stable subset Perfetto and
``chrome://tracing`` both load: complete events (``"ph": "X"``) with
microsecond ``ts``/``dur``, plus ``process_name`` / ``thread_name`` /
``thread_sort_index`` metadata so lanes are labelled and ordered.
"""
from __future__ import annotations

import json
from pathlib import Path

from .tracer import MASTER_LANE, Span, Tracer

__all__ = [
    "tracer_to_chrome",
    "profile_to_chrome",
    "simulation_to_chrome",
    "write_chrome_trace",
    "validate_chrome_trace",
    "ascii_timeline",
    "profile_ascii_timeline",
]

_PID = 1
_US = 1e6  # seconds -> microseconds

#: Region-kind -> single letter used by the ASCII master lane.
_KIND_LETTERS = {
    "newview": "N",
    "sumtable": "S",
    "derivative": "D",
    "evaluate": "E",
    "control": "c",
}


def _metadata_events(
    lanes: list[int],
    lane_names: dict[int, str] | None = None,
    run_config: dict | None = None,
) -> list[dict]:
    names = lane_names or {}
    events = [{
        "ph": "M", "pid": _PID, "tid": MASTER_LANE, "name": "process_name",
        "args": {"name": "repro"},
    }]
    # Stamp the run configuration so an exported timeline is
    # self-describing: a ``run_config`` metadata event carries the full
    # dict, ``process_labels`` a compact string Chrome renders next to
    # the process name.  Worker lanes on the shm comms plane are marked
    # in their lane names.
    shm = bool(run_config) and run_config.get("comms") == "shm"
    if run_config:
        events.append({
            "ph": "M", "pid": _PID, "tid": MASTER_LANE, "name": "run_config",
            "args": dict(run_config),
        })
        events.append({
            "ph": "M", "pid": _PID, "tid": MASTER_LANE,
            "name": "process_labels",
            "args": {"labels": ",".join(
                f"{k}={v}" for k, v in sorted(run_config.items())
            )},
        })
    for lane in lanes:
        if lane == MASTER_LANE:
            default = "master"
        else:
            default = f"worker {lane - 1}"
            if shm:
                default += " [shm]"
        events.append({
            "ph": "M", "pid": _PID, "tid": lane, "name": "thread_name",
            "args": {"name": names.get(lane, default)},
        })
        events.append({
            "ph": "M", "pid": _PID, "tid": lane, "name": "thread_sort_index",
            "args": {"sort_index": lane},
        })
    return events


def _span_event(span: Span) -> dict:
    event = {
        "name": span.name,
        "cat": span.cat or "span",
        "ph": "X",
        "ts": span.start * _US,
        "dur": span.duration * _US,
        "pid": _PID,
        "tid": span.lane,
    }
    if span.args:
        event["args"] = dict(span.args)
    return event


def tracer_to_chrome(tracer: Tracer, run_config: dict | None = None) -> list[dict]:
    """All spans and instant markers of a live trace as Chrome events.

    ``run_config`` (kernel backend, comms plane, distribution policy, …)
    is stamped into the metadata events so the file is self-describing.
    """
    events = _metadata_events(
        tracer.lanes() or [MASTER_LANE], run_config=run_config
    )
    for span in sorted(tracer.spans, key=lambda s: (s.start, s.lane)):
        events.append(_span_event(span))
    for mark in tracer.instants:
        events.append({
            "name": mark.name, "cat": mark.cat or "instant", "ph": "i",
            "ts": mark.start * _US, "pid": _PID, "tid": mark.lane,
            "s": "t", "args": dict(mark.args),
        })
    return events


def profile_to_chrome(profile, run_config: dict | None = None) -> list[dict]:
    """A measured :class:`~repro.perf.profile.RunProfile` as Chrome events.

    Records carry durations, not timestamps, so the timeline is
    *reconstructed*: command ``i`` starts where command ``i-1``'s wall
    time ended.  Worker ``w``'s busy span sits at the start of its
    command; the gap to the command's end is its measured barrier wait.

    The run configuration is stamped into the metadata events —
    defaulting to what the profile itself recorded (backend, team size,
    distribution, plus the comms/kernel/live meta stamps).
    """
    if run_config is None:
        run_config = {
            "backend": profile.backend,
            "n_workers": profile.n_workers,
            "distribution": profile.distribution,
        }
        for key in ("comms", "kernel", "live", "strategy"):
            if key in profile.meta:
                run_config[key] = profile.meta[key]
    lanes = [MASTER_LANE] + [w + 1 for w in range(profile.n_workers)]
    events = _metadata_events(lanes, run_config=run_config)
    cursor = 0.0
    for rec in profile.records:
        events.append({
            "name": rec.op, "cat": rec.kind, "ph": "X",
            "ts": cursor * _US, "dur": rec.wall * _US,
            "pid": _PID, "tid": MASTER_LANE,
            "args": {"span": rec.span, "sync": rec.sync},
        })
        for w, busy in enumerate(rec.busy):
            if busy > 0.0:
                events.append({
                    "name": rec.op, "cat": rec.kind, "ph": "X",
                    "ts": cursor * _US, "dur": busy * _US,
                    "pid": _PID, "tid": w + 1,
                    "args": {"idle": rec.idle[w]},
                })
        cursor += rec.wall
    return events


def simulation_to_chrome(result) -> list[dict]:
    """A :class:`~repro.simmachine.simulator.SimulationResult` as Chrome
    events.  The simulator reports aggregate per-thread totals, so each
    thread lane shows one busy block followed by one idle block, and the
    master lane shows the makespan split into compute vs synchronization."""
    lanes = [MASTER_LANE] + [t + 1 for t in range(result.n_threads)]
    names = {MASTER_LANE: f"master ({result.machine})"}
    events = _metadata_events(lanes, names)
    compute = max(result.total_seconds - result.sync_seconds, 0.0)
    events.append({
        "name": "compute", "cat": "summary", "ph": "X",
        "ts": 0.0, "dur": compute * _US, "pid": _PID, "tid": MASTER_LANE,
        "args": {"n_regions": result.n_regions},
    })
    events.append({
        "name": "sync", "cat": "summary", "ph": "X",
        "ts": compute * _US, "dur": result.sync_seconds * _US,
        "pid": _PID, "tid": MASTER_LANE,
        "args": {"distribution": result.distribution},
    })
    for t in range(result.n_threads):
        busy = float(result.busy_seconds[t])
        idle = float(result.idle_seconds[t])
        events.append({
            "name": "busy", "cat": "summary", "ph": "X",
            "ts": 0.0, "dur": busy * _US, "pid": _PID, "tid": t + 1,
        })
        if idle > 0.0:
            events.append({
                "name": "idle", "cat": "summary", "ph": "X",
                "ts": busy * _US, "dur": idle * _US, "pid": _PID, "tid": t + 1,
            })
    return events


def write_chrome_trace(path: str | Path, events: list[dict]) -> Path:
    """Write events in the JSON object form Perfetto auto-detects."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload) + "\n")
    return path


def validate_chrome_trace(payload: dict | list) -> list[dict]:
    """Check the minimal schema Perfetto requires; returns the event list.

    Accepts either the JSON-object form (``{"traceEvents": [...]}``) or a
    bare event array.  Raises ``ValueError`` on the first violation.
    """
    events = payload.get("traceEvents") if isinstance(payload, dict) else payload
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        if "ph" not in ev or "name" not in ev:
            raise ValueError(f"event {i} lacks ph/name")
        if ev["ph"] in ("X", "i", "B", "E") and "ts" not in ev:
            raise ValueError(f"event {i} ({ev['ph']!r}) lacks ts")
        if ev["ph"] == "X":
            if "dur" not in ev:
                raise ValueError(f"event {i} is ph=X without dur")
            if float(ev["dur"]) < 0:
                raise ValueError(f"event {i} has negative dur")
    return events


# ----------------------------------------------------------------------
# ASCII timeline
# ----------------------------------------------------------------------

_SHADE = " .:=#"  # busy fraction 0 .. 1 in 5 steps


def _bin_char(fraction: float) -> str:
    idx = min(int(fraction * (len(_SHADE) - 1) + 0.5), len(_SHADE) - 1)
    if fraction > 0.0:
        idx = max(idx, 1)  # any work at all is visible
    return _SHADE[idx]


def profile_ascii_timeline(profile, width: int = 72) -> str:
    """Render a :class:`RunProfile` as a terminal timeline.

    The master row letters each time bin by its dominant region kind
    (N/S/D/E/c); each worker row shades its bins by busy fraction
    (`` .:=#``), so oldPAR's starved barriers appear as pale stripes.
    """
    starts, kinds = [], []
    cursor = 0.0
    for rec in profile.records:
        starts.append(cursor)
        kinds.append(rec.kind)
        cursor += rec.wall
    total = cursor
    spans = [
        [(starts[i], starts[i] + rec.busy[w]) for i, rec in enumerate(profile.records)]
        for w in range(profile.n_workers)
    ]
    return _render_ascii(
        total, kinds, starts,
        [f"worker {w}" for w in range(profile.n_workers)], spans,
        [rec.wall for rec in profile.records], width,
    )


def ascii_timeline(tracer: Tracer, width: int = 72) -> str:
    """Render a live trace's lanes (master commands + synthesized worker
    busy spans) as a terminal timeline."""
    master = sorted(
        (s for s in tracer.spans if s.lane == MASTER_LANE and s.cat in _KIND_LETTERS),
        key=lambda s: s.start,
    )
    if not master:
        master = sorted(
            (s for s in tracer.spans if s.lane == MASTER_LANE), key=lambda s: s.start
        )
    if not master:
        return "(no spans recorded)"
    total = max(s.end for s in tracer.spans)
    worker_lanes = [lane for lane in tracer.lanes() if lane != MASTER_LANE]
    spans = [
        [(s.start, s.end) for s in tracer.spans if s.lane == lane]
        for lane in worker_lanes
    ]
    return _render_ascii(
        total, [s.cat for s in master], [s.start for s in master],
        [f"worker {lane - 1}" for lane in worker_lanes], spans,
        [s.duration for s in master], width,
    )


def _render_ascii(
    total: float,
    master_kinds: list[str],
    master_starts: list[float],
    worker_names: list[str],
    worker_spans: list[list[tuple[float, float]]],
    master_durs: list[float],
    width: int,
) -> str:
    if total <= 0.0 or not master_kinds:
        return "(empty timeline)"
    width = max(int(width), 8)
    dt = total / width
    edges = [i * dt for i in range(width + 1)]

    def overlap(lo: float, hi: float, a: float, b: float) -> float:
        return max(0.0, min(hi, b) - max(lo, a))

    label_w = max([len(n) for n in worker_names] + [len("master")])
    master_row = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        weights: dict[str, float] = {}
        for kind, start, dur in zip(master_kinds, master_starts, master_durs):
            o = overlap(lo, hi, start, start + dur)
            if o > 0.0:
                weights[kind] = weights.get(kind, 0.0) + o
        if not weights:
            master_row.append(" ")
        else:
            top = max(weights, key=lambda k: weights[k])
            master_row.append(_KIND_LETTERS.get(top, "?"))
    lines = [
        f"{'master':>{label_w}} |{''.join(master_row)}|",
    ]
    for name, spans in zip(worker_names, worker_spans):
        row = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            busy = sum(overlap(lo, hi, a, b) for a, b in spans)
            row.append(_bin_char(min(busy / dt, 1.0)))
        lines.append(f"{name:>{label_w}} |{''.join(row)}|")
    lines.append(
        f"{'':>{label_w}}  0{'s':<{max(width - len(f'{total:.3f}s') - 1, 1)}}"
        f"{total:.3f}s"
    )
    lines.append(
        f"{'':>{label_w}}  master: N=newview S=sumtable D=derivative "
        f"E=evaluate c=control; workers: busy fraction '{_SHADE}'"
    )
    return "\n".join(lines)
