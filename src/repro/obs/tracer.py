"""Span-based event tracing for analysis runs.

A :class:`Span` is one timestamped, named interval — a master broadcast, an
optimizer round, a Brent/Newton lock-step iteration, an SPR candidate
evaluation.  A :class:`Tracer` collects spans (thread-safely) on a shared
monotonic clock so they can be exported as a Chrome trace-event timeline
(:mod:`repro.obs.export`) and inspected in Perfetto.

Spans carry a ``lane``: lane 0 is the master's command stream; lanes
``1..W`` are the worker timelines (the parallel backends synthesize worker
busy spans from each command's measured per-worker execute seconds).

:class:`NullTracer` is the default everywhere a tracer is accepted and
follows the repo's :class:`~repro.perf.profiler.NullProfiler` /
:class:`~repro.core.trace.NullRecorder` pattern: instrumented code guards
the hot path with ``if tracer.enabled:`` (an attribute read, no method
call), so an untraced run pays nothing.
"""
from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "NullTracer", "MASTER_LANE"]

#: Lane index of the master command stream (workers are lanes 1..W).
MASTER_LANE = 0


@dataclass(frozen=True)
class Span:
    """One named interval on the tracer's clock.

    Attributes
    ----------
    name:
        What happened (``"deriv"``, ``"optimize_alpha"``, ``"spr"``, ...).
    cat:
        Grouping category — a region kind (``"derivative"``), or
        ``"optimizer"`` / ``"search"`` / ``"broadcast"``.
    start:
        Seconds since the tracer's epoch.
    duration:
        Seconds (>= 0).
    lane:
        Timeline the span belongs to (0 = master, ``w+1`` = worker ``w``).
    args:
        Small JSON-serializable payload (edge ids, partition counts, ...).
    """

    name: str
    cat: str
    start: float
    duration: float
    lane: int = MASTER_LANE
    args: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class _NullSpanContext:
    """Reusable no-op context manager returned by :meth:`NullTracer.span`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Discards everything; the zero-overhead default.

    Hot paths must guard with ``if tracer.enabled:`` so a null tracer adds
    no method calls at all; the methods below exist so non-hot call sites
    (once-per-optimizer-call spans) can skip the guard.
    """

    enabled = False

    def span(self, name: str, cat: str = "", lane: int = MASTER_LANE, **args):
        return _NULL_SPAN

    def add_span(self, name: str, cat: str, lane: int, start: float,
                 duration: float, **args) -> None:
        pass

    def instant(self, name: str, cat: str = "", lane: int = MASTER_LANE, **args) -> None:
        pass

    def now(self) -> float:
        return 0.0


class Tracer:
    """Collects :class:`Span` records on one monotonic clock.

    All mutation happens under a lock, so worker threads may report spans
    concurrently with the master.  ``finished`` spans are kept in
    completion order; exporters sort by start time.
    """

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self.spans: list[Span] = []
        self.instants: list[Span] = []

    # -- clock -------------------------------------------------------------

    def now(self) -> float:
        """Seconds since this tracer was created."""
        return time.perf_counter() - self._epoch

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, cat: str = "", lane: int = MASTER_LANE, **args):
        """Context manager timing one interval; records it on exit (also
        when the body raises, so failed commands still appear on the
        timeline)."""
        t0 = self.now()
        try:
            yield
        finally:
            self.add_span(name, cat, lane, t0, self.now() - t0, **args)

    def add_span(self, name: str, cat: str, lane: int, start: float,
                 duration: float, **args) -> None:
        """Record an already-measured interval (used to synthesize worker
        lanes from per-command busy seconds)."""
        span = Span(name=name, cat=cat, start=start,
                    duration=max(duration, 0.0), lane=lane, args=args)
        with self._lock:
            self.spans.append(span)

    def instant(self, name: str, cat: str = "", lane: int = MASTER_LANE, **args) -> None:
        """Record a zero-duration marker (e.g. "partition 3 converged")."""
        span = Span(name=name, cat=cat, start=self.now(), duration=0.0,
                    lane=lane, args=args)
        with self._lock:
            self.instants.append(span)

    # -- inspection --------------------------------------------------------

    @property
    def n_spans(self) -> int:
        return len(self.spans)

    def lanes(self) -> list[int]:
        """Sorted lane indices that carry at least one span/instant."""
        with self._lock:
            return sorted({s.lane for s in self.spans}
                          | {s.lane for s in self.instants})

    def by_category(self) -> dict[str, float]:
        """Total span seconds per category (master lane only, so nested
        worker time is not double counted)."""
        out: dict[str, float] = {}
        with self._lock:
            for s in self.spans:
                if s.lane == MASTER_LANE:
                    out[s.cat] = out.get(s.cat, 0.0) + s.duration
        return out
