"""Observability for analysis runs: span tracing, metrics, convergence
telemetry, timeline export, and perf-regression checking.

Four composable pieces, each with a zero-overhead null default (mirroring
:class:`~repro.perf.profiler.NullProfiler`):

* :class:`Tracer` / :class:`NullTracer` — timestamped spans for every
  optimizer round, lock-step iteration, broadcast and SPR move, on a
  master lane plus synthesized worker lanes;
* :class:`MetricsRegistry` / :class:`NullMetrics` — thread-safe counters,
  gauges and histograms (broadcasts by kind, barrier-wait distribution),
  snapshotable to JSON;
* :class:`ConvergenceTelemetry` / :class:`NullTelemetry` — the paper's
  per-partition convergence boolean vector recorded per iteration;
* exporters — Chrome trace-event JSON (loadable in Perfetto) and an ASCII
  terminal timeline, from live traces, measured RunProfiles, or simulated
  SimulationResults; plus baseline regression checks for CI.

A fifth, RUNTIME piece lives in :mod:`repro.obs.live` (``live=True`` on
:class:`~repro.parallel.ParallelPLK`): per-worker shared-memory heartbeat
rows, a :class:`~repro.obs.live.HealthMonitor` for stall detection and
live imbalance, a :class:`~repro.obs.live.FlightRecorder` ring buffer
that dumps a JSONL post-mortem on worker death, Prometheus/JSONL
streaming exporters and the ``repro top`` dashboard — see
``docs/OBSERVABILITY.md`` for the two-tier overview.

See the README's "Observability" section for a walkthrough and
``python -m repro timeline --help`` for the CLI entry point.
"""
from .convergence import ConvergenceLog, ConvergenceTelemetry, NullTelemetry
from .export import (
    ascii_timeline,
    profile_ascii_timeline,
    profile_to_chrome,
    simulation_to_chrome,
    tracer_to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from .live import (
    FlightRecorder,
    HealthMonitor,
    HealthReport,
    LiveTelemetry,
    NullFlightRecorder,
    NullHealthMonitor,
    NullLiveTelemetry,
    WorkerSample,
    render_dashboard,
    sample_plane,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, NullMetrics
from .prometheus import prometheus_text
from .regression import (
    RegressionReport,
    check_profiles,
    load_baseline,
    profile_summary,
    summarize_profiles,
    write_baseline,
)
from .tracer import MASTER_LANE, NullTracer, Span, Tracer

__all__ = [
    "MASTER_LANE",
    "Span",
    "Tracer",
    "NullTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "ConvergenceLog",
    "ConvergenceTelemetry",
    "NullTelemetry",
    "LiveTelemetry",
    "NullLiveTelemetry",
    "HealthMonitor",
    "NullHealthMonitor",
    "HealthReport",
    "FlightRecorder",
    "NullFlightRecorder",
    "WorkerSample",
    "sample_plane",
    "render_dashboard",
    "prometheus_text",
    "tracer_to_chrome",
    "profile_to_chrome",
    "simulation_to_chrome",
    "write_chrome_trace",
    "validate_chrome_trace",
    "ascii_timeline",
    "profile_ascii_timeline",
    "RegressionReport",
    "check_profiles",
    "load_baseline",
    "profile_summary",
    "summarize_profiles",
    "write_baseline",
]
