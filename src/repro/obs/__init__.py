"""Observability for analysis runs: span tracing, metrics, convergence
telemetry, timeline export, and perf-regression checking.

Four composable pieces, each with a zero-overhead null default (mirroring
:class:`~repro.perf.profiler.NullProfiler`):

* :class:`Tracer` / :class:`NullTracer` — timestamped spans for every
  optimizer round, lock-step iteration, broadcast and SPR move, on a
  master lane plus synthesized worker lanes;
* :class:`MetricsRegistry` / :class:`NullMetrics` — thread-safe counters,
  gauges and histograms (broadcasts by kind, barrier-wait distribution),
  snapshotable to JSON;
* :class:`ConvergenceTelemetry` / :class:`NullTelemetry` — the paper's
  per-partition convergence boolean vector recorded per iteration;
* exporters — Chrome trace-event JSON (loadable in Perfetto) and an ASCII
  terminal timeline, from live traces, measured RunProfiles, or simulated
  SimulationResults; plus baseline regression checks for CI.

See the README's "Observability" section for a walkthrough and
``python -m repro timeline --help`` for the CLI entry point.
"""
from .convergence import ConvergenceLog, ConvergenceTelemetry, NullTelemetry
from .export import (
    ascii_timeline,
    profile_ascii_timeline,
    profile_to_chrome,
    simulation_to_chrome,
    tracer_to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, NullMetrics
from .regression import (
    RegressionReport,
    check_profiles,
    load_baseline,
    profile_summary,
    summarize_profiles,
    write_baseline,
)
from .tracer import MASTER_LANE, NullTracer, Span, Tracer

__all__ = [
    "MASTER_LANE",
    "Span",
    "Tracer",
    "NullTracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "ConvergenceLog",
    "ConvergenceTelemetry",
    "NullTelemetry",
    "tracer_to_chrome",
    "profile_to_chrome",
    "simulation_to_chrome",
    "write_chrome_trace",
    "validate_chrome_trace",
    "ascii_timeline",
    "profile_ascii_timeline",
    "RegressionReport",
    "check_profiles",
    "load_baseline",
    "profile_summary",
    "summarize_profiles",
    "write_baseline",
]
