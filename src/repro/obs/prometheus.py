"""Prometheus text-format (exposition 0.0.4) snapshot exporter.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` snapshot — plus,
when given, the live per-worker samples of :mod:`repro.obs.live` — as
the plain-text format every Prometheus-compatible scraper ingests.  Pure
string building, no sockets: callers decide whether the text lands in a
file, an HTTP response, or a test assertion.

Mapping rules
-------------
* metric names are sanitized (``repro_`` prefix, non ``[a-zA-Z0-9_:]``
  characters become ``_``) and counters gain the conventional ``_total``
  suffix;
* every metric gets ``# HELP`` and ``# TYPE`` lines, with HELP text
  escaping ``\\`` and newlines per the spec;
* histograms render cumulative ``_bucket{le="..."}`` series ending in
  ``le="+Inf"`` == ``_count``, plus ``_sum`` — reconstructed from the
  registry's sparse (non-empty-only) bucket snapshot;
* live worker samples become gauge families labelled by worker rank
  (label values escape ``\\``, ``"`` and newlines).
"""
from __future__ import annotations

import re

__all__ = ["prometheus_text", "sanitize_metric_name", "escape_label_value"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: Per-worker gauge families rendered from live WorkerSample fields:
#: (family suffix, sample attribute, help text).
_LIVE_FAMILIES = (
    ("live_worker_busy_seconds", "busy_seconds",
     "Cumulative self-timed execute seconds for one worker."),
    ("live_worker_wait_seconds", "wait_seconds",
     "Cumulative seconds one worker spent waiting for commands."),
    ("live_worker_commands", "commands",
     "Worker commands executed (fused program steps count individually)."),
    ("live_worker_patterns", "patterns",
     "Cumulative alignment patterns processed by one worker."),
    ("live_worker_heartbeat_age_seconds", "heartbeat_age",
     "Seconds since the worker's stats row last changed."),
    ("live_worker_busy_fraction", "busy_fraction",
     "Busy over busy-plus-wait time for one worker."),
)


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """A valid Prometheus metric name from a registry name.

    >>> sanitize_metric_name("broadcasts.likelihood")
    'repro_broadcasts_likelihood'
    >>> sanitize_metric_name("imbalance")
    'repro_imbalance'
    """
    name = _NAME_BAD_CHARS.sub("_", name)
    if not name.startswith(prefix):
        name = prefix + name
    if not _NAME_OK.match(name):
        name = "_" + name
    return name


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    r"""Escape a label value per the exposition format.

    >>> escape_label_value('say "hi"\n')
    'say \\"hi\\"\\n'
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _counter_lines(name: str, snap: dict, out: list[str]) -> None:
    if not name.endswith("_total"):
        name += "_total"
    out.append(f"# HELP {name} {_escape_help('Monotonic counter.')}")
    out.append(f"# TYPE {name} counter")
    out.append(f"{name} {_fmt(snap['value'])}")


def _gauge_lines(name: str, snap: dict, out: list[str]) -> None:
    out.append(f"# HELP {name} {_escape_help('Last observed value.')}")
    out.append(f"# TYPE {name} gauge")
    out.append(f"{name} {_fmt(snap['value'])}")


def _histogram_lines(name: str, snap: dict, out: list[str]) -> None:
    out.append(f"# HELP {name} {_escape_help('Observation histogram.')}")
    out.append(f"# TYPE {name} histogram")
    # The registry snapshot keeps only non-empty buckets (keyed by the
    # repr of their upper bound); cumulative sums over the sorted bounds
    # plus the +Inf == count terminator rebuild a valid exposition.
    finite = sorted(
        (float(bound), count)
        for bound, count in snap.get("buckets", {}).items()
        if bound != "+inf"
    )
    cumulative = 0
    for bound, count in finite:
        cumulative += count
        out.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
    out.append(f'{name}_bucket{{le="+Inf"}} {snap["count"]}')
    out.append(f"{name}_sum {_fmt(snap['sum'])}")
    out.append(f"{name}_count {snap['count']}")


def prometheus_text(metrics=None, samples=None, run_config=None) -> str:
    """The whole snapshot as one exposition-format string.

    Parameters
    ----------
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` (or anything with a
        compatible ``snapshot()``), or None.
    samples:
        Live :class:`~repro.obs.live.WorkerSample` list, or None.
    run_config:
        Run-configuration dict; rendered as a ``repro_run_info`` gauge
        with one label per entry (the Prometheus idiom for metadata).
    """
    out: list[str] = []
    if metrics is not None and getattr(metrics, "enabled", True):
        for raw_name, snap in sorted(metrics.snapshot().items()):
            name = sanitize_metric_name(raw_name)
            kind = snap.get("type")
            if kind == "counter":
                _counter_lines(name, snap, out)
            elif kind == "gauge":
                _gauge_lines(name, snap, out)
            elif kind == "histogram":
                _histogram_lines(name, snap, out)
    if run_config:
        labels = ",".join(
            f'{_NAME_BAD_CHARS.sub("_", str(k))}="{escape_label_value(v)}"'
            for k, v in sorted(run_config.items())
        )
        out.append("# HELP repro_run_info Run configuration (always 1).")
        out.append("# TYPE repro_run_info gauge")
        out.append(f"repro_run_info{{{labels}}} 1")
    if samples:
        for suffix, attr, help_text in _LIVE_FAMILIES:
            name = f"repro_{suffix}"
            out.append(f"# HELP {name} {_escape_help(help_text)}")
            out.append(f"# TYPE {name} gauge")
            for s in samples:
                out.append(
                    f'{name}{{worker="{s.rank}"}} {_fmt(getattr(s, attr))}'
                )
    return "\n".join(out) + "\n" if out else ""
