"""A small thread-safe metrics registry: counters, gauges, histograms.

The parallel backends and the optimizers publish machine-readable run
statistics here — broadcasts by region kind, the barrier-wait
distribution, per-partition iterations-to-convergence — so a run can be
summarized, diffed against a baseline (:mod:`repro.obs.regression`) or
shipped to any metrics sink as one JSON snapshot.

Instruments are created on first use (``registry.counter("x").inc()``)
and every mutation is lock-protected, because the ``threads`` backend's
workers may publish concurrently with the master.  :class:`NullMetrics`
is the zero-overhead default: hot paths guard with
``if metrics.enabled:`` and never reach a method call.
"""
from __future__ import annotations

import json
import threading
from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "DEFAULT_BUCKETS",
    "ITERATION_BUCKETS",
]

#: Default histogram bucket upper bounds, in seconds: sub-microsecond IPC
#: jitter up to multi-second regions (log-spaced, base ~3.16).
DEFAULT_BUCKETS = tuple(10.0 ** (e / 2.0) for e in range(-13, 3))

#: Bucket bounds for optimizer iteration counts (1 .. max_iter-ish).
ITERATION_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0, 100.0)


class Counter:
    """A monotonically increasing value."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can go up and down (last write wins)."""

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Cumulative-bucket histogram plus exact count/sum/min/max.

    ``bounds`` are the bucket upper edges; one implicit +inf bucket always
    exists, so ``observe`` never loses a sample.
    """

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be sorted")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_right(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            nonempty = {
                ("+inf" if i == len(self.bounds) else repr(self.bounds[i])): c
                for i, c in enumerate(self._counts)
                if c
            }
            return {
                "type": "histogram",
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "mean": self._sum / self._count if self._count else 0.0,
                "buckets": nonempty,
            }


class _NullInstrument:
    """Accepts every instrument method and discards it."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Discards everything; the zero-overhead default (hot paths guard
    with ``if metrics.enabled:``)."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {}


class MetricsRegistry:
    """Named instruments, created on first use.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind raises (catching the
    silent-shadowing bug early).
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, *args):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, *args)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, bounds)

    # -- snapshots ---------------------------------------------------------

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict:
        """All instruments as one JSON-serializable dict."""
        with self._lock:
            instruments = list(self._instruments.items())
        return {name: inst.snapshot() for name, inst in sorted(instruments)}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)
