"""Live telemetry plane: observe an in-flight parallel run without
stopping it.

Everything else in :mod:`repro.obs` is post-hoc — traces and metrics are
inspected after the run returns, and a worker that dies mid-run takes its
story with it.  This module is the runtime tier:

* :func:`sample_plane` / :class:`WorkerSample` — lock-free snapshots of
  the per-worker shared-memory stats rows
  (:class:`~repro.parallel.shm.WorkerStatsPlane`) each worker updates
  after every command: heartbeat, busy/wait seconds, command and pattern
  counters, current op;
* :class:`HealthMonitor` — samples heartbeats on the master, flags
  stalled workers (phase busy with an aging heartbeat past a threshold)
  and feeds the balance model's
  :func:`~repro.parallel.balance.imbalance_ratio` with *measured-so-far*
  busy seconds for a live imbalance gauge;
* :class:`FlightRecorder` — a bounded ring buffer of structured events
  (program dispatch, barrier exit, rebalance decisions, worker death)
  that survives the crash it describes: when a worker dies or a
  :class:`~repro.parallel.engine.WorkerError` propagates,
  :class:`LiveTelemetry` dumps it as a post-mortem JSONL file;
* :class:`LiveTelemetry` — the facade :class:`~repro.parallel.ParallelPLK`
  drives (``live=True``), tying plane, recorder, monitor and the
  streaming exporters together;
* :func:`render_dashboard` — the per-worker ASCII lanes behind
  ``repro top``.

Every class has a ``Null*`` counterpart mirroring
:class:`~repro.obs.tracer.NullTracer`: the plane is off by default and
costs one attribute read on the hot path when disabled.

Imports reference :mod:`repro.parallel` SUBMODULES only (``shm``,
``balance``); the package itself would be circular — ``repro.parallel``
imports the engine, which lazily imports this module.
"""
from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass

from ..parallel.balance import imbalance_ratio
from ..parallel.shm import (
    STAT_BUSY,
    STAT_COMMANDS,
    STAT_EPOCH,
    STAT_HEARTBEAT,
    STAT_OP,
    STAT_PATTERNS,
    STAT_PHASE,
    STAT_WAIT,
    STAT_KERNEL,
    WorkerStatsPlane,
    kernel_name,
    op_name,
)

__all__ = [
    "WorkerSample",
    "sample_plane",
    "FlightRecorder",
    "NullFlightRecorder",
    "HealthMonitor",
    "NullHealthMonitor",
    "HealthReport",
    "LiveTelemetry",
    "NullLiveTelemetry",
    "render_dashboard",
]

#: Environment variable naming the directory post-mortem dumps land in
#: (default: the working directory).
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"


# -- plane snapshots -----------------------------------------------------


@dataclass(frozen=True)
class WorkerSample:
    """One worker's stats row, decoded at a single master-side instant.

    Counters are cumulative since the worker attached; ``heartbeat_age``
    is seconds since the row last changed (system-wide monotonic clock,
    so process workers compare cleanly).  ``consistent`` is False when
    every seqlock retry raced the writer — the snapshot is then possibly
    torn across fields but still per-field atomic, and the monotonic
    counters can only under-report (see :mod:`repro.parallel.shm`).
    """

    rank: int
    phase: str                    # "busy" | "idle"
    op: str                       # current/last worker command
    commands: int
    busy_seconds: float
    wait_seconds: float
    patterns: int
    kernel: str
    heartbeat_age: float
    uptime: float
    consistent: bool

    @property
    def busy_fraction(self) -> float:
        """Busy over accounted (busy + wait) time; 0.0 before any work."""
        accounted = self.busy_seconds + self.wait_seconds
        return self.busy_seconds / accounted if accounted > 0.0 else 0.0

    @property
    def commands_per_second(self) -> float:
        return self.commands / self.uptime if self.uptime > 0.0 else 0.0


def sample_plane(
    plane: WorkerStatsPlane, now: float | None = None
) -> list[WorkerSample]:
    """Lock-free snapshot of every worker row, decoded.

    ``now`` (a ``time.monotonic()`` reading) pins all ages to one
    instant; defaults to the current time.
    """
    if now is None:
        now = time.monotonic()
    samples = []
    for rank in range(plane.n_workers):
        row, consistent = plane.read_row(rank)
        samples.append(
            WorkerSample(
                rank=rank,
                phase="busy" if row[STAT_PHASE] else "idle",
                op=op_name(row[STAT_OP]),
                commands=int(row[STAT_COMMANDS]),
                busy_seconds=float(row[STAT_BUSY]),
                wait_seconds=float(row[STAT_WAIT]),
                patterns=int(row[STAT_PATTERNS]),
                kernel=kernel_name(row[STAT_KERNEL]),
                heartbeat_age=max(0.0, now - float(row[STAT_HEARTBEAT])),
                uptime=max(0.0, now - float(row[STAT_EPOCH])),
                consistent=consistent,
            )
        )
    return samples


# -- flight recorder -----------------------------------------------------


class FlightRecorder:
    """Bounded ring buffer of structured run events.

    Events are small dicts (``seq``, wall-clock ``t``, ``event`` name,
    free-form fields) appended under a lock — the master's broadcast
    loop, a :class:`HealthMonitor` thread and a
    :class:`~repro.parallel.balance.Rebalancer` may all record
    concurrently.  The buffer keeps the LAST ``capacity`` events, so a
    post-mortem always shows the moments before the failure, however
    long the run.
    """

    enabled = True

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("need capacity >= 1")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def record(self, event: str, **fields) -> dict:
        """Append one event; returns the stored dict (stamped seq + t)."""
        entry = {"seq": 0, "t": time.time(), "event": event, **fields}
        with self._lock:
            self._seq += 1
            entry["seq"] = self._seq
            self._events.append(entry)
        return entry

    def events(self) -> list[dict]:
        """The buffered events, oldest first."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def dump(self, path: str) -> str:
        """Write the buffer as JSONL (one event per line), oldest first."""
        events = self.events()
        with open(path, "w") as fh:
            for entry in events:
                fh.write(json.dumps(entry) + "\n")
        return path


class NullFlightRecorder:
    """Discards everything; the zero-overhead default."""

    enabled = False
    capacity = 0

    def __len__(self) -> int:
        return 0

    def record(self, event: str, **fields) -> dict:
        return {}

    def events(self) -> list[dict]:
        return []

    def clear(self) -> None:
        pass

    def dump(self, path: str) -> str:
        return path


# -- health monitoring ---------------------------------------------------


@dataclass(frozen=True)
class HealthReport:
    """One :meth:`HealthMonitor.check` result."""

    samples: tuple[WorkerSample, ...]
    stalled: tuple[int, ...]
    imbalance: float

    @property
    def healthy(self) -> bool:
        return not self.stalled


class HealthMonitor:
    """Master-side heartbeat sampler over a worker-stats plane.

    A worker counts as STALLED when it is phase-busy (inside a command)
    and its heartbeat has not moved for ``stall_threshold`` seconds —
    which covers both a worker wedged in a long computation and one that
    died without its row ever returning to idle.  Idle workers never
    stall (an idle team is healthy, merely unemployed).

    ``check()`` also computes the live imbalance: the balance model's
    :func:`~repro.parallel.balance.imbalance_ratio` over measured-so-far
    busy seconds — the same quantity the post-hoc profile reports,
    available mid-run.
    """

    enabled = True

    def __init__(
        self,
        plane: WorkerStatsPlane,
        stall_threshold: float = 5.0,
        recorder: FlightRecorder | NullFlightRecorder | None = None,
        metrics=None,
    ):
        if stall_threshold <= 0.0:
            raise ValueError("stall_threshold must be positive")
        self.plane = plane
        self.stall_threshold = float(stall_threshold)
        self.recorder = recorder if recorder is not None else NullFlightRecorder()
        self.metrics = metrics
        # Ranks already reported stalled, so a wedged worker produces one
        # flight event per episode, not one per poll.
        self._reported: set[int] = set()

    def sample(self) -> list[WorkerSample]:
        return sample_plane(self.plane)

    def stalled(self, samples: list[WorkerSample] | None = None) -> list[int]:
        """Ranks currently considered stalled."""
        if samples is None:
            samples = self.sample()
        return [
            s.rank
            for s in samples
            if s.phase == "busy" and s.heartbeat_age > self.stall_threshold
        ]

    def imbalance(self, samples: list[WorkerSample] | None = None) -> float:
        """Live imbalance ratio from measured-so-far busy seconds."""
        if samples is None:
            samples = self.sample()
        return imbalance_ratio([s.busy_seconds for s in samples])

    def check(self) -> HealthReport:
        """Sample, detect stalls, publish gauges, record transitions."""
        samples = self.sample()
        stalled = self.stalled(samples)
        ratio = self.imbalance(samples)
        for rank in stalled:
            if rank not in self._reported:
                self._reported.add(rank)
                sample = samples[rank]
                self.recorder.record(
                    "stall", rank=rank, op=sample.op,
                    heartbeat_age=round(sample.heartbeat_age, 6),
                    threshold=self.stall_threshold,
                )
        self._reported.intersection_update(stalled)
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.gauge("live.imbalance").set(ratio)
            self.metrics.gauge("live.stalled_workers").set(float(len(stalled)))
        return HealthReport(
            samples=tuple(samples), stalled=tuple(stalled), imbalance=ratio
        )

    def wait_for_stall(
        self, timeout: float, poll: float = 0.05
    ) -> HealthReport | None:
        """Poll :meth:`check` until a stall appears or ``timeout`` passes.

        Returns the first stalled report, or None — the primitive the
        stall-detection tests (and manual drills) build on.
        """
        deadline = time.monotonic() + timeout
        while True:
            report = self.check()
            if report.stalled:
                return report
            if time.monotonic() >= deadline:
                return None
            time.sleep(poll)


class NullHealthMonitor:
    """Monitors nothing; every team is reported healthy."""

    enabled = False
    stall_threshold = float("inf")

    def sample(self) -> list[WorkerSample]:
        return []

    def stalled(self, samples=None) -> list[int]:
        return []

    def imbalance(self, samples=None) -> float:
        return 1.0

    def check(self) -> HealthReport:
        return HealthReport(samples=(), stalled=(), imbalance=1.0)

    def wait_for_stall(self, timeout: float, poll: float = 0.05) -> None:
        return None


# -- the facade ----------------------------------------------------------


class LiveTelemetry:
    """The live plane a :class:`~repro.parallel.ParallelPLK` drives.

    Construct (or pass ``live=True`` for defaults) and the engine will
    :meth:`bind` it to the worker-stats plane it creates before the team
    starts.  From then on:

    * every broadcast records ``dispatch`` / ``barrier_exit`` events in
      the :class:`FlightRecorder` ring buffer (and, when ``events_path``
      is set, appends them to a JSONL stream);
    * :meth:`monitor` hands out the bound :class:`HealthMonitor`;
    * a worker death or error triggers :meth:`postmortem`, dumping the
      ring buffer as JSONL next to the run.

    The engine owns the plane's lifecycle; :meth:`close` only releases
    the event stream.
    """

    enabled = True

    def __init__(
        self,
        stall_threshold: float = 5.0,
        capacity: int = 512,
        postmortem_dir: str | None = None,
        events_path: str | None = None,
        recorder: FlightRecorder | None = None,
    ):
        self.stall_threshold = float(stall_threshold)
        self.recorder = recorder if recorder is not None else FlightRecorder(capacity)
        self.postmortem_dir = postmortem_dir
        self.events_path = events_path
        self._events_fh = None
        self._events_lock = threading.Lock()
        self.plane: WorkerStatsPlane | None = None
        self.metrics = None
        self.run_config: dict = {}
        self.health: HealthMonitor | NullHealthMonitor = NullHealthMonitor()
        self.last_postmortem: str | None = None
        self.final_samples: list[WorkerSample] = []
        self._postmortems = 0

    # -- engine hooks ----------------------------------------------------

    def bind(
        self,
        plane: WorkerStatsPlane,
        metrics=None,
        run_config: dict | None = None,
    ) -> "LiveTelemetry":
        """Called by the engine once the stats plane exists."""
        self.plane = plane
        self.metrics = metrics
        self.run_config = dict(run_config or {})
        self.health = HealthMonitor(
            plane,
            stall_threshold=self.stall_threshold,
            recorder=self.recorder,
            metrics=metrics,
        )
        self.record("run_start", plane=plane.name, **self.run_config)
        return self

    def record(self, event: str, **fields) -> dict:
        entry = self.recorder.record(event, **fields)
        if self.events_path is not None:
            self._stream(entry)
        return entry

    def postmortem(self, reason: str, rank: int | None = None) -> str | None:
        """Dump the flight recorder as a JSONL post-mortem file.

        Called automatically by the engine when a
        :class:`~repro.parallel.engine.WorkerError` propagates; the path
        is remembered as ``last_postmortem``.  Returns None when there is
        nothing buffered to dump.
        """
        self.record("postmortem", reason=reason, rank=rank)
        if not len(self.recorder):
            return None
        directory = self.postmortem_dir or os.environ.get(FLIGHT_DIR_ENV) or "."
        os.makedirs(directory, exist_ok=True)
        self._postmortems += 1
        path = os.path.join(
            directory, f"flight-{os.getpid()}-{self._postmortems}.jsonl"
        )
        self.recorder.dump(path)
        self.last_postmortem = path
        return path

    def close(self) -> None:
        """Detach from the plane and release the event stream.

        Idempotent.  The engine closes the plane itself right after this
        returns, so the final worker rows are captured here as
        ``final_samples`` — what ``repro top`` renders for a
        just-recorded run.
        """
        if self.plane is not None:
            self.record("run_end")
            if getattr(self.plane, "slots", None) is not None:
                self.final_samples = sample_plane(self.plane)
            self.plane = None
            self.health = NullHealthMonitor()
        with self._events_lock:
            if self._events_fh is not None:
                try:
                    self._events_fh.close()
                finally:
                    self._events_fh = None

    # -- live queries ----------------------------------------------------

    def monitor(self) -> HealthMonitor | NullHealthMonitor:
        """The bound :class:`HealthMonitor` (null before :meth:`bind`)."""
        return self.health

    def sample(self) -> list[WorkerSample]:
        """Live samples while bound; the captured final rows after
        :meth:`close`."""
        if self.plane is None:
            return list(self.final_samples)
        return self.health.sample()

    def stalled(self) -> list[int]:
        return self.health.stalled()

    def imbalance(self) -> float:
        samples = self.sample()
        if not samples:
            return 1.0
        return imbalance_ratio([s.busy_seconds for s in samples])

    def prometheus(self) -> str:
        """Prometheus text-format snapshot: bound metrics registry plus
        the live per-worker gauges."""
        from .prometheus import prometheus_text

        return prometheus_text(
            metrics=self.metrics,
            samples=self.sample() or None,
            run_config=self.run_config,
        )

    def dashboard(self, width: int = 78) -> str:
        """One rendered frame of the ``repro top`` dashboard."""
        samples = self.sample()
        return render_dashboard(
            samples,
            run_config=self.run_config,
            imbalance=self.imbalance(),
            width=width,
        )

    # -- internals -------------------------------------------------------

    def _stream(self, entry: dict) -> None:
        with self._events_lock:
            if self._events_fh is None:
                self._events_fh = open(self.events_path, "a")
            self._events_fh.write(json.dumps(entry) + "\n")
            self._events_fh.flush()


class NullLiveTelemetry:
    """No live plane; the zero-cost default (``live=None``).

    The engine's hot path pays one ``live.enabled`` attribute read; no
    shared-memory segment is created, nothing is recorded.
    """

    enabled = False
    plane = None
    metrics = None
    run_config: dict = {}
    recorder = NullFlightRecorder()
    last_postmortem = None

    def bind(self, plane, metrics=None, run_config=None) -> "NullLiveTelemetry":
        return self

    def record(self, event: str, **fields) -> dict:
        return {}

    def postmortem(self, reason: str, rank: int | None = None) -> None:
        return None

    def monitor(self) -> NullHealthMonitor:
        return NullHealthMonitor()

    def sample(self) -> list[WorkerSample]:
        return []

    def stalled(self) -> list[int]:
        return []

    def imbalance(self) -> float:
        return 1.0

    def prometheus(self) -> str:
        return ""

    def dashboard(self, width: int = 78) -> str:
        return ""

    def close(self) -> None:
        pass


# -- dashboard rendering -------------------------------------------------


def _bar(fraction: float, width: int) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = round(fraction * width)
    return "#" * filled + "-" * (width - filled)


def render_dashboard(
    samples: list[WorkerSample],
    run_config: dict | None = None,
    imbalance: float | None = None,
    width: int = 78,
) -> str:
    """ASCII per-worker lanes (one ``repro top`` frame).

    Each lane shows the worker's phase and current op, cumulative
    commands and commands/s, the busy fraction as a bar, and the
    heartbeat age.  Pure function of its inputs, so tests can render a
    synthetic plane without a team.
    """
    lines = []
    cfg = run_config or {}
    title = "repro live"
    stamp = " ".join(
        f"{k}={cfg[k]}"
        for k in ("backend", "comms", "kernel", "distribution", "n_workers")
        if k in cfg
    )
    if stamp:
        title = f"{title} | {stamp}"
    if imbalance is None and samples:
        imbalance = imbalance_ratio([s.busy_seconds for s in samples])
    if imbalance is not None:
        title = f"{title} | imbalance {imbalance:.3f}"
    lines.append(title[:width])
    lines.append("-" * min(width, len(lines[0])))
    if not samples:
        lines.append("(no workers)")
        return "\n".join(lines)
    bar_width = max(10, width - 58)
    header = (
        f"{'rank':<5} {'phase':<5} {'op':<10} {'cmds':>7} {'cmd/s':>8} "
        f"{'busy%':>6} {'':<{bar_width}} {'hb age':>8}"
    )
    lines.append(header[:width])
    for s in samples:
        flag = "" if s.consistent else "?"
        lines.append(
            f"w{s.rank:<4}{flag:<1}{s.phase:<5} {s.op:<10} {s.commands:>7} "
            f"{s.commands_per_second:>8.1f} {100.0 * s.busy_fraction:>5.1f}% "
            f"{_bar(s.busy_fraction, bar_width)} {s.heartbeat_age:>7.3f}s"[:width]
        )
    return "\n".join(lines)
