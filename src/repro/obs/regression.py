"""Perf-regression checking against a committed baseline.

CI cannot compare absolute seconds across hosts, but two classes of
observables *are* stable for a fixed workload (same seed, geometry and
tolerances):

* **structure** — how many parallel regions each strategy issues, split
  by region kind.  This is the paper's own headline metric (oldPAR issues
  many times more commands than newPAR) and is deterministic up to small
  cross-platform floating-point drift in optimizer iteration counts;
* **relative performance** — measured on one host in one run: newPAR must
  not lose its efficiency and wall-clock advantage over oldPAR.

:func:`summarize_profiles` reduces a pair of measured
:class:`~repro.perf.profile.RunProfile` objects to a compact summary (a
few dozen numbers — this is also what benchmarks commit instead of raw
per-record dumps), and :func:`check_profiles` diffs a fresh summary
against a committed baseline under explicit tolerances.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SUMMARY_VERSION",
    "DEFAULT_TOLERANCES",
    "profile_summary",
    "summarize_profiles",
    "RegressionReport",
    "check_profiles",
    "load_baseline",
    "write_baseline",
]

SUMMARY_VERSION = 1

#: Default check tolerances (override via the baseline's "tolerances" key).
DEFAULT_TOLERANCES = {
    # relative slack on per-strategy region counts (total and per kind)
    "count_tol": 0.25,
    # absolute slack on small per-kind counts (so 3 -> 4 regions passes)
    "count_abs": 4,
    # oldPAR/newPAR region ratio may shrink to this fraction of baseline
    "ratio_floor": 0.75,
    # newPAR efficiency may undercut oldPAR's by at most this much
    "efficiency_drop": 0.05,
    # newPAR wall time must stay below old * this factor
    "wall_ratio_slack": 1.0,
}


def profile_summary(profile) -> dict:
    """One RunProfile as compact, committable summary stats."""
    kind_counts: dict[str, int] = {}
    for rec in profile.records:
        kind_counts[rec.kind] = kind_counts.get(rec.kind, 0) + 1
    return {
        "backend": profile.backend,
        "n_workers": profile.n_workers,
        "distribution": profile.distribution,
        "n_regions": profile.n_regions,
        "kind_counts": dict(sorted(kind_counts.items())),
        "kind_seconds": {
            k: round(v, 6) for k, v in sorted(profile.kind_seconds().items())
        },
        "total_seconds": round(profile.total_seconds, 6),
        "sync_seconds": round(profile.sync_seconds, 6),
        "busy_seconds": [round(float(b), 6) for b in profile.busy_seconds],
        "idle_seconds": [round(float(i), 6) for i in profile.idle_seconds],
        "efficiency": round(profile.efficiency, 6),
        "load_balance": round(profile.load_balance, 6),
        "meta": dict(profile.meta),
    }


def summarize_profiles(profiles: dict) -> dict:
    """Strategy-name -> RunProfile mapping as one summary document."""
    summary = {
        "version": SUMMARY_VERSION,
        "strategies": {name: profile_summary(p) for name, p in profiles.items()},
    }
    if "old" in profiles and "new" in profiles:
        old, new = profiles["old"], profiles["new"]
        summary["derived"] = {
            "command_ratio": (
                old.n_regions / new.n_regions if new.n_regions else float("inf")
            ),
            "wall_ratio": (
                new.total_seconds / old.total_seconds
                if old.total_seconds > 0 else float("inf")
            ),
            "efficiency_gain": new.efficiency - old.efficiency,
        }
    return summary


@dataclass
class RegressionReport:
    """Outcome of one baseline comparison."""

    checks: list[tuple[str, bool, str]] = field(default_factory=list)

    def add(self, name: str, ok: bool, detail: str) -> None:
        self.checks.append((name, bool(ok), detail))

    @property
    def ok(self) -> bool:
        return all(ok for _, ok, _ in self.checks)

    @property
    def failures(self) -> list[str]:
        return [f"{name}: {detail}" for name, ok, detail in self.checks if not ok]

    def summary(self) -> str:
        lines = []
        for name, ok, detail in self.checks:
            lines.append(f"  [{'ok' if ok else 'FAIL'}] {name}: {detail}")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"perf regression check: {verdict} "
                     f"({len(self.checks)} checks, "
                     f"{len(self.failures)} failures)")
        return "\n".join(lines)


def _within(measured: float, expected: float, rel: float, abs_slack: float = 0.0) -> bool:
    return abs(measured - expected) <= max(rel * abs(expected), abs_slack)


def check_profiles(profiles: dict, baseline: dict, tolerances: dict | None = None) -> RegressionReport:
    """Diff fresh measured profiles against a committed baseline summary.

    ``profiles`` maps strategy name -> RunProfile (as produced by the
    perf-smoke workload); ``baseline`` is a document from
    :func:`write_baseline`.  Returns a report; callers decide what a
    failure means (CI exits non-zero).
    """
    tol = dict(DEFAULT_TOLERANCES)
    tol.update(baseline.get("tolerances", {}))
    if tolerances:
        tol.update(tolerances)
    fresh = summarize_profiles(profiles)
    report = RegressionReport()

    base_strategies = baseline.get("strategies", {})
    for name, base in base_strategies.items():
        got = fresh["strategies"].get(name)
        if got is None:
            report.add(f"{name}.present", False, "strategy missing from fresh run")
            continue
        report.add(
            f"{name}.n_regions",
            _within(got["n_regions"], base["n_regions"], tol["count_tol"], tol["count_abs"]),
            f"measured {got['n_regions']} vs baseline {base['n_regions']} "
            f"(±{tol['count_tol']:.0%}/{tol['count_abs']})",
        )
        for kind, expected in base.get("kind_counts", {}).items():
            measured = got["kind_counts"].get(kind, 0)
            report.add(
                f"{name}.kind.{kind}",
                _within(measured, expected, tol["count_tol"], tol["count_abs"]),
                f"measured {measured} vs baseline {expected}",
            )

    derived = fresh.get("derived")
    base_derived = baseline.get("derived", {})
    if derived is not None:
        if "command_ratio" in base_derived:
            floor = base_derived["command_ratio"] * tol["ratio_floor"]
            report.add(
                "derived.command_ratio",
                derived["command_ratio"] >= floor,
                f"old/new region ratio {derived['command_ratio']:.2f} "
                f"(floor {floor:.2f})",
            )
        old = fresh["strategies"]["old"]
        new = fresh["strategies"]["new"]
        report.add(
            "derived.efficiency",
            new["efficiency"] >= old["efficiency"] - tol["efficiency_drop"],
            f"newPAR {new['efficiency']:.1%} vs oldPAR {old['efficiency']:.1%} "
            f"(allowed drop {tol['efficiency_drop']:.1%})",
        )
        report.add(
            "derived.wall_ratio",
            derived["wall_ratio"] <= tol["wall_ratio_slack"],
            f"new/old wall ratio {derived['wall_ratio']:.2f} "
            f"(limit {tol['wall_ratio_slack']:.2f})",
        )
    return report


def load_baseline(path: str | Path) -> dict:
    baseline = json.loads(Path(path).read_text())
    version = baseline.get("version")
    if version != SUMMARY_VERSION:
        raise ValueError(
            f"baseline {path} has version {version!r}, expected {SUMMARY_VERSION}"
        )
    return baseline


def write_baseline(
    path: str | Path,
    profiles: dict,
    workload: dict,
    tolerances: dict | None = None,
) -> dict:
    """Freeze the current measurements as the committed baseline."""
    doc = summarize_profiles(profiles)
    doc["workload"] = dict(workload)
    doc["tolerances"] = dict(tolerances or {})
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc
