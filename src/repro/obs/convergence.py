"""Convergence telemetry: the paper's boolean vector, made observable.

newPAR's whole mechanism (paper Section III) is the per-partition
convergence mask: every lock-step Brent/Newton iteration evaluates only
the still-unconverged partitions, and per-barrier work shrinks as lanes
drop out at different iteration counts.  :class:`ConvergenceLog` records
that mask *per iteration*, so a run leaves a machine-readable record of
exactly when each partition converged — the raw material behind paper
Figs. 3–6.

The batched optimizers (:class:`repro.optimize.brent.BatchedBrent`,
:class:`repro.optimize.newton.BatchedNewton`) accept any object with this
``iteration(x, active)`` method as their ``observer``; the engines create
one log per optimizer call through a :class:`ConvergenceTelemetry`
collector (:class:`NullTelemetry` being the discard-everything default).

Invariants (asserted by the test suite):

* monotonicity — once a lane leaves the active mask it never returns;
* accounting — each lane's per-round activity flags sum to exactly the
  iteration count the optimizer reports for it.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ConvergenceLog", "ConvergenceTelemetry", "NullTelemetry"]


@dataclass
class ConvergenceLog:
    """Per-iteration activity masks of one batched optimizer run.

    ``rounds[i][p]`` is True iff partition (lane) ``p`` was evaluated in
    lock-step iteration ``i``.
    """

    name: str
    n_lanes: int
    rounds: list[tuple[bool, ...]] = field(default_factory=list)

    # -- observer protocol (called by the batched optimizers) --------------

    def iteration(self, x: np.ndarray, active: np.ndarray) -> None:
        """Record one lock-step round's active mask (``x`` is the batch of
        trial points; unused here but part of the observer signature so
        richer observers can log trajectories)."""
        mask = tuple(bool(a) for a in np.asarray(active, dtype=bool))
        if len(mask) != self.n_lanes:
            raise ValueError(
                f"{self.name}: expected {self.n_lanes} lanes, got {len(mask)}"
            )
        self.rounds.append(mask)

    # -- derived views -----------------------------------------------------

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def matrix(self) -> np.ndarray:
        """(rounds, lanes) boolean activity matrix."""
        if not self.rounds:
            return np.zeros((0, self.n_lanes), dtype=bool)
        return np.asarray(self.rounds, dtype=bool)

    def iterations_per_lane(self) -> np.ndarray:
        """(lanes,) iteration counts — per-lane column sums of the
        activity matrix.  Matches the optimizer's reported ``iterations``
        exactly (asserted in tests)."""
        return self.matrix().sum(axis=0).astype(np.int64)

    def dropout_rounds(self) -> np.ndarray:
        """(lanes,) the 1-based round after which each lane was retired
        (== its iteration count); 0 for lanes never active."""
        return self.iterations_per_lane()

    def active_per_round(self) -> np.ndarray:
        """(rounds,) how many lanes each barrier's work spanned — the
        per-barrier width whose decay is the paper's Figs. 3–6 story."""
        return self.matrix().sum(axis=1).astype(np.int64)

    def is_monotonic(self) -> bool:
        """True iff no lane reactivates after leaving the active mask."""
        m = self.matrix()
        if m.shape[0] < 2:
            return True
        # activation after deactivation == False->True transition downward
        return not np.any(~m[:-1] & m[1:])

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n_lanes": self.n_lanes,
            "rounds": [[int(b) for b in mask] for mask in self.rounds],
            "iterations_per_lane": [int(i) for i in self.iterations_per_lane()],
            "active_per_round": [int(a) for a in self.active_per_round()],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ConvergenceLog":
        log = cls(name=d["name"], n_lanes=int(d["n_lanes"]))
        log.rounds = [tuple(bool(b) for b in mask) for mask in d["rounds"]]
        return log


class NullTelemetry:
    """Discards everything; the default.  ``start`` returns ``None`` so
    the optimizers receive no observer and skip all recording."""

    enabled = False

    def start(self, name: str, n_lanes: int) -> None:
        return None


class ConvergenceTelemetry:
    """Collects one :class:`ConvergenceLog` per batched optimizer call."""

    enabled = True

    def __init__(self) -> None:
        self.logs: list[ConvergenceLog] = []

    def start(self, name: str, n_lanes: int) -> ConvergenceLog:
        """New log registered under ``name`` (names repeat across calls —
        e.g. one ``nr_branch`` log per branch per smoothing pass)."""
        log = ConvergenceLog(name=name, n_lanes=n_lanes)
        self.logs.append(log)
        return log

    def by_name(self, name: str) -> list[ConvergenceLog]:
        return [log for log in self.logs if log.name == name]

    def total_iterations(self) -> np.ndarray | None:
        """Summed per-lane iteration counts across all logs (None when
        empty or lane counts disagree)."""
        if not self.logs:
            return None
        lanes = {log.n_lanes for log in self.logs}
        if len(lanes) != 1:
            return None
        total = np.zeros(lanes.pop(), dtype=np.int64)
        for log in self.logs:
            total += log.iterations_per_lane()
        return total

    def summary(self) -> str:
        lines = [f"convergence telemetry: {len(self.logs)} optimizer runs"]
        for log in self.logs:
            iters = log.iterations_per_lane()
            lines.append(
                f"  {log.name}: {log.n_rounds} rounds, "
                f"iterations/lane {iters.tolist()}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"logs": [log.to_dict() for log in self.logs]}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
