"""Zero-copy shared-memory comms plane for the process backend.

The pipe protocol pays two pickles per worker per exchange: the command
going out and the partial result coming back.  For the batched
optimizers the results are the dominant payload — per-partition float
vectors every round.  Two structures built on
:mod:`multiprocessing.shared_memory` remove that traffic:

:class:`SharedInputArena`
    every worker's tip/weight pattern slices packed into ONE segment,
    built in the master *before* fork.  Children inherit the mapping
    (``fork`` start method), so the big arrays are shipped exactly once
    and are never pickled, copied-on-write aside.

:class:`SharedResultPlane`
    a ``(n_workers, capacity)`` float64 array of fixed-layout result
    slots.  Worker ``w`` writes its partial reply (partial lnL, d1/d2
    per partition, ...) straight into row ``w`` following the layout of
    :mod:`repro.parallel.program`; the pipe reply shrinks to a tiny
    ``("shm", None, busy_seconds)`` token.  Replies the layout cannot
    carry fall back to the pickled pipe transparently.

Segment lifecycle
-----------------
Segments are created by the master before fork and unlinked by the
master's ``close()`` (also invoked on worker-death teardown) or, as a
backstop, by a ``weakref.finalize`` when the owner is garbage-collected.
Forked children inherit the Python objects too, so every cleanup path is
guarded by the creating PID — a child exiting must never unlink a
segment the master still uses.  Unlink happens before unmap so cleanup
cannot be blocked by still-alive numpy views.  All segment names carry
the :data:`SEGMENT_PREFIX` so tests and CI can assert nothing survives
teardown (:func:`live_segments`).
"""
from __future__ import annotations

import os
import secrets
import weakref
from multiprocessing import shared_memory

import numpy as np

from ..plk.partition import PartitionData

__all__ = [
    "SEGMENT_PREFIX",
    "SharedInputArena",
    "SharedResultPlane",
    "live_segments",
]

SEGMENT_PREFIX = "repro_shm"


def _aligned(nbytes: int) -> int:
    """Round up to 8 bytes so every placed array stays float64-aligned."""
    return (int(nbytes) + 7) & ~7


def _cleanup(shm: shared_memory.SharedMemory, creator_pid: int) -> None:
    if os.getpid() != creator_pid:
        # Forked child: the master owns the segment; just let the child's
        # mapping die with the process.
        return
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    try:
        shm.close()
    except BufferError:
        # numpy views of the buffer are still alive somewhere; the /dev/shm
        # entry is already gone (unlinked above), the mapping goes with the
        # process.
        pass


class _Segment:
    """One owned shared-memory segment: create in the master, unlink
    exactly once, only ever from the creating process."""

    def __init__(self, nbytes: int):
        name = f"{SEGMENT_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}"
        self.shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(int(nbytes), 8)
        )
        self._finalizer = weakref.finalize(self, _cleanup, self.shm, os.getpid())

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def buf(self):
        return self.shm.buf

    def close(self) -> None:
        """Unlink + unmap (idempotent; no-op in forked children)."""
        self._finalizer()


def live_segments() -> list[str]:
    """Names of repro-owned segments currently present in ``/dev/shm`` —
    the leak check used by the tests and the CI perf-smoke job."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return sorted(n for n in os.listdir(shm_dir) if n.startswith(SEGMENT_PREFIX))


class SharedInputArena:
    """All workers' tip/weight pattern slices packed into one segment.

    Build in the master BEFORE forking the team: the returned
    :attr:`worker_slices` (same nested shape as the input, but every
    array a read-only view into the segment) are what the worker
    processes receive, so startup ships each slice exactly once.
    """

    def __init__(self, worker_slices: list[list[PartitionData]]):
        total = 0
        for slices in worker_slices:
            for sl in slices:
                total += _aligned(sl.tip_states.nbytes) + _aligned(sl.weights.nbytes)
        self._segment = _Segment(total)
        self.nbytes = total
        self._offset = 0
        self.worker_slices: list[list[PartitionData]] | None = [
            [self._share(sl) for sl in slices] for slices in worker_slices
        ]

    def _share(self, sl: PartitionData) -> PartitionData:
        return PartitionData(
            partition=sl.partition,
            tip_states=self._place(sl.tip_states),
            weights=self._place(sl.weights),
        )

    def _place(self, arr: np.ndarray) -> np.ndarray:
        view = np.ndarray(
            arr.shape, dtype=arr.dtype, buffer=self._segment.buf, offset=self._offset
        )
        view[...] = arr
        view.flags.writeable = False
        self._offset += _aligned(arr.nbytes)
        return view

    @property
    def name(self) -> str:
        return self._segment.name

    def close(self) -> None:
        self.worker_slices = None
        self._segment.close()


class SharedResultPlane:
    """Fixed-layout float64 result slots, one row per worker.

    The row is sized for the largest fused reply the optimizers emit
    (a prepare+deriv program needs ``2 * n_partitions`` floats) with
    generous headroom; a reply that would not fit simply travels over
    the pipe instead — both sides size-check against the same capacity.
    """

    def __init__(self, n_workers: int, n_partitions: int, capacity: int | None = None):
        if capacity is None:
            capacity = max(32, 6 * max(n_partitions, 1))
        self.n_workers = n_workers
        self.n_partitions = n_partitions
        self.capacity = int(capacity)
        self._segment = _Segment(n_workers * self.capacity * 8)
        self.slots: np.ndarray | None = np.ndarray(
            (n_workers, self.capacity), dtype=np.float64, buffer=self._segment.buf
        )
        self.slots.fill(0.0)
        self.nbytes = n_workers * self.capacity * 8

    def row(self, rank: int) -> np.ndarray:
        """Worker ``rank``'s result slots (a live view, both sides)."""
        return self.slots[rank]

    @property
    def name(self) -> str:
        return self._segment.name

    def close(self) -> None:
        self.slots = None
        self._segment.close()
