"""Zero-copy shared-memory comms plane for the process backend.

The pipe protocol pays two pickles per worker per exchange: the command
going out and the partial result coming back.  For the batched
optimizers the results are the dominant payload — per-partition float
vectors every round.  Two structures built on
:mod:`multiprocessing.shared_memory` remove that traffic:

:class:`SharedInputArena`
    every worker's tip/weight pattern slices packed into ONE segment,
    built in the master *before* fork.  Children inherit the mapping
    (``fork`` start method), so the big arrays are shipped exactly once
    and are never pickled, copied-on-write aside.

:class:`SharedResultPlane`
    a ``(n_workers, capacity)`` float64 array of fixed-layout result
    slots.  Worker ``w`` writes its partial reply (partial lnL, d1/d2
    per partition, ...) straight into row ``w`` following the layout of
    :mod:`repro.parallel.program`; the pipe reply shrinks to a tiny
    ``("shm", None, busy_seconds)`` token.  Replies the layout cannot
    carry fall back to the pickled pipe transparently.

:class:`WorkerStatsPlane`
    the live-telemetry stats rows (``repro.obs.live``): one fixed-layout
    float64 row per worker, updated lock-free by each worker after every
    command / program step and read lock-free by the master (heartbeat
    timestamps, cumulative busy/wait seconds, command and pattern
    counters, current op).  Unlike the result plane it carries a one-row
    header, so an unrelated process (``repro top --plane NAME``) can
    attach by segment name alone.

Torn-read tolerance (stats rows)
--------------------------------
Stats rows are written WITHOUT locks.  Every field is an 8-byte-aligned
float64, so a concurrent reader never sees a mixed-bytes value for a
single field — but it may see a row whose *fields are mutually
inconsistent* (e.g. ``commands`` already incremented while ``busy`` is
not yet).  Each row therefore carries a seqlock-style ``STAT_SEQ``
counter: the writer makes it odd before touching the row and even again
after, and :meth:`WorkerStatsPlane.read_row` retries until it observes
the same even value on both sides of its copy, flagging the (rare)
give-up case as inconsistent.  All counter fields are monotonic, so even
a torn snapshot can only under-report progress, never invent it.

Segment lifecycle
-----------------
Segments are created by the master before fork and unlinked by the
master's ``close()`` (also invoked on worker-death teardown) or, as a
backstop, by a ``weakref.finalize`` when the owner is garbage-collected.
Forked children inherit the Python objects too, so every cleanup path is
guarded by the creating PID — a child exiting must never unlink a
segment the master still uses.  Unlink happens before unmap so cleanup
cannot be blocked by still-alive numpy views.  All segment names carry
the :data:`SEGMENT_PREFIX` so tests and CI can assert nothing survives
teardown (:func:`live_segments`).
"""
from __future__ import annotations

import os
import secrets
import time
import weakref
from multiprocessing import shared_memory

import numpy as np

from ..plk.kernels import KERNELS
from ..plk.partition import PartitionData

__all__ = [
    "SEGMENT_PREFIX",
    "SharedInputArena",
    "SharedResultPlane",
    "WorkerStatsPlane",
    "WorkerStatsWriter",
    "N_STAT_FIELDS",
    "STAT_OPS",
    "live_segments",
    "op_code",
    "op_name",
]

SEGMENT_PREFIX = "repro_shm"


def _aligned(nbytes: int) -> int:
    """Round up to 8 bytes so every placed array stays float64-aligned."""
    return (int(nbytes) + 7) & ~7


def _cleanup(shm: shared_memory.SharedMemory, creator_pid: int) -> None:
    if os.getpid() != creator_pid:
        # Forked child: the master owns the segment; just let the child's
        # mapping die with the process.
        return
    _OWNED_NAMES.discard(shm.name)
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    try:
        shm.close()
    except BufferError:
        # numpy views of the buffer are still alive somewhere; the /dev/shm
        # entry is already gone (unlinked above), the mapping goes with the
        # process.
        pass


#: Segment names created by THIS process — lets :meth:`WorkerStatsPlane.
#: attach` tell a same-process attach (tests, in-process dashboards)
#: from a foreign one when deciding whether to deregister the segment
#: from the resource tracker on pre-3.13 Pythons.
_OWNED_NAMES: set[str] = set()


class _Segment:
    """One owned shared-memory segment: create in the master, unlink
    exactly once, only ever from the creating process."""

    def __init__(self, nbytes: int):
        name = f"{SEGMENT_PREFIX}_{os.getpid()}_{secrets.token_hex(4)}"
        self.shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(int(nbytes), 8)
        )
        _OWNED_NAMES.add(self.shm.name)
        self._finalizer = weakref.finalize(self, _cleanup, self.shm, os.getpid())

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def buf(self):
        return self.shm.buf

    def close(self) -> None:
        """Unlink + unmap (idempotent; no-op in forked children)."""
        self._finalizer()


def live_segments() -> list[str]:
    """Names of repro-owned segments currently present in ``/dev/shm`` —
    the leak check used by the tests and the CI perf-smoke job."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return sorted(n for n in os.listdir(shm_dir) if n.startswith(SEGMENT_PREFIX))


class SharedInputArena:
    """All workers' tip/weight pattern slices packed into one segment.

    Build in the master BEFORE forking the team: the returned
    :attr:`worker_slices` (same nested shape as the input, but every
    array a read-only view into the segment) are what the worker
    processes receive, so startup ships each slice exactly once.
    """

    def __init__(self, worker_slices: list[list[PartitionData]]):
        total = 0
        for slices in worker_slices:
            for sl in slices:
                total += _aligned(sl.tip_states.nbytes) + _aligned(sl.weights.nbytes)
        self._segment = _Segment(total)
        self.nbytes = total
        self._offset = 0
        self.worker_slices: list[list[PartitionData]] | None = [
            [self._share(sl) for sl in slices] for slices in worker_slices
        ]

    def _share(self, sl: PartitionData) -> PartitionData:
        return PartitionData(
            partition=sl.partition,
            tip_states=self._place(sl.tip_states),
            weights=self._place(sl.weights),
        )

    def _place(self, arr: np.ndarray) -> np.ndarray:
        view = np.ndarray(
            arr.shape, dtype=arr.dtype, buffer=self._segment.buf, offset=self._offset
        )
        view[...] = arr
        view.flags.writeable = False
        self._offset += _aligned(arr.nbytes)
        return view

    @property
    def name(self) -> str:
        return self._segment.name

    def close(self) -> None:
        self.worker_slices = None
        self._segment.close()


class SharedResultPlane:
    """Fixed-layout float64 result slots, one row per worker.

    The row is sized for the largest fused reply the optimizers emit
    (a prepare+deriv program needs ``2 * n_partitions`` floats) with
    generous headroom; a reply that would not fit simply travels over
    the pipe instead — both sides size-check against the same capacity.
    """

    def __init__(self, n_workers: int, n_partitions: int, capacity: int | None = None):
        if capacity is None:
            capacity = max(32, 6 * max(n_partitions, 1))
        self.n_workers = n_workers
        self.n_partitions = n_partitions
        self.capacity = int(capacity)
        self._segment = _Segment(n_workers * self.capacity * 8)
        self.slots: np.ndarray | None = np.ndarray(
            (n_workers, self.capacity), dtype=np.float64, buffer=self._segment.buf
        )
        self.slots.fill(0.0)
        self.nbytes = n_workers * self.capacity * 8

    def row(self, rank: int) -> np.ndarray:
        """Worker ``rank``'s result slots (a live view, both sides)."""
        return self.slots[rank]

    @property
    def name(self) -> str:
        return self._segment.name

    def close(self) -> None:
        self.slots = None
        self._segment.close()


# ----------------------------------------------------------------------
# Live worker-stats plane (repro.obs.live)
# ----------------------------------------------------------------------

# Field indices of one worker stats row.  The layout is the wire format
# read by attached dashboards, so fields are append-only across versions.
(
    STAT_SEQ,        # seqlock counter: odd while a write is in progress
    STAT_HEARTBEAT,  # time.monotonic() of the last update (system-wide clock)
    STAT_PHASE,      # 0 = idle/waiting at the barrier, 1 = executing a command
    STAT_COMMANDS,   # cumulative worker commands executed (program steps count)
    STAT_BUSY,       # cumulative execute seconds (self-timed, IPC excluded)
    STAT_WAIT,       # cumulative seconds spent waiting for the next command
    STAT_PATTERNS,   # cumulative alignment patterns processed
    STAT_OP,         # current/last op as an index into STAT_OPS
    STAT_KERNEL,     # kernel backend as an index into plk.kernels.KERNELS
    STAT_EPOCH,      # time.monotonic() when the worker attached (uptime base)
) = range(10)

#: Row width in float64 slots (headroom beyond the fields above so new
#: fields can be appended without changing the segment geometry).
N_STAT_FIELDS = 12

_PHASE_IDLE, _PHASE_BUSY = 0.0, 1.0

#: Worker ops encodable in ``STAT_OP`` (index 0 is the unknown-op code).
STAT_OPS = (
    "?", "lnl", "lnl_parts", "prepare", "deriv", "branch_lnl", "release",
    "set_bl", "set_alpha", "set_model", "set_bl_vec", "set_alpha_vec",
    "eval_alpha", "prog", "stall", "die",
)

_OP_CODES = {op: i for i, op in enumerate(STAT_OPS)}


def op_code(op: str) -> int:
    """The ``STAT_OP`` code of a worker op (0 for unknown ops)."""
    return _OP_CODES.get(op, 0)


def op_name(code: float) -> str:
    """Inverse of :func:`op_code` (``"?"`` for out-of-range codes)."""
    idx = int(code)
    return STAT_OPS[idx] if 0 <= idx < len(STAT_OPS) else "?"


def kernel_code(name: str) -> int:
    """Kernel backend name -> 1-based index into ``KERNELS`` (0 unknown)."""
    try:
        return KERNELS.index(name) + 1
    except ValueError:
        return 0


def kernel_name(code: float) -> str:
    idx = int(code) - 1
    return KERNELS[idx] if 0 <= idx < len(KERNELS) else "?"


class WorkerStatsPlane:
    """Per-worker live stats rows in one shared-memory segment.

    Layout: ``(n_workers + 1, N_STAT_FIELDS)`` float64 — row 0 is a
    header (magic, layout version, team size) so a foreign process can
    :meth:`attach` knowing nothing but the segment name; rows ``1..W``
    are the worker stats rows described by the ``STAT_*`` field indices.

    The owner (master) creates the plane BEFORE forking a process team so
    children inherit the mapping; an attached reader (``repro top
    --plane``) opens the same segment by name and must never unlink it —
    :meth:`close` only unmaps in that case.  See the module docstring for
    the lock-free torn-read protocol.
    """

    _MAGIC = 20090914.0  # ICPP 2009 + layout salt
    VERSION = 1.0

    def __init__(self, n_workers: int, kernel: str = "numpy"):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.n_workers = int(n_workers)
        self.kernel = kernel
        self._shm: shared_memory.SharedMemory | None = None
        self._segment = _Segment((self.n_workers + 1) * N_STAT_FIELDS * 8)
        self.slots: np.ndarray | None = np.ndarray(
            (self.n_workers + 1, N_STAT_FIELDS), dtype=np.float64,
            buffer=self._segment.buf,
        )
        self.slots.fill(0.0)
        self.slots[0, 0] = self._MAGIC
        self.slots[0, 1] = self.VERSION
        self.slots[0, 2] = float(self.n_workers)
        epoch = time.monotonic()
        for w in range(self.n_workers):
            row = self.slots[w + 1]
            row[STAT_HEARTBEAT] = epoch
            row[STAT_EPOCH] = epoch
            row[STAT_KERNEL] = kernel_code(kernel)

    @classmethod
    def attach(cls, name: str) -> "WorkerStatsPlane":
        """Open an existing plane by segment name (read-only intent).

        The attached object never unlinks the segment — the run that
        created it owns the lifecycle; ``close()`` merely unmaps.
        """
        try:
            # Python 3.13+: opt out of resource tracking at open.
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            shm = shared_memory.SharedMemory(name=name)
            # Older Pythons register every attach with the resource
            # tracker, which would UNLINK the owner's live segment when
            # this observer process exits — deregister explicitly.  A
            # same-process attach must NOT deregister: the tracker holds
            # one entry per name, and removing it would unbalance the
            # owner's own create/close bookkeeping.
            if shm.name not in _OWNED_NAMES:
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:
                    pass
        header = np.ndarray((N_STAT_FIELDS,), dtype=np.float64, buffer=shm.buf)
        if header[0] != cls._MAGIC or header[1] != cls.VERSION:
            shm.close()
            raise ValueError(
                f"segment {name!r} is not a v{cls.VERSION:.0f} worker-stats plane"
            )
        plane = cls.__new__(cls)
        plane.n_workers = int(header[2])
        plane.kernel = "?"
        plane._segment = None
        plane._shm = shm
        plane.slots = np.ndarray(
            (plane.n_workers + 1, N_STAT_FIELDS), dtype=np.float64, buffer=shm.buf
        )
        return plane

    @property
    def name(self) -> str:
        if self._segment is not None:
            return self._segment.name
        return self._shm.name

    def row(self, rank: int) -> np.ndarray:
        """Worker ``rank``'s raw stats row (live view, writer side)."""
        return self.slots[rank + 1]

    def read_row(self, rank: int, retries: int = 8) -> tuple[np.ndarray, bool]:
        """Lock-free snapshot of worker ``rank``'s row.

        Returns ``(copy, consistent)``: the seqlock is sampled on both
        sides of the copy and the read retried up to ``retries`` times;
        ``consistent`` is False only if every attempt raced a writer (the
        snapshot is then possibly torn but still field-atomic).
        """
        row = self.slots[rank + 1]
        snap = row.copy()
        for _ in range(max(retries, 1)):
            seq0 = row[STAT_SEQ]
            snap = row.copy()
            if seq0 == snap[STAT_SEQ] == row[STAT_SEQ] and seq0 % 2.0 == 0.0:
                return snap, True
        return snap, False

    def close(self) -> None:
        """Owner: unlink + unmap; attached reader: unmap only."""
        self.slots = None
        if self._segment is not None:
            self._segment.close()
        elif self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                pass
            self._shm = None


class WorkerStatsWriter:
    """Worker-side lock-free updater of one :class:`WorkerStatsPlane` row.

    One writer per worker; calls come only from that worker's (single)
    command loop, so writes are unsynchronized by design and follow the
    seqlock protocol documented on the module.  Every update refreshes
    the heartbeat, so a healthy worker's ``STAT_HEARTBEAT`` age stays
    bounded by its longest single command.

    The update sits on the barrier critical path of EVERY broadcast, so
    it writes through a raw float64 ``memoryview`` of the row (a numpy
    scalar read-modify-write costs ~1µs; a memoryview store ~0.1µs) and
    shadows the cumulative counters as Python floats — the shared row is
    store-only, never read back.
    """

    __slots__ = ("row", "rank", "_mv", "_seq", "_commands", "_busy",
                 "_wait_s", "_patterns")

    def __init__(self, row: np.ndarray, rank: int, kernel: str = "numpy"):
        self.row = row
        self.rank = rank
        mv = self._mv = row.data.cast("B").cast("d")
        # resume the seqlock/counters from the row so re-attach (process
        # workers construct their writer post-fork) stays monotonic
        self._seq = float(mv[STAT_SEQ])
        self._commands = float(mv[STAT_COMMANDS])
        self._busy = float(mv[STAT_BUSY])
        self._wait_s = float(mv[STAT_WAIT])
        self._patterns = float(mv[STAT_PATTERNS])
        now = time.monotonic()
        mv[STAT_SEQ] = self._seq + 1.0
        mv[STAT_KERNEL] = float(kernel_code(kernel))
        if mv[STAT_EPOCH] == 0.0:
            mv[STAT_EPOCH] = now
        mv[STAT_PHASE] = _PHASE_IDLE
        mv[STAT_HEARTBEAT] = now
        self._seq += 2.0
        mv[STAT_SEQ] = self._seq

    def begin(self, op: str) -> None:
        """Mark a command as in flight (stall detection keys off this:
        a worker stuck inside a command stays phase=busy while its
        heartbeat ages)."""
        mv = self._mv
        mv[STAT_SEQ] = self._seq + 1.0
        mv[STAT_PHASE] = _PHASE_BUSY
        mv[STAT_OP] = float(op_code(op))
        mv[STAT_HEARTBEAT] = time.monotonic()
        self._seq += 2.0
        mv[STAT_SEQ] = self._seq

    def done(self, busy_seconds: float, patterns: int) -> None:
        """Fold one completed command/program step into the counters."""
        mv = self._mv
        mv[STAT_SEQ] = self._seq + 1.0
        self._commands += 1.0
        self._busy += busy_seconds
        self._patterns += float(patterns)
        mv[STAT_COMMANDS] = self._commands
        mv[STAT_BUSY] = self._busy
        mv[STAT_PATTERNS] = self._patterns
        mv[STAT_PHASE] = _PHASE_IDLE
        mv[STAT_HEARTBEAT] = time.monotonic()
        self._seq += 2.0
        mv[STAT_SEQ] = self._seq

    def wait(self, seconds: float) -> None:
        """Account time spent blocked waiting for the next command."""
        mv = self._mv
        mv[STAT_SEQ] = self._seq + 1.0
        self._wait_s += seconds
        mv[STAT_WAIT] = self._wait_s
        mv[STAT_PHASE] = _PHASE_IDLE
        mv[STAT_HEARTBEAT] = time.monotonic()
        self._seq += 2.0
        mv[STAT_SEQ] = self._seq
