"""Real parallel execution of the PLK: pattern distribution policies
(static and cost-aware), a measured-feedback rebalancer, plus thread- and
process-based master/worker backends executing the same schedule the
simulator replays."""
from .distribution import (
    DISTRIBUTIONS,
    STATIC_DISTRIBUTIONS,
    block_indices,
    block_partition_counts,
    cyclic_indices,
    cyclic_partition_counts,
    partition_thread_counts,
)
from .balance import (
    CostModel,
    DistributionPlan,
    PartitionLayout,
    Rebalancer,
    build_plan,
    imbalance_ratio,
    pattern_weight,
)
from .engine import ParallelPLK, WorkerError
from .program import Program
from .shm import (
    SharedInputArena,
    SharedResultPlane,
    WorkerStatsPlane,
    live_segments,
)
from .worker import WorkerState, slice_partition_data

__all__ = [
    "DISTRIBUTIONS",
    "STATIC_DISTRIBUTIONS",
    "CostModel",
    "DistributionPlan",
    "ParallelPLK",
    "PartitionLayout",
    "Program",
    "Rebalancer",
    "SharedInputArena",
    "SharedResultPlane",
    "WorkerError",
    "WorkerState",
    "WorkerStatsPlane",
    "live_segments",
    "block_indices",
    "block_partition_counts",
    "build_plan",
    "cyclic_indices",
    "cyclic_partition_counts",
    "imbalance_ratio",
    "partition_thread_counts",
    "pattern_weight",
    "slice_partition_data",
]
