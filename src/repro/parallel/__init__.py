"""Real parallel execution of the PLK: pattern distribution policies plus
thread- and process-based master/worker backends executing the same
schedule the simulator replays."""
from .distribution import (
    DISTRIBUTIONS,
    block_indices,
    block_partition_counts,
    cyclic_indices,
    cyclic_partition_counts,
    partition_thread_counts,
)
from .engine import ParallelPLK, WorkerError
from .worker import WorkerState, slice_partition_data

__all__ = [
    "DISTRIBUTIONS",
    "ParallelPLK",
    "WorkerError",
    "WorkerState",
    "block_indices",
    "block_partition_counts",
    "cyclic_indices",
    "cyclic_partition_counts",
    "partition_thread_counts",
    "slice_partition_data",
]
