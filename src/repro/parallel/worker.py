"""Worker-side state and command execution for the real parallel backends.

Every worker owns a *pattern slice* of each partition (cyclic or block
assignment, fixed at startup — RAxML's data-parallel ownership: likelihood
arrays never migrate between threads).  The master broadcasts small
commands; each worker executes them against its private
:class:`~repro.plk.likelihood.PartitionLikelihood` instances and returns a
partial result (a partial log-likelihood or partial derivative sums),
which the master reduces.  One command == one region of the simulator's
vocabulary.

A worker may own ZERO patterns of a short partition (the paper's
``m'_p < T`` worst case): its engines then operate on zero-width arrays
and contribute nothing — it simply idles through the command, exactly like
the idle threads the paper describes.
"""
from __future__ import annotations

import os
import time
import weakref
from dataclasses import dataclass

import numpy as np

from ..plk.kernels import get_kernel
from ..plk.likelihood import BranchWorkspace, PartitionLikelihood
from ..plk.partition import PartitionData, PartitionedAlignment
from ..plk.tree import Tree
from .balance import DistributionPlan, PartitionLayout, build_plan
from .shm import WorkerStatsWriter

__all__ = ["slice_partition_data", "WorkerState"]

# Position of the active-partition list inside each command tuple, for
# the live plane's patterns-processed counter.  Commands without an
# entry either touch every partition ("lnl") or none (control ops).
_ACTIVE_ARG = {
    "lnl_parts": 2, "eval_alpha": 2, "prepare": 3, "deriv": 3, "branch_lnl": 3,
}


# One DistributionPlan per (alignment, team size, policy), so slicing a
# team worker-by-worker with a policy *name* builds the plan once, not
# once per worker.  Keyed by object identity (PartitionedAlignment holds
# ndarrays and is unhashable); a weakref finalizer evicts the entry when
# the alignment is collected, so a recycled id() can never alias.
_PLAN_CACHE: dict[tuple[int, int, str], DistributionPlan] = {}

# Captured at import (pre-fork): lets ``_cmd_die`` distinguish a forked
# process child (hard ``os._exit``) from the thread backend (SystemExit).
_MAIN_PID = os.getpid()


def _team_plan(
    data: PartitionedAlignment, n_workers: int, policy: str
) -> DistributionPlan:
    key = (id(data), n_workers, policy)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = build_plan(PartitionLayout.from_alignment(data), n_workers, policy)
        _PLAN_CACHE[key] = plan
        weakref.finalize(data, _PLAN_CACHE.pop, key, None)
    return plan


def slice_partition_data(
    data: PartitionedAlignment,
    n_workers: int,
    worker: int,
    distribution: str | DistributionPlan = "cyclic",
) -> list[PartitionData]:
    """The pattern slices worker ``worker`` owns, one per partition.

    ``distribution`` is a policy name (a
    :class:`~repro.parallel.balance.DistributionPlan` is built with the
    analytic cost model and cached per (alignment, team size, policy))
    or a prebuilt plan (what
    :class:`~repro.parallel.engine.ParallelPLK` passes).

    Invariant: all workers of one team MUST be sliced from the same
    plan — pattern ownership is a partition of the alignment, so mixing
    plans would drop or double-count patterns.  Policy-name calls uphold
    this via the cache (repeated calls for the same alignment/team size
    reuse one plan object); callers juggling several plans for one
    alignment must pass the plan explicitly.
    """
    if isinstance(distribution, DistributionPlan):
        plan = distribution
        if plan.n_threads != n_workers:
            raise ValueError(
                f"plan built for {plan.n_threads} threads, team has {n_workers}"
            )
    else:
        plan = _team_plan(data, n_workers, distribution)
    slices: list[PartitionData] = []
    for p, block in enumerate(data.data):
        idx = plan.thread_indices(p, worker)
        slices.append(
            PartitionData(
                partition=block.partition,
                tip_states=np.ascontiguousarray(block.tip_states[:, idx, :]),
                weights=block.weights[idx].copy(),
            )
        )
    return slices


@dataclass
class _Handle:
    """Worker-local sumtable storage for one prepare/derive cycle."""

    token: int
    workspaces: dict[int, BranchWorkspace]


class WorkerState:
    """Executes master commands against this worker's pattern slices."""

    def __init__(
        self,
        slices: list[PartitionData],
        tree: Tree,
        models: list,
        alphas: list[float],
        initial_lengths: np.ndarray | None = None,
        categories: int = 4,
        kernel: str | None = None,
    ):
        self.tree = tree
        # One backend instance per worker, shared by its partition engines:
        # backends carry per-instance scratch, so instances must not cross
        # thread boundaries, but within one worker the commands are
        # strictly sequential.
        self.kernel = get_kernel(kernel)
        self.parts = [
            PartitionLikelihood(
                d, tree, model, alpha=alpha, categories=categories, index=i,
                kernel_backend=self.kernel,
            )
            for i, (d, model, alpha) in enumerate(zip(slices, models, alphas))
        ]
        if initial_lengths is not None:
            for part in self.parts:
                part.set_branch_lengths(initial_lengths)
        self._handles: dict[int, _Handle] = {}
        # Zero-width fast path: a worker owning zero patterns of a short
        # partition (the paper's m'_p < T case) contributes the additive
        # identity to every reduction, so its commands short-circuit here
        # instead of dispatching zero-width kernels.
        self._empty = tuple(sl.n_patterns == 0 for sl in slices)
        # Live telemetry (repro.obs.live): disabled by default — the hot
        # dispatch path then pays one attribute read, nothing else.
        self.stats: WorkerStatsWriter | None = None
        self.rank = 0
        self._kernel_name = getattr(self.kernel, "name", "numpy")
        self._slice_patterns = tuple(sl.n_patterns for sl in slices)
        self._total_patterns = sum(self._slice_patterns)

    def attach_stats(self, row: np.ndarray, rank: int) -> None:
        """Bind this worker to row ``rank`` of a
        :class:`~repro.parallel.shm.WorkerStatsPlane` — every subsequent
        command (and every step of a fused program) updates the row."""
        self.rank = int(rank)
        self.stats = WorkerStatsWriter(row, self.rank, self._kernel_name)

    def _command_patterns(self, cmd: tuple) -> int:
        """Alignment patterns one command touches on THIS worker (the
        live plane's throughput counter; control ops count zero)."""
        op = cmd[0]
        if op in ("lnl",):
            return self._total_patterns
        idx = _ACTIVE_ARG.get(op)
        if idx is None:
            return 0
        return int(sum(self._slice_patterns[p] for p in cmd[idx]))

    # Command dispatch ---------------------------------------------------

    def execute(self, cmd: tuple):
        op = cmd[0]
        handler = getattr(self, f"_cmd_{op}", None)
        if handler is None:
            raise ValueError(f"unknown worker command {op!r}")
        stats = self.stats
        if stats is None or op == "prog":
            # Fused programs record per STEP (each inner execute() lands
            # here again with a plain op), never as one opaque block.
            return handler(*cmd[1:])
        stats.begin(op)
        t0 = time.perf_counter()
        try:
            return handler(*cmd[1:])
        finally:
            stats.done(time.perf_counter() - t0, self._command_patterns(cmd))

    def execute_timed(self, cmd: tuple):
        """Execute plus this worker's own busy seconds for the command —
        the measured quantity behind :mod:`repro.perf`'s per-worker
        busy/idle decomposition.  Self-timed inside the worker, so
        dispatch, barrier and IPC time are excluded."""
        t0 = time.perf_counter()
        value = self.execute(cmd)
        return value, time.perf_counter() - t0

    # -- likelihood ------------------------------------------------------

    def _cmd_lnl(self, root_edge: int) -> float:
        """Partial total log-likelihood over all partitions."""
        return float(
            sum(
                p.loglikelihood(root_edge)
                for p, empty in zip(self.parts, self._empty)
                if not empty
            )
        )

    def _cmd_lnl_parts(self, root_edge: int, active: list[int]) -> np.ndarray:
        """Partial per-partition log-likelihoods for the active set."""
        out = np.zeros(len(self.parts))
        for p in active:
            if self._empty[p]:
                continue
            out[p] = self.parts[p].loglikelihood(root_edge)
        return out

    # -- branch-length machinery ------------------------------------------

    def _cmd_prepare(self, edge: int, token: int, partitions: list[int]) -> None:
        ws = {
            p: self.parts[p].prepare_branch(edge)
            for p in partitions
            if not self._empty[p]
        }
        self._handles[token] = _Handle(token=token, workspaces=ws)

    def _cmd_deriv(
        self, token: int, z: np.ndarray, active: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Partial (d1, d2) sums for the active partitions at lengths z."""
        handle = self._handles[token]
        d1 = np.zeros(len(self.parts))
        d2 = np.zeros(len(self.parts))
        for p in active:
            if self._empty[p]:
                continue
            d1[p], d2[p] = self.parts[p].branch_derivatives(
                handle.workspaces[p], float(z[p])
            )
        return d1, d2

    def _cmd_branch_lnl(
        self, token: int, z: np.ndarray, active: list[int]
    ) -> np.ndarray:
        """Partial per-partition log-likelihoods at branch lengths z, from
        the prepared sumtables (the Newton monotonicity-guard pass)."""
        handle = self._handles[token]
        out = np.zeros(len(self.parts))
        for p in active:
            if self._empty[p]:
                continue
            out[p] = self.parts[p].branch_loglikelihood(
                handle.workspaces[p], float(z[p])
            )
        return out

    def _cmd_release(self, token: int) -> None:
        self._handles.pop(token, None)

    # -- parameter updates -------------------------------------------------

    def _cmd_set_bl(self, edge: int, value: float, partition: int | None) -> None:
        if partition is None:
            for part in self.parts:
                part.set_branch_length(edge, value)
        else:
            self.parts[partition].set_branch_length(edge, value)

    def _cmd_set_alpha(self, partition: int, alpha: float) -> None:
        self.parts[partition].alpha = alpha

    def _cmd_set_model(self, partition: int, model) -> None:
        self.parts[partition].model = model

    def _cmd_set_bl_vec(self, edge: int, values: np.ndarray) -> None:
        """Per-partition branch lengths for one edge in ONE command (the
        fused replacement for P separate ``set_bl`` broadcasts)."""
        for p, part in enumerate(self.parts):
            part.set_branch_length(edge, float(values[p]))

    def _cmd_set_alpha_vec(self, x: np.ndarray, active: list[int]) -> None:
        """Per-partition alphas in ONE command (fused ``set_alpha``)."""
        for p in active:
            self.parts[p].alpha = float(x[p])

    def _cmd_eval_alpha(
        self, x: np.ndarray, active: list[int], root_edge: int
    ) -> np.ndarray:
        """Set trial alphas and return partial NEGATIVE log-likelihoods
        (one fused command per Brent round — the newPAR schedule)."""
        out = np.zeros(len(self.parts))
        for p in active:
            if self._empty[p]:
                continue
            self.parts[p].alpha = float(x[p])
            out[p] = -self.parts[p].loglikelihood(root_edge)
        return out

    # -- fused programs ----------------------------------------------------

    def _cmd_prog(self, steps: tuple) -> list:
        """Execute an ordered fused program (one broadcast/barrier on the
        master side); returns one partial result per step."""
        return [self.execute(tuple(step)) for step in steps]

    # -- fault injection ---------------------------------------------------

    def _cmd_stall(self, rank: int, seconds: float) -> None:
        """Make worker ``rank`` sleep mid-command — the chaos hook the
        :class:`~repro.obs.live.HealthMonitor` stall tests (and manual
        health-check drills) use; every other worker returns at once."""
        if self.rank == rank:
            time.sleep(float(seconds))

    def _cmd_die(self, rank: int) -> None:
        """Kill worker ``rank`` outright (``os._exit`` in a process child,
        an uncatchable exception under the thread backend) — the chaos
        hook the serve failure-path tests use to prove a team death
        mid-job surfaces as a structured error, not a hung client."""
        if self.rank == rank:
            if os.getpid() != _MAIN_PID:
                os._exit(1)
            raise SystemExit(f"worker chaos death (rank {rank})")
