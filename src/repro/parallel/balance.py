"""Cost-aware load balancing: per-pattern cost model, global distribution
plans, and measured-feedback rebalancing.

The paper's static policies (:mod:`repro.parallel.distribution`) treat
every alignment pattern as equally expensive.  They are not: an AA column
(20 states) costs ~25x a DNA column (4 states) in the ``states**2``
propagation loops — the paper's own explanation for the smaller
load-balance improvement on its protein datasets.  Terrace-aware
supermatrix inference (Chernomor et al.) and BEAGLE treat the
partition/pattern-to-processor assignment as an explicit cost-driven
optimization problem; this module does the same for our worker teams:

* :class:`CostModel` — relative cost of one pattern of each partition
  (``categories * states**2`` analytically; *seconds* per pattern once
  calibrated from a measured :class:`repro.perf.RunProfile`; and — for
  repeat-aware kernels — optional per-pattern cost VECTORS pricing
  *post-compression* work, since a pattern whose subtree states repeat
  everywhere costs a sliver of a unique one under ``kernel=repeats``);
* :func:`build_plan` — a global :class:`DistributionPlan` under any of the
  four policies, including ``weighted`` (cost-aware cyclic: each pattern
  goes to the thread with the smallest *cumulative cost*, not the next
  index) and ``lpt`` (longest-processing-time greedy bin packing of
  contiguous partition chunks, the classic Graham heuristic);
* :class:`Rebalancer` — closes the measurement loop: per-worker busy
  seconds from a warmup pass calibrate the cost model, and the calibrated
  model drives an LPT replan that minimizes the predicted max-thread load
  for the main run.

Units
-----
``CostModel.per_pattern`` is in *relative cost units* for the analytic
model and in *seconds per pattern* after calibration; either way all
derived quantities (thread loads, imbalance ratios) are scale-free.
Pattern counts are **counts**; ``busy_seconds`` arguments are **seconds**.
"""
from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from .distribution import (
    DISTRIBUTIONS,
    block_indices,
    cyclic_indices,
)

__all__ = [
    "CostModel",
    "DistributionPlan",
    "PartitionLayout",
    "Rebalancer",
    "build_plan",
    "imbalance_ratio",
    "pattern_weight",
]


def pattern_weight(states: int, categories: int = 4) -> float:
    """Relative compute cost of one pattern (dimensionless cost units).

    The PLK inner loops are dominated by the ``states x states``
    propagation per Gamma category, so the weight is
    ``categories * states**2`` — which makes an AA pattern exactly the
    paper's ~25x a DNA pattern:

    >>> pattern_weight(4, 4)
    64.0
    >>> pattern_weight(20, 4) / pattern_weight(4, 4)
    25.0
    """
    if states < 2 or categories < 1:
        raise ValueError("need states >= 2 and categories >= 1")
    return float(categories * states * states)


def imbalance_ratio(loads) -> float:
    """Max over mean thread load (dimensionless; 1.0 = perfect balance).

    This is the quantity the whole repo optimizes: a region lasts until
    its most-loaded thread finishes, so makespan / ideal-makespan equals
    ``max(load) / mean(load)``.  All-idle teams count as balanced:

    >>> imbalance_ratio([2.0, 2.0, 2.0, 2.0])
    1.0
    >>> imbalance_ratio([4.0, 0.0, 0.0, 0.0])
    4.0
    >>> imbalance_ratio([0.0, 0.0])
    1.0
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        raise ValueError("need at least one thread load")
    mean = float(loads.mean())
    if mean <= 0.0:
        return 1.0
    return float(loads.max()) / mean


@dataclass(frozen=True)
class PartitionLayout:
    """The dataset geometry a distribution plan is built over.

    Attributes
    ----------
    lengths:
        Per-partition distinct-pattern counts ``m'_p`` (counts, >= 0).
    states:
        Per-partition state-space sizes (4 for DNA, 20 for AA).
    categories:
        Gamma rate categories K (count; shared by all partitions).

    >>> lay = PartitionLayout((30, 10), (4, 20))
    >>> lay.total, lay.offsets().tolist()
    (40, [0, 30])
    """

    lengths: tuple[int, ...]
    states: tuple[int, ...]
    categories: int = 4

    def __post_init__(self) -> None:
        if len(self.lengths) != len(self.states):
            raise ValueError("need one state count per partition")
        if not self.lengths:
            raise ValueError("empty layout")
        if any(length < 0 for length in self.lengths):
            raise ValueError("pattern counts must be non-negative")
        if any(s < 2 for s in self.states):
            raise ValueError("state counts must be >= 2")
        if self.categories < 1:
            raise ValueError("need at least one rate category")

    @property
    def n_partitions(self) -> int:
        return len(self.lengths)

    @property
    def total(self) -> int:
        """Global distinct-pattern count (the paper's ``m'``)."""
        return int(sum(self.lengths))

    def offsets(self) -> np.ndarray:
        """(P,) global index of each partition's first pattern."""
        return np.concatenate(
            [[0], np.cumsum(np.asarray(self.lengths, dtype=np.int64))[:-1]]
        )

    @classmethod
    def from_alignment(cls, data, categories: int = 4) -> "PartitionLayout":
        """Layout of a :class:`~repro.plk.partition.PartitionedAlignment`."""
        return cls(
            lengths=tuple(int(d.n_patterns) for d in data.data),
            states=tuple(int(d.states) for d in data.data),
            categories=categories,
        )

    @classmethod
    def from_trace(cls, trace) -> "PartitionLayout":
        """Layout of a finalized :class:`~repro.core.trace.Trace`."""
        if trace.pattern_counts is None or trace.states is None:
            raise ValueError("trace not finalized: missing dataset geometry")
        return cls(
            lengths=tuple(int(c) for c in trace.pattern_counts),
            states=tuple(int(s) for s in trace.states),
            categories=int(trace.categories),
        )


@dataclass(frozen=True)
class CostModel:
    """Per-pattern cost of each partition.

    Attributes
    ----------
    per_pattern:
        (P,) cost of one pattern of each partition — dimensionless cost
        units for the analytic model, seconds per pattern when calibrated.
    unit:
        ``"relative"`` or ``"seconds"`` (documentation only; every
        consumer is scale-free).
    pattern_costs:
        Optional per-partition vectors of INDIVIDUAL pattern costs (one
        ``(m'_p,)`` array per partition).  When present, ``weighted``
        assignment and ``lpt`` chunking split on cumulative pattern cost
        instead of pattern count, and predicted thread loads sum the
        vectors — this is how repeat-aware plans price post-compression
        work (:meth:`repeat_aware`).  ``per_pattern`` stays the
        per-partition mean, so partition totals agree between the vector
        and scalar views.
    """

    per_pattern: np.ndarray
    unit: str = "relative"
    pattern_costs: tuple[np.ndarray, ...] | None = None

    def __post_init__(self) -> None:
        arr = np.asarray(self.per_pattern, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("per_pattern must be a non-empty vector")
        if (arr <= 0).any():
            raise ValueError("per-pattern costs must be positive")
        object.__setattr__(self, "per_pattern", arr)
        if self.pattern_costs is not None:
            vecs = tuple(
                np.asarray(v, dtype=np.float64) for v in self.pattern_costs
            )
            if len(vecs) != arr.size:
                raise ValueError("need one pattern-cost vector per partition")
            for v in vecs:
                if v.ndim != 1 or (v < 0).any():
                    raise ValueError(
                        "pattern costs must be non-negative 1-D vectors"
                    )
            object.__setattr__(self, "pattern_costs", vecs)

    @classmethod
    def analytic(cls, layout: PartitionLayout) -> "CostModel":
        """The datatype-weight model: ``categories * states**2`` per
        pattern (AA ~ 25x DNA; see :func:`pattern_weight`).

        >>> lay = PartitionLayout((10, 10), (4, 20))
        >>> CostModel.analytic(lay).per_pattern.tolist()
        [64.0, 1600.0]
        """
        return cls(
            per_pattern=np.array(
                [pattern_weight(s, layout.categories) for s in layout.states]
            ),
            unit="relative",
        )

    @classmethod
    def calibrated(
        cls,
        layout: PartitionLayout,
        plan: "DistributionPlan",
        busy_seconds,
    ) -> "CostModel":
        """Fit per-pattern seconds from a measured run.

        ``busy_seconds`` is the (T,) per-worker busy time (seconds) of a
        profiled run executed under ``plan`` (e.g.
        ``RunProfile.busy_seconds`` from a warmup pass).  Partitions are
        pooled by state-space size (the datatype classes: every DNA
        partition shares one per-pattern cost, every AA partition
        another), and the class costs are the least-squares solution of

        ``class_counts[t, c] * cost[c] ~= busy_seconds[t]``.

        If the fit is degenerate (fewer informative workers than classes,
        or a non-positive solution), the analytic weights are rescaled so
        the predicted total busy time matches the measurement — the
        calibration then only fixes the overall scale.
        """
        busy = np.asarray(busy_seconds, dtype=np.float64)
        if busy.shape != (plan.n_threads,):
            raise ValueError(
                f"busy_seconds must have shape ({plan.n_threads},), got {busy.shape}"
            )
        states = np.asarray(layout.states)
        classes = sorted(set(int(s) for s in states))
        # (T, C) patterns of each datatype class owned per thread.
        class_counts = np.zeros((plan.n_threads, len(classes)))
        for c, s in enumerate(classes):
            sel = states == s
            class_counts[:, c] = plan.counts[sel].sum(axis=0)
        analytic = np.array([pattern_weight(s, layout.categories) for s in classes])
        solution = None
        if busy.sum() > 0:
            x, _, rank, _ = np.linalg.lstsq(class_counts, busy, rcond=None)
            if rank == len(classes) and (x > 0).all():
                solution = x
        if solution is None:
            # Rescale the analytic weights to the measured total.
            predicted = float((class_counts @ analytic).sum())
            scale = busy.sum() / predicted if predicted > 0 else 1.0
            solution = analytic * max(scale, np.finfo(float).tiny)
        by_class = {s: float(v) for s, v in zip(classes, solution)}
        return cls(
            per_pattern=np.array([by_class[int(s)] for s in states]),
            unit="seconds",
        )

    @classmethod
    def repeat_aware(cls, data, tree, categories: int = 4) -> "CostModel":
        """Effective post-compression pattern costs under ``kernel=repeats``.

        ``data`` is a :class:`~repro.plk.partition.PartitionedAlignment`
        and ``tree`` the shared topology.  Each pattern's cost is its
        datatype weight scaled by the mean (over inner nodes) of
        ``1 / |repeat class|`` — the fraction of a newview column the
        pattern actually pays once repeats are computed once per class
        (:func:`repro.plk.repeats.effective_pattern_weights`).  Plans
        built from this model balance the work a repeat-aware worker
        really executes, not the raw pattern counts.
        """
        from ..plk.repeats import effective_pattern_weights

        vectors = []
        per = []
        for block in data.data:
            w = effective_pattern_weights(
                block.tip_states, tree, block.states, categories
            )
            vectors.append(w)
            per.append(
                float(w.mean()) if w.size
                else pattern_weight(block.states, categories)
            )
        return cls(
            per_pattern=np.array(per),
            unit="relative",
            pattern_costs=tuple(vectors),
        )

    def with_pattern_costs(self, vectors) -> "CostModel":
        """This model with per-pattern cost *shapes* attached.

        Each vector is rescaled so its partition mean equals this model's
        ``per_pattern`` entry — a calibrated seconds-per-pattern scale
        survives, only the within-partition shape changes.  This is how a
        :class:`Rebalancer` combines measured calibration with
        repeat-aware shapes.
        """
        scaled = []
        for p, v in enumerate(vectors):
            v = np.asarray(v, dtype=np.float64)
            mean = float(v.mean()) if v.size else 0.0
            scaled.append(v * (self.per_pattern[p] / mean) if mean > 0 else v)
        return CostModel(
            per_pattern=self.per_pattern,
            unit=self.unit,
            pattern_costs=tuple(scaled),
        )

    def partition_costs(self, layout: PartitionLayout) -> np.ndarray:
        """(P,) total cost of each partition: ``per_pattern * m'_p`` (the
        exact vector sums when per-pattern costs are attached)."""
        if self.pattern_costs is not None:
            return np.array([float(v.sum()) for v in self.pattern_costs])
        return self.per_pattern * np.asarray(layout.lengths, dtype=np.float64)


@dataclass(frozen=True)
class DistributionPlan:
    """A concrete pattern-to-thread assignment for one dataset.

    The plan is what the worker teams slice tip data with and what the
    simulator costs: ``indices[p][t]`` is the (sorted) array of
    partition-local pattern indices thread ``t`` owns in partition ``p``,
    and ``counts[p, t] == len(indices[p][t])``.
    """

    policy: str
    n_threads: int
    layout: PartitionLayout
    cost: CostModel
    indices: tuple[tuple[np.ndarray, ...], ...]
    counts: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        counts = np.array(
            [[len(idx) for idx in per_thread] for per_thread in self.indices],
            dtype=np.int64,
        )
        object.__setattr__(self, "counts", counts)

    @property
    def n_partitions(self) -> int:
        return self.layout.n_partitions

    def thread_indices(self, partition: int, thread: int) -> np.ndarray:
        """Partition-local indices thread ``thread`` owns in ``partition``."""
        return self.indices[partition][thread]

    def partition_thread_counts(self, partition: int) -> np.ndarray:
        """(T,) per-thread pattern counts of one partition (counts)."""
        return self.counts[partition].copy()

    def thread_patterns(self) -> np.ndarray:
        """(T,) raw pattern counts per thread (counts)."""
        return self.counts.sum(axis=0)

    def thread_costs(self) -> np.ndarray:
        """(T,) predicted load per thread in the plan's cost units (exact
        per-pattern sums when the cost model carries pattern vectors)."""
        if self.cost.pattern_costs is None:
            return self.counts.T @ self.cost.per_pattern
        loads = np.zeros(self.n_threads)
        for vec, per_thread in zip(self.cost.pattern_costs, self.indices):
            for t, idx in enumerate(per_thread):
                if len(idx):
                    loads[t] += float(vec[idx].sum())
        return loads

    def imbalance(self) -> float:
        """Predicted max/mean thread-load ratio (1.0 = perfect)."""
        return imbalance_ratio(self.thread_costs())

    def summary(self) -> str:
        """One-line human-readable description of the plan's balance."""
        loads = self.thread_costs()
        return (
            f"{self.policy}: T={self.n_threads} "
            f"patterns/thread {self.thread_patterns().min()}-"
            f"{self.thread_patterns().max()} "
            f"imbalance {self.imbalance():.3f} "
            f"(load {loads.min():.3g}..{loads.max():.3g} {self.cost.unit})"
        )


def _weighted_indices(
    layout: PartitionLayout, n_threads: int, cost: CostModel
) -> list[list[list[int]]]:
    """Cost-aware cyclic: walk the global pattern vector in order and hand
    each pattern to the thread with the smallest cumulative cost so far
    (ties break toward the lowest thread id, so homogeneous data reduces
    to plain round-robin).  With per-pattern cost vectors each pattern
    carries its OWN cost, so cheap repeat-heavy patterns pack more densely
    than unique ones."""
    vectors = cost.pattern_costs
    heap = [(0.0, t) for t in range(n_threads)]
    owned: list[list[list[int]]] = [
        [[] for _ in range(n_threads)] for _ in range(layout.n_partitions)
    ]
    for p, length in enumerate(layout.lengths):
        flat = float(cost.per_pattern[p])
        vec = vectors[p] if vectors is not None else None
        bucket = owned[p]
        for local in range(length):
            c = float(vec[local]) if vec is not None else flat
            load, t = heapq.heappop(heap)
            bucket[t].append(local)
            heapq.heappush(heap, (load + c, t))
    return owned


def _partition_chunks(
    length: int, n_threads: int, flat_cost: float, vec: np.ndarray | None
):
    """Split one partition into at most T contiguous chunks, yielding
    ``(cost, start, stop)``.  Count-balanced without a pattern vector;
    with one, the boundaries equalize CUMULATIVE COST (cumsum +
    searchsorted), so a run of cheap repeat-heavy patterns forms a wider
    chunk than the same count of unique ones."""
    if vec is None or float(vec.sum()) <= 0.0:
        chunk_len = -(-length // n_threads)
        for start in range(0, length, chunk_len):
            stop = min(start + chunk_len, length)
            yield (stop - start) * flat_cost, start, stop
        return
    cum = np.cumsum(vec)
    total = float(cum[-1])
    targets = total * np.arange(1, n_threads) / n_threads
    bounds = np.searchsorted(cum, targets, side="left") + 1
    edges = np.unique(np.concatenate([[0], bounds, [length]]))
    for start, stop in zip(edges[:-1], edges[1:]):
        start, stop = int(start), int(stop)
        yield float(cum[stop - 1] - (cum[start - 1] if start else 0.0)), start, stop


def _lpt_indices(
    layout: PartitionLayout, n_threads: int, cost: CostModel
) -> list[list[list[int]]]:
    """Longest-processing-time greedy bin packing of contiguous partition
    chunks (each partition is pre-split into at most T chunks so no thread
    can be forced to own more than a 1/T share of any partition — a 1/T
    share of its COST when per-pattern vectors are present)."""
    vectors = cost.pattern_costs
    chunks: list[tuple[float, int, int, int]] = []  # (-cost, p, start, stop)
    for p, length in enumerate(layout.lengths):
        if length == 0:
            continue
        vec = vectors[p] if vectors is not None else None
        for c, start, stop in _partition_chunks(
            length, n_threads, float(cost.per_pattern[p]), vec
        ):
            chunks.append((-c, p, start, stop))
    # Heaviest first; ties resolved by (partition, start) for determinism.
    chunks.sort()
    heap = [(0.0, t) for t in range(n_threads)]
    owned: list[list[list[int]]] = [
        [[] for _ in range(n_threads)] for _ in range(layout.n_partitions)
    ]
    for neg_cost, p, start, stop in chunks:
        load, t = heapq.heappop(heap)
        owned[p][t].extend(range(start, stop))
        heapq.heappush(heap, (load - neg_cost, t))
    return owned


def build_plan(
    layout: PartitionLayout,
    n_threads: int,
    policy: str = "cyclic",
    cost_model: CostModel | None = None,
) -> DistributionPlan:
    """Build the global pattern-to-thread assignment for one policy.

    ``cost_model`` defaults to :meth:`CostModel.analytic`; it drives the
    assignment for ``weighted``/``lpt`` and is reporting-only (predicted
    loads, imbalance) for ``cyclic``/``block``.

    >>> lay = PartitionLayout((8, 2), (4, 20), categories=4)
    >>> plan = build_plan(lay, 2, "weighted")
    >>> sorted(np.concatenate(plan.indices[0]).tolist())   # full coverage
    [0, 1, 2, 3, 4, 5, 6, 7]
    >>> plan.counts.sum(axis=1).tolist()                   # every pattern placed once
    [8, 2]
    >>> plan.imbalance() <= build_plan(lay, 2, "block").imbalance()
    True
    """
    if policy not in DISTRIBUTIONS:
        raise ValueError(f"unknown distribution {policy!r}; known: {DISTRIBUTIONS}")
    if n_threads < 1:
        raise ValueError("need at least one thread")
    cost = cost_model if cost_model is not None else CostModel.analytic(layout)
    if cost.per_pattern.shape != (layout.n_partitions,):
        raise ValueError("cost model and layout disagree on partition count")
    if cost.pattern_costs is not None and any(
        v.shape != (length,)
        for v, length in zip(cost.pattern_costs, layout.lengths)
    ):
        raise ValueError(
            "pattern-cost vectors and layout disagree on pattern counts"
        )
    offsets = layout.offsets()
    total = layout.total
    if policy == "cyclic":
        indices = tuple(
            tuple(
                cyclic_indices(int(offsets[p]), int(length), n_threads, t)
                for t in range(n_threads)
            )
            for p, length in enumerate(layout.lengths)
        )
    elif policy == "block":
        indices = tuple(
            tuple(
                block_indices(int(offsets[p]), int(length), total, n_threads, t)
                for t in range(n_threads)
            )
            for p, length in enumerate(layout.lengths)
        )
    else:
        builder = _weighted_indices if policy == "weighted" else _lpt_indices
        owned = builder(layout, n_threads, cost)
        indices = tuple(
            tuple(np.asarray(sorted(per_thread[t]), dtype=np.int64)
                  for t in range(n_threads))
            for per_thread in owned
        )
    return DistributionPlan(
        policy=policy, n_threads=n_threads, layout=layout, cost=cost,
        indices=indices,
    )


class Rebalancer:
    """Measured-feedback rebalancing: warmup measurement in, better plan out.

    The loop the paper never closes: run a short warmup pass under any
    starting plan with a :class:`repro.perf.Profiler` attached, feed the
    measured per-worker busy seconds back in, and get a new plan whose
    predicted max-thread load is minimized under the *calibrated* (not
    analytic) cost model.

    Parameters
    ----------
    layout:
        Dataset geometry the plans are built over.
    n_threads:
        Worker-team size the new plan targets (may differ from the warmup
        team's size only if ``calibrate`` is given matching busy vectors).
    policy:
        Replan policy (default ``"lpt"`` — the strongest minimizer of the
        max-thread load; ``"weighted"`` is also sensible).
    pattern_costs:
        Optional per-partition pattern-cost vectors (e.g. from
        :meth:`CostModel.repeat_aware`).  When set, every calibrated
        model is reshaped with :meth:`CostModel.with_pattern_costs`
        before replanning, so the new plan prices post-compression work
        at the measured per-partition scale.

    Example
    -------
    ::

        plan = build_plan(layout, 4, "cyclic")
        with ParallelPLK(data, tree, models, alphas, 4,
                         distribution=plan, profiler=prof) as team:
            team.optimize_branches(edges, "new")       # warmup pass
        better = Rebalancer(layout, 4).rebalance(plan, prof.profile())
        with ParallelPLK(data, tree, models, alphas, 4,
                         distribution=better) as team:
            ...                                        # main run
    """

    def __init__(
        self,
        layout: PartitionLayout,
        n_threads: int,
        policy: str = "lpt",
        pattern_costs=None,
    ):
        if policy not in DISTRIBUTIONS:
            raise ValueError(f"unknown distribution {policy!r}; known: {DISTRIBUTIONS}")
        self.layout = layout
        self.n_threads = int(n_threads)
        self.policy = policy
        self.pattern_costs = (
            tuple(np.asarray(v, dtype=np.float64) for v in pattern_costs)
            if pattern_costs is not None
            else None
        )

    def calibrate(self, plan: DistributionPlan, busy_seconds) -> CostModel:
        """Per-pattern seconds from a measured run under ``plan`` (see
        :meth:`CostModel.calibrated`)."""
        return CostModel.calibrated(self.layout, plan, busy_seconds)

    def rebalance(
        self, plan: DistributionPlan, measurement, recorder=None
    ) -> DistributionPlan:
        """A new plan from a measurement taken under ``plan``.

        ``measurement`` is a :class:`repro.perf.RunProfile` (its
        ``busy_seconds`` are used) or a raw (T,) busy-seconds vector.
        ``recorder`` (a :class:`repro.obs.live.FlightRecorder` or the
        :class:`~repro.obs.live.LiveTelemetry` facade) gets a
        ``rebalance`` event stamping the measured imbalance and both
        plans' predicted ratios, so mid-run rebalance decisions show up
        in post-mortem dumps.
        """
        busy = getattr(measurement, "busy_seconds", measurement)
        model = self.calibrate(plan, busy)
        if self.pattern_costs is not None:
            model = model.with_pattern_costs(self.pattern_costs)
        new_plan = build_plan(self.layout, self.n_threads, self.policy, model)
        if recorder is not None:
            recorder.record(
                "rebalance",
                policy=self.policy,
                measured_imbalance=round(imbalance_ratio(busy), 6),
                old_predicted=round(plan.imbalance(), 6),
                new_predicted=round(new_plan.imbalance(), 6),
            )
        return new_plan
